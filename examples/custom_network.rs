//! User-defined CNN on a custom DRAM geometry: builds a depthwise-ish
//! edge network and a 2-channel DRAM with 16 subarrays per bank, then
//! asks the DSE for the best mapping per layer.
//!
//! Run with: `cargo run --release --example custom_network`

use drmap::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small edge-vision network (not from the paper).
    let network = Network::new(
        "EdgeNet",
        vec![
            Layer::conv("STEM", 112, 112, 32, 3, 3, 3, 2),
            Layer::conv("STAGE1", 56, 56, 64, 32, 3, 3, 2),
            Layer::conv("STAGE2", 28, 28, 128, 64, 3, 3, 2),
            Layer::conv("HEAD", 14, 14, 256, 128, 1, 1, 2),
            Layer::fully_connected("CLS", 256 * 7 * 7, 100),
        ],
    )?;

    // A custom DRAM: 2 channels, 16 subarrays per bank.
    let geometry = Geometry::builder().channels(2).subarrays(16).build()?;
    let timing = TimingParams::ddr3_1600k();
    let energy = EnergyParams::micron_2gb_x8();
    let profiler = drmap::dram::profiler::Profiler::new(geometry, timing, energy)?;

    // A larger accelerator than Table II.
    let acc = AcceleratorConfig {
        ifms_buffer: 128 * 1024,
        wghs_buffer: 128 * 1024,
        ofms_buffer: 64 * 1024,
        precision: Precision::Int8,
        ..AcceleratorConfig::table_ii()
    };

    println!("network : {network}");
    println!("dram    : {geometry}");
    println!("accel   : {acc}");
    println!();

    for arch in [DramArch::Ddr3, DramArch::SalpMasa] {
        let table = profiler.cost_table(arch);
        let engine = DseEngine::new(EdpModel::new(geometry, table, acc), DseConfig::default());
        let result = engine.explore_network(&network)?;
        println!("=== {arch} ===");
        for layer in &result.layers {
            println!(
                "{:<7} {:<28} {:<14} EDP={:.4e} J*s",
                layer.layer_name,
                layer.best.mapping.name(),
                layer.best.scheme.to_string(),
                layer.best.estimate.edp()
            );
        }
        println!("Total EDP = {:.4e} J*s", result.total_edp());
        println!();
    }
    Ok(())
}
