//! Fig. 1-style architecture study: measures per-access latency and
//! energy for the five access conditions on all four DRAM architectures
//! using the cycle-level simulator directly.
//!
//! Run with: `cargo run --release --example salp_study`

use drmap::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profiler = Profiler::table_ii()?;

    println!(
        "{:<28} {:>10} {:>10} {:>10} {:>10}",
        "condition / cycles", "DDR3", "SALP-1", "SALP-2", "SALP-MASA"
    );
    for condition in AccessCondition::ALL {
        let mut row = format!("{:<28}", condition.label());
        for arch in DramArch::ALL {
            let cost = profiler.fig1_condition(arch, condition, RequestKind::Read);
            row.push_str(&format!(" {:>10.2}", cost.cycles));
        }
        println!("{row}");
    }

    println!();
    println!(
        "{:<28} {:>10} {:>10} {:>10} {:>10}",
        "condition / energy [nJ]", "DDR3", "SALP-1", "SALP-2", "SALP-MASA"
    );
    for condition in AccessCondition::ALL {
        let mut row = format!("{:<28}", condition.label());
        for arch in DramArch::ALL {
            let cost = profiler.fig1_condition(arch, condition, RequestKind::Read);
            row.push_str(&format!(" {:>10.3}", cost.energy * 1e9));
        }
        println!("{row}");
    }

    println!();
    println!("Reading the table like the paper does:");
    println!("* hits are cheapest; conflicts cost tRP + tRCD extra (DDR3: 15 vs 37 cycles)");
    println!("* subarray-level parallelism: DDR3 cannot exploit it (conflict-level cost),");
    println!("  SALP-1/2 overlap precharge/activation, MASA keeps rows open (near-hit)");
    println!("* bank-level parallelism is cheap on every architecture");
    Ok(())
}
