//! Quickstart: profile a DRAM architecture, run the DSE on one AlexNet
//! layer, and print the minimum-EDP configuration.
//!
//! Run with: `cargo run --release --example quickstart`

use drmap::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Profile the per-access-condition costs of SALP-2 (Fig. 1 data).
    let profiler = Profiler::table_ii()?;
    let table = profiler.cost_table(DramArch::Salp2);

    // 2. Build the analytical EDP model (Eq. 1-3) on top of the profile.
    let model = EdpModel::new(
        Geometry::salp_2gb_x8(),
        table,
        AcceleratorConfig::table_ii(),
    );

    // 3. Explore AlexNet CONV2: tilings x schedules x Table I mappings.
    let engine = DseEngine::new(model, DseConfig::default());
    let network = Network::alexnet();
    let conv2 = &network.layers()[1];
    let result = engine.explore_layer(conv2)?;

    println!("layer     : {conv2}");
    println!("evaluated : {} configurations", result.evaluations);
    println!("best      : {}", result.best);
    println!(
        "DRMap won?: {}",
        if result.best.mapping.is_drmap() {
            "yes"
        } else {
            "no"
        }
    );
    Ok(())
}
