//! Command-trace inspection (the paper's Fig. 8 tool flow): map one tile
//! with two different policies, run the streams through the
//! cycle-level controller with command recording on, and print the
//! resulting DRAM command traces side by side with their statistics.
//!
//! Run with: `cargo run --release --example trace_inspect`

use drmap::dram::trace::format_command_trace;
use drmap::prelude::*;

fn run_policy(policy: &MappingPolicy, units: u64) -> Result<(), Box<dyn std::error::Error>> {
    let geometry = Geometry::salp_2gb_x8();
    let requests = policy.request_stream(geometry, 0, units, RequestKind::Read)?;

    let config = ControllerConfig {
        record_commands: true,
        ..ControllerConfig::new(DramArch::SalpMasa)
    };
    let mut sim = DramSimulator::new(
        geometry,
        TimingParams::ddr3_1600k(),
        config,
        EnergyParams::micron_2gb_x8(),
    )?;
    let stats = sim.run(&requests, DriveMode::Streamed);

    println!("--- {policy} ({units} bursts on SALP-MASA) ---");
    let trace_text = format_command_trace(sim.controller().commands());
    for line in trace_text.lines().take(12) {
        println!("{line}");
    }
    let total_cmds = sim.controller().commands().len();
    if total_cmds > 12 {
        println!("... ({} more commands)", total_cmds - 12);
    }
    println!(
        "makespan {} cycles | {:.2} cycles/access | hit rate {:.2} | energy {:.2} nJ",
        stats.makespan_cycles,
        stats.cycles_per_access(),
        stats.hit_rate(),
        stats.energy.total() * 1e9,
    );
    println!();
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 2 KB tile: 256 bursts.
    let units = 256;
    run_policy(&MappingPolicy::drmap(), units)?;
    run_policy(&MappingPolicy::table_i_policy(2), units)?;
    println!("DRMap keeps the command stream dense in RD commands (row-buffer hits),");
    println!("Mapping-2 interleaves subarrays and pays ACT/SASEL churn.");
    Ok(())
}
