//! Full-network DSE on AlexNet: runs Algorithm 1 on every layer for every
//! DRAM architecture and prints a Fig. 9-style per-layer report of the
//! winning configuration.
//!
//! Run with: `cargo run --release --example alexnet_dse`

use drmap::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let network = Network::alexnet();
    let acc = AcceleratorConfig::table_ii();
    let geometry = Geometry::salp_2gb_x8();
    let profiler = Profiler::table_ii()?;

    println!("network: {network}, accelerator: {acc}");
    println!();

    for arch in DramArch::ALL {
        let table = profiler.cost_table(arch);
        let model = EdpModel::new(geometry, table, acc);
        let engine = DseEngine::new(model, DseConfig::default());
        let result = engine.explore_network(&network)?;

        println!("=== {arch} ===");
        for layer in &result.layers {
            println!(
                "{:<6} best={:<28} {:<14} {} EDP={:.4e} J*s",
                layer.layer_name,
                layer.best.mapping.name(),
                layer.best.scheme.to_string(),
                layer.best.tiling,
                layer.best.estimate.edp()
            );
        }
        println!(
            "Total  EDP={:.4e} J*s  energy={:.4e} J  latency={:.4e} s",
            result.total_edp(),
            result.total.energy,
            result.total.seconds()
        );
        let drmap_wins = result
            .layers
            .iter()
            .filter(|l| l.best.mapping.is_drmap())
            .count();
        println!(
            "DRMap (Mapping-3) is the per-layer winner on {}/{} layers",
            drmap_wins,
            result.layers.len()
        );
        println!();
    }
    Ok(())
}
