//! Where does the DRAM energy actually go? Per-layer breakdown of the
//! DSE winners on AlexNet: ifms vs wghs vs ofms partial-sum traffic, and
//! the concrete scheme adaptive-reuse resolves to per layer (the
//! SmartShuttle-style switching the paper's Section II-A describes).
//!
//! Run with: `cargo run --release --example breakdown_analysis`

use drmap::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let network = Network::alexnet();
    let profiler = Profiler::table_ii()?;
    let model = EdpModel::new(
        Geometry::salp_2gb_x8(),
        profiler.cost_table(DramArch::Salp2),
        AcceleratorConfig::table_ii(),
    );
    let engine = DseEngine::new(model.clone(), DseConfig::default());

    println!(
        "{:<7} {:<12} {:>12} {:>12} {:>12} {:>12}  dominant",
        "layer", "resolved", "ifms [uJ]", "wghs [uJ]", "ofms-rd [uJ]", "ofms-wr [uJ]"
    );
    for layer in network.layers() {
        let best = engine.explore_layer(layer)?.best;
        let b = model.layer_breakdown(layer, &best.tiling, best.scheme, &best.mapping);
        println!(
            "{:<7} {:<12} {:>12.2} {:>12.2} {:>12.2} {:>12.2}  {}",
            layer.name,
            b.resolved_scheme.label(),
            b.ifms.energy * 1e6,
            b.wghs.energy * 1e6,
            b.ofms_reads.energy * 1e6,
            b.ofms_writes.energy * 1e6,
            b.dominant(),
        );
    }
    println!();
    println!("Conv layers are activation-dominated; FC layers are weight-dominated —");
    println!("which is why adaptive-reuse switches its priority across the network.");
    Ok(())
}
