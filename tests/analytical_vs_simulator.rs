//! Cross-validation of the analytical access model (Eq. 2/3) against the
//! cycle-level DRAM simulator: the analytical model drives the DSE, so it
//! must agree with the simulator on *which mappings are better* and
//! roughly *by how much*.

use std::sync::OnceLock;

use drmap::prelude::*;

fn profiler() -> &'static Profiler {
    static P: OnceLock<Profiler> = OnceLock::new();
    P.get_or_init(|| Profiler::table_ii().expect("profiler config valid"))
}

/// Simulate a tile's request stream and return (cycles, energy).
fn simulate_tile(arch: DramArch, policy: &MappingPolicy, units: u64) -> (f64, f64) {
    let geometry = Geometry::salp_2gb_x8();
    let requests = policy
        .request_stream(geometry, 0, units, RequestKind::Read)
        .expect("stream fits device");
    let mut sim = DramSimulator::new(
        geometry,
        TimingParams::ddr3_1600k(),
        ControllerConfig::new(arch),
        EnergyParams::micron_2gb_x8(),
    )
    .expect("simulator config valid");
    let stats = sim.run(&requests, DriveMode::Streamed);
    (stats.makespan_cycles as f64, stats.energy.total())
}

/// Analytical cost of the same tile.
fn analytical_tile(arch: DramArch, policy: &MappingPolicy, units: u64) -> (f64, f64) {
    let geometry = Geometry::salp_2gb_x8();
    let table = profiler().cost_table(arch);
    let cost = tile_cost(policy, &geometry, units, &table, RequestKind::Read);
    (cost.cycles, cost.energy)
}

/// Whenever the analytical model claims a *clear* (≥25%) cycle advantage
/// of one mapping over another, the cycle-level simulator must agree on
/// the direction.
#[test]
fn clear_analytical_wins_are_confirmed_by_simulator() {
    let units = 2048u64;
    for arch in DramArch::ALL {
        let mappings = MappingPolicy::table_i();
        let analytical: Vec<f64> = mappings
            .iter()
            .map(|m| analytical_tile(arch, m, units).0)
            .collect();
        let simulated: Vec<f64> = mappings
            .iter()
            .map(|m| simulate_tile(arch, m, units).0)
            .collect();
        for i in 0..mappings.len() {
            for j in 0..mappings.len() {
                if analytical[i] < 0.75 * analytical[j] {
                    assert!(
                        simulated[i] < simulated[j] * 1.05,
                        "{arch}: model says {} ({:.0} cyc) beats {} ({:.0} cyc) clearly, \
                         but simulator has {:.0} vs {:.0}",
                        mappings[i],
                        analytical[i],
                        mappings[j],
                        analytical[j],
                        simulated[i],
                        simulated[j],
                    );
                }
            }
        }
    }
}

/// Same direction-agreement check for energy.
#[test]
fn clear_analytical_energy_wins_are_confirmed_by_simulator() {
    let units = 2048u64;
    for arch in DramArch::ALL {
        let mappings = MappingPolicy::table_i();
        let analytical: Vec<f64> = mappings
            .iter()
            .map(|m| analytical_tile(arch, m, units).1)
            .collect();
        let simulated: Vec<f64> = mappings
            .iter()
            .map(|m| simulate_tile(arch, m, units).1)
            .collect();
        for i in 0..mappings.len() {
            for j in 0..mappings.len() {
                if analytical[i] < 0.70 * analytical[j] {
                    assert!(
                        simulated[i] < simulated[j] * 1.05,
                        "{arch}: energy direction disagreement between model and simulator \
                         for {} vs {}",
                        mappings[i],
                        mappings[j],
                    );
                }
            }
        }
    }
}

/// The analytical cycle estimate should land within a factor of two of
/// the simulated makespan for the best and worst mappings (it is a
/// per-class approximation, not a cycle-accurate count).
#[test]
fn analytical_magnitude_within_2x_of_simulator() {
    let units = 4096u64;
    for arch in DramArch::ALL {
        for policy in [MappingPolicy::drmap(), MappingPolicy::table_i_policy(5)] {
            let (a_cycles, _) = analytical_tile(arch, &policy, units);
            let (s_cycles, _) = simulate_tile(arch, &policy, units);
            let ratio = a_cycles / s_cycles;
            assert!(
                (0.5..=2.0).contains(&ratio),
                "{arch} {policy}: analytical {a_cycles:.0} vs simulated {s_cycles:.0} \
                 (ratio {ratio:.2})"
            );
        }
    }
}

/// DRMap's tile stream must achieve the highest row-buffer hit rate of
/// all Table I mappings on every architecture (its design goal).
#[test]
fn drmap_stream_maximizes_hit_rate() {
    let units = 2048u64;
    let geometry = Geometry::salp_2gb_x8();
    for arch in DramArch::ALL {
        let mut rates = Vec::new();
        for policy in MappingPolicy::table_i() {
            let requests = policy
                .request_stream(geometry, 0, units, RequestKind::Read)
                .unwrap();
            let mut sim = DramSimulator::new(
                geometry,
                TimingParams::ddr3_1600k(),
                ControllerConfig::new(arch),
                EnergyParams::micron_2gb_x8(),
            )
            .unwrap();
            let stats = sim.run(&requests, DriveMode::Streamed);
            rates.push((policy.index(), stats.hit_rate()));
        }
        let drmap_rate = rates.iter().find(|(i, _)| *i == 3).unwrap().1;
        for (idx, rate) in &rates {
            assert!(
                drmap_rate >= *rate - 1e-9,
                "{arch}: Mapping-{idx} hit rate {rate:.3} exceeds DRMap {drmap_rate:.3}"
            );
        }
    }
}
