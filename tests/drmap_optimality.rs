//! The paper's Key Observations 1–4, asserted as integration tests on a
//! representative AlexNet subset (CONV2, CONV3, FC6 — one early conv, one
//! mid conv, one fully-connected layer).

use std::sync::OnceLock;

use drmap::prelude::*;

struct Fixture {
    engines: Vec<(DramArch, DseEngine)>,
    layers: Vec<Layer>,
}

fn fixture() -> &'static Fixture {
    static F: OnceLock<Fixture> = OnceLock::new();
    F.get_or_init(|| {
        let geometry = Geometry::salp_2gb_x8();
        let acc = AcceleratorConfig::table_ii();
        let profiler = Profiler::table_ii().expect("profiler valid");
        let engines = DramArch::ALL
            .iter()
            .map(|&arch| {
                let table = profiler.cost_table(arch);
                (
                    arch,
                    DseEngine::new(EdpModel::new(geometry, table, acc), DseConfig::default()),
                )
            })
            .collect();
        let alexnet = Network::alexnet();
        let layers = vec![
            alexnet.layers()[1].clone(),
            alexnet.layers()[2].clone(),
            alexnet.layers()[5].clone(),
        ];
        Fixture { engines, layers }
    })
}

fn cell(engine: &DseEngine, layer: &Layer, scheme: ReuseScheme, mapping: &MappingPolicy) -> f64 {
    engine
        .best_over_tilings(layer, scheme, mapping)
        .expect("feasible tiling exists")
        .estimate
        .edp()
}

/// Key Observation 1: DRMap (Mapping-3) achieves the lowest EDP across
/// layers, architectures and scheduling schemes.
#[test]
fn ko1_drmap_is_lowest_everywhere() {
    let f = fixture();
    for (arch, engine) in &f.engines {
        for layer in &f.layers {
            for scheme in ReuseScheme::ALL {
                let drmap_edp = cell(engine, layer, scheme, &MappingPolicy::drmap());
                for mapping in MappingPolicy::table_i() {
                    let edp = cell(engine, layer, scheme, &mapping);
                    assert!(
                        drmap_edp <= edp * 1.0001,
                        "{arch} {} {scheme}: {} EDP {edp:.3e} beats DRMap {drmap_edp:.3e}",
                        layer.name,
                        mapping
                    );
                }
            }
        }
    }
}

/// Key Observation 2: Mapping-2 and Mapping-5 (subarray-innermost) are
/// the worst policies on every architecture.
#[test]
fn ko2_subarray_innermost_mappings_are_worst() {
    let f = fixture();
    for (arch, engine) in &f.engines {
        for layer in &f.layers {
            let scheme = ReuseScheme::AdaptiveReuse;
            let edps: Vec<(usize, f64)> = MappingPolicy::table_i()
                .iter()
                .map(|m| (m.index(), cell(engine, layer, scheme, m)))
                .collect();
            let worst = edps
                .iter()
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                .unwrap();
            assert!(
                worst.0 == 2 || worst.0 == 5,
                "{arch} {}: worst mapping is Mapping-{} (expected 2 or 5)",
                layer.name,
                worst.0
            );
        }
    }
}

/// Key Observation 3: Mapping-1 and Mapping-3 obtain comparable EDPs
/// (both are column-innermost; they differ only in the bank/subarray
/// priority).
#[test]
fn ko3_mapping1_comparable_to_drmap() {
    let f = fixture();
    for (arch, engine) in &f.engines {
        for layer in &f.layers {
            let m1 = cell(
                engine,
                layer,
                ReuseScheme::AdaptiveReuse,
                &MappingPolicy::table_i_policy(1),
            );
            let m3 = cell(
                engine,
                layer,
                ReuseScheme::AdaptiveReuse,
                &MappingPolicy::drmap(),
            );
            let ratio = m1 / m3;
            assert!(
                (0.8..=2.5).contains(&ratio),
                "{arch} {}: Mapping-1/DRMap EDP ratio {ratio:.2} not comparable",
                layer.name
            );
            // ... and Mapping-1 is never better (bank parallelism is
            // cheaper than subarray parallelism, Fig. 1).
            assert!(m3 <= m1 * 1.0001);
        }
    }
}

/// Key Observation 4: employing SALP architectures improves EDP relative
/// to DDR3 for every mapping policy (with an effective policy the gain is
/// small but non-negative; with subarray-heavy policies it is large).
#[test]
fn ko4_salp_improves_over_ddr3() {
    let f = fixture();
    let (_, ddr3) = &f.engines[0];
    for (arch, engine) in &f.engines[1..] {
        for layer in &f.layers {
            for mapping in MappingPolicy::table_i() {
                let base = cell(ddr3, layer, ReuseScheme::AdaptiveReuse, &mapping);
                let salp = cell(engine, layer, ReuseScheme::AdaptiveReuse, &mapping);
                assert!(
                    salp <= base * 1.001,
                    "{arch} {} {}: SALP EDP {salp:.3e} worse than DDR3 {base:.3e}",
                    layer.name,
                    mapping
                );
            }
        }
    }
}

/// Subarray-heavy mappings benefit most from SALP (the paper's Mapping-2
/// numbers: 29% SALP-1 up to 81% MASA).
#[test]
fn ko4_mapping2_gains_most_from_masa() {
    let f = fixture();
    let (_, ddr3) = &f.engines[0];
    let (_, masa) = &f.engines[3];
    for layer in &f.layers {
        let gain = |mapping: &MappingPolicy| {
            let base = cell(ddr3, layer, ReuseScheme::AdaptiveReuse, mapping);
            let salp = cell(masa, layer, ReuseScheme::AdaptiveReuse, mapping);
            1.0 - salp / base
        };
        let gain_m2 = gain(&MappingPolicy::table_i_policy(2));
        let gain_m3 = gain(&MappingPolicy::drmap());
        assert!(
            gain_m2 > gain_m3,
            "{}: Mapping-2 MASA gain {gain_m2:.2} should exceed DRMap gain {gain_m3:.2}",
            layer.name
        );
        assert!(
            gain_m2 > 0.5,
            "{}: Mapping-2 MASA gain {gain_m2:.2} should be large",
            layer.name
        );
    }
}

/// The paper's headline: DRMap improves EDP by a large factor over the
/// worst mapping on DDR3 (paper: up to 96%).
#[test]
fn headline_ddr3_improvement_over_90pct() {
    let f = fixture();
    let (_, ddr3) = &f.engines[0];
    let mut max_improvement: f64 = 0.0;
    for layer in &f.layers {
        for scheme in ReuseScheme::ALL {
            let drmap_edp = cell(ddr3, layer, scheme, &MappingPolicy::drmap());
            for mapping in MappingPolicy::table_i() {
                let edp = cell(ddr3, layer, scheme, &mapping);
                max_improvement = max_improvement.max(1.0 - drmap_edp / edp);
            }
        }
    }
    assert!(
        max_improvement > 0.90,
        "max DDR3 improvement {max_improvement:.3} below the paper's ballpark"
    );
}
