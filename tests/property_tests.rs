//! Property-based tests across the workspace: address codecs, transition
//! counting, traffic modelling and Pareto extraction must hold their
//! invariants for arbitrary (valid) inputs, not just the presets.

use drmap::prelude::*;
use proptest::prelude::*;

/// Strategy: a valid, modest-sized geometry.
fn geometry_strategy() -> impl Strategy<Value = Geometry> {
    (
        1usize..=2,  // channels
        1usize..=2,  // ranks
        2usize..=8,  // banks
        1usize..=4,  // subarrays exponent -> 1,2,4,8,16
        6usize..=10, // rows exponent
        5usize..=8,  // columns exponent
    )
        .prop_map(|(ch, ra, ba, sa_exp, row_exp, col_exp)| {
            Geometry::builder()
                .channels(ch)
                .ranks(ra)
                .banks(ba)
                .subarrays(1 << sa_exp)
                .rows(1 << row_exp.max(sa_exp))
                .columns(1 << col_exp)
                .build()
                .expect("constructed geometry is valid")
        })
}

/// Strategy: an arbitrary mapping policy (any of the 24 permutations).
fn policy_strategy() -> impl Strategy<Value = MappingPolicy> {
    (0usize..24).prop_map(|i| MappingPolicy::all_permutations()[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// encode(decode(i)) == i for every in-range flat index.
    #[test]
    fn codec_roundtrip(g in geometry_strategy(), p in policy_strategy(), frac in 0.0f64..1.0) {
        let codec = p.codec(g).unwrap();
        let index = ((codec.slots() - 1) as f64 * frac) as u64;
        let addr = codec.decode(index).unwrap();
        prop_assert_eq!(codec.encode(&addr).unwrap(), index);
        prop_assert!(addr.validate(&g).is_ok());
    }

    /// Transition counts always sum to the tile's unit count, on any
    /// geometry and policy.
    #[test]
    fn transition_counts_sum(
        g in geometry_strategy(),
        p in policy_strategy(),
        units in 1u64..20_000,
    ) {
        let units = units.min(g.total_burst_slots());
        let counts = transition_counts(&p, &g, units);
        prop_assert_eq!(counts.total(), units);
    }

    /// The closed form agrees with explicit divergence enumeration.
    #[test]
    fn closed_form_matches_enumeration(
        g in geometry_strategy(),
        p in policy_strategy(),
        units in 2u64..600,
    ) {
        let units = units.min(g.total_burst_slots());
        let codec = p.codec(g).unwrap();
        let analytical = transition_counts(&p, &g, units);
        let mut by_class = std::collections::HashMap::new();
        for i in 0..units - 1 {
            let level = codec.divergence_level(i).unwrap();
            *by_class
                .entry(drmap::dram::profiler::TransitionClass::from_level(level))
                .or_insert(0u64) += 1;
        }
        for class in drmap::dram::profiler::TransitionClass::ALL {
            let expected = by_class.get(&class).copied().unwrap_or(0)
                + u64::from(class == drmap::dram::profiler::TransitionClass::DifRow);
            prop_assert_eq!(analytical.count(class), expected, "class {}", class);
        }
    }

    /// A tiling that fits keeps every tile within its buffer, and the
    /// clamped tiling always fits dimension bounds.
    #[test]
    fn tiling_fit_invariants(
        th in 1usize..64, tw in 1usize..64, tj in 1usize..512, ti in 1usize..512,
    ) {
        let layer = Layer::conv("c", 27, 27, 256, 96, 5, 5, 1);
        let acc = AcceleratorConfig::table_ii();
        let t = Tiling::new(th, tw, tj, ti).clamped(&layer);
        prop_assert!(t.th <= layer.h && t.tw <= layer.w && t.tj <= layer.j && t.ti <= layer.i);
        if t.fits(&layer, &acc) {
            for kind in DataKind::ALL {
                prop_assert!(t.tile_bytes(&layer, &acc, kind) <= acc.buffer_bytes(kind) as u64);
            }
        }
    }

    /// Traffic-model invariants: the reused data kind is fetched exactly
    /// once per distinct tile; refetch factors are at least 1; adaptive
    /// picks a scheme no worse than any concrete one.
    #[test]
    fn traffic_invariants(th in 1usize..28, tj in 1usize..128, ti in 1usize..96) {
        let layer = Layer::conv("c", 27, 27, 256, 96, 5, 5, 1);
        let acc = AcceleratorConfig::table_ii();
        let model = TrafficModel::new(acc);
        let t = Tiling::new(th, 27, tj, ti).clamped(&layer);
        for scheme in ReuseScheme::CONCRETE {
            for kind in DataKind::ALL {
                prop_assert!(model.refetch_factor(&layer, &t, scheme, kind) >= 1);
            }
        }
        prop_assert_eq!(
            model.refetch_factor(&layer, &t, ReuseScheme::IfmsReuse, DataKind::Ifms), 1
        );
        let adaptive = model.resolve_adaptive(&layer, &t, ReuseScheme::AdaptiveReuse);
        let adaptive_bytes = model.traffic_bytes(&layer, &t, adaptive);
        for scheme in ReuseScheme::CONCRETE {
            prop_assert!(adaptive_bytes <= model.traffic_bytes(&layer, &t, scheme));
        }
    }

    /// Pareto front invariants: no front point dominates another front
    /// point; every non-front point is dominated by some front point.
    #[test]
    fn pareto_invariants(points in prop::collection::vec((1.0f64..1e3, 1.0f64..1e3), 1..40)) {
        let pts: Vec<DesignPoint> = points
            .iter()
            .enumerate()
            .map(|(i, &(cycles, energy))| {
                DesignPoint::new(
                    format!("p{i}"),
                    EdpEstimate { cycles, energy, t_ck_ns: 1.25 },
                )
            })
            .collect();
        let front = pareto_front(&pts);
        prop_assert!(!front.is_empty());
        for a in &front {
            for b in &front {
                prop_assert!(!a.dominates(b), "{} dominates {} inside the front", a.label, b.label);
            }
        }
        for p in &pts {
            let on_front = front.iter().any(|f| {
                f.estimate.cycles == p.estimate.cycles && f.estimate.energy == p.estimate.energy
            });
            if !on_front {
                prop_assert!(front.iter().any(|f| f.dominates(p)));
            }
        }
    }

    /// EDP estimates are monotone in tile traffic: doubling the batch
    /// doubles activation-and-data traffic, so EDP must strictly grow.
    #[test]
    fn edp_monotone_in_batch(batch in 1usize..4) {
        let layer = Layer::conv("c", 13, 13, 384, 256, 3, 3, 1);
        let tiling = Tiling::new(13, 13, 16, 16);
        let flat = AccessCost { cycles: 4.0, energy: 1e-9 };
        let table = AccessCostTable::from_costs(DramArch::Ddr3, [flat; 4], [flat; 4], 1.25);
        let mk = |b: usize| {
            let acc = AcceleratorConfig { batch: b, ..AcceleratorConfig::table_ii() };
            EdpModel::new(Geometry::salp_2gb_x8(), table.clone(), acc)
                .layer_estimate(&layer, &tiling, ReuseScheme::OfmsReuse, &MappingPolicy::drmap())
        };
        let e1 = mk(batch);
        let e2 = mk(batch + 1);
        prop_assert!(e2.edp() > e1.edp());
    }
}
