//! End-to-end Algorithm 1 runs: full networks through profiling, model
//! building and parallel exploration.

use std::sync::OnceLock;

use drmap::prelude::*;

fn engine(arch: DramArch) -> DseEngine {
    static P: OnceLock<Profiler> = OnceLock::new();
    let profiler = P.get_or_init(|| Profiler::table_ii().expect("profiler valid"));
    let table = profiler.cost_table(arch);
    DseEngine::new(
        EdpModel::new(
            Geometry::salp_2gb_x8(),
            table,
            AcceleratorConfig::table_ii(),
        ),
        DseConfig::default(),
    )
}

#[test]
fn alexnet_full_dse_completes_and_prefers_drmap() {
    let e = engine(DramArch::Salp2);
    let result = e.explore_network(&Network::alexnet()).unwrap();
    assert_eq!(result.layers.len(), 8);
    assert!(result.total_edp() > 0.0);
    for layer in &result.layers {
        // The winner is always a column-innermost mapping, and DRMap
        // specifically ties or wins (KO-1/KO-3).
        let idx = layer.best.mapping.index();
        assert!(
            idx == 3 || idx == 1,
            "{}: winner Mapping-{idx} is not column-innermost",
            layer.layer_name
        );
        assert!(
            layer.evaluations > 100,
            "{} barely explored",
            layer.layer_name
        );
    }
    let drmap_wins = result
        .layers
        .iter()
        .filter(|l| l.best.mapping.is_drmap())
        .count();
    assert!(
        drmap_wins >= 6,
        "DRMap won only {drmap_wins}/8 AlexNet layers"
    );
}

#[test]
fn tiny_network_dse_on_all_archs() {
    let network = Network::tiny();
    let mut last_total = f64::INFINITY;
    for arch in DramArch::ALL {
        let result = engine(arch).explore_network(&network).unwrap();
        assert_eq!(result.layers.len(), 3);
        // Better architectures never increase the optimal EDP.
        assert!(
            result.total_edp() <= last_total * 1.001 || arch == DramArch::Ddr3,
            "{arch}: total EDP regressed"
        );
        last_total = result.total_edp();
    }
}

#[test]
fn adaptive_total_never_worse_than_concrete_totals() {
    let e = engine(DramArch::Ddr3);
    let network = Network::tiny();
    let totals: Vec<f64> = ReuseScheme::ALL
        .iter()
        .map(|&scheme| {
            let mut total = 0.0;
            for layer in network.layers() {
                total += e
                    .best_over_tilings(layer, scheme, &MappingPolicy::drmap())
                    .unwrap()
                    .estimate
                    .edp();
            }
            total
        })
        .collect();
    let adaptive = totals[3];
    for (i, &t) in totals[..3].iter().enumerate() {
        assert!(
            adaptive <= t * 1.0001,
            "adaptive {adaptive:.3e} worse than scheme {i} ({t:.3e})"
        );
    }
}

#[test]
fn vgg16_subset_explores_cleanly() {
    // VGG-16's extremes: the largest conv layer and the largest FC layer.
    let vgg = Network::vgg16();
    let e = engine(DramArch::SalpMasa);
    for layer in [&vgg.layers()[1], &vgg.layers()[13]] {
        let r = e.explore_layer(layer).unwrap();
        assert!(r.best.estimate.edp() > 0.0);
        assert!(r.best.tiling.fits(layer, &AcceleratorConfig::table_ii()));
    }
}

#[test]
fn best_candidate_is_reproducible() {
    let e = engine(DramArch::Ddr3);
    let network = Network::alexnet();
    let layer = &network.layers()[2];
    let a = e.explore_layer(layer).unwrap();
    let b = e.explore_layer(layer).unwrap();
    assert_eq!(a.best.mapping, b.best.mapping);
    assert_eq!(a.best.tiling, b.best.tiling);
    assert_eq!(a.best.scheme, b.best.scheme);
    assert_eq!(a.evaluations, b.evaluations);
}

#[test]
fn reported_estimate_matches_direct_evaluation() {
    let e = engine(DramArch::Salp1);
    let network = Network::alexnet();
    let layer = &network.layers()[4];
    let r = e.explore_layer(layer).unwrap();
    let direct = e.evaluate(layer, &r.best.tiling, r.best.scheme, &r.best.mapping);
    assert!((direct.edp() - r.best.estimate.edp()).abs() <= direct.edp() * 1e-12);
}
