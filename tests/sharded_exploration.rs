//! Property tests for intra-layer tiling-range sharding: splitting a
//! layer's tiling enumeration into arbitrary contiguous ranges,
//! exploring each range separately, and merging the partials must be
//! **bit-identical** to the sequential sweep — best candidate,
//! evaluation count, and Pareto front alike. This is the contract the
//! service pool's intra-layer sharding (and any future distribution of
//! the sweep) rests on.

use drmap::prelude::*;
use proptest::prelude::*;

/// A profiled-looking cost table with the qualitative ordering the
/// hardware produces (columns cheapest, rows dearest), scaled by a
/// small per-case factor so different cases exercise different fronts.
fn ordered_table(scale: f64) -> AccessCostTable {
    let mk = |cycles: f64, energy: f64| AccessCost {
        cycles: cycles * scale,
        energy: energy * 1e-9,
    };
    AccessCostTable::from_costs(
        DramArch::Ddr3,
        [mk(4.2, 1.2), mk(6.0, 2.0), mk(40.0, 5.5), mk(42.0, 5.8)],
        [mk(4.2, 1.1), mk(6.5, 2.1), mk(44.0, 5.6), mk(46.0, 5.9)],
        1.25,
    )
}

fn engine(scale: f64, objective: Objective, keep_points: bool) -> DseEngine {
    DseEngine::new(
        EdpModel::new(
            Geometry::salp_2gb_x8(),
            ordered_table(scale),
            AcceleratorConfig::table_ii(),
        ),
        DseConfig {
            objective,
            keep_points,
            ..DseConfig::default()
        },
    )
}

/// Strategy: a small but shape-diverse convolution layer.
fn layer_strategy() -> impl Strategy<Value = Layer> {
    (
        2usize..16, // h
        2usize..16, // w
        1usize..96, // j
        1usize..96, // i
        1usize..4,  // p (and q)
        1usize..3,  // stride
    )
        .prop_map(|(h, w, j, i, p, stride)| Layer::conv("prop", h, w, j, i, p, p, stride))
}

fn assert_bit_identical(a: &LayerDseResult, b: &LayerDseResult, context: &str) {
    assert_eq!(a.best.mapping, b.best.mapping, "{context}");
    assert_eq!(a.best.scheme, b.best.scheme, "{context}");
    assert_eq!(a.best.tiling, b.best.tiling, "{context}");
    assert_eq!(
        a.best.estimate.cycles.to_bits(),
        b.best.estimate.cycles.to_bits(),
        "{context}"
    );
    assert_eq!(
        a.best.estimate.energy.to_bits(),
        b.best.estimate.energy.to_bits(),
        "{context}"
    );
    assert_eq!(a.evaluations, b.evaluations, "{context}");
    assert_eq!(a.pareto.len(), b.pareto.len(), "{context}");
    for (p, q) in a.pareto.iter().zip(&b.pareto) {
        assert_eq!(p.label, q.label, "{context}");
        assert_eq!(
            p.estimate.cycles.to_bits(),
            q.estimate.cycles.to_bits(),
            "{context}"
        );
        assert_eq!(
            p.estimate.energy.to_bits(),
            q.estimate.energy.to_bits(),
            "{context}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary contiguous splits of the tiling range merge into
    /// exactly the sequential result, for every objective, with the
    /// Pareto cloud retained.
    #[test]
    fn merged_ranges_are_bit_identical_to_sequential(
        layer in layer_strategy(),
        objective_index in 0usize..4,
        scale in 0.5f64..2.0,
        cut_fracs in prop::collection::vec(0.0f64..1.0, 0..5),
    ) {
        let objective = Objective::ALL[objective_index];
        let e = engine(scale, objective, true);
        let sequential = e.explore_layer(&layer).unwrap();
        let n = e.tiling_count(&layer).unwrap();

        // Fractions -> sorted, deduplicated interior cut points.
        let mut bounds: Vec<usize> = cut_fracs
            .iter()
            .map(|f| ((n as f64) * f) as usize)
            .collect();
        bounds.push(0);
        bounds.push(n);
        bounds.sort_unstable();
        bounds.dedup();

        let mut merged: Option<LayerPartial> = None;
        for pair in bounds.windows(2) {
            let partial = e.explore_layer_range(&layer, pair[0]..pair[1]).unwrap();
            merged = Some(match merged {
                None => partial,
                Some(mut earlier) => {
                    earlier.merge(partial);
                    earlier
                }
            });
        }
        let merged = merged
            .expect("bounds always contain at least 0..n")
            .into_result(layer.name.clone());
        assert_bit_identical(&merged, &sequential, &format!("{layer:?} bounds {bounds:?}"));
    }

    /// The incremental Pareto builder retains exactly the set and order
    /// the batch extractor computes, on arbitrary point clouds with
    /// deliberate coordinate collisions.
    #[test]
    fn incremental_pareto_front_matches_batch(
        coords in prop::collection::vec((0u32..24, 0u32..24), 0..120),
    ) {
        let points: Vec<DesignPoint> = coords
            .iter()
            .enumerate()
            .map(|(i, &(c, e))| {
                DesignPoint::new(
                    format!("p{i}"),
                    EdpEstimate {
                        cycles: f64::from(c),
                        energy: f64::from(e),
                        t_ck_ns: 1.25,
                    },
                )
            })
            .collect();
        let batch = pareto_front(&points);

        let mut builder = ParetoFront::new();
        for (i, &(c, e)) in coords.iter().enumerate() {
            builder.insert(
                EdpEstimate {
                    cycles: f64::from(c),
                    energy: f64::from(e),
                    t_ck_ns: 1.25,
                },
                i,
            );
        }
        let incremental = builder.into_design_points(|&i| format!("p{i}"));
        prop_assert_eq!(incremental.len(), batch.len());
        for (a, b) in incremental.iter().zip(&batch) {
            prop_assert_eq!(&a.label, &b.label);
            prop_assert_eq!(
                a.estimate.cycles.to_bits(),
                b.estimate.cycles.to_bits()
            );
            prop_assert_eq!(
                a.estimate.energy.to_bits(),
                b.estimate.energy.to_bits()
            );
        }
    }
}
