//! Layer partitioning: tile-size selection under buffer constraints.
//!
//! A [`Tiling`] fixes the step sizes `(Th, Tw, Tj, Ti)` of Fig. 3's outer
//! loops (with `Tp = P` and `Tq = Q`, per Algorithm 1's initialization).
//! The resulting `ifms`/`wghs`/`ofms` tiles must fit the corresponding
//! on-chip buffers — the feasibility condition on line 9 of Algorithm 1.

use core::fmt;

use drmap_cnn::accelerator::AcceleratorConfig;
use drmap_cnn::layer::{DataKind, Layer};

use crate::error::DseError;

/// Tile step sizes for one layer.
///
/// # Examples
///
/// ```
/// use drmap_core::tiling::Tiling;
/// use drmap_cnn::layer::{DataKind, Layer};
///
/// let layer = Layer::conv("c", 13, 13, 384, 256, 3, 3, 1);
/// let tiling = Tiling::new(13, 13, 16, 16);
/// assert_eq!(tiling.tile_elems(&layer, DataKind::Ofms), 13 * 13 * 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Tiling {
    /// Output-row step `Th`.
    pub th: usize,
    /// Output-column step `Tw`.
    pub tw: usize,
    /// Output-channel step `Tj`.
    pub tj: usize,
    /// Input-channel step `Ti`.
    pub ti: usize,
}

impl Tiling {
    /// Create a tiling with the given steps.
    pub fn new(th: usize, tw: usize, tj: usize, ti: usize) -> Self {
        Tiling { th, tw, tj, ti }
    }

    /// The degenerate tiling that covers the whole layer in one tile.
    pub fn whole_layer(layer: &Layer) -> Self {
        Tiling::new(layer.h, layer.w, layer.j, layer.i)
    }

    /// Clamp the steps to the layer's dimensions.
    pub fn clamped(self, layer: &Layer) -> Self {
        Tiling {
            th: self.th.min(layer.h).max(1),
            tw: self.tw.min(layer.w).max(1),
            tj: self.tj.min(layer.j).max(1),
            ti: self.ti.min(layer.i).max(1),
        }
    }

    /// Number of tile steps along each loop: `(n_h, n_w, n_j, n_i)`,
    /// each `ceil(dim / step)`.
    pub fn steps(&self, layer: &Layer) -> (usize, usize, usize, usize) {
        (
            layer.h.div_ceil(self.th),
            layer.w.div_ceil(self.tw),
            layer.j.div_ceil(self.tj),
            layer.i.div_ceil(self.ti),
        )
    }

    /// Elements of one tile of the given data kind (halo-aware for ifms).
    pub fn tile_elems(&self, layer: &Layer, kind: DataKind) -> u64 {
        match kind {
            DataKind::Ifms => {
                layer.ifm_patch_h(self.th) as u64
                    * layer.ifm_patch_w(self.tw) as u64
                    * self.ti as u64
            }
            DataKind::Wghs => {
                // Grouped convolutions store 1/groups of the dense filter
                // volume (each output channel sees i/groups inputs).
                (layer.p as u64 * layer.q as u64 * self.ti as u64 * self.tj as u64)
                    .div_ceil(layer.groups as u64)
            }
            DataKind::Ofms => self.th as u64 * self.tw as u64 * self.tj as u64,
        }
    }

    /// Bytes of one tile of the given kind at the accelerator's precision.
    pub fn tile_bytes(&self, layer: &Layer, acc: &AcceleratorConfig, kind: DataKind) -> u64 {
        acc.bytes_for(self.tile_elems(layer, kind))
    }

    /// True if every tile fits its buffer (Algorithm 1, line 9).
    pub fn fits(&self, layer: &Layer, acc: &AcceleratorConfig) -> bool {
        DataKind::ALL
            .iter()
            .all(|&k| self.tile_bytes(layer, acc, k) <= acc.buffer_bytes(k) as u64)
    }
}

impl fmt::Display for Tiling {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Th={} Tw={} Tj={} Ti={}",
            self.th, self.tw, self.tj, self.ti
        )
    }
}

/// Geometric candidate steps for one dimension: the dimension itself and
/// successive halvings down to 1 (deduplicated, descending).
///
/// # Examples
///
/// ```
/// use drmap_core::tiling::candidate_steps;
///
/// assert_eq!(candidate_steps(13), vec![13, 7, 4, 2, 1]);
/// assert_eq!(candidate_steps(1), vec![1]);
/// ```
pub fn candidate_steps(dim: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut v = dim.max(1);
    loop {
        out.push(v);
        if v == 1 {
            break;
        }
        v = v.div_ceil(2);
    }
    out
}

/// Enumerate all buffer-feasible tilings of a layer from the geometric
/// candidate steps of each dimension.
///
/// # Errors
///
/// Returns [`DseError`] if no candidate fits the buffers (cannot happen
/// for realistic buffer sizes: the minimal tile is a single `P×Q` patch).
///
/// # Examples
///
/// ```
/// use drmap_core::tiling::enumerate_tilings;
/// use drmap_cnn::prelude::*;
///
/// let layer = Layer::conv("c", 13, 13, 384, 256, 3, 3, 1);
/// let acc = AcceleratorConfig::table_ii();
/// let tilings = enumerate_tilings(&layer, &acc)?;
/// assert!(!tilings.is_empty());
/// assert!(tilings.iter().all(|t| t.fits(&layer, &acc)));
/// # Ok::<(), drmap_core::error::DseError>(())
/// ```
pub fn enumerate_tilings(layer: &Layer, acc: &AcceleratorConfig) -> Result<Vec<Tiling>, DseError> {
    acc.validate()?;
    layer.validate()?;
    let mut out = Vec::new();
    for &th in &candidate_steps(layer.h) {
        for &tw in &candidate_steps(layer.w) {
            for &tj in &candidate_steps(layer.j) {
                for &ti in &candidate_steps(layer.i) {
                    let t = Tiling::new(th, tw, tj, ti);
                    if t.fits(layer, acc) {
                        out.push(t);
                    }
                }
            }
        }
    }
    if out.is_empty() {
        return Err(DseError::new(format!(
            "no tiling of layer {} fits the buffers ({})",
            layer.name, acc
        )));
    }
    Ok(out)
}

/// Count the buffer-feasible tilings of a layer — the cheap probe a
/// scheduler uses to decide whether a layer's tiling range is worth
/// sharding across workers. Delegates to [`enumerate_tilings`], so it
/// can never drift from the enumeration that range exploration sweeps
/// (a `Tiling` is four words; the transient `Vec` is a few KB even for
/// the largest layers).
///
/// # Errors
///
/// Returns [`DseError`] under exactly the conditions
/// [`enumerate_tilings`] does: invalid inputs or no feasible tiling.
pub fn count_tilings(layer: &Layer, acc: &AcceleratorConfig) -> Result<usize, DseError> {
    Ok(enumerate_tilings(layer, acc)?.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use drmap_cnn::network::Network;

    fn conv3() -> Layer {
        Layer::conv("CONV3", 13, 13, 384, 256, 3, 3, 1)
    }

    #[test]
    fn whole_layer_tiling_covers_everything() {
        let l = conv3();
        let t = Tiling::whole_layer(&l);
        assert_eq!(t.steps(&l), (1, 1, 1, 1));
        assert_eq!(t.tile_elems(&l, DataKind::Ofms), l.ofms_elems());
        assert_eq!(t.tile_elems(&l, DataKind::Wghs), l.wghs_elems());
        assert_eq!(t.tile_elems(&l, DataKind::Ifms), l.ifms_elems());
    }

    #[test]
    fn steps_use_ceiling_division() {
        let l = conv3();
        let t = Tiling::new(5, 5, 100, 100);
        assert_eq!(t.steps(&l), (3, 3, 4, 3));
    }

    #[test]
    fn ifms_tile_includes_halo() {
        let l = Layer::conv("c", 55, 55, 96, 3, 11, 11, 4);
        let t = Tiling::new(2, 2, 96, 3);
        // 2 output rows at stride 4 with an 11-row kernel need 15 rows.
        assert_eq!(t.tile_elems(&l, DataKind::Ifms), 15 * 15 * 3);
    }

    #[test]
    fn fits_checks_every_buffer() {
        let l = conv3();
        let acc = AcceleratorConfig::table_ii();
        // Whole CONV3: wghs = 884736 B >> 64 KB, must not fit.
        assert!(!Tiling::whole_layer(&l).fits(&l, &acc));
        let small = Tiling::new(13, 13, 16, 16);
        assert!(small.fits(&l, &acc));
    }

    #[test]
    fn clamped_restricts_to_layer() {
        let l = conv3();
        let t = Tiling::new(100, 100, 1000, 1000).clamped(&l);
        assert_eq!(t, Tiling::whole_layer(&l));
        let t0 = Tiling::new(0, 1, 1, 1).clamped(&l);
        assert_eq!(t0.th, 1);
    }

    #[test]
    fn candidate_steps_halve_down_to_one() {
        assert_eq!(candidate_steps(8), vec![8, 4, 2, 1]);
        assert_eq!(candidate_steps(55), vec![55, 28, 14, 7, 4, 2, 1]);
        assert_eq!(candidate_steps(0), vec![1]);
    }

    #[test]
    fn enumerate_finds_feasible_tilings_for_alexnet() {
        let acc = AcceleratorConfig::table_ii();
        for layer in Network::alexnet().layers() {
            let tilings = enumerate_tilings(layer, &acc).unwrap();
            assert!(!tilings.is_empty(), "layer {}", layer.name);
            assert!(tilings.iter().all(|t| t.fits(layer, &acc)));
        }
    }

    #[test]
    fn enumerate_excludes_oversized() {
        let l = conv3();
        let acc = AcceleratorConfig::table_ii();
        let tilings = enumerate_tilings(&l, &acc).unwrap();
        assert!(!tilings.contains(&Tiling::whole_layer(&l)));
    }

    #[test]
    fn enumeration_is_deduplicated_by_construction() {
        let l = Layer::fully_connected("fc", 4096, 1000);
        let acc = AcceleratorConfig::table_ii();
        let tilings = enumerate_tilings(&l, &acc).unwrap();
        let mut seen = std::collections::HashSet::new();
        for t in &tilings {
            assert!(seen.insert(*t), "duplicate tiling {t}");
        }
    }

    #[test]
    fn count_agrees_with_enumeration() {
        let acc = AcceleratorConfig::table_ii();
        for layer in Network::alexnet().layers() {
            assert_eq!(
                count_tilings(layer, &acc).unwrap(),
                enumerate_tilings(layer, &acc).unwrap().len(),
                "layer {}",
                layer.name
            );
        }
        let impossible = Layer::conv("HUGE", 1, 1, 1, 1, 4096, 4096, 1);
        assert!(count_tilings(&impossible, &acc).is_err());
    }

    #[test]
    fn display_shows_steps() {
        let t = Tiling::new(1, 2, 3, 4);
        assert_eq!(t.to_string(), "Th=1 Tw=2 Tj=3 Ti=4");
    }
}
