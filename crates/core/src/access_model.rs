//! The analytical access model of Eq. 2/3: classify every burst access of
//! a tile by its *transition class* and weight it with the profiled
//! per-class cost.
//!
//! For a mapping policy with innermost-to-outermost radices
//! `c₁, c₂, …` the number of consecutive-index transitions whose
//! outermost-changing digit sits at position `k` is closed-form:
//!
//! ```text
//! D_k = floor((N-1) / Π_{i<k} c_i) − floor((N-1) / Π_{i<=k} c_i)
//! ```
//!
//! so no per-burst loop is needed — one tile evaluation is O(#levels).
//! The tile's first access needs a fresh activation and is costed as a
//! `dif_rows` access (the conservative choice the paper also makes by
//! charging every tile's accesses independently).

use drmap_dram::geometry::Geometry;
use drmap_dram::profiler::{AccessCost, AccessCostTable, TransitionClass};
use drmap_dram::request::RequestKind;

use crate::mapping::MappingPolicy;

/// Number of accesses of each transition class for one tile
/// (Eq. 2/3's `Naccess_dif_x` terms).
///
/// # Examples
///
/// ```
/// use drmap_core::access_model::transition_counts;
/// use drmap_core::mapping::MappingPolicy;
/// use drmap_dram::geometry::Geometry;
/// use drmap_dram::profiler::TransitionClass;
///
/// let g = Geometry::salp_2gb_x8();
/// let counts = transition_counts(&MappingPolicy::drmap(), &g, 256);
/// // 256 bursts = 2 rows' worth: 254 column hits, 1 bank switch, 1 first access.
/// assert_eq!(counts.count(TransitionClass::DifColumn), 254);
/// assert_eq!(counts.count(TransitionClass::DifBank), 1);
/// assert_eq!(counts.count(TransitionClass::DifRow), 1);
/// assert_eq!(counts.total(), 256);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TransitionCounts {
    counts: [u64; 4],
}

impl TransitionCounts {
    /// Count for one class.
    pub fn count(&self, class: TransitionClass) -> u64 {
        self.counts[Self::idx(class)]
    }

    /// Total accesses (should equal the tile's burst count).
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Add `n` accesses of `class`.
    pub fn add(&mut self, class: TransitionClass, n: u64) {
        self.counts[Self::idx(class)] += n;
    }

    fn idx(class: TransitionClass) -> usize {
        TransitionClass::ALL
            .iter()
            .position(|&c| c == class)
            .expect("class in ALL")
    }
}

/// Closed-form transition counts for a tile of `units` bursts laid out by
/// `policy` on `geometry` (tile starts at a fresh row: the first access is
/// a `dif_rows` access).
pub fn transition_counts(
    policy: &MappingPolicy,
    geometry: &Geometry,
    units: u64,
) -> TransitionCounts {
    let mut out = TransitionCounts::default();
    if units == 0 {
        return out;
    }
    // First access of the tile: fresh activation.
    out.add(TransitionClass::DifRow, 1);
    let order = policy.full_order();
    let n = units - 1;
    let mut inner_product: u64 = 1;
    for level in order {
        let radix = geometry.level_size(level) as u64;
        let below = n / inner_product;
        inner_product = inner_product.saturating_mul(radix);
        let at_or_above = n / inner_product;
        let transitions = below - at_or_above;
        out.add(TransitionClass::from_level(level), transitions);
        if at_or_above == 0 {
            break;
        }
    }
    out
}

/// Cost of one tile fetch: Eq. 2 (cycles) and Eq. 3 (energy) evaluated
/// against a profiled [`AccessCostTable`].
///
/// # Examples
///
/// ```
/// use drmap_core::access_model::{tile_cost, transition_counts};
/// use drmap_core::mapping::MappingPolicy;
/// use drmap_dram::geometry::Geometry;
/// use drmap_dram::profiler::{AccessCost, AccessCostTable};
/// use drmap_dram::request::RequestKind;
/// use drmap_dram::timing::DramArch;
///
/// let g = Geometry::salp_2gb_x8();
/// let flat = AccessCost { cycles: 2.0, energy: 1e-9 };
/// let table = AccessCostTable::from_costs(DramArch::Ddr3, [flat; 4], [flat; 4], 1.25);
/// let cost = tile_cost(&MappingPolicy::drmap(), &g, 100, &table, RequestKind::Read);
/// assert!((cost.cycles - 200.0).abs() < 1e-9);
/// ```
pub fn tile_cost(
    policy: &MappingPolicy,
    geometry: &Geometry,
    units: u64,
    table: &AccessCostTable,
    kind: RequestKind,
) -> AccessCost {
    counts_cost(&transition_counts(policy, geometry, units), table, kind)
}

/// Weight already-computed [`TransitionCounts`] with a cost table —
/// the second half of [`tile_cost`], split out so callers that memoize
/// counts by `(mapping, burst count)` reproduce `tile_cost`'s exact
/// arithmetic (same class order, same accumulation) and therefore
/// bit-identical estimates.
pub fn counts_cost(
    counts: &TransitionCounts,
    table: &AccessCostTable,
    kind: RequestKind,
) -> AccessCost {
    let mut cycles = 0.0;
    let mut energy = 0.0;
    for class in TransitionClass::ALL {
        let n = counts.count(class) as f64;
        let c = table.cost(class, kind);
        cycles += n * c.cycles;
        energy += n * c.energy;
    }
    AccessCost { cycles, energy }
}

/// Bursts needed to move `bytes` on `geometry` (ceiling division).
pub fn bytes_to_bursts(bytes: u64, geometry: &Geometry) -> u64 {
    bytes.div_ceil(geometry.burst_bytes() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use drmap_dram::timing::DramArch;

    fn g() -> Geometry {
        Geometry::salp_2gb_x8()
    }

    #[test]
    fn zero_units_zero_counts() {
        let c = transition_counts(&MappingPolicy::drmap(), &g(), 0);
        assert_eq!(c.total(), 0);
    }

    #[test]
    fn single_unit_is_one_activation() {
        let c = transition_counts(&MappingPolicy::drmap(), &g(), 1);
        assert_eq!(c.count(TransitionClass::DifRow), 1);
        assert_eq!(c.total(), 1);
    }

    #[test]
    fn counts_sum_to_units() {
        for policy in MappingPolicy::table_i() {
            for units in [1u64, 2, 127, 128, 129, 1024, 8192, 8193, 65536] {
                let c = transition_counts(&policy, &g(), units);
                assert_eq!(c.total(), units, "{policy} at {units}");
            }
        }
    }

    #[test]
    fn drmap_counts_match_structure() {
        // 8192 bursts fill one row across all 8 banks and 8 subarrays.
        let c = transition_counts(&MappingPolicy::drmap(), &g(), 8192);
        // 127 column transitions per (bank, subarray) pass: 64 passes.
        assert_eq!(c.count(TransitionClass::DifColumn), 127 * 64);
        // 7 bank switches per subarray sweep: 8 sweeps.
        assert_eq!(c.count(TransitionClass::DifBank), 7 * 8);
        // 7 subarray switches.
        assert_eq!(c.count(TransitionClass::DifSubarray), 7);
        // 1 first access, 0 row wraps.
        assert_eq!(c.count(TransitionClass::DifRow), 1);
    }

    #[test]
    fn mapping2_pays_subarray_transitions() {
        // Mapping-2: subarray innermost — nearly every transition crosses
        // subarrays.
        let c = transition_counts(&MappingPolicy::table_i_policy(2), &g(), 64);
        assert_eq!(c.count(TransitionClass::DifSubarray), 56);
        assert_eq!(c.count(TransitionClass::DifColumn), 7);
        assert_eq!(c.count(TransitionClass::DifRow), 1);
    }

    #[test]
    fn mapping6_pays_bank_transitions() {
        // Mapping-6: bank innermost.
        let c = transition_counts(&MappingPolicy::table_i_policy(6), &g(), 64);
        assert_eq!(c.count(TransitionClass::DifBank), 56);
        assert_eq!(c.count(TransitionClass::DifSubarray), 7);
    }

    #[test]
    fn row_wraps_counted_after_chip_is_full() {
        // One subarray row across all banks/subarrays = 8192 units; the
        // 8193rd unit wraps to a new row.
        let c = transition_counts(&MappingPolicy::drmap(), &g(), 8193);
        assert_eq!(c.count(TransitionClass::DifRow), 2);
    }

    #[test]
    fn analytical_counts_match_enumerated_divergences() {
        // Cross-validate the closed form against explicit enumeration via
        // the address codec.
        let geometry = g();
        for policy in MappingPolicy::table_i() {
            let units = 2500u64;
            let codec = policy.codec(geometry).unwrap();
            let mut enumerated = TransitionCounts::default();
            enumerated.add(TransitionClass::DifRow, 1);
            for i in 0..units - 1 {
                let level = codec.divergence_level(i).unwrap();
                enumerated.add(TransitionClass::from_level(level), 1);
            }
            let analytical = transition_counts(&policy, &geometry, units);
            assert_eq!(analytical, enumerated, "{policy}");
        }
    }

    #[test]
    fn tile_cost_weights_counts() {
        let geometry = g();
        let mut read = [AccessCost::default(); 4];
        read[0] = AccessCost {
            cycles: 1.0,
            energy: 1e-9,
        }; // dif_column
        read[3] = AccessCost {
            cycles: 10.0,
            energy: 5e-9,
        }; // dif_rows
        let table =
            AccessCostTable::from_costs(DramArch::Ddr3, read, [AccessCost::default(); 4], 1.25);
        // 10 units in one row: 1 dif_row + 9 dif_column.
        let cost = tile_cost(
            &MappingPolicy::drmap(),
            &geometry,
            10,
            &table,
            RequestKind::Read,
        );
        assert!((cost.cycles - (10.0 + 9.0)).abs() < 1e-12);
        assert!((cost.energy - (5e-9 + 9e-9)).abs() < 1e-21);
    }

    #[test]
    fn counts_cost_matches_tile_cost_bit_exactly() {
        let geometry = g();
        let mut read = [AccessCost::default(); 4];
        let mut write = [AccessCost::default(); 4];
        for (i, (r, w)) in read.iter_mut().zip(write.iter_mut()).enumerate() {
            *r = AccessCost {
                cycles: 1.5 * (i + 1) as f64,
                energy: 1e-9 * (i + 1) as f64,
            };
            *w = AccessCost {
                cycles: 1.75 * (i + 1) as f64,
                energy: 1.25e-9 * (i + 1) as f64,
            };
        }
        let table = AccessCostTable::from_costs(DramArch::Ddr3, read, write, 1.25);
        for policy in MappingPolicy::table_i() {
            for units in [1u64, 7, 128, 8193] {
                let counts = transition_counts(&policy, &g(), units);
                for kind in [RequestKind::Read, RequestKind::Write] {
                    let direct = tile_cost(&policy, &geometry, units, &table, kind);
                    let split = counts_cost(&counts, &table, kind);
                    assert_eq!(direct.cycles.to_bits(), split.cycles.to_bits());
                    assert_eq!(direct.energy.to_bits(), split.energy.to_bits());
                }
            }
        }
    }

    #[test]
    fn bytes_to_bursts_ceils() {
        let geometry = g();
        assert_eq!(geometry.burst_bytes(), 8);
        assert_eq!(bytes_to_bursts(0, &geometry), 0);
        assert_eq!(bytes_to_bursts(1, &geometry), 1);
        assert_eq!(bytes_to_bursts(8, &geometry), 1);
        assert_eq!(bytes_to_bursts(9, &geometry), 2);
    }
}
