//! Pareto-front extraction over (energy, latency) design points — the
//! "pareto-optimal design choices" of the paper's abstract.

use crate::edp::EdpEstimate;

/// A design point with its (energy, latency) coordinates and an opaque
/// label describing the configuration that produced it.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DesignPoint {
    /// Human-readable configuration description.
    pub label: String,
    /// The estimate (energy, cycles) of this configuration.
    pub estimate: EdpEstimate,
}

impl DesignPoint {
    /// Create a design point.
    pub fn new(label: impl Into<String>, estimate: EdpEstimate) -> Self {
        DesignPoint {
            label: label.into(),
            estimate,
        }
    }

    /// True if `self` dominates `other`: no worse in both energy and
    /// latency, strictly better in at least one.
    pub fn dominates(&self, other: &DesignPoint) -> bool {
        let (e1, t1) = (self.estimate.energy, self.estimate.cycles);
        let (e2, t2) = (other.estimate.energy, other.estimate.cycles);
        (e1 <= e2 && t1 <= t2) && (e1 < e2 || t1 < t2)
    }
}

/// Extract the Pareto-optimal subset (minimizing energy and latency),
/// sorted by ascending latency.
///
/// # Examples
///
/// ```
/// use drmap_core::pareto::{pareto_front, DesignPoint};
/// use drmap_core::edp::EdpEstimate;
///
/// let mk = |label: &str, cycles: f64, energy: f64| {
///     DesignPoint::new(label, EdpEstimate { cycles, energy, t_ck_ns: 1.25 })
/// };
/// let points = vec![
///     mk("fast-hungry", 10.0, 9.0),
///     mk("slow-frugal", 90.0, 1.0),
///     mk("dominated", 95.0, 9.5),
/// ];
/// let front = pareto_front(&points);
/// assert_eq!(front.len(), 2);
/// assert_eq!(front[0].label, "fast-hungry");
/// ```
pub fn pareto_front(points: &[DesignPoint]) -> Vec<DesignPoint> {
    let mut sorted: Vec<&DesignPoint> = points.iter().collect();
    sorted.sort_by(|a, b| {
        a.estimate
            .cycles
            .partial_cmp(&b.estimate.cycles)
            .unwrap_or(core::cmp::Ordering::Equal)
            .then(
                a.estimate
                    .energy
                    .partial_cmp(&b.estimate.energy)
                    .unwrap_or(core::cmp::Ordering::Equal),
            )
    });
    let mut front: Vec<DesignPoint> = Vec::new();
    let mut best_energy = f64::INFINITY;
    for p in sorted {
        if p.estimate.energy < best_energy {
            best_energy = p.estimate.energy;
            front.push(p.clone());
        }
    }
    front
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(label: &str, cycles: f64, energy: f64) -> DesignPoint {
        DesignPoint::new(
            label,
            EdpEstimate {
                cycles,
                energy,
                t_ck_ns: 1.25,
            },
        )
    }

    #[test]
    fn dominance_relation() {
        let a = mk("a", 1.0, 1.0);
        let b = mk("b", 2.0, 2.0);
        let c = mk("c", 1.0, 2.0);
        assert!(a.dominates(&b));
        assert!(a.dominates(&c));
        assert!(!b.dominates(&a));
        assert!(!a.dominates(&a), "no self-domination");
    }

    #[test]
    fn front_excludes_dominated() {
        let points = vec![
            mk("p1", 10.0, 9.0),
            mk("p2", 20.0, 5.0),
            mk("p3", 30.0, 2.0),
            mk("dominated", 25.0, 6.0),
        ];
        let front = pareto_front(&points);
        let labels: Vec<&str> = front.iter().map(|p| p.label.as_str()).collect();
        assert_eq!(labels, vec!["p1", "p2", "p3"]);
    }

    #[test]
    fn front_of_empty_is_empty() {
        assert!(pareto_front(&[]).is_empty());
    }

    #[test]
    fn front_of_single_point() {
        let front = pareto_front(&[mk("only", 1.0, 1.0)]);
        assert_eq!(front.len(), 1);
    }

    #[test]
    fn equal_points_keep_one() {
        let front = pareto_front(&[mk("a", 1.0, 1.0), mk("b", 1.0, 1.0)]);
        assert_eq!(front.len(), 1);
    }

    #[test]
    fn front_sorted_by_latency() {
        let points = vec![mk("slow", 30.0, 1.0), mk("fast", 5.0, 9.0)];
        let front = pareto_front(&points);
        assert_eq!(front[0].label, "fast");
        assert_eq!(front[1].label, "slow");
    }

    #[test]
    fn every_non_front_point_is_dominated() {
        let points: Vec<DesignPoint> = (0..50)
            .map(|i| {
                let x = i as f64;
                mk(&format!("p{i}"), x, 100.0 - 2.0 * x + (x * 7.0) % 13.0)
            })
            .collect();
        let front = pareto_front(&points);
        for p in &points {
            let on_front = front.iter().any(|f| f.label == p.label);
            if !on_front {
                assert!(
                    front.iter().any(|f| f.dominates(p)),
                    "{} escaped the front undominated",
                    p.label
                );
            }
        }
    }
}
