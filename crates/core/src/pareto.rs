//! Pareto-front extraction over (energy, latency) design points — the
//! "pareto-optimal design choices" of the paper's abstract.

use crate::edp::EdpEstimate;

/// A design point with its (energy, latency) coordinates and an opaque
/// label describing the configuration that produced it.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DesignPoint {
    /// Human-readable configuration description.
    pub label: String,
    /// The estimate (energy, cycles) of this configuration.
    pub estimate: EdpEstimate,
}

impl DesignPoint {
    /// Create a design point.
    pub fn new(label: impl Into<String>, estimate: EdpEstimate) -> Self {
        DesignPoint {
            label: label.into(),
            estimate,
        }
    }

    /// True if `self` dominates `other`: no worse in both energy and
    /// latency, strictly better in at least one.
    pub fn dominates(&self, other: &DesignPoint) -> bool {
        let (e1, t1) = (self.estimate.energy, self.estimate.cycles);
        let (e2, t2) = (other.estimate.energy, other.estimate.cycles);
        (e1 <= e2 && t1 <= t2) && (e1 < e2 || t1 < t2)
    }
}

/// Extract the Pareto-optimal subset (minimizing energy and latency),
/// sorted by ascending latency.
///
/// # Examples
///
/// ```
/// use drmap_core::pareto::{pareto_front, DesignPoint};
/// use drmap_core::edp::EdpEstimate;
///
/// let mk = |label: &str, cycles: f64, energy: f64| {
///     DesignPoint::new(label, EdpEstimate { cycles, energy, t_ck_ns: 1.25 })
/// };
/// let points = vec![
///     mk("fast-hungry", 10.0, 9.0),
///     mk("slow-frugal", 90.0, 1.0),
///     mk("dominated", 95.0, 9.5),
/// ];
/// let front = pareto_front(&points);
/// assert_eq!(front.len(), 2);
/// assert_eq!(front[0].label, "fast-hungry");
/// ```
pub fn pareto_front(points: &[DesignPoint]) -> Vec<DesignPoint> {
    let mut sorted: Vec<&DesignPoint> = points.iter().collect();
    sorted.sort_by(|a, b| {
        a.estimate
            .cycles
            .partial_cmp(&b.estimate.cycles)
            .unwrap_or(core::cmp::Ordering::Equal)
            .then(
                a.estimate
                    .energy
                    .partial_cmp(&b.estimate.energy)
                    .unwrap_or(core::cmp::Ordering::Equal),
            )
    });
    let mut front: Vec<DesignPoint> = Vec::new();
    let mut best_energy = f64::INFINITY;
    for p in sorted {
        if p.estimate.energy < best_energy {
            best_energy = p.estimate.energy;
            front.push(p.clone());
        }
    }
    front
}

/// An incremental Pareto-front builder over (energy, cycles).
///
/// Where [`pareto_front`] collects every evaluated point and filters at
/// the end, `ParetoFront` discards dominated points **on insert**, so a
/// sweep of millions of evaluations only ever holds the current front.
/// Points carry a lightweight `Copy`-able tag instead of a label string;
/// labels are materialized once, for survivors only, by
/// [`ParetoFront::into_design_points`] — no per-evaluation allocation.
///
/// The builder is exact: inserting every point of a sweep in order and
/// materializing produces the same `Vec<DesignPoint>` (same set, same
/// order, same label strings) as `pareto_front` over the collected
/// cloud. Ties on both coordinates keep the earliest-inserted point,
/// matching the stable sort of the batch path. Fronts built over
/// consecutive subranges of one sweep merge exactly with
/// [`ParetoFront::merge`].
///
/// # Examples
///
/// ```
/// use drmap_core::pareto::ParetoFront;
/// use drmap_core::edp::EdpEstimate;
///
/// let mk = |cycles: f64, energy: f64| EdpEstimate { cycles, energy, t_ck_ns: 1.25 };
/// let mut front = ParetoFront::new();
/// assert!(front.insert(mk(10.0, 9.0), "fast-hungry"));
/// assert!(front.insert(mk(90.0, 1.0), "slow-frugal"));
/// assert!(!front.insert(mk(95.0, 9.5), "dominated"));
/// let points = front.into_design_points(|tag| (*tag).to_owned());
/// assert_eq!(points.len(), 2);
/// assert_eq!(points[0].label, "fast-hungry");
/// ```
#[derive(Debug, Clone)]
pub struct ParetoFront<T> {
    /// The current non-dominated set, in insertion order.
    points: Vec<(EdpEstimate, T)>,
}

impl<T> Default for ParetoFront<T> {
    fn default() -> Self {
        ParetoFront::new()
    }
}

impl<T> ParetoFront<T> {
    /// An empty front.
    pub fn new() -> Self {
        ParetoFront { points: Vec::new() }
    }

    /// Offer a point to the front. Returns `false` (discarding the
    /// point) if an existing point is no worse in both energy and
    /// cycles — including an exact tie, so the earliest-inserted of
    /// equal points survives. Otherwise the point joins the front and
    /// every existing point it weakly dominates is removed.
    pub fn insert(&mut self, estimate: EdpEstimate, tag: T) -> bool {
        if self
            .points
            .iter()
            .any(|(e, _)| e.energy <= estimate.energy && e.cycles <= estimate.cycles)
        {
            return false;
        }
        self.points
            .retain(|(e, _)| !(estimate.energy <= e.energy && estimate.cycles <= e.cycles));
        self.points.push((estimate, tag));
        true
    }

    /// Fold a front built over a *later* subrange of the same sweep
    /// into this one. Exact: provided `later`'s points were evaluated
    /// after `self`'s, the merged front equals the front of the
    /// combined point cloud, ties and all.
    pub fn merge(&mut self, later: ParetoFront<T>) {
        for (estimate, tag) in later.points {
            self.insert(estimate, tag);
        }
    }

    /// Number of points currently on the front.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no point has been retained.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Materialize the front as labelled [`DesignPoint`]s, sorted by
    /// ascending latency exactly as [`pareto_front`] sorts its output.
    /// `label` runs once per survivor.
    pub fn into_design_points(self, label: impl Fn(&T) -> String) -> Vec<DesignPoint> {
        let mut points: Vec<DesignPoint> = self
            .points
            .into_iter()
            .map(|(estimate, tag)| DesignPoint::new(label(&tag), estimate))
            .collect();
        points.sort_by(|a, b| {
            a.estimate
                .cycles
                .partial_cmp(&b.estimate.cycles)
                .unwrap_or(core::cmp::Ordering::Equal)
                .then(
                    a.estimate
                        .energy
                        .partial_cmp(&b.estimate.energy)
                        .unwrap_or(core::cmp::Ordering::Equal),
                )
        });
        points
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(label: &str, cycles: f64, energy: f64) -> DesignPoint {
        DesignPoint::new(
            label,
            EdpEstimate {
                cycles,
                energy,
                t_ck_ns: 1.25,
            },
        )
    }

    #[test]
    fn dominance_relation() {
        let a = mk("a", 1.0, 1.0);
        let b = mk("b", 2.0, 2.0);
        let c = mk("c", 1.0, 2.0);
        assert!(a.dominates(&b));
        assert!(a.dominates(&c));
        assert!(!b.dominates(&a));
        assert!(!a.dominates(&a), "no self-domination");
    }

    #[test]
    fn front_excludes_dominated() {
        let points = vec![
            mk("p1", 10.0, 9.0),
            mk("p2", 20.0, 5.0),
            mk("p3", 30.0, 2.0),
            mk("dominated", 25.0, 6.0),
        ];
        let front = pareto_front(&points);
        let labels: Vec<&str> = front.iter().map(|p| p.label.as_str()).collect();
        assert_eq!(labels, vec!["p1", "p2", "p3"]);
    }

    #[test]
    fn front_of_empty_is_empty() {
        assert!(pareto_front(&[]).is_empty());
    }

    #[test]
    fn front_of_single_point() {
        let front = pareto_front(&[mk("only", 1.0, 1.0)]);
        assert_eq!(front.len(), 1);
    }

    #[test]
    fn equal_points_keep_one() {
        let front = pareto_front(&[mk("a", 1.0, 1.0), mk("b", 1.0, 1.0)]);
        assert_eq!(front.len(), 1);
    }

    #[test]
    fn front_sorted_by_latency() {
        let points = vec![mk("slow", 30.0, 1.0), mk("fast", 5.0, 9.0)];
        let front = pareto_front(&points);
        assert_eq!(front[0].label, "fast");
        assert_eq!(front[1].label, "slow");
    }

    /// Deterministic pseudo-random point cloud with deliberate
    /// coordinate collisions, so ties exercise the stable-order rule.
    fn cloud(n: usize, seed: u64) -> Vec<(f64, f64)> {
        let mut x = seed | 1;
        let mut next = || {
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        };
        (0..n)
            .map(|_| (((next() % 32) as f64), ((next() % 32) as f64)))
            .collect()
    }

    #[test]
    fn incremental_front_matches_batch_exactly() {
        for seed in [3u64, 17, 2026, 0xdead_beef] {
            for n in [0usize, 1, 2, 7, 60, 400] {
                let coords = cloud(n, seed);
                let points: Vec<DesignPoint> = coords
                    .iter()
                    .enumerate()
                    .map(|(i, &(c, e))| mk(&format!("p{i}"), c, e))
                    .collect();
                let batch = pareto_front(&points);

                let mut builder = ParetoFront::new();
                for (i, &(c, e)) in coords.iter().enumerate() {
                    builder.insert(
                        EdpEstimate {
                            cycles: c,
                            energy: e,
                            t_ck_ns: 1.25,
                        },
                        i,
                    );
                }
                let incremental = builder.into_design_points(|&i| format!("p{i}"));
                assert_eq!(incremental.len(), batch.len(), "seed {seed} n {n}");
                for (a, b) in incremental.iter().zip(&batch) {
                    assert_eq!(a.label, b.label, "seed {seed} n {n}");
                    assert_eq!(a.estimate.cycles.to_bits(), b.estimate.cycles.to_bits());
                    assert_eq!(a.estimate.energy.to_bits(), b.estimate.energy.to_bits());
                }
            }
        }
    }

    #[test]
    fn split_fronts_merge_exactly() {
        let coords = cloud(300, 99);
        let mut whole = ParetoFront::new();
        for (i, &(c, e)) in coords.iter().enumerate() {
            whole.insert(
                EdpEstimate {
                    cycles: c,
                    energy: e,
                    t_ck_ns: 1.25,
                },
                i,
            );
        }
        for split in [0usize, 1, 150, 299, 300] {
            let mut merged = ParetoFront::new();
            let mut later = ParetoFront::new();
            for (i, &(c, e)) in coords.iter().enumerate() {
                let est = EdpEstimate {
                    cycles: c,
                    energy: e,
                    t_ck_ns: 1.25,
                };
                if i < split {
                    merged.insert(est, i);
                } else {
                    later.insert(est, i);
                }
            }
            merged.merge(later);
            let a = merged.clone().into_design_points(|&i| format!("p{i}"));
            let b = whole.clone().into_design_points(|&i| format!("p{i}"));
            assert_eq!(
                a.iter().map(|p| p.label.clone()).collect::<Vec<_>>(),
                b.iter().map(|p| p.label.clone()).collect::<Vec<_>>(),
                "split {split}"
            );
        }
    }

    #[test]
    fn empty_builder_reports_empty() {
        let front: ParetoFront<u32> = ParetoFront::default();
        assert!(front.is_empty());
        assert_eq!(front.len(), 0);
        assert!(front.into_design_points(|_| unreachable!()).is_empty());
    }

    #[test]
    fn every_non_front_point_is_dominated() {
        let points: Vec<DesignPoint> = (0..50)
            .map(|i| {
                let x = i as f64;
                mk(&format!("p{i}"), x, 100.0 - 2.0 * x + (x * 7.0) % 13.0)
            })
            .collect();
        let front = pareto_front(&points);
        for p in &points {
            let on_front = front.iter().any(|f| f.label == p.label);
            if !on_front {
                assert!(
                    front.iter().any(|f| f.dominates(p)),
                    "{} escaped the front undominated",
                    p.label
                );
            }
        }
    }
}
