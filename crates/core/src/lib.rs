//! # drmap-core
//!
//! The DRMap (DAC 2020) core: DRAM data-mapping policies, layer
//! partitioning and scheduling, the analytical EDP model (Eq. 1–3), and
//! the design-space exploration engine (Algorithm 1).
//!
//! The crate consumes two substrates:
//!
//! * [`drmap_dram`] — the DRAM timing/energy simulator whose
//!   [`drmap_dram::profiler::AccessCostTable`] feeds the analytical model,
//! * [`drmap_cnn`] — CNN layer shapes and the accelerator configuration.
//!
//! ## The pipeline
//!
//! 1. [`tiling`] enumerates feasible layer partitionings under the buffer
//!    constraints (Algorithm 1, line 9).
//! 2. [`schedule`] turns a partitioning plus reuse scheme into tile-fetch
//!    counts (how often each tile crosses the DRAM bus).
//! 3. [`mapping`] lays a tile's bursts out across DRAM
//!    columns/banks/subarrays/rows (Table I's six policies; Mapping-3 is
//!    DRMap).
//! 4. [`access_model`] classifies every access (Eq. 2/3) and weights it
//!    with profiled per-class costs.
//! 5. [`edp`] assembles per-layer energy, latency and EDP (Eq. 1).
//! 6. [`dse`] sweeps everything and returns the minimum-EDP configuration;
//!    [`pareto`] extracts the (energy, latency) Pareto front.
//!
//! ## Example
//!
//! ```
//! use drmap_core::prelude::*;
//! use drmap_cnn::prelude::*;
//! use drmap_dram::prelude::*;
//!
//! // A cost table would normally come from Profiler::cost_table(arch).
//! let flat = AccessCost { cycles: 4.0, energy: 1e-9 };
//! let table = AccessCostTable::from_costs(DramArch::Ddr3, [flat; 4], [flat; 4], 1.25);
//! let model = EdpModel::new(Geometry::salp_2gb_x8(), table, AcceleratorConfig::table_ii());
//! let engine = DseEngine::new(model, DseConfig::default());
//! let layer = Layer::conv("CONV3", 13, 13, 384, 256, 3, 3, 1);
//! let result = engine.explore_layer(&layer)?;
//! println!("best: {}", result.best);
//! # Ok::<(), drmap_core::error::DseError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod access_model;
pub mod bytes;
pub mod dse;
pub mod edp;
pub mod error;
pub mod mapping;
pub mod pareto;
pub mod report;
pub mod schedule;
pub mod tiling;
pub mod validate;

/// Convenient re-exports of the most commonly used types.
pub mod prelude {
    pub use crate::access_model::{
        bytes_to_bursts, counts_cost, tile_cost, transition_counts, TransitionCounts,
    };
    pub use crate::dse::{
        layer_cache_key, DseCandidate, DseConfig, DseEngine, LayerDseResult, LayerPartial,
        NetworkDseResult, Objective, SharedEngine,
    };
    pub use crate::edp::{CostComponent, EdpEstimate, EdpModel, LayerBreakdown};
    pub use crate::error::DseError;
    pub use crate::mapping::MappingPolicy;
    pub use crate::pareto::{pareto_front, DesignPoint, ParetoFront};
    pub use crate::report::{LayerReport, NetworkReport};
    pub use crate::schedule::{OuterLoop, ReuseScheme, TileTraffic, TrafficModel};
    pub use crate::tiling::{candidate_steps, count_tilings, enumerate_tilings, Tiling};
    pub use crate::validate::{ValidationReport, Validator};
}
