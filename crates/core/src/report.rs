//! Human-readable exploration reports.
//!
//! Examples and the benchmark harness all need the same "layer → winner"
//! tables; this module renders them once, consistently, from
//! [`NetworkDseResult`]s.

use core::fmt;

use crate::dse::{LayerDseResult, NetworkDseResult};

/// One row of a network report.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LayerReport {
    /// Layer name.
    pub layer: String,
    /// Winning mapping name.
    pub mapping: String,
    /// Winning scheme label.
    pub scheme: String,
    /// Winning tiling, rendered.
    pub tiling: String,
    /// Energy in joules.
    pub energy: f64,
    /// Latency in seconds.
    pub seconds: f64,
    /// EDP in J·s.
    pub edp: f64,
    /// Configurations evaluated.
    pub evaluations: usize,
}

impl LayerReport {
    /// Build a row from one layer result.
    pub fn from_result(r: &LayerDseResult) -> Self {
        LayerReport {
            layer: r.layer_name.clone(),
            mapping: r.best.mapping.name(),
            scheme: r.best.scheme.label().to_owned(),
            tiling: r.best.tiling.to_string(),
            energy: r.best.estimate.energy,
            seconds: r.best.estimate.seconds(),
            edp: r.best.estimate.edp(),
            evaluations: r.evaluations,
        }
    }
}

/// A rendered whole-network report.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NetworkReport {
    /// Per-layer rows.
    pub layers: Vec<LayerReport>,
    /// Total energy in joules.
    pub total_energy: f64,
    /// Total latency in seconds.
    pub total_seconds: f64,
    /// Total EDP in J·s.
    pub total_edp: f64,
}

impl NetworkReport {
    /// Build a report from a network DSE result.
    pub fn from_result(r: &NetworkDseResult) -> Self {
        NetworkReport {
            layers: r.layers.iter().map(LayerReport::from_result).collect(),
            total_energy: r.total.energy,
            total_seconds: r.total.seconds(),
            total_edp: r.total_edp(),
        }
    }

    /// Number of layers whose winner is DRMap (by mapping name).
    pub fn drmap_wins(&self) -> usize {
        self.layers
            .iter()
            .filter(|l| l.mapping.contains("DRMap"))
            .count()
    }

    /// Render as a TSV table (header + rows + total).
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        out.push_str("layer\tmapping\tscheme\ttiling\tenergy_J\tlatency_s\tEDP_Js\tevals\n");
        for l in &self.layers {
            out.push_str(&format!(
                "{}\t{}\t{}\t{}\t{:.4e}\t{:.4e}\t{:.4e}\t{}\n",
                l.layer, l.mapping, l.scheme, l.tiling, l.energy, l.seconds, l.edp, l.evaluations
            ));
        }
        out.push_str(&format!(
            "Total\t\t\t\t{:.4e}\t{:.4e}\t{:.4e}\t\n",
            self.total_energy, self.total_seconds, self.total_edp
        ));
        out
    }
}

impl fmt::Display for NetworkReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for l in &self.layers {
            writeln!(
                f,
                "{:<8} {:<28} {:<14} {:<30} EDP={:.4e} J*s",
                l.layer, l.mapping, l.scheme, l.tiling, l.edp
            )?;
        }
        write!(
            f,
            "{:<8} energy={:.4e} J latency={:.4e} s EDP={:.4e} J*s",
            "Total", self.total_energy, self.total_seconds, self.total_edp
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dse::{DseConfig, DseEngine};
    use crate::edp::EdpModel;
    use drmap_cnn::accelerator::AcceleratorConfig;
    use drmap_cnn::network::Network;
    use drmap_dram::geometry::Geometry;
    use drmap_dram::profiler::{AccessCost, AccessCostTable};
    use drmap_dram::timing::DramArch;

    fn result() -> crate::dse::NetworkDseResult {
        let mk = |cycles: f64, energy: f64| AccessCost {
            cycles,
            energy: energy * 1e-9,
        };
        let table = AccessCostTable::from_costs(
            DramArch::Ddr3,
            [mk(4.0, 1.2), mk(6.0, 2.0), mk(40.0, 5.5), mk(42.0, 5.8)],
            [mk(4.0, 1.1), mk(6.5, 2.1), mk(44.0, 5.6), mk(46.0, 5.9)],
            1.25,
        );
        let engine = DseEngine::new(
            EdpModel::new(
                Geometry::salp_2gb_x8(),
                table,
                AcceleratorConfig::table_ii(),
            ),
            DseConfig::default(),
        );
        engine.explore_network(&Network::tiny()).unwrap()
    }

    #[test]
    fn report_has_row_per_layer_plus_totals() {
        let report = NetworkReport::from_result(&result());
        assert_eq!(report.layers.len(), 3);
        let layer_edp_sum: f64 = report.layers.iter().map(|l| l.edp).sum();
        // Total EDP is (sum E)(sum t), not the sum of per-layer EDPs —
        // it must be at least as large.
        assert!(report.total_edp >= layer_edp_sum);
        assert!(report.total_energy > 0.0);
    }

    #[test]
    fn tsv_rendering_has_header_rows_total() {
        let report = NetworkReport::from_result(&result());
        let tsv = report.to_tsv();
        let lines: Vec<&str> = tsv.lines().collect();
        assert_eq!(lines.len(), 1 + 3 + 1);
        assert!(lines[0].starts_with("layer\t"));
        assert!(lines[4].starts_with("Total\t"));
    }

    #[test]
    fn display_contains_every_layer() {
        let report = NetworkReport::from_result(&result());
        let text = report.to_string();
        for l in &report.layers {
            assert!(text.contains(&l.layer));
        }
        assert!(text.contains("Total"));
    }

    #[test]
    fn drmap_wins_counts_mapping3() {
        let report = NetworkReport::from_result(&result());
        assert!(report.drmap_wins() >= 1);
        assert!(report.drmap_wins() <= report.layers.len());
    }
}
