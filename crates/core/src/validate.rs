//! Simulator-backed validation of DSE results.
//!
//! The DSE ranks configurations with the *analytical* model (Eq. 2/3).
//! This module replays a configuration's actual tile address streams
//! through the cycle-level DRAM simulator and reports how far the
//! analytical estimate is from the simulated ground truth — the check a
//! user should run before trusting an exploration result.

use core::fmt;

use drmap_cnn::layer::{DataKind, Layer};
use drmap_dram::controller::ControllerConfig;
use drmap_dram::energy::EnergyParams;
use drmap_dram::geometry::Geometry;
use drmap_dram::request::{DriveMode, RequestKind};
use drmap_dram::sim::DramSimulator;
use drmap_dram::timing::{DramArch, TimingParams};

use crate::access_model::bytes_to_bursts;
use crate::dse::DseCandidate;
use crate::edp::{EdpEstimate, EdpModel};
use crate::error::DseError;

/// Outcome of validating one configuration against the simulator.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ValidationReport {
    /// The analytical estimate under validation.
    pub analytical: EdpEstimate,
    /// The simulated estimate (same units).
    pub simulated: EdpEstimate,
    /// Simulated row-buffer hit rate of the combined tile streams.
    pub hit_rate: f64,
    /// Tiles replayed per data kind (ifms, wghs, ofms loads, ofms stores).
    pub tiles_replayed: [u64; 4],
}

impl ValidationReport {
    /// Ratio analytical/simulated for cycles (1.0 = perfect).
    pub fn cycle_ratio(&self) -> f64 {
        if self.simulated.cycles == 0.0 {
            f64::NAN
        } else {
            self.analytical.cycles / self.simulated.cycles
        }
    }

    /// Ratio analytical/simulated for energy (1.0 = perfect).
    pub fn energy_ratio(&self) -> f64 {
        if self.simulated.energy == 0.0 {
            f64::NAN
        } else {
            self.analytical.energy / self.simulated.energy
        }
    }

    /// True if both ratios lie within `[1/tolerance, tolerance]`.
    pub fn agrees_within(&self, tolerance: f64) -> bool {
        let inv = 1.0 / tolerance;
        let c = self.cycle_ratio();
        let e = self.energy_ratio();
        (inv..=tolerance).contains(&c) && (inv..=tolerance).contains(&e)
    }
}

impl fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "analytical {:.3e} J*s vs simulated {:.3e} J*s (cycles x{:.2}, energy x{:.2}, hit rate {:.2})",
            self.analytical.edp(),
            self.simulated.edp(),
            self.cycle_ratio(),
            self.energy_ratio(),
            self.hit_rate
        )
    }
}

/// Replays DSE candidates through the cycle-level simulator.
#[derive(Debug, Clone)]
pub struct Validator {
    geometry: Geometry,
    timing: TimingParams,
    energy: EnergyParams,
    arch: DramArch,
    /// Cap on tile replays per traffic class so validation of huge layers
    /// stays fast; the analytical estimate is scaled to the same count.
    max_tiles_per_kind: u64,
}

impl Validator {
    /// Create a validator for `arch` on the Table II device.
    ///
    /// # Errors
    ///
    /// Returns [`DseError`] on invalid configuration.
    pub fn table_ii(arch: DramArch) -> Result<Self, DseError> {
        Self::new(
            Geometry::salp_2gb_x8(),
            TimingParams::ddr3_1600k(),
            EnergyParams::micron_2gb_x8(),
            arch,
        )
    }

    /// Create a validator for a custom device.
    ///
    /// # Errors
    ///
    /// Returns [`DseError`] on invalid configuration.
    pub fn new(
        geometry: Geometry,
        timing: TimingParams,
        energy: EnergyParams,
        arch: DramArch,
    ) -> Result<Self, DseError> {
        geometry.validate()?;
        timing.validate()?;
        energy.validate()?;
        Ok(Validator {
            geometry,
            timing,
            energy,
            arch,
            max_tiles_per_kind: 8,
        })
    }

    /// Override the tile-replay cap (default 8 per traffic class).
    pub fn set_max_tiles_per_kind(&mut self, n: u64) {
        self.max_tiles_per_kind = n.max(1);
    }

    /// Replay `candidate`'s tile streams for `layer` and compare against
    /// the analytical model that produced it.
    ///
    /// # Errors
    ///
    /// Returns [`DseError`] if a tile exceeds the device capacity.
    pub fn validate(
        &self,
        model: &EdpModel,
        layer: &Layer,
        candidate: &DseCandidate,
    ) -> Result<ValidationReport, DseError> {
        let acc = model.traffic_model().accelerator();
        let concrete =
            model
                .traffic_model()
                .resolve_adaptive(layer, &candidate.tiling, candidate.scheme);
        let traffic = model
            .traffic_model()
            .traffic(layer, &candidate.tiling, concrete);

        let units = |kind: DataKind| {
            bytes_to_bursts(
                candidate.tiling.tile_bytes(layer, acc, kind),
                &self.geometry,
            )
        };

        // (units per tile, request kind, total tiles) per traffic class.
        let classes: [(u64, RequestKind, u64); 4] = [
            (units(DataKind::Ifms), RequestKind::Read, traffic.ifms_loads),
            (units(DataKind::Wghs), RequestKind::Read, traffic.wghs_loads),
            (units(DataKind::Ofms), RequestKind::Read, traffic.ofms_loads),
            (
                units(DataKind::Ofms),
                RequestKind::Write,
                traffic.ofms_stores,
            ),
        ];

        let mut sim = DramSimulator::new(
            self.geometry,
            self.timing,
            ControllerConfig::new(self.arch),
            self.energy,
        )
        .map_err(DseError::from)?;

        let mut sim_cycles = 0.0;
        let mut sim_energy = 0.0;
        let mut hits = 0.0;
        let mut requests = 0.0;
        let mut replayed = [0u64; 4];
        let mut region = 0u64;
        for (ci, &(tile_units, kind, tiles)) in classes.iter().enumerate() {
            let replay = tiles.min(self.max_tiles_per_kind);
            replayed[ci] = replay;
            if replay == 0 || tile_units == 0 {
                continue;
            }
            let mut measured_cycles = 0.0;
            let mut measured_energy = 0.0;
            for t in 0..replay {
                // Place consecutive tiles in distinct regions, as the
                // analytical model assumes fresh rows per tile.
                let start = (region + t) * tile_units;
                let stream =
                    candidate
                        .mapping
                        .request_stream(self.geometry, start, tile_units, kind)?;
                let stats = sim.run(&stream, DriveMode::Streamed);
                measured_cycles += stats.makespan_cycles as f64;
                measured_energy += stats.energy.total();
                hits += stats.hit_rate() * stats.requests as f64;
                requests += stats.requests as f64;
            }
            region += replay;
            // Scale the replayed sample up to the full tile count.
            let scale = tiles as f64 / replay as f64;
            sim_cycles += measured_cycles * scale;
            sim_energy += measured_energy * scale;
        }

        Ok(ValidationReport {
            analytical: candidate.estimate,
            simulated: EdpEstimate {
                cycles: sim_cycles,
                energy: sim_energy,
                t_ck_ns: self.timing.t_ck_ns,
            },
            hit_rate: if requests == 0.0 {
                0.0
            } else {
                hits / requests
            },
            tiles_replayed: replayed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dse::{DseConfig, DseEngine};
    use crate::mapping::MappingPolicy;
    use crate::schedule::ReuseScheme;
    use crate::tiling::Tiling;
    use drmap_cnn::accelerator::AcceleratorConfig;
    use drmap_dram::profiler::Profiler;

    fn setup(arch: DramArch) -> (EdpModel, Validator) {
        let geometry = Geometry::salp_2gb_x8();
        let profiler = Profiler::table_ii().unwrap();
        let model = EdpModel::new(
            geometry,
            profiler.cost_table(arch),
            AcceleratorConfig::table_ii(),
        );
        (model, Validator::table_ii(arch).unwrap())
    }

    fn candidate(model: &EdpModel, layer: &Layer, mapping: MappingPolicy) -> DseCandidate {
        let tiling = Tiling::new(13, 13, 16, 16);
        let scheme = ReuseScheme::OfmsReuse;
        DseCandidate {
            mapping,
            tiling,
            scheme,
            estimate: model.layer_estimate(layer, &tiling, scheme, &mapping),
        }
    }

    #[test]
    fn validation_report_math() {
        let r = ValidationReport {
            analytical: EdpEstimate {
                cycles: 200.0,
                energy: 2e-9,
                t_ck_ns: 1.25,
            },
            simulated: EdpEstimate {
                cycles: 100.0,
                energy: 1e-9,
                t_ck_ns: 1.25,
            },
            hit_rate: 0.9,
            tiles_replayed: [1, 1, 0, 1],
        };
        assert_eq!(r.cycle_ratio(), 2.0);
        assert_eq!(r.energy_ratio(), 2.0);
        assert!(r.agrees_within(2.0));
        assert!(!r.agrees_within(1.5));
        assert!(r.to_string().contains("hit rate"));
    }

    #[test]
    fn drmap_candidate_validates_within_2x_on_ddr3() {
        let (model, validator) = setup(DramArch::Ddr3);
        let layer = Layer::conv("CONV3", 13, 13, 384, 256, 3, 3, 1);
        let cand = candidate(&model, &layer, MappingPolicy::drmap());
        let report = validator.validate(&model, &layer, &cand).unwrap();
        assert!(
            report.agrees_within(2.0),
            "analytical and simulated disagree: {report}"
        );
        assert!(report.hit_rate > 0.8, "DRMap stream should be hit-heavy");
    }

    #[test]
    fn simulator_confirms_mapping2_worse_than_drmap_on_ddr3() {
        let (model, validator) = setup(DramArch::Ddr3);
        let layer = Layer::conv("CONV3", 13, 13, 384, 256, 3, 3, 1);
        let good = candidate(&model, &layer, MappingPolicy::drmap());
        let bad = candidate(&model, &layer, MappingPolicy::table_i_policy(2));
        let good_r = validator.validate(&model, &layer, &good).unwrap();
        let bad_r = validator.validate(&model, &layer, &bad).unwrap();
        assert!(bad_r.simulated.edp() > 2.0 * good_r.simulated.edp());
    }

    #[test]
    fn validates_dse_winner_end_to_end() {
        let (model, validator) = setup(DramArch::Salp2);
        let engine = DseEngine::new(model.clone(), DseConfig::default());
        let layer = Layer::conv("CONV5", 13, 13, 256, 384, 3, 3, 1);
        let result = engine.explore_layer(&layer).unwrap();
        let report = validator.validate(&model, &layer, &result.best).unwrap();
        assert!(
            report.agrees_within(2.5),
            "winner failed validation: {report}"
        );
    }

    #[test]
    fn replay_cap_is_respected() {
        let (model, mut validator) = setup(DramArch::Ddr3);
        validator.set_max_tiles_per_kind(2);
        let layer = Layer::conv("CONV3", 13, 13, 384, 256, 3, 3, 1);
        let cand = candidate(&model, &layer, MappingPolicy::drmap());
        let report = validator.validate(&model, &layer, &cand).unwrap();
        assert!(report.tiles_replayed.iter().all(|&t| t <= 2));
    }
}
