//! Stable byte serialization of DSE results for durable storage.
//!
//! The persistent result store (`drmap-store`) writes
//! [`LayerDseResult`]s to disk and must read them back **bit-identical**
//! across process restarts — the property every cache tier of the
//! service guarantees. JSON cannot promise that cheaply (float
//! round-tripping, field ordering), so this module defines a small,
//! versioned, little-endian binary codec:
//!
//! * floats travel as their IEEE-754 bit patterns ([`f64::to_bits`]),
//!   so decoding reproduces the exact value that was encoded;
//! * strings are UTF-8 with a `u32` length prefix;
//! * enums travel as one-byte tags with explicit, frozen values —
//!   reordering a Rust enum cannot silently change the format;
//! * every encoded result starts with a format version byte, so a
//!   future layout change can coexist with old files.
//!
//! The codec is self-contained (no serde) and deliberately minimal: it
//! covers exactly the types a stored DSE result transitively contains.

use drmap_dram::geometry::Level;

use crate::dse::{DseCandidate, LayerDseResult};
use crate::edp::EdpEstimate;
use crate::mapping::MappingPolicy;
use crate::pareto::DesignPoint;
use crate::schedule::ReuseScheme;
use crate::tiling::Tiling;

/// Version byte leading every encoded [`LayerDseResult`].
pub const RESULT_FORMAT_VERSION: u8 = 1;

/// A malformed or truncated byte payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    message: String,
}

impl CodecError {
    /// Create an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        CodecError {
            message: message.into(),
        }
    }
}

impl core::fmt::Display for CodecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "byte codec error: {}", self.message)
    }
}

impl std::error::Error for CodecError {}

/// Append-only builder for an encoded payload.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` as its IEEE-754 bit pattern (exact round trip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a UTF-8 string with a `u32` length prefix.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Cursor over an encoded payload.
#[derive(Debug)]
pub struct ByteReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `data`, positioned at the start.
    pub fn new(data: &'a [u8]) -> Self {
        ByteReader { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::new(format!(
                "truncated payload: wanted {n} bytes, {} left",
                self.remaining()
            )));
        }
        let slice = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Read one byte.
    ///
    /// # Errors
    ///
    /// Fails on a truncated payload.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Fails on a truncated payload.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Fails on a truncated payload.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read an `f64` from its bit pattern.
    ///
    /// # Errors
    ///
    /// Fails on a truncated payload.
    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// Fails on truncation or invalid UTF-8.
    pub fn get_str(&mut self) -> Result<String, CodecError> {
        let len = self.get_u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| CodecError::new("string payload is not UTF-8"))
    }
}

// Frozen one-byte tags. These values are part of the on-disk format:
// never renumber, only append.

fn level_tag(level: Level) -> Result<u8, CodecError> {
    match level {
        Level::Column => Ok(0),
        Level::Bank => Ok(1),
        Level::Subarray => Ok(2),
        Level::Row => Ok(3),
        other => Err(CodecError::new(format!(
            "mapping orders contain only in-chip levels, got {other:?}"
        ))),
    }
}

fn level_from_tag(tag: u8) -> Result<Level, CodecError> {
    match tag {
        0 => Ok(Level::Column),
        1 => Ok(Level::Bank),
        2 => Ok(Level::Subarray),
        3 => Ok(Level::Row),
        other => Err(CodecError::new(format!("unknown level tag {other}"))),
    }
}

fn scheme_tag(scheme: ReuseScheme) -> u8 {
    match scheme {
        ReuseScheme::IfmsReuse => 0,
        ReuseScheme::WghsReuse => 1,
        ReuseScheme::OfmsReuse => 2,
        ReuseScheme::AdaptiveReuse => 3,
    }
}

fn scheme_from_tag(tag: u8) -> Result<ReuseScheme, CodecError> {
    match tag {
        0 => Ok(ReuseScheme::IfmsReuse),
        1 => Ok(ReuseScheme::WghsReuse),
        2 => Ok(ReuseScheme::OfmsReuse),
        3 => Ok(ReuseScheme::AdaptiveReuse),
        other => Err(CodecError::new(format!("unknown scheme tag {other}"))),
    }
}

fn put_estimate(w: &mut ByteWriter, e: &EdpEstimate) {
    w.put_f64(e.cycles);
    w.put_f64(e.energy);
    w.put_f64(e.t_ck_ns);
}

fn get_estimate(r: &mut ByteReader<'_>) -> Result<EdpEstimate, CodecError> {
    Ok(EdpEstimate {
        cycles: r.get_f64()?,
        energy: r.get_f64()?,
        t_ck_ns: r.get_f64()?,
    })
}

fn put_mapping(w: &mut ByteWriter, m: &MappingPolicy) -> Result<(), CodecError> {
    w.put_u8(m.index() as u8);
    for &level in m.order() {
        w.put_u8(level_tag(level)?);
    }
    Ok(())
}

fn get_mapping(r: &mut ByteReader<'_>) -> Result<MappingPolicy, CodecError> {
    let index = r.get_u8()? as usize;
    let mut order = [Level::Column; 4];
    for slot in &mut order {
        *slot = level_from_tag(r.get_u8()?)?;
    }
    match index {
        0 => MappingPolicy::custom(order).map_err(|e| CodecError::new(e.to_string())),
        1..=6 => {
            let policy = MappingPolicy::table_i_policy(index);
            if policy.order() != &order {
                return Err(CodecError::new(format!(
                    "mapping index {index} does not match its stored level order"
                )));
            }
            Ok(policy)
        }
        other => Err(CodecError::new(format!("unknown mapping index {other}"))),
    }
}

fn put_candidate(w: &mut ByteWriter, c: &DseCandidate) -> Result<(), CodecError> {
    put_mapping(w, &c.mapping)?;
    w.put_u64(c.tiling.th as u64);
    w.put_u64(c.tiling.tw as u64);
    w.put_u64(c.tiling.tj as u64);
    w.put_u64(c.tiling.ti as u64);
    w.put_u8(scheme_tag(c.scheme));
    put_estimate(w, &c.estimate);
    Ok(())
}

fn get_candidate(r: &mut ByteReader<'_>) -> Result<DseCandidate, CodecError> {
    let mapping = get_mapping(r)?;
    let tiling = Tiling::new(
        r.get_u64()? as usize,
        r.get_u64()? as usize,
        r.get_u64()? as usize,
        r.get_u64()? as usize,
    );
    let scheme = scheme_from_tag(r.get_u8()?)?;
    let estimate = get_estimate(r)?;
    Ok(DseCandidate {
        mapping,
        tiling,
        scheme,
        estimate,
    })
}

/// Encode a [`LayerDseResult`] into the versioned binary format.
///
/// # Errors
///
/// Fails only for results holding a mapping with non-in-chip levels,
/// which no engine produces.
pub fn encode_layer_result(result: &LayerDseResult) -> Result<Vec<u8>, CodecError> {
    let mut w = ByteWriter::new();
    w.put_u8(RESULT_FORMAT_VERSION);
    w.put_str(&result.layer_name);
    put_candidate(&mut w, &result.best)?;
    w.put_u64(result.evaluations as u64);
    w.put_u32(result.pareto.len() as u32);
    for point in &result.pareto {
        w.put_str(&point.label);
        put_estimate(&mut w, &point.estimate);
    }
    Ok(w.into_bytes())
}

/// Decode a [`LayerDseResult`] from the versioned binary format,
/// reproducing the encoded value bit-identically.
///
/// # Errors
///
/// Fails on truncated payloads, unknown versions/tags, or trailing
/// garbage.
pub fn decode_layer_result(bytes: &[u8]) -> Result<LayerDseResult, CodecError> {
    let mut r = ByteReader::new(bytes);
    let version = r.get_u8()?;
    if version != RESULT_FORMAT_VERSION {
        return Err(CodecError::new(format!(
            "unsupported result format version {version} (this build reads {RESULT_FORMAT_VERSION})"
        )));
    }
    let layer_name = r.get_str()?;
    let best = get_candidate(&mut r)?;
    let evaluations = r.get_u64()? as usize;
    let pareto_len = r.get_u32()? as usize;
    // Guard the pre-allocation: a corrupt count must not OOM.
    let mut pareto = Vec::with_capacity(pareto_len.min(4096));
    for _ in 0..pareto_len {
        let label = r.get_str()?;
        let estimate = get_estimate(&mut r)?;
        pareto.push(DesignPoint::new(label, estimate));
    }
    if r.remaining() != 0 {
        return Err(CodecError::new(format!(
            "{} trailing bytes after a complete result",
            r.remaining()
        )));
    }
    Ok(LayerDseResult {
        layer_name,
        best,
        evaluations,
        pareto,
    })
}

/// Encode a stored result record: the compute duration (nanoseconds the
/// original exploration took — the currency of cost-aware eviction)
/// followed by the versioned result payload. This is the value format
/// the persistent store and the service's cache tier exchange.
///
/// # Errors
///
/// Propagates [`encode_layer_result`] failures.
pub fn encode_stored_result(
    result: &LayerDseResult,
    compute_ns: u64,
) -> Result<Vec<u8>, CodecError> {
    let mut w = ByteWriter::new();
    w.put_u64(compute_ns);
    let mut bytes = w.into_bytes();
    bytes.extend_from_slice(&encode_layer_result(result)?);
    Ok(bytes)
}

/// Decode a stored result record back into the result and its original
/// compute duration in nanoseconds.
///
/// # Errors
///
/// Propagates [`decode_layer_result`] failures.
pub fn decode_stored_result(bytes: &[u8]) -> Result<(LayerDseResult, u64), CodecError> {
    let mut r = ByteReader::new(bytes);
    let compute_ns = r.get_u64()?;
    let result = decode_layer_result(&bytes[8..])?;
    Ok((result, compute_ns))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(pareto: usize) -> LayerDseResult {
        LayerDseResult {
            layer_name: "CONV3".to_owned(),
            best: DseCandidate {
                mapping: MappingPolicy::drmap(),
                tiling: Tiling::new(13, 13, 16, 16),
                scheme: ReuseScheme::AdaptiveReuse,
                estimate: EdpEstimate {
                    cycles: 0.1 + 0.2, // deliberately non-representable
                    energy: 3.3e-9,
                    t_ck_ns: 1.25,
                },
            },
            evaluations: 4242,
            pareto: (0..pareto)
                .map(|i| {
                    DesignPoint::new(
                        format!("point-{i}"),
                        EdpEstimate {
                            cycles: i as f64 * 0.7,
                            energy: 1.0 / (i as f64 + 1.0),
                            t_ck_ns: 1.25,
                        },
                    )
                })
                .collect(),
        }
    }

    fn assert_bit_identical(a: &LayerDseResult, b: &LayerDseResult) {
        assert_eq!(a.layer_name, b.layer_name);
        assert_eq!(a.best, b.best);
        assert_eq!(a.evaluations, b.evaluations);
        assert_eq!(
            a.best.estimate.cycles.to_bits(),
            b.best.estimate.cycles.to_bits()
        );
        assert_eq!(
            a.best.estimate.energy.to_bits(),
            b.best.estimate.energy.to_bits()
        );
        assert_eq!(a.pareto.len(), b.pareto.len());
        for (x, y) in a.pareto.iter().zip(&b.pareto) {
            assert_eq!(x.label, y.label);
            assert_eq!(x.estimate.cycles.to_bits(), y.estimate.cycles.to_bits());
            assert_eq!(x.estimate.energy.to_bits(), y.estimate.energy.to_bits());
        }
    }

    #[test]
    fn round_trips_bit_exactly() {
        for pareto in [0, 1, 7] {
            let original = sample(pareto);
            let bytes = encode_layer_result(&original).unwrap();
            let decoded = decode_layer_result(&bytes).unwrap();
            assert_bit_identical(&original, &decoded);
        }
    }

    #[test]
    fn round_trips_every_table_i_mapping_and_scheme() {
        for mapping in MappingPolicy::table_i() {
            for scheme in ReuseScheme::ALL {
                let mut result = sample(0);
                result.best.mapping = mapping;
                result.best.scheme = scheme;
                let decoded = decode_layer_result(&encode_layer_result(&result).unwrap()).unwrap();
                assert_eq!(decoded.best.mapping, mapping);
                assert_eq!(decoded.best.scheme, scheme);
            }
        }
    }

    #[test]
    fn round_trips_custom_mappings() {
        use Level::{Bank, Column, Row, Subarray};
        let mut result = sample(0);
        // commodity_default: index 0, a non-Table-I order.
        result.best.mapping = MappingPolicy::commodity_default();
        let decoded = decode_layer_result(&encode_layer_result(&result).unwrap()).unwrap();
        assert_eq!(decoded.best.mapping.index(), 0);
        assert_eq!(decoded.best.mapping.order(), &[Column, Bank, Row, Subarray]);
    }

    #[test]
    fn rejects_truncation_at_every_length() {
        let bytes = encode_layer_result(&sample(2)).unwrap();
        for n in 0..bytes.len() {
            assert!(
                decode_layer_result(&bytes[..n]).is_err(),
                "accepted a {n}-byte prefix of a {}-byte payload",
                bytes.len()
            );
        }
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_version() {
        let mut bytes = encode_layer_result(&sample(0)).unwrap();
        bytes.push(0xFF);
        assert!(decode_layer_result(&bytes).is_err());

        let mut bytes = encode_layer_result(&sample(0)).unwrap();
        bytes[0] = 99;
        let err = decode_layer_result(&bytes).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn rejects_mismatched_mapping_index() {
        let bytes = encode_layer_result(&sample(0)).unwrap();
        // Byte layout: version (1) + name len (4) + "CONV3" (5) puts the
        // mapping index at offset 10; flip it to another table index so
        // it no longer matches the stored order.
        let mut corrupt = bytes.clone();
        assert_eq!(corrupt[10], 3, "drmap is Mapping-3");
        corrupt[10] = 5;
        assert!(decode_layer_result(&corrupt).is_err());
    }

    #[test]
    fn stored_results_carry_their_compute_duration() {
        let original = sample(3);
        let bytes = encode_stored_result(&original, 123_456_789).unwrap();
        let (decoded, compute_ns) = decode_stored_result(&bytes).unwrap();
        assert_eq!(compute_ns, 123_456_789);
        assert_bit_identical(&original, &decoded);
        assert!(decode_stored_result(&bytes[..7]).is_err());
    }

    #[test]
    fn strings_survive_unicode() {
        let mut result = sample(0);
        result.layer_name = "convolución-λ③".to_owned();
        let decoded = decode_layer_result(&encode_layer_result(&result).unwrap()).unwrap();
        assert_eq!(decoded.layer_name, "convolución-λ③");
    }
}
