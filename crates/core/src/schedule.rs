//! DRAM access scheduling schemes: which data type is maximally reused in
//! the on-chip buffers, and how many times each tile is fetched.
//!
//! The paper (Section III-B, Step 1b) considers four schemes: ifms-reuse,
//! wghs-reuse, ofms-reuse, and adaptive-reuse (which picks the minimum-
//! traffic scheme per layer, as in SmartShuttle). Each scheme corresponds
//! to an ordering of Fig. 3's outer loops; the re-fetch factors follow
//! from classic loop-nest reuse analysis:
//!
//! * a data type is *re*-fetched once per iteration of every loop it does
//!   **not** depend on that encloses its innermost dependent loop;
//! * `ofms` accumulate partial sums: every pass but the first re-loads the
//!   tile, and every pass stores it.

use core::fmt;

use drmap_cnn::accelerator::AcceleratorConfig;
use drmap_cnn::layer::{DataKind, Layer};

use crate::tiling::Tiling;

/// The outer loops of Fig. 3 (batch, output rows, output cols, output
/// channels, input channels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum OuterLoop {
    /// Batch loop `b`.
    B,
    /// Output-row loop `h`.
    H,
    /// Output-column loop `w`.
    W,
    /// Output-channel loop `j`.
    J,
    /// Input-channel loop `i`.
    I,
}

impl OuterLoop {
    /// Does `kind` depend on this loop (does its tile index change)?
    pub fn feeds(self, kind: DataKind) -> bool {
        match kind {
            DataKind::Ifms => matches!(
                self,
                OuterLoop::B | OuterLoop::H | OuterLoop::W | OuterLoop::I
            ),
            DataKind::Wghs => matches!(self, OuterLoop::J | OuterLoop::I),
            DataKind::Ofms => matches!(
                self,
                OuterLoop::B | OuterLoop::H | OuterLoop::W | OuterLoop::J
            ),
        }
    }
}

/// The four scheduling schemes of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ReuseScheme {
    /// Keep an ifms tile resident while all dependent work completes.
    IfmsReuse,
    /// Keep a wghs tile resident while all dependent work completes.
    WghsReuse,
    /// Keep an ofms tile resident until fully accumulated (Fig. 3's order).
    OfmsReuse,
    /// Pick the minimum-traffic scheme per layer.
    AdaptiveReuse,
}

impl ReuseScheme {
    /// All schemes in the order the paper plots them (Fig. 9 a–d).
    pub const ALL: [ReuseScheme; 4] = [
        ReuseScheme::IfmsReuse,
        ReuseScheme::WghsReuse,
        ReuseScheme::OfmsReuse,
        ReuseScheme::AdaptiveReuse,
    ];

    /// The three concrete (non-adaptive) schemes.
    pub const CONCRETE: [ReuseScheme; 3] = [
        ReuseScheme::IfmsReuse,
        ReuseScheme::WghsReuse,
        ReuseScheme::OfmsReuse,
    ];

    /// Outer-loop order (outermost first) realizing this scheme.
    ///
    /// # Panics
    ///
    /// Panics for [`ReuseScheme::AdaptiveReuse`], which has no fixed order;
    /// resolve it per layer first (see [`TrafficModel::resolve_adaptive`]).
    pub fn loop_order(self) -> [OuterLoop; 5] {
        match self {
            ReuseScheme::IfmsReuse => [
                OuterLoop::B,
                OuterLoop::H,
                OuterLoop::W,
                OuterLoop::I,
                OuterLoop::J,
            ],
            ReuseScheme::WghsReuse => [
                OuterLoop::J,
                OuterLoop::I,
                OuterLoop::B,
                OuterLoop::H,
                OuterLoop::W,
            ],
            ReuseScheme::OfmsReuse => [
                OuterLoop::B,
                OuterLoop::H,
                OuterLoop::W,
                OuterLoop::J,
                OuterLoop::I,
            ],
            ReuseScheme::AdaptiveReuse => {
                panic!("adaptive-reuse must be resolved to a concrete scheme per layer")
            }
        }
    }

    /// Label used in figures.
    pub fn label(self) -> &'static str {
        match self {
            ReuseScheme::IfmsReuse => "ifms-reuse",
            ReuseScheme::WghsReuse => "wghs-reuse",
            ReuseScheme::OfmsReuse => "ofms-reuse",
            ReuseScheme::AdaptiveReuse => "adaptive-reuse",
        }
    }
}

impl fmt::Display for ReuseScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Tile-fetch counts for one `(layer, tiling, scheme)` combination.
///
/// `ofms` distinguishes loads (partial-sum re-reads) from stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TileTraffic {
    /// ifms tile loads.
    pub ifms_loads: u64,
    /// wghs tile loads.
    pub wghs_loads: u64,
    /// ofms tile loads (partial-sum re-reads).
    pub ofms_loads: u64,
    /// ofms tile stores.
    pub ofms_stores: u64,
}

impl TileTraffic {
    /// Total tile movements.
    pub fn total_tiles(&self) -> u64 {
        self.ifms_loads + self.wghs_loads + self.ofms_loads + self.ofms_stores
    }
}

/// Computes DRAM tile traffic for layers under a scheduling scheme.
///
/// # Examples
///
/// ```
/// use drmap_core::schedule::{ReuseScheme, TrafficModel};
/// use drmap_core::tiling::Tiling;
/// use drmap_cnn::prelude::*;
///
/// let acc = AcceleratorConfig::table_ii();
/// let model = TrafficModel::new(acc);
/// let layer = Layer::conv("c", 13, 13, 384, 256, 3, 3, 1);
/// let tiling = Tiling::new(13, 13, 16, 16);
/// let t = model.traffic(&layer, &tiling, ReuseScheme::OfmsReuse);
/// assert_eq!(t.ofms_loads, 0); // output-stationary: no partial re-reads
/// ```
#[derive(Debug, Clone)]
pub struct TrafficModel {
    acc: AcceleratorConfig,
}

impl TrafficModel {
    /// Create a traffic model for the given accelerator.
    pub fn new(acc: AcceleratorConfig) -> Self {
        TrafficModel { acc }
    }

    /// The accelerator configuration.
    pub fn accelerator(&self) -> &AcceleratorConfig {
        &self.acc
    }

    fn trip_count(&self, layer: &Layer, tiling: &Tiling, l: OuterLoop) -> u64 {
        let (n_h, n_w, n_j, n_i) = tiling.steps(layer);
        match l {
            OuterLoop::B => self.acc.batch as u64,
            OuterLoop::H => n_h as u64,
            OuterLoop::W => n_w as u64,
            OuterLoop::J => n_j as u64,
            OuterLoop::I => n_i as u64,
        }
    }

    /// Number of distinct tiles of `kind` (product of dependent trips).
    pub fn distinct_tiles(&self, layer: &Layer, tiling: &Tiling, kind: DataKind) -> u64 {
        [
            OuterLoop::B,
            OuterLoop::H,
            OuterLoop::W,
            OuterLoop::J,
            OuterLoop::I,
        ]
        .iter()
        .filter(|&&l| l.feeds(kind))
        .map(|&l| self.trip_count(layer, tiling, l))
        .product()
    }

    /// Re-fetch factor of `kind` under a concrete scheme: the product of
    /// trip counts of non-dependent loops enclosing the innermost
    /// dependent loop.
    pub fn refetch_factor(
        &self,
        layer: &Layer,
        tiling: &Tiling,
        scheme: ReuseScheme,
        kind: DataKind,
    ) -> u64 {
        let order = scheme.loop_order();
        let innermost_dep = order
            .iter()
            .rposition(|&l| l.feeds(kind))
            .expect("every data kind depends on at least one loop");
        order[..innermost_dep]
            .iter()
            .filter(|&&l| !l.feeds(kind))
            .map(|&l| self.trip_count(layer, tiling, l))
            .product()
    }

    /// Tile traffic for one concrete scheme.
    ///
    /// # Panics
    ///
    /// Panics if `scheme` is [`ReuseScheme::AdaptiveReuse`]; resolve it
    /// first with [`TrafficModel::resolve_adaptive`].
    pub fn traffic(&self, layer: &Layer, tiling: &Tiling, scheme: ReuseScheme) -> TileTraffic {
        let ifms = self.distinct_tiles(layer, tiling, DataKind::Ifms)
            * self.refetch_factor(layer, tiling, scheme, DataKind::Ifms);
        let wghs = self.distinct_tiles(layer, tiling, DataKind::Wghs)
            * self.refetch_factor(layer, tiling, scheme, DataKind::Wghs);
        let ofms_distinct = self.distinct_tiles(layer, tiling, DataKind::Ofms);
        let passes = self.refetch_factor(layer, tiling, scheme, DataKind::Ofms);
        TileTraffic {
            ifms_loads: ifms,
            wghs_loads: wghs,
            ofms_loads: ofms_distinct * (passes - 1),
            ofms_stores: ofms_distinct * passes,
        }
    }

    /// Total bytes moved for one concrete scheme.
    pub fn traffic_bytes(&self, layer: &Layer, tiling: &Tiling, scheme: ReuseScheme) -> u64 {
        let t = self.traffic(layer, tiling, scheme);
        t.ifms_loads * tiling.tile_bytes(layer, &self.acc, DataKind::Ifms)
            + t.wghs_loads * tiling.tile_bytes(layer, &self.acc, DataKind::Wghs)
            + (t.ofms_loads + t.ofms_stores) * tiling.tile_bytes(layer, &self.acc, DataKind::Ofms)
    }

    /// Resolve `scheme` for one `(layer, tiling)` and return the traffic
    /// of the resolved scheme — the per-`(tiling, scheme)` quantity the
    /// DSE hot loop hoists out of its mapping sweep (the traffic does
    /// not depend on the mapping policy). Exactly equivalent to
    /// [`TrafficModel::resolve_adaptive`] followed by
    /// [`TrafficModel::traffic`].
    pub fn resolved_traffic(
        &self,
        layer: &Layer,
        tiling: &Tiling,
        scheme: ReuseScheme,
    ) -> (ReuseScheme, TileTraffic) {
        let resolved = self.resolve_adaptive(layer, tiling, scheme);
        (resolved, self.traffic(layer, tiling, resolved))
    }

    /// Resolve adaptive-reuse for one layer: the concrete scheme with the
    /// minimum DRAM traffic (the paper: "minimum number of DRAM accesses").
    /// Concrete schemes resolve to themselves.
    pub fn resolve_adaptive(
        &self,
        layer: &Layer,
        tiling: &Tiling,
        scheme: ReuseScheme,
    ) -> ReuseScheme {
        match scheme {
            ReuseScheme::AdaptiveReuse => ReuseScheme::CONCRETE
                .iter()
                .copied()
                .min_by_key(|&s| self.traffic_bytes(layer, tiling, s))
                .expect("CONCRETE is non-empty"),
            concrete => concrete,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> TrafficModel {
        TrafficModel::new(AcceleratorConfig::table_ii())
    }

    fn conv3() -> Layer {
        Layer::conv("CONV3", 13, 13, 384, 256, 3, 3, 1)
    }

    #[test]
    fn loop_dependencies_match_fig3() {
        assert!(OuterLoop::H.feeds(DataKind::Ifms));
        assert!(!OuterLoop::J.feeds(DataKind::Ifms));
        assert!(OuterLoop::J.feeds(DataKind::Wghs));
        assert!(!OuterLoop::H.feeds(DataKind::Wghs));
        assert!(OuterLoop::J.feeds(DataKind::Ofms));
        assert!(!OuterLoop::I.feeds(DataKind::Ofms));
        assert!(!OuterLoop::B.feeds(DataKind::Wghs));
        assert!(OuterLoop::B.feeds(DataKind::Ofms));
    }

    #[test]
    fn reused_type_is_fetched_once() {
        let m = model();
        let l = conv3();
        let t = Tiling::new(13, 13, 16, 16);
        assert_eq!(
            m.refetch_factor(&l, &t, ReuseScheme::IfmsReuse, DataKind::Ifms),
            1
        );
        assert_eq!(
            m.refetch_factor(&l, &t, ReuseScheme::WghsReuse, DataKind::Wghs),
            1
        );
        assert_eq!(
            m.refetch_factor(&l, &t, ReuseScheme::OfmsReuse, DataKind::Ofms),
            1
        );
    }

    #[test]
    fn refetch_factors_match_hand_analysis() {
        let m = model();
        let l = conv3();
        let t = Tiling::new(13, 13, 16, 16);
        let (n_h, n_w, n_j, n_i) = t.steps(&l);
        assert_eq!((n_h, n_w), (1, 1));
        // ofms-reuse: ifms re-fetched per output-channel step, wghs per
        // spatial step.
        assert_eq!(
            m.refetch_factor(&l, &t, ReuseScheme::OfmsReuse, DataKind::Ifms),
            n_j as u64
        );
        assert_eq!(
            m.refetch_factor(&l, &t, ReuseScheme::OfmsReuse, DataKind::Wghs),
            (n_h * n_w) as u64
        );
        // wghs-reuse: ifms re-fetched per output-channel step; ofms passes
        // per input-channel step.
        assert_eq!(
            m.refetch_factor(&l, &t, ReuseScheme::WghsReuse, DataKind::Ifms),
            n_j as u64
        );
        assert_eq!(
            m.refetch_factor(&l, &t, ReuseScheme::WghsReuse, DataKind::Ofms),
            n_i as u64
        );
        // ifms-reuse: wghs re-fetched per spatial step; ofms per input step.
        assert_eq!(
            m.refetch_factor(&l, &t, ReuseScheme::IfmsReuse, DataKind::Wghs),
            (n_h * n_w) as u64
        );
        assert_eq!(
            m.refetch_factor(&l, &t, ReuseScheme::IfmsReuse, DataKind::Ofms),
            n_i as u64
        );
    }

    #[test]
    fn ofms_reuse_has_no_partial_rereads() {
        let m = model();
        let l = conv3();
        let t = Tiling::new(13, 13, 16, 16);
        let traffic = m.traffic(&l, &t, ReuseScheme::OfmsReuse);
        assert_eq!(traffic.ofms_loads, 0);
        assert_eq!(
            traffic.ofms_stores,
            m.distinct_tiles(&l, &t, DataKind::Ofms)
        );
    }

    #[test]
    fn partial_sum_passes_add_loads_and_stores() {
        let m = model();
        let l = conv3();
        let t = Tiling::new(13, 13, 16, 16);
        let n_i = t.steps(&l).3 as u64;
        let traffic = m.traffic(&l, &t, ReuseScheme::WghsReuse);
        let distinct = m.distinct_tiles(&l, &t, DataKind::Ofms);
        assert_eq!(traffic.ofms_stores, distinct * n_i);
        assert_eq!(traffic.ofms_loads, distinct * (n_i - 1));
    }

    #[test]
    fn distinct_tiles_product_of_dependent_trips() {
        let m = model();
        let l = conv3();
        let t = Tiling::new(7, 7, 16, 16);
        let (n_h, n_w, n_j, n_i) = t.steps(&l);
        assert_eq!(
            m.distinct_tiles(&l, &t, DataKind::Ifms),
            (n_h * n_w * n_i) as u64
        );
        assert_eq!(m.distinct_tiles(&l, &t, DataKind::Wghs), (n_j * n_i) as u64);
        assert_eq!(
            m.distinct_tiles(&l, &t, DataKind::Ofms),
            (n_h * n_w * n_j) as u64
        );
    }

    #[test]
    fn adaptive_picks_minimum_traffic() {
        let m = model();
        let l = conv3();
        let t = Tiling::new(13, 13, 16, 16);
        let chosen = m.resolve_adaptive(&l, &t, ReuseScheme::AdaptiveReuse);
        let chosen_bytes = m.traffic_bytes(&l, &t, chosen);
        for s in ReuseScheme::CONCRETE {
            assert!(chosen_bytes <= m.traffic_bytes(&l, &t, s));
        }
    }

    #[test]
    fn resolved_traffic_matches_two_step_path() {
        let m = model();
        let l = conv3();
        let t = Tiling::new(13, 13, 16, 16);
        for scheme in ReuseScheme::ALL {
            let (resolved, traffic) = m.resolved_traffic(&l, &t, scheme);
            assert_eq!(resolved, m.resolve_adaptive(&l, &t, scheme));
            assert_eq!(traffic, m.traffic(&l, &t, resolved));
        }
    }

    #[test]
    fn adaptive_resolution_is_identity_for_concrete() {
        let m = model();
        let l = conv3();
        let t = Tiling::new(13, 13, 16, 16);
        assert_eq!(
            m.resolve_adaptive(&l, &t, ReuseScheme::IfmsReuse),
            ReuseScheme::IfmsReuse
        );
    }

    #[test]
    fn fc_layer_traffic_dominated_by_single_weight_pass() {
        let m = model();
        let fc6 = Layer::fully_connected("FC6", 9216, 4096);
        let t = Tiling::new(1, 1, 64, 1024);
        assert!(t.fits(&fc6, m.accelerator()));
        let chosen = m.resolve_adaptive(&fc6, &t, ReuseScheme::AdaptiveReuse);
        let bytes = m.traffic_bytes(&fc6, &t, chosen);
        // With H=W=1 every scheme streams the 37.7 MB of weights exactly
        // once; the optimum must stay within a few percent of that floor.
        let wghs_bytes = fc6.wghs_elems();
        assert!(bytes >= wghs_bytes);
        assert!(
            (bytes as f64) < wghs_bytes as f64 * 1.05,
            "adaptive traffic {bytes} should be close to the weight volume {wghs_bytes}"
        );
    }

    #[test]
    fn batch_scales_ofms_and_ifms_tiles() {
        let mut acc = AcceleratorConfig::table_ii();
        acc.batch = 4;
        let m = TrafficModel::new(acc);
        let l = conv3();
        let t = Tiling::new(13, 13, 16, 16);
        let m1 = model();
        assert_eq!(
            m.distinct_tiles(&l, &t, DataKind::Ofms),
            4 * m1.distinct_tiles(&l, &t, DataKind::Ofms)
        );
        // Weights are batch-invariant.
        assert_eq!(
            m.distinct_tiles(&l, &t, DataKind::Wghs),
            m1.distinct_tiles(&l, &t, DataKind::Wghs)
        );
    }

    #[test]
    #[should_panic(expected = "adaptive-reuse")]
    fn adaptive_loop_order_panics() {
        let _ = ReuseScheme::AdaptiveReuse.loop_order();
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(ReuseScheme::IfmsReuse.label(), "ifms-reuse");
        assert_eq!(ReuseScheme::AdaptiveReuse.label(), "adaptive-reuse");
    }
}
