//! Energy-delay-product assembly: from per-tile costs (Eq. 2/3) to
//! per-layer and per-network EDP (the objective of Eq. 1).

use core::fmt;

use drmap_cnn::accelerator::AcceleratorConfig;
use drmap_cnn::layer::{DataKind, Layer};
use drmap_dram::geometry::Geometry;
use drmap_dram::profiler::AccessCostTable;
use drmap_dram::request::RequestKind;

use crate::access_model::{bytes_to_bursts, tile_cost};
use crate::mapping::MappingPolicy;
use crate::schedule::{ReuseScheme, TrafficModel};
use crate::tiling::Tiling;

/// Estimated DRAM cost of processing one layer (or network) — latency,
/// energy and their product.
///
/// # Examples
///
/// ```
/// use drmap_core::edp::EdpEstimate;
///
/// let e = EdpEstimate { cycles: 800e6, energy: 0.5, t_ck_ns: 1.25 };
/// assert!((e.seconds() - 1.0).abs() < 1e-9);
/// assert!((e.edp() - 0.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EdpEstimate {
    /// DRAM access latency in memory-clock cycles.
    pub cycles: f64,
    /// DRAM access energy in joules.
    pub energy: f64,
    /// Clock period for cycle→time conversion.
    pub t_ck_ns: f64,
}

impl EdpEstimate {
    /// A zero estimate with the given clock.
    pub fn zero(t_ck_ns: f64) -> Self {
        EdpEstimate {
            cycles: 0.0,
            energy: 0.0,
            t_ck_ns,
        }
    }

    /// Latency in seconds.
    pub fn seconds(&self) -> f64 {
        self.cycles * self.t_ck_ns * 1e-9
    }

    /// Energy-delay product in J·s.
    pub fn edp(&self) -> f64 {
        self.energy * self.seconds()
    }

    /// Accumulate another estimate (layers of a network).
    pub fn accumulate(&mut self, other: &EdpEstimate) {
        debug_assert_eq!(self.t_ck_ns, other.t_ck_ns, "mixed clock domains");
        self.cycles += other.cycles;
        self.energy += other.energy;
    }
}

impl fmt::Display for EdpEstimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.3e} J x {:.3e} s = {:.3e} J*s",
            self.energy,
            self.seconds(),
            self.edp()
        )
    }
}

/// Evaluates the analytical EDP model for `(layer, tiling, scheme,
/// mapping)` combinations against one profiled architecture.
#[derive(Debug, Clone)]
pub struct EdpModel {
    geometry: Geometry,
    table: AccessCostTable,
    traffic: TrafficModel,
}

impl EdpModel {
    /// Create a model from a profiled cost table.
    pub fn new(geometry: Geometry, table: AccessCostTable, acc: AcceleratorConfig) -> Self {
        EdpModel {
            geometry,
            table,
            traffic: TrafficModel::new(acc),
        }
    }

    /// The cost table in use.
    pub fn table(&self) -> &AccessCostTable {
        &self.table
    }

    /// The traffic model in use.
    pub fn traffic_model(&self) -> &TrafficModel {
        &self.traffic
    }

    /// The DRAM geometry in use.
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// EDP estimate for one layer under a concrete or adaptive scheme.
    ///
    /// Eq. 2/3 evaluated per tile kind, multiplied by the schedule's tile
    /// fetch counts, then `EDP = E · t` (Eq. 1's objective).
    pub fn layer_estimate(
        &self,
        layer: &Layer,
        tiling: &Tiling,
        scheme: ReuseScheme,
        mapping: &MappingPolicy,
    ) -> EdpEstimate {
        self.layer_breakdown(layer, tiling, scheme, mapping).total
    }

    /// Full per-data-kind breakdown of a layer estimate: where the DRAM
    /// cycles and energy actually go (ifms vs wghs vs ofms partial-sum
    /// traffic), plus the concrete scheme adaptive-reuse resolved to.
    pub fn layer_breakdown(
        &self,
        layer: &Layer,
        tiling: &Tiling,
        scheme: ReuseScheme,
        mapping: &MappingPolicy,
    ) -> LayerBreakdown {
        let acc = self.traffic.accelerator();
        let concrete = self.traffic.resolve_adaptive(layer, tiling, scheme);
        let traffic = self.traffic.traffic(layer, tiling, concrete);

        let units =
            |kind: DataKind| bytes_to_bursts(tiling.tile_bytes(layer, acc, kind), &self.geometry);
        let per_tile = |kind: DataKind, dir: RequestKind| {
            tile_cost(mapping, &self.geometry, units(kind), &self.table, dir)
        };
        let component = |kind: DataKind, dir: RequestKind, tiles: u64| {
            let c = per_tile(kind, dir);
            CostComponent {
                cycles: c.cycles * tiles as f64,
                energy: c.energy * tiles as f64,
                tiles,
            }
        };

        let ifms = component(DataKind::Ifms, RequestKind::Read, traffic.ifms_loads);
        let wghs = component(DataKind::Wghs, RequestKind::Read, traffic.wghs_loads);
        let ofms_reads = component(DataKind::Ofms, RequestKind::Read, traffic.ofms_loads);
        let ofms_writes = component(DataKind::Ofms, RequestKind::Write, traffic.ofms_stores);

        let total = EdpEstimate {
            cycles: ifms.cycles + wghs.cycles + ofms_reads.cycles + ofms_writes.cycles,
            energy: ifms.energy + wghs.energy + ofms_reads.energy + ofms_writes.energy,
            t_ck_ns: self.table.t_ck_ns,
        };
        LayerBreakdown {
            ifms,
            wghs,
            ofms_reads,
            ofms_writes,
            resolved_scheme: concrete,
            total,
        }
    }
}

/// Cost attributed to one traffic class of a layer.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CostComponent {
    /// Cycles spent on this class.
    pub cycles: f64,
    /// Energy spent on this class in joules.
    pub energy: f64,
    /// Tile movements of this class.
    pub tiles: u64,
}

/// Per-data-kind breakdown of one layer estimate.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LayerBreakdown {
    /// ifms tile loads.
    pub ifms: CostComponent,
    /// wghs tile loads.
    pub wghs: CostComponent,
    /// ofms partial-sum re-reads.
    pub ofms_reads: CostComponent,
    /// ofms stores.
    pub ofms_writes: CostComponent,
    /// Concrete scheme that adaptive-reuse resolved to (identity for
    /// concrete schemes).
    pub resolved_scheme: ReuseScheme,
    /// Sum over components.
    pub total: EdpEstimate,
}

impl LayerBreakdown {
    /// The dominant traffic class by energy.
    pub fn dominant(&self) -> DataKind {
        let mut best = (DataKind::Ifms, self.ifms.energy);
        if self.wghs.energy > best.1 {
            best = (DataKind::Wghs, self.wghs.energy);
        }
        if self.ofms_reads.energy + self.ofms_writes.energy > best.1 {
            best = (
                DataKind::Ofms,
                self.ofms_reads.energy + self.ofms_writes.energy,
            );
        }
        best.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drmap_dram::profiler::AccessCost;
    use drmap_dram::timing::DramArch;

    fn flat_table(cycles: f64, energy: f64) -> AccessCostTable {
        let c = AccessCost { cycles, energy };
        AccessCostTable::from_costs(DramArch::Ddr3, [c; 4], [c; 4], 1.25)
    }

    fn model() -> EdpModel {
        EdpModel::new(
            Geometry::salp_2gb_x8(),
            flat_table(2.0, 1e-9),
            AcceleratorConfig::table_ii(),
        )
    }

    #[test]
    fn estimate_zero_and_accumulate() {
        let mut z = EdpEstimate::zero(1.25);
        assert_eq!(z.edp(), 0.0);
        z.accumulate(&EdpEstimate {
            cycles: 100.0,
            energy: 2e-9,
            t_ck_ns: 1.25,
        });
        assert_eq!(z.cycles, 100.0);
        assert_eq!(z.energy, 2e-9);
    }

    #[test]
    fn flat_table_estimate_equals_traffic_units() {
        // With identical per-class costs, the EDP model degenerates to
        // (total units) * cost — an exact cross-check of the bookkeeping.
        let m = model();
        let layer = Layer::conv("c", 13, 13, 384, 256, 3, 3, 1);
        let tiling = Tiling::new(13, 13, 16, 16);
        let est = m.layer_estimate(
            &layer,
            &tiling,
            ReuseScheme::OfmsReuse,
            &MappingPolicy::drmap(),
        );
        let acc = AcceleratorConfig::table_ii();
        let g = Geometry::salp_2gb_x8();
        let tr = TrafficModel::new(acc).traffic(&layer, &tiling, ReuseScheme::OfmsReuse);
        let units_ifms = bytes_to_bursts(tiling.tile_bytes(&layer, &acc, DataKind::Ifms), &g);
        let units_wghs = bytes_to_bursts(tiling.tile_bytes(&layer, &acc, DataKind::Wghs), &g);
        let units_ofms = bytes_to_bursts(tiling.tile_bytes(&layer, &acc, DataKind::Ofms), &g);
        let total_units = units_ifms * tr.ifms_loads
            + units_wghs * tr.wghs_loads
            + units_ofms * (tr.ofms_loads + tr.ofms_stores);
        assert!((est.cycles - 2.0 * total_units as f64).abs() < 1e-6);
        assert!((est.energy - 1e-9 * total_units as f64).abs() < 1e-15);
    }

    #[test]
    fn estimate_is_monotone_in_cost_table() {
        let layer = Layer::conv("c", 13, 13, 384, 256, 3, 3, 1);
        let tiling = Tiling::new(13, 13, 16, 16);
        let cheap = EdpModel::new(
            Geometry::salp_2gb_x8(),
            flat_table(1.0, 1e-9),
            AcceleratorConfig::table_ii(),
        );
        let dear = EdpModel::new(
            Geometry::salp_2gb_x8(),
            flat_table(10.0, 5e-9),
            AcceleratorConfig::table_ii(),
        );
        let a = cheap.layer_estimate(
            &layer,
            &tiling,
            ReuseScheme::OfmsReuse,
            &MappingPolicy::drmap(),
        );
        let b = dear.layer_estimate(
            &layer,
            &tiling,
            ReuseScheme::OfmsReuse,
            &MappingPolicy::drmap(),
        );
        assert!(b.edp() > a.edp());
    }

    #[test]
    fn adaptive_estimate_not_worse_than_concrete() {
        let m = model();
        let layer = Layer::conv("c", 27, 27, 256, 96, 5, 5, 1);
        let tiling = Tiling::new(9, 27, 16, 24);
        let adaptive = m.layer_estimate(
            &layer,
            &tiling,
            ReuseScheme::AdaptiveReuse,
            &MappingPolicy::drmap(),
        );
        // Adaptive resolves to the min-traffic scheme; with a flat cost
        // table EDP is monotone in traffic, so adaptive must be minimal.
        for s in ReuseScheme::CONCRETE {
            let concrete = m.layer_estimate(&layer, &tiling, s, &MappingPolicy::drmap());
            assert!(adaptive.edp() <= concrete.edp() * 1.0001, "{s}");
        }
    }

    #[test]
    fn breakdown_components_sum_to_total() {
        let m = model();
        let layer = Layer::conv("c", 13, 13, 384, 256, 3, 3, 1);
        let tiling = Tiling::new(13, 13, 16, 16);
        let b = m.layer_breakdown(
            &layer,
            &tiling,
            ReuseScheme::WghsReuse,
            &MappingPolicy::drmap(),
        );
        let sum_cycles = b.ifms.cycles + b.wghs.cycles + b.ofms_reads.cycles + b.ofms_writes.cycles;
        assert!((b.total.cycles - sum_cycles).abs() < 1e-9);
        assert_eq!(b.resolved_scheme, ReuseScheme::WghsReuse);
        // wghs-reuse on a conv layer still re-reads partial sums.
        assert!(b.ofms_reads.tiles > 0);
    }

    #[test]
    fn fc_layer_breakdown_dominated_by_weights() {
        let m = model();
        let fc6 = Layer::fully_connected("FC6", 9216, 4096);
        let tiling = Tiling::new(1, 1, 64, 1024);
        let b = m.layer_breakdown(
            &fc6,
            &tiling,
            ReuseScheme::AdaptiveReuse,
            &MappingPolicy::drmap(),
        );
        assert_eq!(b.dominant(), DataKind::Wghs);
        assert!(b.wghs.energy > 10.0 * b.ifms.energy);
    }

    #[test]
    fn adaptive_breakdown_reports_resolved_scheme() {
        let m = model();
        let layer = Layer::conv("c", 27, 27, 256, 96, 5, 5, 1);
        let tiling = Tiling::new(9, 27, 16, 24);
        let b = m.layer_breakdown(
            &layer,
            &tiling,
            ReuseScheme::AdaptiveReuse,
            &MappingPolicy::drmap(),
        );
        assert_ne!(b.resolved_scheme, ReuseScheme::AdaptiveReuse);
    }

    #[test]
    fn display_shows_product() {
        let e = EdpEstimate {
            cycles: 800.0,
            energy: 1e-6,
            t_ck_ns: 1.25,
        };
        assert!(e.to_string().contains("J*s"));
    }
}
