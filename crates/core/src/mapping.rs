//! DRAM data-mapping policies: the order in which a tile's burst-sized
//! words are laid out across DRAM columns, banks, subarrays and rows.
//!
//! Table I of the paper defines six candidate policies as the loop-order
//! permutations of `{column, subarray, bank, row}` with `row` outermost
//! (the narrowing rule of Section III-B, Step 2: subsequent accesses to
//! different rows are the most expensive, so `row` never varies fast).
//! **Mapping-3 is DRMap**: columns innermost (row-buffer hits first), then
//! banks (bank-level parallelism), then subarrays, then rows.

use core::fmt;

use drmap_dram::address::{AddressCodec, PhysicalAddress};
use drmap_dram::geometry::{Geometry, Level};
use drmap_dram::request::{Request, RequestKind};

use crate::error::DseError;

/// One DRAM data-mapping policy: a permutation of the four in-chip levels,
/// innermost (fastest-varying) first. Rank and channel are always the two
/// outermost levels, per Fig. 6's pseudo-code.
///
/// # Examples
///
/// ```
/// use drmap_core::mapping::MappingPolicy;
/// use drmap_dram::geometry::Level;
///
/// let drmap = MappingPolicy::drmap();
/// assert_eq!(drmap.index(), 3);
/// assert_eq!(drmap.order()[0], Level::Column);
/// assert_eq!(drmap.order()[1], Level::Bank);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MappingPolicy {
    /// Table I index (1..=6), or 0 for custom permutations.
    index: usize,
    /// In-chip level order, innermost first.
    order: [Level; 4],
}

impl MappingPolicy {
    /// The six policies of Table I, in order (Mapping-1 .. Mapping-6).
    pub fn table_i() -> [MappingPolicy; 6] {
        use Level::{Bank, Column, Row, Subarray};
        [
            MappingPolicy {
                index: 1,
                order: [Column, Subarray, Bank, Row],
            },
            MappingPolicy {
                index: 2,
                order: [Subarray, Column, Bank, Row],
            },
            MappingPolicy {
                index: 3,
                order: [Column, Bank, Subarray, Row],
            },
            MappingPolicy {
                index: 4,
                order: [Bank, Column, Subarray, Row],
            },
            MappingPolicy {
                index: 5,
                order: [Subarray, Bank, Column, Row],
            },
            MappingPolicy {
                index: 6,
                order: [Bank, Subarray, Column, Row],
            },
        ]
    }

    /// Mapping-`n` of Table I.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= n && n <= 6`.
    pub fn table_i_policy(n: usize) -> MappingPolicy {
        assert!((1..=6).contains(&n), "Table I defines mappings 1..=6");
        Self::table_i()[n - 1]
    }

    /// DRMap — the paper's proposal, Mapping-3 of Table I.
    pub fn drmap() -> MappingPolicy {
        Self::table_i_policy(3)
    }

    /// The commodity controller's *default data mapping* (Section II-B of
    /// the paper): consecutive data fills the columns of a row, then the
    /// banks of a rank, then rows — with subarrays invisible (folded into
    /// the row address as its high bits, i.e. outermost).
    ///
    /// The paper's Table I excludes this order (row is not outermost);
    /// it exists here as the baseline the paper argues is suboptimal.
    pub fn commodity_default() -> MappingPolicy {
        use Level::{Bank, Column, Row, Subarray};
        MappingPolicy {
            index: 0,
            order: [Column, Bank, Row, Subarray],
        }
    }

    /// A custom permutation of the four in-chip levels, innermost first.
    ///
    /// # Errors
    ///
    /// Returns [`DseError`] if `order` is not a permutation of
    /// `{Column, Bank, Subarray, Row}`.
    pub fn custom(order: [Level; 4]) -> Result<MappingPolicy, DseError> {
        for required in [Level::Column, Level::Bank, Level::Subarray, Level::Row] {
            if !order.contains(&required) {
                return Err(DseError::new(format!(
                    "mapping order must contain {required}"
                )));
            }
        }
        Ok(MappingPolicy { index: 0, order })
    }

    /// Every permutation of the four in-chip levels (24 policies) — the
    /// un-narrowed design space, used by the ablation benches to verify
    /// that the paper's row-outermost narrowing loses nothing.
    pub fn all_permutations() -> Vec<MappingPolicy> {
        use Level::{Bank, Column, Row, Subarray};
        let levels = [Column, Bank, Subarray, Row];
        let mut out = Vec::with_capacity(24);
        for a in 0..4 {
            for b in 0..4 {
                if b == a {
                    continue;
                }
                for c in 0..4 {
                    if c == a || c == b {
                        continue;
                    }
                    let d = 6 - a - b - c;
                    let order = [levels[a], levels[b], levels[c], levels[d]];
                    let index = Self::table_i()
                        .iter()
                        .position(|p| p.order == order)
                        .map_or(0, |i| i + 1);
                    out.push(MappingPolicy { index, order });
                }
            }
        }
        out
    }

    /// Table I index (1..=6), or 0 for custom policies.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The in-chip level order, innermost first.
    pub fn order(&self) -> &[Level; 4] {
        &self.order
    }

    /// True if this is the paper's DRMap policy.
    pub fn is_drmap(&self) -> bool {
        self.order == *Self::drmap().order()
    }

    /// Full six-level order (in-chip levels then rank, then channel).
    pub fn full_order(&self) -> [Level; 6] {
        [
            self.order[0],
            self.order[1],
            self.order[2],
            self.order[3],
            Level::Rank,
            Level::Channel,
        ]
    }

    /// Address codec realizing this policy on `geometry`.
    ///
    /// # Errors
    ///
    /// Returns [`DseError`] if the geometry is invalid.
    pub fn codec(&self, geometry: Geometry) -> Result<AddressCodec, DseError> {
        AddressCodec::new(geometry, self.full_order().to_vec())
            .map_err(|e| DseError::new(e.to_string()))
    }

    /// Generate the physical address stream of a tile of `units` bursts,
    /// mapped from flat index `start` onward.
    ///
    /// # Errors
    ///
    /// Returns [`DseError`] if the stream exceeds the device capacity.
    pub fn address_stream(
        &self,
        geometry: Geometry,
        start: u64,
        units: u64,
    ) -> Result<Vec<PhysicalAddress>, DseError> {
        let codec = self.codec(geometry)?;
        if start + units > codec.slots() {
            return Err(DseError::new(format!(
                "tile of {units} bursts at offset {start} exceeds device capacity {}",
                codec.slots()
            )));
        }
        (start..start + units)
            .map(|i| codec.decode(i).map_err(|e| DseError::new(e.to_string())))
            .collect()
    }

    /// Generate the request stream of a tile (all reads or all writes).
    ///
    /// # Errors
    ///
    /// Propagates [`MappingPolicy::address_stream`] errors.
    pub fn request_stream(
        &self,
        geometry: Geometry,
        start: u64,
        units: u64,
        kind: RequestKind,
    ) -> Result<Vec<Request>, DseError> {
        Ok(self
            .address_stream(geometry, start, units)?
            .into_iter()
            .map(|address| Request { address, kind })
            .collect())
    }

    /// Human-readable name: `Mapping-3 (DRMap)` or `custom`.
    pub fn name(&self) -> String {
        match self.index {
            0 => "custom".to_owned(),
            3 => "Mapping-3 (DRMap)".to_owned(),
            n => format!("Mapping-{n}"),
        }
    }
}

impl fmt::Display for MappingPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{} > {} > {} > {}]",
            self.name(),
            self.order[0],
            self.order[1],
            self.order[2],
            self.order[3]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_matches_paper() {
        use Level::{Bank, Column, Row, Subarray};
        let t = MappingPolicy::table_i();
        assert_eq!(t[0].order, [Column, Subarray, Bank, Row]);
        assert_eq!(t[1].order, [Subarray, Column, Bank, Row]);
        assert_eq!(t[2].order, [Column, Bank, Subarray, Row]);
        assert_eq!(t[3].order, [Bank, Column, Subarray, Row]);
        assert_eq!(t[4].order, [Subarray, Bank, Column, Row]);
        assert_eq!(t[5].order, [Bank, Subarray, Column, Row]);
        // Row is always outermost: the paper's narrowing rule.
        assert!(t.iter().all(|p| p.order[3] == Row));
    }

    #[test]
    fn drmap_is_mapping_3() {
        assert!(MappingPolicy::drmap().is_drmap());
        assert_eq!(MappingPolicy::drmap().index(), 3);
        assert!(!MappingPolicy::table_i_policy(1).is_drmap());
    }

    #[test]
    #[should_panic(expected = "Table I")]
    fn table_i_policy_range_checked() {
        let _ = MappingPolicy::table_i_policy(7);
    }

    #[test]
    fn commodity_default_folds_subarrays_into_rows() {
        use Level::{Bank, Column, Row, Subarray};
        let d = MappingPolicy::commodity_default();
        assert_eq!(d.order(), &[Column, Bank, Row, Subarray]);
        assert_eq!(d.index(), 0);
        assert!(!d.is_drmap());
        // It is one of the permutations Table I excludes.
        assert!(MappingPolicy::table_i()
            .iter()
            .all(|p| p.order() != d.order()));
    }

    #[test]
    fn custom_requires_permutation() {
        use Level::{Bank, Column, Row};
        let err = MappingPolicy::custom([Column, Column, Bank, Row]).unwrap_err();
        assert!(err.to_string().contains("subarray"));
    }

    #[test]
    fn all_permutations_are_24_unique_and_tag_table_i() {
        let all = MappingPolicy::all_permutations();
        assert_eq!(all.len(), 24);
        let unique: std::collections::HashSet<_> = all.iter().map(|p| p.order).collect();
        assert_eq!(unique.len(), 24);
        assert_eq!(all.iter().filter(|p| p.index() != 0).count(), 6);
    }

    #[test]
    fn drmap_stream_walks_columns_then_banks() {
        let g = Geometry::salp_2gb_x8();
        let stream = MappingPolicy::drmap().address_stream(g, 0, 130).unwrap();
        assert_eq!(stream[0].column, 0);
        assert_eq!(stream[127].column, 127);
        assert_eq!(stream[127].bank, 0);
        assert_eq!(stream[128].bank, 1);
        assert_eq!(stream[128].column, 0);
        assert_eq!(stream[128].subarray, 0);
    }

    #[test]
    fn mapping_2_walks_subarrays_first() {
        let g = Geometry::salp_2gb_x8();
        let stream = MappingPolicy::table_i_policy(2)
            .address_stream(g, 0, 10)
            .unwrap();
        assert_eq!(stream[0].subarray, 0);
        assert_eq!(stream[1].subarray, 1);
        assert_eq!(stream[7].subarray, 7);
        assert_eq!(stream[8].subarray, 0);
        assert_eq!(stream[8].column, 1);
    }

    #[test]
    fn stream_rejects_overflow() {
        let g = Geometry::salp_2gb_x8();
        let codec = MappingPolicy::drmap().codec(g).unwrap();
        let err = MappingPolicy::drmap()
            .address_stream(g, codec.slots() - 1, 2)
            .unwrap_err();
        assert!(err.to_string().contains("capacity"));
    }

    #[test]
    fn request_stream_sets_kind() {
        let g = Geometry::salp_2gb_x8();
        let reqs = MappingPolicy::drmap()
            .request_stream(g, 0, 4, RequestKind::Write)
            .unwrap();
        assert!(reqs.iter().all(|r| r.kind == RequestKind::Write));
    }

    #[test]
    fn names_and_display() {
        assert_eq!(MappingPolicy::table_i_policy(3).name(), "Mapping-3 (DRMap)");
        assert_eq!(MappingPolicy::table_i_policy(5).name(), "Mapping-5");
        let s = MappingPolicy::drmap().to_string();
        assert!(s.contains("column > bank > subarray > row"));
    }

    #[test]
    fn full_order_appends_rank_channel() {
        let p = MappingPolicy::drmap();
        let full = p.full_order();
        assert_eq!(full[4], Level::Rank);
        assert_eq!(full[5], Level::Channel);
    }
}
