//! The design-space exploration engine: Algorithm 1 of the paper.
//!
//! For each layer, the DSE sweeps every feasible layer partitioning
//! (tiling), every scheduling scheme, and every DRAM mapping policy,
//! evaluates the analytical EDP model, and keeps the minimum-EDP
//! configuration. Layers are independent and explored in parallel.
//!
//! ## The evaluation pipeline
//!
//! The sweep is organized so per-evaluation work shrinks to what
//! actually varies with the mapping policy:
//!
//! * per **tiling**: tile footprints in DRAM bursts (three data kinds),
//! * per **(tiling, scheme)**: adaptive-scheme resolution and
//!   tile-fetch counts — neither depends on the mapping,
//! * per **(mapping, burst count)**: the closed-form transition
//!   counting and its cost weighting, memoized because a layer has only
//!   a handful of distinct burst counts,
//! * per **evaluation**: four multiply-adds plus an incremental
//!   Pareto-front insert (no label allocation; labels materialize for
//!   survivors only).
//!
//! The tiling axis is also *shardable*: [`DseEngine::explore_layer_range`]
//! explores a contiguous subrange of the tiling enumeration and returns
//! a [`LayerPartial`] whose [`LayerPartial::merge`] is exact, so
//! several workers can split one huge layer and reassemble a result
//! bit-identical to the sequential sweep.

use core::fmt;
use std::collections::HashMap;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

use drmap_cnn::layer::{DataKind, Layer};
use drmap_cnn::network::Network;
use drmap_dram::geometry::Geometry;
use drmap_dram::profiler::{AccessCost, AccessCostTable};
use drmap_dram::request::RequestKind;

use crate::access_model::{bytes_to_bursts, counts_cost, transition_counts};
use crate::edp::{EdpEstimate, EdpModel};
use crate::error::DseError;
use crate::mapping::MappingPolicy;
use crate::pareto::{DesignPoint, ParetoFront};
use crate::schedule::ReuseScheme;
use crate::tiling::{count_tilings, enumerate_tilings, Tiling};

/// Optimization objective for the exploration.
///
/// The paper minimizes EDP (Eq. 1); the alternatives let a deployment
/// weigh energy or latency differently without touching the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Objective {
    /// Energy × delay (the paper's Eq. 1).
    #[default]
    Edp,
    /// Energy only (battery-bound edge devices).
    Energy,
    /// Delay only (latency-bound inference).
    Delay,
    /// Energy × delay² (throughput-leaning metric).
    Ed2p,
}

impl Objective {
    /// All objectives.
    pub const ALL: [Objective; 4] = [
        Objective::Edp,
        Objective::Energy,
        Objective::Delay,
        Objective::Ed2p,
    ];

    /// Stable textual label (used in cache keys and wire formats).
    pub fn label(self) -> &'static str {
        match self {
            Objective::Edp => "edp",
            Objective::Energy => "energy",
            Objective::Delay => "delay",
            Objective::Ed2p => "ed2p",
        }
    }

    /// Parse a [`Objective::label`] string.
    pub fn from_label(label: &str) -> Option<Self> {
        Objective::ALL.into_iter().find(|o| o.label() == label)
    }

    /// Scalar score of an estimate under this objective (lower is better).
    pub fn score(self, estimate: &EdpEstimate) -> f64 {
        match self {
            Objective::Edp => estimate.edp(),
            Objective::Energy => estimate.energy,
            Objective::Delay => estimate.seconds(),
            Objective::Ed2p => estimate.energy * estimate.seconds() * estimate.seconds(),
        }
    }
}

/// Which schemes and mappings the DSE sweeps.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DseConfig {
    /// Scheduling schemes to consider (default: all four of the paper).
    pub schemes: Vec<ReuseScheme>,
    /// Mapping policies to consider (default: Table I's six).
    pub mappings: Vec<MappingPolicy>,
    /// Keep the full (energy, latency) point cloud for Pareto analysis.
    pub keep_points: bool,
    /// Optimization objective (default: EDP, the paper's Eq. 1).
    pub objective: Objective,
}

impl Default for DseConfig {
    fn default() -> Self {
        DseConfig {
            schemes: ReuseScheme::ALL.to_vec(),
            mappings: MappingPolicy::table_i().to_vec(),
            keep_points: false,
            objective: Objective::Edp,
        }
    }
}

impl DseConfig {
    /// Canonical, order-sensitive fingerprint of the sweep configuration.
    ///
    /// Two engines with equal fingerprints (and equal models) perform the
    /// same sweep in the same order, so their results are bit-identical —
    /// the property memoization caches rely on.
    pub fn fingerprint(&self) -> String {
        let schemes: Vec<&str> = self.schemes.iter().map(|s| s.label()).collect();
        let mappings: Vec<String> = self.mappings.iter().map(|m| m.name()).collect();
        format!(
            "obj={};schemes={};mappings={};points={}",
            self.objective.label(),
            schemes.join("+"),
            mappings.join("+"),
            self.keep_points,
        )
    }
}

/// A thread-safe, shareable handle to a [`DseEngine`].
///
/// The engine is immutable after construction and `Send + Sync`, so one
/// handle can serve any number of worker threads concurrently (the
/// job-server crate shards a network's layers across workers this way).
pub type SharedEngine = std::sync::Arc<DseEngine>;

/// Canonical memoization key for a single-layer exploration.
///
/// Captures everything that determines [`DseEngine::explore_layer`]'s
/// output **except the layer's name**: the layer shape, the accelerator
/// configuration (buffers bound the tiling enumeration; precision scales
/// traffic), the sweep configuration, and an `engine_tag` identifying the
/// profiled substrate (DRAM architecture, geometry, timing/energy
/// parameters). Identically shaped layers — e.g. VGG-16's repeated conv
/// blocks — therefore share one cache entry.
pub fn layer_cache_key(
    engine_tag: &str,
    layer: &Layer,
    acc: &drmap_cnn::accelerator::AcceleratorConfig,
    config: &DseConfig,
) -> String {
    format!(
        "{engine_tag}|h{}w{}j{}i{}p{}q{}s{}g{}|ib{}wb{}ob{}px{}b{}|{}",
        layer.h,
        layer.w,
        layer.j,
        layer.i,
        layer.p,
        layer.q,
        layer.stride,
        layer.groups,
        acc.ifms_buffer,
        acc.wghs_buffer,
        acc.ofms_buffer,
        acc.precision.bytes(),
        acc.batch,
        config.fingerprint(),
    )
}

/// One evaluated configuration.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DseCandidate {
    /// The mapping policy.
    pub mapping: MappingPolicy,
    /// The tiling.
    pub tiling: Tiling,
    /// The (possibly adaptive) scheduling scheme requested.
    pub scheme: ReuseScheme,
    /// The analytical estimate.
    pub estimate: EdpEstimate,
}

impl fmt::Display for DseCandidate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} | {} | {} -> {}",
            self.mapping, self.scheme, self.tiling, self.estimate
        )
    }
}

/// DSE output for one layer.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LayerDseResult {
    /// Layer name.
    pub layer_name: String,
    /// The minimum-EDP configuration (Algorithm 1's `map`, `minEDP`).
    pub best: DseCandidate,
    /// Number of configurations evaluated.
    pub evaluations: usize,
    /// Pareto front over (energy, latency), if `keep_points` was set.
    pub pareto: Vec<DesignPoint>,
}

/// DSE output for a whole network.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NetworkDseResult {
    /// Per-layer results, in network order.
    pub layers: Vec<LayerDseResult>,
    /// Sum of the per-layer best estimates (minimum total EDP components).
    pub total: EdpEstimate,
}

impl NetworkDseResult {
    /// Total EDP of the per-layer best configurations.
    pub fn total_edp(&self) -> f64 {
        self.total.edp()
    }
}

/// Identifies the configuration behind a retained Pareto point without
/// allocating; the label string is materialized for survivors only.
#[derive(Debug, Clone, Copy)]
struct CandidateTag {
    mapping: MappingPolicy,
    scheme: ReuseScheme,
    tiling: Tiling,
}

/// Label a surviving Pareto point exactly as the collect-then-filter
/// path used to label every evaluation.
fn tag_label(tag: &CandidateTag) -> String {
    format!("{} | {} | {}", tag.mapping.name(), tag.scheme, tag.tiling)
}

/// Partial output of exploring a contiguous subrange of one layer's
/// tiling enumeration (see [`DseEngine::explore_layer_range`]).
///
/// Partials over consecutive ranges combine with [`LayerPartial::merge`]
/// into exactly the result a single sequential sweep produces — same
/// best candidate (bit-identical estimate), same evaluation count, same
/// Pareto front — because the per-range sweeps preserve evaluation
/// order, the best-candidate fold is associative with a
/// first-of-equals tie-break, and [`ParetoFront::merge`] is exact.
#[derive(Debug, Clone)]
pub struct LayerPartial {
    objective: Objective,
    evaluations: usize,
    best: Option<DseCandidate>,
    front: ParetoFront<CandidateTag>,
}

impl LayerPartial {
    /// Number of configurations this partial evaluated.
    pub fn evaluations(&self) -> usize {
        self.evaluations
    }

    /// Best candidate found within this partial's range, if the range
    /// was non-empty.
    pub fn best(&self) -> Option<&DseCandidate> {
        self.best.as_ref()
    }

    /// Fold the partial of the **next** tiling subrange into this one.
    /// Exact provided ranges are merged in ascending order: ties on the
    /// objective keep the lower-range candidate, exactly as the
    /// sequential sweep's strict-improvement rule does.
    pub fn merge(&mut self, later: LayerPartial) {
        debug_assert_eq!(
            self.objective, later.objective,
            "merged partials of different objectives"
        );
        self.evaluations += later.evaluations;
        let objective = self.objective;
        self.best = match (self.best.take(), later.best) {
            (Some(a), Some(b)) => {
                if objective.score(&b.estimate) < objective.score(&a.estimate) {
                    Some(b)
                } else {
                    Some(a)
                }
            }
            (a, b) => a.or(b),
        };
        self.front.merge(later.front);
    }

    /// Finish the exploration: materialize the Pareto front and name the
    /// result.
    ///
    /// # Panics
    ///
    /// Panics if no candidate was evaluated (an empty merged range);
    /// callers merge partials covering the whole enumeration first.
    pub fn into_result(self, layer_name: impl Into<String>) -> LayerDseResult {
        LayerDseResult {
            layer_name: layer_name.into(),
            best: self.best.expect("non-empty sweep produced no candidate"),
            evaluations: self.evaluations,
            pareto: self.front.into_design_points(tag_label),
        }
    }
}

/// Per-exploration memo of weighted access costs, keyed by mapping slot
/// (position in the sweep's mapping list) and tile burst count. A layer
/// has only a handful of distinct burst counts (three data kinds across
/// the tiling enumeration), so the closed-form transition counting runs
/// once per (mapping, burst count) instead of once per evaluation.
struct CostMemo {
    /// One `units -> (read cost, write cost)` map per mapping slot.
    costs: Vec<HashMap<u64, (AccessCost, AccessCost)>>,
}

impl CostMemo {
    fn new(mappings: usize) -> Self {
        CostMemo {
            costs: (0..mappings).map(|_| HashMap::new()).collect(),
        }
    }

    fn get(
        &mut self,
        slot: usize,
        mapping: &MappingPolicy,
        geometry: &Geometry,
        table: &AccessCostTable,
        units: u64,
    ) -> (AccessCost, AccessCost) {
        *self.costs[slot].entry(units).or_insert_with(|| {
            let counts = transition_counts(mapping, geometry, units);
            (
                counts_cost(&counts, table, RequestKind::Read),
                counts_cost(&counts, table, RequestKind::Write),
            )
        })
    }
}

/// The exploration engine: an [`EdpModel`] plus a sweep configuration.
///
/// # Examples
///
/// ```no_run
/// use drmap_core::dse::{DseConfig, DseEngine};
/// use drmap_core::edp::EdpModel;
/// use drmap_cnn::prelude::*;
/// use drmap_dram::prelude::*;
///
/// let profiler = Profiler::table_ii()?;
/// let table = profiler.cost_table(DramArch::Salp2);
/// let model = EdpModel::new(Geometry::salp_2gb_x8(), table, AcceleratorConfig::table_ii());
/// let engine = DseEngine::new(model, DseConfig::default());
/// let result = engine.explore_network(&Network::alexnet())?;
/// assert!(result.layers[0].best.mapping.is_drmap());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct DseEngine {
    model: EdpModel,
    config: DseConfig,
}

impl DseEngine {
    /// Create an engine.
    pub fn new(model: EdpModel, config: DseConfig) -> Self {
        DseEngine { model, config }
    }

    /// The underlying analytical model.
    pub fn model(&self) -> &EdpModel {
        &self.model
    }

    /// The sweep configuration.
    pub fn config(&self) -> &DseConfig {
        &self.config
    }

    /// Wrap the engine in a thread-safe shared handle (see
    /// [`SharedEngine`]).
    pub fn into_shared(self) -> SharedEngine {
        std::sync::Arc::new(self)
    }

    /// Evaluate one explicit configuration (used by the figure harness).
    pub fn evaluate(
        &self,
        layer: &Layer,
        tiling: &Tiling,
        scheme: ReuseScheme,
        mapping: &MappingPolicy,
    ) -> EdpEstimate {
        self.model.layer_estimate(layer, tiling, scheme, mapping)
    }

    /// Minimum-EDP estimate over all feasible tilings for a fixed
    /// `(scheme, mapping)` — one bar of Fig. 9.
    ///
    /// # Errors
    ///
    /// Returns [`DseError`] if no tiling fits the buffers.
    pub fn best_over_tilings(
        &self,
        layer: &Layer,
        scheme: ReuseScheme,
        mapping: &MappingPolicy,
    ) -> Result<DseCandidate, DseError> {
        let acc = *self.model.traffic_model().accelerator();
        let tilings = enumerate_tilings(layer, &acc)?;
        let objective = self.config.objective;
        let mut best: Option<DseCandidate> = None;
        for tiling in tilings {
            let estimate = self.evaluate(layer, &tiling, scheme, mapping);
            let better = best
                .as_ref()
                .is_none_or(|b| objective.score(&estimate) < objective.score(&b.estimate));
            if better {
                best = Some(DseCandidate {
                    mapping: *mapping,
                    tiling,
                    scheme,
                    estimate,
                });
            }
        }
        best.ok_or_else(|| DseError::new("no feasible tiling"))
    }

    /// Number of feasible tilings of `layer` under this engine's
    /// accelerator — the size of the shardable axis of
    /// [`DseEngine::explore_layer_range`], counted without materializing
    /// the enumeration.
    ///
    /// # Errors
    ///
    /// Returns [`DseError`] if no tiling fits the buffers.
    pub fn tiling_count(&self, layer: &Layer) -> Result<usize, DseError> {
        count_tilings(layer, self.model.traffic_model().accelerator())
    }

    /// Algorithm 1 for one layer: sweep tilings × schemes × mappings.
    ///
    /// # Errors
    ///
    /// Returns [`DseError`] if no tiling fits the buffers or the sweep
    /// configuration is empty.
    pub fn explore_layer(&self, layer: &Layer) -> Result<LayerDseResult, DseError> {
        Ok(self
            .explore_layer_range(layer, 0..usize::MAX)?
            .into_result(layer.name.clone()))
    }

    /// Algorithm 1 restricted to a contiguous subrange of the layer's
    /// tiling enumeration (clamped to the enumeration's length): the
    /// unit of intra-layer sharding. Merging the partials of a disjoint
    /// cover of `0..tiling_count` in ascending range order and calling
    /// [`LayerPartial::into_result`] is bit-identical to
    /// [`DseEngine::explore_layer`].
    ///
    /// # Errors
    ///
    /// Returns [`DseError`] if no tiling fits the buffers or the sweep
    /// configuration is empty.
    pub fn explore_layer_range(
        &self,
        layer: &Layer,
        tiling_range: Range<usize>,
    ) -> Result<LayerPartial, DseError> {
        let acc = *self.model.traffic_model().accelerator();
        let tilings = enumerate_tilings(layer, &acc)?;
        self.explore_tilings_range(layer, &tilings, tiling_range)
    }

    /// [`DseEngine::explore_layer_range`] over a caller-supplied tiling
    /// enumeration, so workers sharding one layer can enumerate **once**
    /// and share the slice instead of re-enumerating per chunk.
    ///
    /// `tilings` must be (a prefix-identical copy of) this engine's
    /// [`enumerate_tilings`] output for the layer — merged partials
    /// equal the sequential sweep only when every range sweeps the same
    /// enumeration in the same order.
    ///
    /// # Errors
    ///
    /// Returns [`DseError`] if the sweep configuration is empty.
    pub fn explore_tilings_range(
        &self,
        layer: &Layer,
        tilings: &[Tiling],
        tiling_range: Range<usize>,
    ) -> Result<LayerPartial, DseError> {
        if self.config.schemes.is_empty() || self.config.mappings.is_empty() {
            return Err(DseError::new("empty scheme or mapping sweep"));
        }
        let acc = *self.model.traffic_model().accelerator();
        let start = tiling_range.start.min(tilings.len());
        let end = tiling_range.end.min(tilings.len()).max(start);
        let objective = self.config.objective;
        let keep_points = self.config.keep_points;
        let geometry = *self.model.geometry();
        let table = self.model.table();
        let traffic_model = self.model.traffic_model();
        let mut memo = CostMemo::new(self.config.mappings.len());
        let mut best: Option<DseCandidate> = None;
        let mut evaluations = 0usize;
        let mut front = ParetoFront::new();
        for tiling in &tilings[start..end] {
            // Hoisted per tiling: tile footprints in DRAM bursts.
            let units = [
                bytes_to_bursts(tiling.tile_bytes(layer, &acc, DataKind::Ifms), &geometry),
                bytes_to_bursts(tiling.tile_bytes(layer, &acc, DataKind::Wghs), &geometry),
                bytes_to_bursts(tiling.tile_bytes(layer, &acc, DataKind::Ofms), &geometry),
            ];
            for &scheme in &self.config.schemes {
                // Hoisted per (tiling, scheme): adaptive resolution and
                // tile-fetch counts — neither depends on the mapping.
                let (_, traffic) = traffic_model.resolved_traffic(layer, tiling, scheme);
                for (slot, mapping) in self.config.mappings.iter().enumerate() {
                    let (ifms_read, _) = memo.get(slot, mapping, &geometry, table, units[0]);
                    let (wghs_read, _) = memo.get(slot, mapping, &geometry, table, units[1]);
                    let (ofms_read, ofms_write) =
                        memo.get(slot, mapping, &geometry, table, units[2]);
                    // Same accumulation order as EdpModel::layer_breakdown,
                    // term by term, so estimates stay bit-identical to the
                    // unmemoized path.
                    let estimate = EdpEstimate {
                        cycles: ifms_read.cycles * traffic.ifms_loads as f64
                            + wghs_read.cycles * traffic.wghs_loads as f64
                            + ofms_read.cycles * traffic.ofms_loads as f64
                            + ofms_write.cycles * traffic.ofms_stores as f64,
                        energy: ifms_read.energy * traffic.ifms_loads as f64
                            + wghs_read.energy * traffic.wghs_loads as f64
                            + ofms_read.energy * traffic.ofms_loads as f64
                            + ofms_write.energy * traffic.ofms_stores as f64,
                        t_ck_ns: table.t_ck_ns,
                    };
                    evaluations += 1;
                    if keep_points {
                        front.insert(
                            estimate,
                            CandidateTag {
                                mapping: *mapping,
                                scheme,
                                tiling: *tiling,
                            },
                        );
                    }
                    let better = best
                        .as_ref()
                        .is_none_or(|b| objective.score(&estimate) < objective.score(&b.estimate));
                    if better {
                        best = Some(DseCandidate {
                            mapping: *mapping,
                            tiling: *tiling,
                            scheme,
                            estimate,
                        });
                    }
                }
            }
        }
        Ok(LayerPartial {
            objective,
            evaluations,
            best,
            front,
        })
    }

    /// Algorithm 1 for a whole network: layers are claimed from a shared
    /// counter by a bounded crew of worker threads (at most the machine's
    /// available parallelism), so a thousand-layer network no longer
    /// spawns a thousand threads. Results are reassembled in layer order
    /// and are bit-identical to a sequential run.
    ///
    /// # Errors
    ///
    /// Propagates the first per-layer failure (in layer order).
    pub fn explore_network(&self, network: &Network) -> Result<NetworkDseResult, DseError> {
        let layers = network.layers();
        let workers = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .min(layers.len())
            .max(1);
        let next = AtomicUsize::new(0);
        let mut gathered: Vec<Option<Result<LayerDseResult, DseError>>> =
            (0..layers.len()).map(|_| None).collect();
        std::thread::scope(|scope| {
            let next = &next;
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(move || {
                        let mut claimed = Vec::new();
                        loop {
                            // ordering: Relaxed — a work-claim ticket
                            // over the immutable `layers` slice; results
                            // are returned via join, which synchronizes.
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= layers.len() {
                                return claimed;
                            }
                            claimed.push((i, self.explore_layer(&layers[i])));
                        }
                    })
                })
                .collect();
            for handle in handles {
                for (i, result) in handle.join().expect("DSE worker panicked") {
                    gathered[i] = Some(result);
                }
            }
        });

        let mut layers_out = Vec::with_capacity(layers.len());
        let mut total = EdpEstimate::zero(self.model.table().t_ck_ns);
        for slot in gathered {
            let r = slot.expect("every claimed layer reports a result")?;
            total.accumulate(&r.best.estimate);
            layers_out.push(r);
        }
        Ok(NetworkDseResult {
            layers: layers_out,
            total,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drmap_cnn::accelerator::AcceleratorConfig;
    use drmap_dram::geometry::Geometry;
    use drmap_dram::profiler::{AccessCost, AccessCostTable};
    use drmap_dram::timing::DramArch;

    /// A cost table with the qualitative ordering the hardware produces:
    /// columns cheapest, banks next, subarrays dearer, rows dearest.
    fn ordered_table() -> AccessCostTable {
        let mk = |cycles: f64, energy: f64| AccessCost {
            cycles,
            energy: energy * 1e-9,
        };
        AccessCostTable::from_costs(
            DramArch::Ddr3,
            [mk(4.2, 1.2), mk(6.0, 2.0), mk(40.0, 5.5), mk(42.0, 5.8)],
            [mk(4.2, 1.1), mk(6.5, 2.1), mk(44.0, 5.6), mk(46.0, 5.9)],
            1.25,
        )
    }

    fn engine(config: DseConfig) -> DseEngine {
        DseEngine::new(
            EdpModel::new(
                Geometry::salp_2gb_x8(),
                ordered_table(),
                AcceleratorConfig::table_ii(),
            ),
            config,
        )
    }

    fn conv3() -> Layer {
        Layer::conv("CONV3", 13, 13, 384, 256, 3, 3, 1)
    }

    #[test]
    fn explore_layer_finds_drmap_under_ordered_costs() {
        let e = engine(DseConfig::default());
        let r = e.explore_layer(&conv3()).unwrap();
        assert!(
            r.best.mapping.is_drmap() || r.best.mapping.index() == 1,
            "expected a column-innermost mapping, got {}",
            r.best.mapping
        );
        assert!(r.evaluations > 0);
    }

    #[test]
    fn best_over_tilings_beats_fixed_tiling() {
        let e = engine(DseConfig::default());
        let layer = conv3();
        let best = e
            .best_over_tilings(&layer, ReuseScheme::OfmsReuse, &MappingPolicy::drmap())
            .unwrap();
        let fixed = Tiling::new(13, 13, 16, 16);
        let fixed_est = e.evaluate(
            &layer,
            &fixed,
            ReuseScheme::OfmsReuse,
            &MappingPolicy::drmap(),
        );
        assert!(best.estimate.edp() <= fixed_est.edp());
    }

    #[test]
    fn explore_network_accumulates_totals() {
        let e = engine(DseConfig::default());
        let net = drmap_cnn::network::Network::tiny();
        let r = e.explore_network(&net).unwrap();
        assert_eq!(r.layers.len(), net.layers().len());
        let sum: f64 = r.layers.iter().map(|l| l.best.estimate.energy).sum();
        assert!((r.total.energy - sum).abs() / sum < 1e-12);
        assert!(r.total_edp() > 0.0);
    }

    #[test]
    fn empty_sweep_is_an_error() {
        let e = engine(DseConfig {
            schemes: vec![],
            ..DseConfig::default()
        });
        assert!(e.explore_layer(&conv3()).is_err());
    }

    #[test]
    fn keep_points_builds_pareto_front() {
        let e = engine(DseConfig {
            keep_points: true,
            ..DseConfig::default()
        });
        let r = e.explore_layer(&conv3()).unwrap();
        assert!(!r.pareto.is_empty());
        assert!(r.pareto.len() <= r.evaluations);
        // The best-EDP candidate need not be on the extreme ends, but the
        // front must contain a point no worse than it in both coordinates.
        let best = &r.best.estimate;
        assert!(r
            .pareto
            .iter()
            .any(|p| p.estimate.energy <= best.energy * 1.0001
                || p.estimate.cycles <= best.cycles * 1.0001));
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let e = engine(DseConfig::default());
        let net = drmap_cnn::network::Network::tiny();
        let parallel = e.explore_network(&net).unwrap();
        let mut total = EdpEstimate::zero(1.25);
        for layer in net.layers() {
            total.accumulate(&e.explore_layer(layer).unwrap().best.estimate);
        }
        assert!((parallel.total.energy - total.energy).abs() / total.energy < 1e-12);
        assert!((parallel.total.cycles - total.cycles).abs() / total.cycles < 1e-12);
    }

    #[test]
    fn objective_scores_are_consistent() {
        let e = EdpEstimate {
            cycles: 800.0,
            energy: 2.0,
            t_ck_ns: 1.25,
        };
        let t = e.seconds();
        assert_eq!(Objective::Edp.score(&e), 2.0 * t);
        assert_eq!(Objective::Energy.score(&e), 2.0);
        assert_eq!(Objective::Delay.score(&e), t);
        assert_eq!(Objective::Ed2p.score(&e), 2.0 * t * t);
    }

    #[test]
    fn objectives_can_change_the_winner() {
        // Delay-only exploration must find a configuration at least as
        // fast as the EDP winner; energy-only at least as frugal.
        let layer = conv3();
        let edp_best = engine(DseConfig::default())
            .explore_layer(&layer)
            .unwrap()
            .best;
        let delay_best = engine(DseConfig {
            objective: Objective::Delay,
            ..DseConfig::default()
        })
        .explore_layer(&layer)
        .unwrap()
        .best;
        let energy_best = engine(DseConfig {
            objective: Objective::Energy,
            ..DseConfig::default()
        })
        .explore_layer(&layer)
        .unwrap()
        .best;
        assert!(delay_best.estimate.cycles <= edp_best.estimate.cycles * 1.0001);
        assert!(energy_best.estimate.energy <= edp_best.estimate.energy * 1.0001);
    }

    #[test]
    fn engine_handles_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DseEngine>();
        assert_send_sync::<SharedEngine>();
        let shared = engine(DseConfig::default()).into_shared();
        let layer = conv3();
        let direct = shared.explore_layer(&layer).unwrap();
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let shared = std::sync::Arc::clone(&shared);
                let layer = layer.clone();
                std::thread::spawn(move || shared.explore_layer(&layer).unwrap())
            })
            .collect();
        for t in threads {
            let r = t.join().unwrap();
            assert_eq!(r.best, direct.best);
        }
    }

    #[test]
    fn cache_key_ignores_name_but_not_shape_or_config() {
        let acc = AcceleratorConfig::table_ii();
        let config = DseConfig::default();
        let a = layer_cache_key("SALP-2", &conv3(), &acc, &config);
        let renamed = Layer::conv("OTHER", 13, 13, 384, 256, 3, 3, 1);
        assert_eq!(a, layer_cache_key("SALP-2", &renamed, &acc, &config));

        let reshaped = Layer::conv("CONV3", 13, 13, 384, 256, 3, 3, 2);
        assert_ne!(a, layer_cache_key("SALP-2", &reshaped, &acc, &config));
        assert_ne!(a, layer_cache_key("DDR3", &conv3(), &acc, &config));

        let delay = DseConfig {
            objective: Objective::Delay,
            ..DseConfig::default()
        };
        assert_ne!(a, layer_cache_key("SALP-2", &conv3(), &acc, &delay));

        let mut wide = acc;
        wide.ifms_buffer *= 2;
        assert_ne!(a, layer_cache_key("SALP-2", &conv3(), &wide, &config));
    }

    #[test]
    fn fingerprint_tracks_sweep_contents() {
        let d = DseConfig::default();
        let fp = d.fingerprint();
        assert!(fp.contains("obj=edp"));
        assert!(fp.contains("adaptive-reuse"));
        let reduced = DseConfig {
            schemes: vec![ReuseScheme::OfmsReuse],
            ..DseConfig::default()
        };
        assert_ne!(fp, reduced.fingerprint());
    }

    #[test]
    fn objective_labels_round_trip() {
        for o in Objective::ALL {
            assert_eq!(Objective::from_label(o.label()), Some(o));
        }
        assert_eq!(Objective::from_label("bogus"), None);
    }

    /// The pre-pipeline sweep, re-derived from the public single-point
    /// evaluator: the reference the hoisted/memoized hot loop must match
    /// bit for bit.
    fn naive_explore(e: &DseEngine, layer: &Layer) -> LayerDseResult {
        let acc = *e.model().traffic_model().accelerator();
        let tilings = enumerate_tilings(layer, &acc).unwrap();
        let objective = e.config().objective;
        let mut best: Option<DseCandidate> = None;
        let mut evaluations = 0usize;
        let mut points = Vec::new();
        for tiling in &tilings {
            for &scheme in &e.config().schemes {
                for mapping in &e.config().mappings {
                    let estimate = e.evaluate(layer, tiling, scheme, mapping);
                    evaluations += 1;
                    if e.config().keep_points {
                        points.push(crate::pareto::DesignPoint::new(
                            format!("{} | {} | {}", mapping.name(), scheme, tiling),
                            estimate,
                        ));
                    }
                    let better = best
                        .as_ref()
                        .is_none_or(|b| objective.score(&estimate) < objective.score(&b.estimate));
                    if better {
                        best = Some(DseCandidate {
                            mapping: *mapping,
                            tiling: *tiling,
                            scheme,
                            estimate,
                        });
                    }
                }
            }
        }
        LayerDseResult {
            layer_name: layer.name.clone(),
            best: best.unwrap(),
            evaluations,
            pareto: crate::pareto::pareto_front(&points),
        }
    }

    fn assert_results_bit_identical(a: &LayerDseResult, b: &LayerDseResult) {
        assert_eq!(a.best.mapping, b.best.mapping);
        assert_eq!(a.best.scheme, b.best.scheme);
        assert_eq!(a.best.tiling, b.best.tiling);
        assert_eq!(
            a.best.estimate.cycles.to_bits(),
            b.best.estimate.cycles.to_bits()
        );
        assert_eq!(
            a.best.estimate.energy.to_bits(),
            b.best.estimate.energy.to_bits()
        );
        assert_eq!(a.evaluations, b.evaluations);
        assert_eq!(a.pareto.len(), b.pareto.len());
        for (p, q) in a.pareto.iter().zip(&b.pareto) {
            assert_eq!(p.label, q.label);
            assert_eq!(p.estimate.cycles.to_bits(), q.estimate.cycles.to_bits());
            assert_eq!(p.estimate.energy.to_bits(), q.estimate.energy.to_bits());
        }
    }

    #[test]
    fn pipelined_sweep_matches_naive_evaluation_bit_exactly() {
        for objective in Objective::ALL {
            for keep_points in [false, true] {
                let e = engine(DseConfig {
                    objective,
                    keep_points,
                    ..DseConfig::default()
                });
                let layer = conv3();
                assert_results_bit_identical(
                    &e.explore_layer(&layer).unwrap(),
                    &naive_explore(&e, &layer),
                );
            }
        }
    }

    #[test]
    fn merged_range_partials_match_sequential_bit_exactly() {
        let e = engine(DseConfig {
            keep_points: true,
            ..DseConfig::default()
        });
        let layer = conv3();
        let whole = e.explore_layer(&layer).unwrap();
        let n = e.tiling_count(&layer).unwrap();
        assert!(n > 3, "need a non-trivial enumeration, got {n}");
        for cuts in [vec![n / 2], vec![1, n - 1], vec![n / 3, 2 * n / 3], vec![]] {
            let mut bounds = vec![0usize];
            bounds.extend(cuts);
            bounds.push(n);
            let mut merged: Option<LayerPartial> = None;
            for pair in bounds.windows(2) {
                let partial = e.explore_layer_range(&layer, pair[0]..pair[1]).unwrap();
                merged = Some(match merged {
                    None => partial,
                    Some(mut m) => {
                        m.merge(partial);
                        m
                    }
                });
            }
            let merged = merged.unwrap().into_result(layer.name.clone());
            assert_results_bit_identical(&merged, &whole);
        }
    }

    #[test]
    fn ranges_clamp_and_empty_partials_merge() {
        let e = engine(DseConfig::default());
        let layer = conv3();
        let n = e.tiling_count(&layer).unwrap();
        let empty = e.explore_layer_range(&layer, n..n + 10).unwrap();
        assert_eq!(empty.evaluations(), 0);
        assert!(empty.best().is_none());
        let mut all = e.explore_layer_range(&layer, 0..n).unwrap();
        let best_before = all.best().cloned().unwrap();
        all.merge(empty);
        assert_eq!(all.best().unwrap(), &best_before);
        let mut from_empty = e.explore_layer_range(&layer, n..n).unwrap();
        from_empty.merge(e.explore_layer_range(&layer, 0..n).unwrap());
        assert_eq!(from_empty.best().unwrap().estimate, best_before.estimate);
        // An inverted range clamps to empty rather than panicking.
        #[allow(clippy::reversed_empty_ranges)]
        let inverted = e.explore_layer_range(&layer, 5..2).unwrap();
        assert_eq!(inverted.evaluations(), 0);
    }

    #[test]
    fn tiling_count_matches_enumeration_len() {
        let e = engine(DseConfig::default());
        let layer = conv3();
        let acc = *e.model().traffic_model().accelerator();
        assert_eq!(
            e.tiling_count(&layer).unwrap(),
            enumerate_tilings(&layer, &acc).unwrap().len()
        );
    }

    #[test]
    fn mapping2_never_beats_drmap_under_ordered_costs() {
        let e = engine(DseConfig::default());
        let layer = conv3();
        for scheme in ReuseScheme::ALL {
            let m2 = e
                .best_over_tilings(&layer, scheme, &MappingPolicy::table_i_policy(2))
                .unwrap();
            let m3 = e
                .best_over_tilings(&layer, scheme, &MappingPolicy::drmap())
                .unwrap();
            assert!(
                m3.estimate.edp() <= m2.estimate.edp(),
                "{scheme}: DRMap {} vs Mapping-2 {}",
                m3.estimate.edp(),
                m2.estimate.edp()
            );
        }
    }
}
