//! The design-space exploration engine: Algorithm 1 of the paper.
//!
//! For each layer, the DSE sweeps every feasible layer partitioning
//! (tiling), every scheduling scheme, and every DRAM mapping policy,
//! evaluates the analytical EDP model, and keeps the minimum-EDP
//! configuration. Layers are independent and explored in parallel.

use core::fmt;

use drmap_cnn::layer::Layer;
use drmap_cnn::network::Network;

use crate::edp::{EdpEstimate, EdpModel};
use crate::error::DseError;
use crate::mapping::MappingPolicy;
use crate::pareto::{pareto_front, DesignPoint};
use crate::schedule::ReuseScheme;
use crate::tiling::{enumerate_tilings, Tiling};

/// Optimization objective for the exploration.
///
/// The paper minimizes EDP (Eq. 1); the alternatives let a deployment
/// weigh energy or latency differently without touching the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Objective {
    /// Energy × delay (the paper's Eq. 1).
    #[default]
    Edp,
    /// Energy only (battery-bound edge devices).
    Energy,
    /// Delay only (latency-bound inference).
    Delay,
    /// Energy × delay² (throughput-leaning metric).
    Ed2p,
}

impl Objective {
    /// All objectives.
    pub const ALL: [Objective; 4] = [
        Objective::Edp,
        Objective::Energy,
        Objective::Delay,
        Objective::Ed2p,
    ];

    /// Stable textual label (used in cache keys and wire formats).
    pub fn label(self) -> &'static str {
        match self {
            Objective::Edp => "edp",
            Objective::Energy => "energy",
            Objective::Delay => "delay",
            Objective::Ed2p => "ed2p",
        }
    }

    /// Parse a [`Objective::label`] string.
    pub fn from_label(label: &str) -> Option<Self> {
        Objective::ALL.into_iter().find(|o| o.label() == label)
    }

    /// Scalar score of an estimate under this objective (lower is better).
    pub fn score(self, estimate: &EdpEstimate) -> f64 {
        match self {
            Objective::Edp => estimate.edp(),
            Objective::Energy => estimate.energy,
            Objective::Delay => estimate.seconds(),
            Objective::Ed2p => estimate.energy * estimate.seconds() * estimate.seconds(),
        }
    }
}

/// Which schemes and mappings the DSE sweeps.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DseConfig {
    /// Scheduling schemes to consider (default: all four of the paper).
    pub schemes: Vec<ReuseScheme>,
    /// Mapping policies to consider (default: Table I's six).
    pub mappings: Vec<MappingPolicy>,
    /// Keep the full (energy, latency) point cloud for Pareto analysis.
    pub keep_points: bool,
    /// Optimization objective (default: EDP, the paper's Eq. 1).
    pub objective: Objective,
}

impl Default for DseConfig {
    fn default() -> Self {
        DseConfig {
            schemes: ReuseScheme::ALL.to_vec(),
            mappings: MappingPolicy::table_i().to_vec(),
            keep_points: false,
            objective: Objective::Edp,
        }
    }
}

impl DseConfig {
    /// Canonical, order-sensitive fingerprint of the sweep configuration.
    ///
    /// Two engines with equal fingerprints (and equal models) perform the
    /// same sweep in the same order, so their results are bit-identical —
    /// the property memoization caches rely on.
    pub fn fingerprint(&self) -> String {
        let schemes: Vec<&str> = self.schemes.iter().map(|s| s.label()).collect();
        let mappings: Vec<String> = self.mappings.iter().map(|m| m.name()).collect();
        format!(
            "obj={};schemes={};mappings={};points={}",
            self.objective.label(),
            schemes.join("+"),
            mappings.join("+"),
            self.keep_points,
        )
    }
}

/// A thread-safe, shareable handle to a [`DseEngine`].
///
/// The engine is immutable after construction and `Send + Sync`, so one
/// handle can serve any number of worker threads concurrently (the
/// job-server crate shards a network's layers across workers this way).
pub type SharedEngine = std::sync::Arc<DseEngine>;

/// Canonical memoization key for a single-layer exploration.
///
/// Captures everything that determines [`DseEngine::explore_layer`]'s
/// output **except the layer's name**: the layer shape, the accelerator
/// configuration (buffers bound the tiling enumeration; precision scales
/// traffic), the sweep configuration, and an `engine_tag` identifying the
/// profiled substrate (DRAM architecture, geometry, timing/energy
/// parameters). Identically shaped layers — e.g. VGG-16's repeated conv
/// blocks — therefore share one cache entry.
pub fn layer_cache_key(
    engine_tag: &str,
    layer: &Layer,
    acc: &drmap_cnn::accelerator::AcceleratorConfig,
    config: &DseConfig,
) -> String {
    format!(
        "{engine_tag}|h{}w{}j{}i{}p{}q{}s{}g{}|ib{}wb{}ob{}px{}b{}|{}",
        layer.h,
        layer.w,
        layer.j,
        layer.i,
        layer.p,
        layer.q,
        layer.stride,
        layer.groups,
        acc.ifms_buffer,
        acc.wghs_buffer,
        acc.ofms_buffer,
        acc.precision.bytes(),
        acc.batch,
        config.fingerprint(),
    )
}

/// One evaluated configuration.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DseCandidate {
    /// The mapping policy.
    pub mapping: MappingPolicy,
    /// The tiling.
    pub tiling: Tiling,
    /// The (possibly adaptive) scheduling scheme requested.
    pub scheme: ReuseScheme,
    /// The analytical estimate.
    pub estimate: EdpEstimate,
}

impl fmt::Display for DseCandidate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} | {} | {} -> {}",
            self.mapping, self.scheme, self.tiling, self.estimate
        )
    }
}

/// DSE output for one layer.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LayerDseResult {
    /// Layer name.
    pub layer_name: String,
    /// The minimum-EDP configuration (Algorithm 1's `map`, `minEDP`).
    pub best: DseCandidate,
    /// Number of configurations evaluated.
    pub evaluations: usize,
    /// Pareto front over (energy, latency), if `keep_points` was set.
    pub pareto: Vec<DesignPoint>,
}

/// DSE output for a whole network.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NetworkDseResult {
    /// Per-layer results, in network order.
    pub layers: Vec<LayerDseResult>,
    /// Sum of the per-layer best estimates (minimum total EDP components).
    pub total: EdpEstimate,
}

impl NetworkDseResult {
    /// Total EDP of the per-layer best configurations.
    pub fn total_edp(&self) -> f64 {
        self.total.edp()
    }
}

/// The exploration engine: an [`EdpModel`] plus a sweep configuration.
///
/// # Examples
///
/// ```no_run
/// use drmap_core::dse::{DseConfig, DseEngine};
/// use drmap_core::edp::EdpModel;
/// use drmap_cnn::prelude::*;
/// use drmap_dram::prelude::*;
///
/// let profiler = Profiler::table_ii()?;
/// let table = profiler.cost_table(DramArch::Salp2);
/// let model = EdpModel::new(Geometry::salp_2gb_x8(), table, AcceleratorConfig::table_ii());
/// let engine = DseEngine::new(model, DseConfig::default());
/// let result = engine.explore_network(&Network::alexnet())?;
/// assert!(result.layers[0].best.mapping.is_drmap());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct DseEngine {
    model: EdpModel,
    config: DseConfig,
}

impl DseEngine {
    /// Create an engine.
    pub fn new(model: EdpModel, config: DseConfig) -> Self {
        DseEngine { model, config }
    }

    /// The underlying analytical model.
    pub fn model(&self) -> &EdpModel {
        &self.model
    }

    /// The sweep configuration.
    pub fn config(&self) -> &DseConfig {
        &self.config
    }

    /// Wrap the engine in a thread-safe shared handle (see
    /// [`SharedEngine`]).
    pub fn into_shared(self) -> SharedEngine {
        std::sync::Arc::new(self)
    }

    /// Evaluate one explicit configuration (used by the figure harness).
    pub fn evaluate(
        &self,
        layer: &Layer,
        tiling: &Tiling,
        scheme: ReuseScheme,
        mapping: &MappingPolicy,
    ) -> EdpEstimate {
        self.model.layer_estimate(layer, tiling, scheme, mapping)
    }

    /// Minimum-EDP estimate over all feasible tilings for a fixed
    /// `(scheme, mapping)` — one bar of Fig. 9.
    ///
    /// # Errors
    ///
    /// Returns [`DseError`] if no tiling fits the buffers.
    pub fn best_over_tilings(
        &self,
        layer: &Layer,
        scheme: ReuseScheme,
        mapping: &MappingPolicy,
    ) -> Result<DseCandidate, DseError> {
        let acc = *self.model.traffic_model().accelerator();
        let tilings = enumerate_tilings(layer, &acc)?;
        let objective = self.config.objective;
        let mut best: Option<DseCandidate> = None;
        for tiling in tilings {
            let estimate = self.evaluate(layer, &tiling, scheme, mapping);
            let better = best
                .as_ref()
                .is_none_or(|b| objective.score(&estimate) < objective.score(&b.estimate));
            if better {
                best = Some(DseCandidate {
                    mapping: *mapping,
                    tiling,
                    scheme,
                    estimate,
                });
            }
        }
        best.ok_or_else(|| DseError::new("no feasible tiling"))
    }

    /// Algorithm 1 for one layer: sweep tilings × schemes × mappings.
    ///
    /// # Errors
    ///
    /// Returns [`DseError`] if no tiling fits the buffers or the sweep
    /// configuration is empty.
    pub fn explore_layer(&self, layer: &Layer) -> Result<LayerDseResult, DseError> {
        if self.config.schemes.is_empty() || self.config.mappings.is_empty() {
            return Err(DseError::new("empty scheme or mapping sweep"));
        }
        let acc = *self.model.traffic_model().accelerator();
        let tilings = enumerate_tilings(layer, &acc)?;
        let objective = self.config.objective;
        let mut best: Option<DseCandidate> = None;
        let mut evaluations = 0usize;
        let mut points = Vec::new();
        for tiling in &tilings {
            for &scheme in &self.config.schemes {
                for mapping in &self.config.mappings {
                    let estimate = self.evaluate(layer, tiling, scheme, mapping);
                    evaluations += 1;
                    if self.config.keep_points {
                        points.push(DesignPoint::new(
                            format!("{} | {} | {}", mapping.name(), scheme, tiling),
                            estimate,
                        ));
                    }
                    let better = best
                        .as_ref()
                        .is_none_or(|b| objective.score(&estimate) < objective.score(&b.estimate));
                    if better {
                        best = Some(DseCandidate {
                            mapping: *mapping,
                            tiling: *tiling,
                            scheme,
                            estimate,
                        });
                    }
                }
            }
        }
        Ok(LayerDseResult {
            layer_name: layer.name.clone(),
            best: best.expect("non-empty sweep produced no candidate"),
            evaluations,
            pareto: pareto_front(&points),
        })
    }

    /// Algorithm 1 for a whole network, layers explored in parallel.
    ///
    /// # Errors
    ///
    /// Propagates the first per-layer failure.
    pub fn explore_network(&self, network: &Network) -> Result<NetworkDseResult, DseError> {
        let layers = network.layers();
        let results: Vec<Result<LayerDseResult, DseError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = layers
                .iter()
                .map(|layer| scope.spawn(move || self.explore_layer(layer)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("DSE worker panicked"))
                .collect()
        });

        let mut layers_out = Vec::with_capacity(layers.len());
        let mut total = EdpEstimate::zero(self.model.table().t_ck_ns);
        for r in results {
            let r = r?;
            total.accumulate(&r.best.estimate);
            layers_out.push(r);
        }
        Ok(NetworkDseResult {
            layers: layers_out,
            total,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drmap_cnn::accelerator::AcceleratorConfig;
    use drmap_dram::geometry::Geometry;
    use drmap_dram::profiler::{AccessCost, AccessCostTable};
    use drmap_dram::timing::DramArch;

    /// A cost table with the qualitative ordering the hardware produces:
    /// columns cheapest, banks next, subarrays dearer, rows dearest.
    fn ordered_table() -> AccessCostTable {
        let mk = |cycles: f64, energy: f64| AccessCost {
            cycles,
            energy: energy * 1e-9,
        };
        AccessCostTable::from_costs(
            DramArch::Ddr3,
            [mk(4.2, 1.2), mk(6.0, 2.0), mk(40.0, 5.5), mk(42.0, 5.8)],
            [mk(4.2, 1.1), mk(6.5, 2.1), mk(44.0, 5.6), mk(46.0, 5.9)],
            1.25,
        )
    }

    fn engine(config: DseConfig) -> DseEngine {
        DseEngine::new(
            EdpModel::new(
                Geometry::salp_2gb_x8(),
                ordered_table(),
                AcceleratorConfig::table_ii(),
            ),
            config,
        )
    }

    fn conv3() -> Layer {
        Layer::conv("CONV3", 13, 13, 384, 256, 3, 3, 1)
    }

    #[test]
    fn explore_layer_finds_drmap_under_ordered_costs() {
        let e = engine(DseConfig::default());
        let r = e.explore_layer(&conv3()).unwrap();
        assert!(
            r.best.mapping.is_drmap() || r.best.mapping.index() == 1,
            "expected a column-innermost mapping, got {}",
            r.best.mapping
        );
        assert!(r.evaluations > 0);
    }

    #[test]
    fn best_over_tilings_beats_fixed_tiling() {
        let e = engine(DseConfig::default());
        let layer = conv3();
        let best = e
            .best_over_tilings(&layer, ReuseScheme::OfmsReuse, &MappingPolicy::drmap())
            .unwrap();
        let fixed = Tiling::new(13, 13, 16, 16);
        let fixed_est = e.evaluate(
            &layer,
            &fixed,
            ReuseScheme::OfmsReuse,
            &MappingPolicy::drmap(),
        );
        assert!(best.estimate.edp() <= fixed_est.edp());
    }

    #[test]
    fn explore_network_accumulates_totals() {
        let e = engine(DseConfig::default());
        let net = drmap_cnn::network::Network::tiny();
        let r = e.explore_network(&net).unwrap();
        assert_eq!(r.layers.len(), net.layers().len());
        let sum: f64 = r.layers.iter().map(|l| l.best.estimate.energy).sum();
        assert!((r.total.energy - sum).abs() / sum < 1e-12);
        assert!(r.total_edp() > 0.0);
    }

    #[test]
    fn empty_sweep_is_an_error() {
        let e = engine(DseConfig {
            schemes: vec![],
            ..DseConfig::default()
        });
        assert!(e.explore_layer(&conv3()).is_err());
    }

    #[test]
    fn keep_points_builds_pareto_front() {
        let e = engine(DseConfig {
            keep_points: true,
            ..DseConfig::default()
        });
        let r = e.explore_layer(&conv3()).unwrap();
        assert!(!r.pareto.is_empty());
        assert!(r.pareto.len() <= r.evaluations);
        // The best-EDP candidate need not be on the extreme ends, but the
        // front must contain a point no worse than it in both coordinates.
        let best = &r.best.estimate;
        assert!(r
            .pareto
            .iter()
            .any(|p| p.estimate.energy <= best.energy * 1.0001
                || p.estimate.cycles <= best.cycles * 1.0001));
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let e = engine(DseConfig::default());
        let net = drmap_cnn::network::Network::tiny();
        let parallel = e.explore_network(&net).unwrap();
        let mut total = EdpEstimate::zero(1.25);
        for layer in net.layers() {
            total.accumulate(&e.explore_layer(layer).unwrap().best.estimate);
        }
        assert!((parallel.total.energy - total.energy).abs() / total.energy < 1e-12);
        assert!((parallel.total.cycles - total.cycles).abs() / total.cycles < 1e-12);
    }

    #[test]
    fn objective_scores_are_consistent() {
        let e = EdpEstimate {
            cycles: 800.0,
            energy: 2.0,
            t_ck_ns: 1.25,
        };
        let t = e.seconds();
        assert_eq!(Objective::Edp.score(&e), 2.0 * t);
        assert_eq!(Objective::Energy.score(&e), 2.0);
        assert_eq!(Objective::Delay.score(&e), t);
        assert_eq!(Objective::Ed2p.score(&e), 2.0 * t * t);
    }

    #[test]
    fn objectives_can_change_the_winner() {
        // Delay-only exploration must find a configuration at least as
        // fast as the EDP winner; energy-only at least as frugal.
        let layer = conv3();
        let edp_best = engine(DseConfig::default())
            .explore_layer(&layer)
            .unwrap()
            .best;
        let delay_best = engine(DseConfig {
            objective: Objective::Delay,
            ..DseConfig::default()
        })
        .explore_layer(&layer)
        .unwrap()
        .best;
        let energy_best = engine(DseConfig {
            objective: Objective::Energy,
            ..DseConfig::default()
        })
        .explore_layer(&layer)
        .unwrap()
        .best;
        assert!(delay_best.estimate.cycles <= edp_best.estimate.cycles * 1.0001);
        assert!(energy_best.estimate.energy <= edp_best.estimate.energy * 1.0001);
    }

    #[test]
    fn engine_handles_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DseEngine>();
        assert_send_sync::<SharedEngine>();
        let shared = engine(DseConfig::default()).into_shared();
        let layer = conv3();
        let direct = shared.explore_layer(&layer).unwrap();
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let shared = std::sync::Arc::clone(&shared);
                let layer = layer.clone();
                std::thread::spawn(move || shared.explore_layer(&layer).unwrap())
            })
            .collect();
        for t in threads {
            let r = t.join().unwrap();
            assert_eq!(r.best, direct.best);
        }
    }

    #[test]
    fn cache_key_ignores_name_but_not_shape_or_config() {
        let acc = AcceleratorConfig::table_ii();
        let config = DseConfig::default();
        let a = layer_cache_key("SALP-2", &conv3(), &acc, &config);
        let renamed = Layer::conv("OTHER", 13, 13, 384, 256, 3, 3, 1);
        assert_eq!(a, layer_cache_key("SALP-2", &renamed, &acc, &config));

        let reshaped = Layer::conv("CONV3", 13, 13, 384, 256, 3, 3, 2);
        assert_ne!(a, layer_cache_key("SALP-2", &reshaped, &acc, &config));
        assert_ne!(a, layer_cache_key("DDR3", &conv3(), &acc, &config));

        let delay = DseConfig {
            objective: Objective::Delay,
            ..DseConfig::default()
        };
        assert_ne!(a, layer_cache_key("SALP-2", &conv3(), &acc, &delay));

        let mut wide = acc;
        wide.ifms_buffer *= 2;
        assert_ne!(a, layer_cache_key("SALP-2", &conv3(), &wide, &config));
    }

    #[test]
    fn fingerprint_tracks_sweep_contents() {
        let d = DseConfig::default();
        let fp = d.fingerprint();
        assert!(fp.contains("obj=edp"));
        assert!(fp.contains("adaptive-reuse"));
        let reduced = DseConfig {
            schemes: vec![ReuseScheme::OfmsReuse],
            ..DseConfig::default()
        };
        assert_ne!(fp, reduced.fingerprint());
    }

    #[test]
    fn objective_labels_round_trip() {
        for o in Objective::ALL {
            assert_eq!(Objective::from_label(o.label()), Some(o));
        }
        assert_eq!(Objective::from_label("bogus"), None);
    }

    #[test]
    fn mapping2_never_beats_drmap_under_ordered_costs() {
        let e = engine(DseConfig::default());
        let layer = conv3();
        for scheme in ReuseScheme::ALL {
            let m2 = e
                .best_over_tilings(&layer, scheme, &MappingPolicy::table_i_policy(2))
                .unwrap();
            let m3 = e
                .best_over_tilings(&layer, scheme, &MappingPolicy::drmap())
                .unwrap();
            assert!(
                m3.estimate.edp() <= m2.estimate.edp(),
                "{scheme}: DRMap {} vs Mapping-2 {}",
                m3.estimate.edp(),
                m2.estimate.edp()
            );
        }
    }
}
