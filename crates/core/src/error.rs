//! Error types for the DRMap core.

use core::fmt;

/// An invalid exploration input (tiling, policy, or configuration).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DseError {
    message: String,
}

impl DseError {
    /// Create an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        DseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for DseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid exploration input: {}", self.message)
    }
}

impl std::error::Error for DseError {}

impl From<drmap_dram::error::ConfigError> for DseError {
    fn from(e: drmap_dram::error::ConfigError) -> Self {
        DseError::new(e.to_string())
    }
}

impl From<drmap_cnn::error::ModelError> for DseError {
    fn from(e: drmap_cnn::error::ModelError) -> Self {
        DseError::new(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source_traits() {
        let e = DseError::new("no tiling fits the buffers");
        assert!(e.to_string().contains("no tiling"));
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<DseError>();
    }

    #[test]
    fn converts_from_substrate_errors() {
        let ce = drmap_dram::error::ConfigError::new("x");
        let de: DseError = ce.into();
        assert!(de.to_string().contains("x"));
        let me = drmap_cnn::error::ModelError::new("y");
        let de2: DseError = me.into();
        assert!(de2.to_string().contains("y"));
    }
}
