//! Crash-recovery and compaction integration tests for the persistent
//! store: a torn tail record must be truncated away, a flipped checksum
//! byte must invalidate exactly the damaged suffix, compaction must
//! preserve exactly the live key set, and the record codec must
//! round-trip arbitrary payloads.

use std::path::PathBuf;

use drmap_store::record::{encode_record, record_len, HEADER_LEN};
use drmap_store::store::Store;
use drmap_store::verify::verify;
use proptest::{prop_assert_eq, proptest, ProptestConfig};

fn temp_store_path(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("drmap-store-recovery-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("store.wal");
    let _ = std::fs::remove_file(&path);
    path
}

/// Build a store with `n` keyed records and return its path.
fn populated(tag: &str, n: usize) -> PathBuf {
    let path = temp_store_path(tag);
    let store = Store::open(&path).unwrap();
    for i in 0..n {
        store
            .put(
                &format!("key-{i:03}"),
                format!("value-payload-{i:03}").as_bytes(),
            )
            .unwrap();
    }
    drop(store);
    path
}

#[test]
fn a_truncated_tail_record_is_dropped_and_the_rest_survives() {
    let path = populated("torn-tail", 5);
    let clean_len = std::fs::metadata(&path).unwrap().len();
    // Tear the last record: chop 3 bytes off its value.
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();

    let report = verify(&path, false).unwrap();
    assert!(!report.is_clean());
    assert_eq!(report.records, 4);

    let store = Store::open(&path).unwrap();
    assert_eq!(store.len(), 4, "the torn record is gone, the rest live");
    for i in 0..4 {
        assert_eq!(
            store.get(&format!("key-{i:03}")).unwrap().unwrap(),
            format!("value-payload-{i:03}").as_bytes()
        );
    }
    assert_eq!(store.get("key-004").unwrap(), None);
    let stats = store.stats();
    assert!(stats.recovered_bytes > 0, "{stats:?}");
    // Recovery physically truncated the file to the last good record.
    let recovered_len = std::fs::metadata(&path).unwrap().len();
    let last_record = record_len("key-004".len(), "value-payload-004".len());
    assert_eq!(recovered_len, clean_len - last_record);
    // A recovered store accepts new appends and verifies clean again.
    store.put("key-004", b"rewritten").unwrap();
    drop(store);
    let report = verify(&path, false).unwrap();
    assert!(report.is_clean(), "{report:?}");
    assert_eq!(report.live_keys, 5);
}

#[test]
fn a_flipped_checksum_byte_invalidates_the_damaged_suffix() {
    let path = populated("flipped-crc", 6);
    // Flip one byte inside the 4th record's checksum field. Records are
    // fixed-size here: header + 3 records precede it.
    let record = record_len("key-000".len(), "value-payload-000".len());
    let target = (HEADER_LEN + 3 * record) as usize; // first CRC byte of record 3
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[target] ^= 0xA5;
    std::fs::write(&path, &bytes).unwrap();

    let report = verify(&path, false).unwrap();
    assert!(!report.is_clean());
    assert_eq!(report.records, 3, "scan stops at the first bad checksum");
    assert!(report.tail_error.unwrap().contains("checksum"));

    // Recovery truncates there: records 0..3 live, 3..6 are gone (the
    // documented contract — a WAL cannot trust anything after its first
    // broken record).
    let store = Store::open(&path).unwrap();
    assert_eq!(store.len(), 3);
    assert_eq!(
        std::fs::metadata(&path).unwrap().len(),
        HEADER_LEN + 3 * record
    );
    drop(store);
    assert!(verify(&path, false).unwrap().is_clean());
}

#[test]
fn compaction_preserves_exactly_the_live_key_set() {
    let path = temp_store_path("compact-live-set");
    let store = Store::open(&path).unwrap();
    // 12 keys, then overwrite 8 of them twice: 28 records, 16 dead
    // (>50% of the log is dead, the acceptance scenario).
    for i in 0..12 {
        store
            .put(&format!("k{i}"), format!("gen0-{i}").as_bytes())
            .unwrap();
    }
    for gen in 1..=2 {
        for i in 0..8 {
            store
                .put(&format!("k{i}"), format!("gen{gen}-{i}").as_bytes())
                .unwrap();
        }
    }
    let before = store.stats();
    assert_eq!(before.records, 28);
    assert_eq!(before.dead_records, 16);
    assert!(
        before.dead_bytes * 2 >= before.file_bytes - HEADER_LEN,
        "at least half the log must be dead: {before:?}"
    );
    assert!(
        verify(&path, false).unwrap().is_clean(),
        "verify passes before"
    );

    let expected: Vec<(String, Vec<u8>)> = (0..12)
        .map(|i| {
            let key = format!("k{i}");
            let value = store.get(&key).unwrap().unwrap();
            (key, value)
        })
        .collect();

    let report = store.compact().unwrap();
    assert_eq!(report.live_records, 12);
    assert_eq!(report.dropped_records, 16);
    assert!(report.bytes_after < report.bytes_before);

    assert!(
        verify(&path, false).unwrap().is_clean(),
        "verify passes after"
    );
    assert_eq!(store.len(), 12);
    for (key, value) in &expected {
        assert_eq!(store.get(key).unwrap().as_ref(), Some(value));
    }
    // And the same holds after a reopen of the compacted log.
    drop(store);
    let reopened = Store::open(&path).unwrap();
    assert_eq!(reopened.len(), 12);
    assert_eq!(reopened.stats().dead_records, 0);
    for (key, value) in &expected {
        assert_eq!(reopened.get(key).unwrap().as_ref(), Some(value));
    }
}

#[test]
fn an_empty_and_a_header_only_log_both_open() {
    let path = temp_store_path("empty");
    let store = Store::open(&path).unwrap();
    assert!(store.is_empty());
    drop(store);
    // Reopen the header-only file.
    let store = Store::open(&path).unwrap();
    assert!(store.is_empty());
    assert!(verify(&path, false).unwrap().is_clean());
}

/// An ASCII-ish key from raw bytes, so arbitrary byte vectors become
/// valid (and occasionally colliding) keys.
fn key_from(bytes: &[u8]) -> String {
    bytes.iter().map(|b| (b'a' + (b % 16)) as char).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The record codec round-trips arbitrary key/value pairs through a
    /// real file, and the store agrees with a plain HashMap replay.
    #[test]
    fn record_codec_round_trips(
        pairs in proptest::collection::vec(
            (
                proptest::collection::vec(0u8..255, 1..12),
                proptest::collection::vec(0u8..255, 0..200),
            ),
            1..24,
        )
    ) {
        // Pure codec round trip, concatenated in one buffer.
        let mut log = Vec::new();
        for (key_bytes, value) in &pairs {
            log.extend_from_slice(&encode_record(&key_from(key_bytes), value));
        }
        let mut reader = std::io::BufReader::new(&log[..]);
        for (key_bytes, value) in &pairs {
            match drmap_store::record::read_record(&mut reader).unwrap() {
                drmap_store::record::RecordRead::Record { key, value: got } => {
                    prop_assert_eq!(&key, &key_from(key_bytes));
                    prop_assert_eq!(&got, value);
                }
                other => panic!("expected a record, got {other:?}"),
            }
        }
        assert!(matches!(
            drmap_store::record::read_record(&mut reader).unwrap(),
            drmap_store::record::RecordRead::Eof
        ));

        // Store-level replay equivalence (including key collisions and
        // a reopen).
        let path = temp_store_path("proptest");
        let store = Store::open(&path).unwrap();
        let mut model = std::collections::HashMap::new();
        for (key_bytes, value) in &pairs {
            let key = key_from(key_bytes);
            store.put(&key, value).unwrap();
            model.insert(key, value.clone());
        }
        drop(store);
        let store = Store::open(&path).unwrap();
        prop_assert_eq!(store.len(), model.len());
        for (key, value) in &model {
            prop_assert_eq!(store.get(key).unwrap().as_ref(), Some(value));
        }
    }
}
