//! `drmap-store` — operate a persistent DSE result log offline.
//!
//! ```text
//! drmap-store stats   FILE            sizes, record counts, dead space
//! drmap-store ls      FILE            live keys and value sizes
//! drmap-store get     FILE KEY        decode and print one stored result
//! drmap-store slow    FILE [N]        decode persisted slow traces,
//!                                     newest first (all by default)
//! drmap-store compact FILE            rewrite the log without dead records
//! drmap-store verify  FILE [--decode] checksum-scan (exit 1 if damaged);
//!                                     --decode also decodes every value
//! ```
//!
//! All subcommands other than `compact` open the file strictly
//! read-only — they never create a missing file, never truncate a torn
//! tail, and are safe to run against a live server's log. `slow` reads
//! the reserved `~slow/` records the server persists for requests over
//! its `--slow-ms` threshold — the offline view of the `slow-traces`
//! admin verb, usable for a post-mortem even when the server is down.

use std::process::ExitCode;

use drmap_core::bytes::decode_stored_result;
use drmap_store::store::{Store, SLOW_TRACE_KEY_PREFIX};
use drmap_store::verify::verify;
use drmap_telemetry::SlowEntry;

const USAGE: &str = "usage: drmap-store <stats|ls|get|slow|compact|verify> FILE [KEY|N] [--decode]";

fn main() -> ExitCode {
    match run() {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("drmap-store: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return Ok(true);
    }
    let (command, rest) = args.split_first().ok_or(USAGE.to_owned())?;
    let (file, rest) = rest
        .split_first()
        .ok_or(format!("{command} needs FILE\n{USAGE}"))?;
    match command.as_str() {
        "stats" => cmd_stats(file),
        "ls" => cmd_ls(file),
        "get" => {
            let (key, _) = rest
                .split_first()
                .ok_or(format!("get needs FILE KEY\n{USAGE}"))?;
            cmd_get(file, key)
        }
        "slow" => {
            let limit = match rest.first() {
                Some(n) => Some(
                    n.parse::<usize>()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or(format!("slow takes a positive count, got {n:?}"))?,
                ),
                None => None,
            };
            cmd_slow(file, limit)
        }
        "compact" => cmd_compact(file),
        "verify" => {
            let decode = rest.iter().any(|a| a == "--decode");
            cmd_verify(file, decode)
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    }
}

fn cmd_stats(file: &str) -> Result<bool, String> {
    let store = Store::open_read_only(file).map_err(|e| e.to_string())?;
    let s = store.stats();
    println!("log:             {file}");
    println!("file bytes:      {}", s.file_bytes);
    println!("live entries:    {}", s.live_entries);
    println!("records:         {} ({} dead)", s.records, s.dead_records);
    println!("live value bytes: {}", s.live_value_bytes);
    println!("dead bytes:      {}", s.dead_bytes);
    if s.recovered_bytes > 0 {
        println!(
            "damaged tail:    {} torn/corrupt bytes (not indexed; a writable \
             open would truncate them)",
            s.recovered_bytes
        );
    }
    Ok(true)
}

fn cmd_ls(file: &str) -> Result<bool, String> {
    use std::io::Write;
    let store = Store::open_read_only(file).map_err(|e| e.to_string())?;
    // Write through a handle so `drmap-store ls … | head` ends quietly
    // on a closed pipe instead of panicking.
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for (key, len) in store.entries() {
        if writeln!(out, "{len:>10}  {key}").is_err() {
            break;
        }
    }
    Ok(true)
}

fn cmd_get(file: &str, key: &str) -> Result<bool, String> {
    let store = Store::open_read_only(file).map_err(|e| e.to_string())?;
    let Some(value) = store.get(key).map_err(|e| e.to_string())? else {
        return Err(format!("no such key {key:?}"));
    };
    match decode_stored_result(&value) {
        Ok((result, compute_ns)) => {
            println!("key:         {key}");
            println!("layer:       {}", result.layer_name);
            println!("best:        {}", result.best);
            println!("evaluations: {}", result.evaluations);
            println!("pareto:      {} points", result.pareto.len());
            println!("computed in: {:.3} ms", compute_ns as f64 / 1e6);
        }
        Err(e) => {
            println!("key:        {key}");
            println!(
                "value:      {} bytes (not a stored DSE result: {e})",
                value.len()
            );
        }
    }
    Ok(true)
}

fn cmd_slow(file: &str, limit: Option<usize>) -> Result<bool, String> {
    let store = Store::open_read_only(file).map_err(|e| e.to_string())?;
    let mut traces: Vec<(u64, u64, SlowEntry)> = Vec::new();
    let mut undecodable = 0usize;
    for key in store.keys_with_prefix(SLOW_TRACE_KEY_PREFIX) {
        let Some(value) = store.get(&key).map_err(|e| e.to_string())? else {
            continue;
        };
        match SlowEntry::decode_record(&value) {
            Some(decoded) => traces.push(decoded),
            None => undecodable += 1,
        }
    }
    // Newest persisted trace first, regardless of slot order.
    traces.sort_by_key(|t| std::cmp::Reverse(t.0));
    if let Some(limit) = limit {
        traces.truncate(limit);
    }
    if traces.is_empty() && undecodable == 0 {
        println!("no persisted slow traces (server runs with --slow-ms to capture them)");
        return Ok(true);
    }
    for (seq, unix_ms, entry) in &traces {
        let stages: Vec<String> = entry
            .stages
            .iter()
            .map(|(stage, ns)| format!("{stage} {:.2}ms", *ns as f64 / 1e6))
            .collect();
        println!(
            "#{seq} job {} at unix_ms {unix_ms}: {:.2}ms total ({})",
            entry.trace_id,
            entry.total_ns as f64 / 1e6,
            stages.join(", "),
        );
    }
    if undecodable > 0 {
        println!("{undecodable} slow-trace record(s) were undecodable");
    }
    Ok(undecodable == 0)
}

fn cmd_compact(file: &str) -> Result<bool, String> {
    let store = Store::open(file).map_err(|e| e.to_string())?;
    let report = store.compact().map_err(|e| e.to_string())?;
    println!(
        "compacted {file}: {} -> {} bytes, kept {} live records, dropped {} dead",
        report.bytes_before, report.bytes_after, report.live_records, report.dropped_records,
    );
    Ok(true)
}

fn cmd_verify(file: &str, decode: bool) -> Result<bool, String> {
    let report = verify(file, decode).map_err(|e| e.to_string())?;
    println!(
        "{file}: {} records ({} live keys, {} dead), {}/{} bytes valid",
        report.records,
        report.live_keys,
        report.dead_records,
        report.valid_bytes,
        report.file_bytes,
    );
    if decode {
        println!(
            "decoded: {} ok, {} undecodable",
            report.decoded, report.undecodable
        );
    }
    match &report.tail_error {
        Some(reason) => println!("DAMAGED: {reason}"),
        None => println!("clean"),
    }
    Ok(report.is_clean())
}
