//! The embedded store: an append-only log plus an in-memory index.
//!
//! [`Store::open`] replays the log front to back, keeping the **last**
//! record per key (append-only updates supersede, never overwrite) and
//! truncating at the first torn or corrupt record — the crash-recovery
//! contract of the record format. After open, the index maps every live
//! key to its value's file offset; [`Store::get`] reads exactly the
//! value bytes back (re-verifying their checksum against bit rot) and
//! [`Store::put`] appends a new record and repoints the index.
//!
//! Concurrency: the store is `Send + Sync`. Reads share one `RwLock`
//! read guard and use positioned reads, so any number of threads can
//! `get` concurrently; `put` and [`Store::compact`] take the write
//! guard. Appends go through a single handle whose offset only the
//! write guard advances, so records can never interleave.
//!
//! Durability: a `put` hands the record to the OS immediately but does
//! not `fsync`; a crash can lose the most recent appends yet never
//! corrupts the survivors (recovery truncates the torn tail).
//! [`Store::sync`] forces the log to stable storage; `compact` always
//! syncs before atomically swapping the rewritten log into place.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufReader, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::{Duration, Instant};

use drmap_telemetry::Histogram;

use crate::error::StoreError;
use crate::record::{
    check_header, encode_record, header, read_record, record_len, RecordRead, HEADER_LEN,
    MAX_KEY_BYTES, MAX_VALUE_BYTES,
};

/// Key prefix reserved for system records (slow traces, future
/// metadata). Reserved keys live in the same log and index as data
/// keys, but the warm-start surfaces — [`Store::keys_by_recency`] and
/// [`Store::bulk_load`] — skip them, so a cache warming from the store
/// never tries to decode a system record as a cached result. List them
/// explicitly with [`Store::keys_with_prefix`].
pub const RESERVED_KEY_PREFIX: &str = "~";

/// Reserved prefix under which slow-request traces persist (see
/// `drmap-serve --slow-ms` and the `slow-traces` admin verb). Values
/// are `SlowEntry` binary records
/// ([`drmap_telemetry::SlowEntry::encode_record`]).
pub const SLOW_TRACE_KEY_PREFIX: &str = "~slow/";

/// Where a live key's value lives in the log.
#[derive(Debug, Clone, Copy)]
struct IndexEntry {
    /// Offset of the value payload (not the record header).
    value_offset: u64,
    /// Value payload length.
    value_len: u32,
    /// CRC-32 of the value payload alone, re-checked on every `get`.
    value_crc: u32,
    /// Append sequence, for recency ordering across restarts.
    seq: u64,
}

/// Everything the store's one `RwLock` guards.
#[derive(Debug)]
struct State {
    file: File,
    index: HashMap<String, IndexEntry>,
    end_offset: u64,
    next_seq: u64,
    records: u64,
    dead_records: u64,
    dead_bytes: u64,
    live_value_bytes: u64,
    appends: u64,
    compactions: u64,
    recovered_bytes: u64,
}

/// Counters and sizes, captured in one consistent snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Distinct live keys.
    pub live_entries: usize,
    /// Records currently in the log (live + superseded).
    pub records: u64,
    /// Superseded records still occupying log space.
    pub dead_records: u64,
    /// Log size in bytes (header + records).
    pub file_bytes: u64,
    /// Bytes of live value payloads.
    pub live_value_bytes: u64,
    /// Bytes occupied by superseded records.
    pub dead_bytes: u64,
    /// Records appended since open.
    pub appends: u64,
    /// Lookups since open.
    pub gets: u64,
    /// Lookups that found a live key.
    pub hits: u64,
    /// Compactions run since open.
    pub compactions: u64,
    /// Torn/corrupt tail bytes truncated during open (read-only opens
    /// leave the file alone and merely skip these bytes).
    pub recovered_bytes: u64,
}

/// What [`Store::bulk_load`] recovered.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BulkLoad {
    /// Live `(key, value)` pairs, newest first.
    pub entries: Vec<(String, Vec<u8>)>,
    /// Live values skipped because they failed their checksum (on-disk
    /// bit rot since the log was opened) — surface these to operators
    /// so corruption is visible at warm-start time, not first query.
    pub damaged: u64,
}

/// What [`Store::compact`] accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactReport {
    /// Live records carried into the rewritten log.
    pub live_records: u64,
    /// Superseded records dropped.
    pub dropped_records: u64,
    /// Log size before, in bytes.
    pub bytes_before: u64,
    /// Log size after, in bytes.
    pub bytes_after: u64,
}

/// WAL latency histograms attached by [`Store::attach_metrics`]:
/// positioned-read, append, and compaction durations in nanoseconds.
#[derive(Debug)]
struct StoreMetrics {
    read_ns: Arc<Histogram>,
    write_ns: Arc<Histogram>,
    compact_ns: Arc<Histogram>,
}

/// Which public store operation a [`FaultHook`] is being consulted for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreOp {
    /// [`Store::get`].
    Get,
    /// [`Store::put`].
    Put,
    /// [`Store::compact`].
    Compact,
}

impl StoreOp {
    /// Stable lowercase name, for error messages and metrics labels.
    pub fn label(self) -> &'static str {
        match self {
            StoreOp::Get => "get",
            StoreOp::Put => "put",
            StoreOp::Compact => "compact",
        }
    }
}

/// What an attached [`FaultHook`] asks an operation to do: fail with an
/// [`StoreError::Injected`] error, or stall by the given jitter before
/// proceeding. `None` from the hook means proceed untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDirective {
    /// Fail the operation with an injected error.
    Fail,
    /// Sleep this long, then run the operation normally.
    Delay(Duration),
}

/// A fault-injection callback consulted at the top of [`Store::get`],
/// [`Store::put`], and [`Store::compact`]. The store itself holds no
/// fault policy — the hook decides (deterministically seeded, in the
/// service layer), the store only obeys.
pub type FaultHook = Box<dyn Fn(StoreOp) -> Option<FaultDirective> + Send + Sync>;

/// A WAL-backed, content-addressed, crash-recovering key→bytes store.
pub struct Store {
    path: PathBuf,
    read_only: bool,
    state: RwLock<State>,
    gets: AtomicU64,
    hits: AtomicU64,
    metrics: OnceLock<StoreMetrics>,
    fault_hook: OnceLock<FaultHook>,
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Manual impl: the fault hook is an opaque closure.
        f.debug_struct("Store")
            .field("path", &self.path)
            .field("read_only", &self.read_only)
            .finish_non_exhaustive()
    }
}

/// Nanoseconds since `start`, saturating.
fn elapsed_ns(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

fn read_locked(lock: &RwLock<State>) -> RwLockReadGuard<'_, State> {
    lock.read().unwrap_or_else(|e| e.into_inner())
}

fn write_locked(lock: &RwLock<State>) -> RwLockWriteGuard<'_, State> {
    lock.write().unwrap_or_else(|e| e.into_inner())
}

/// Read exactly `buf.len()` bytes at `offset` without moving any shared
/// cursor, so concurrent readers never race.
#[cfg(unix)]
fn read_exact_at(file: &File, _path: &Path, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
    std::os::unix::fs::FileExt::read_exact_at(file, buf, offset)
}

/// Portable fallback: open a private handle and seek it.
#[cfg(not(unix))]
fn read_exact_at(_file: &File, path: &Path, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
    use std::io::Read;
    let mut file = File::open(path)?;
    file.seek(SeekFrom::Start(offset))?;
    file.read_exact(buf)
}

impl Store {
    /// Open (or create) the log at `path`, replaying it into an
    /// in-memory index. A torn or corrupt tail is truncated away —
    /// every record before it survives intact.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or a file that is not a drmap-store log
    /// (wrong magic/version).
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        Self::open_with(path, false)
    }

    /// Open an existing log without any right to modify it: the file is
    /// never created, a torn/corrupt tail is *ignored* rather than
    /// truncated (the bytes are reported in
    /// [`StoreStats::recovered_bytes`]), and [`Store::put`],
    /// [`Store::compact`], and [`Store::sync`] return errors. This is
    /// the mode for inspecting a log another process may be writing.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors (including a missing file) or a file that
    /// is not a drmap-store log.
    pub fn open_read_only(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        Self::open_with(path, true)
    }

    fn open_with(path: impl AsRef<Path>, read_only: bool) -> Result<Self, StoreError> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(!read_only)
            .create(!read_only)
            .truncate(false)
            .open(&path)?;
        let file_len = file.metadata()?.len();
        let mut recovered_bytes = 0u64;
        if file_len == 0 {
            if !read_only {
                file.write_all(&header())?;
                file.sync_all()?;
            }
        } else {
            let mut head = vec![0u8; HEADER_LEN.min(file_len) as usize];
            read_exact_at(&file, &path, &mut head, 0)?;
            check_header(&head).map_err(StoreError::Corrupt)?;
        }

        // Replay: last record per key wins; earlier ones are dead.
        let mut index: HashMap<String, IndexEntry> = HashMap::new();
        let mut offset = HEADER_LEN;
        let mut records = 0u64;
        let mut dead_records = 0u64;
        let mut dead_bytes = 0u64;
        let mut live_value_bytes = 0u64;
        let mut seq = 0u64;
        if file_len > HEADER_LEN {
            let mut scan = file.try_clone()?;
            scan.seek(SeekFrom::Start(HEADER_LEN))?;
            let mut reader = BufReader::new(scan);
            loop {
                match read_record(&mut reader)? {
                    RecordRead::Record { key, value } => {
                        let footprint = record_len(key.len(), value.len());
                        let entry = IndexEntry {
                            value_offset: offset + 12 + key.len() as u64,
                            value_len: value.len() as u32,
                            value_crc: crate::record::crc32(&[&value]),
                            seq,
                        };
                        seq += 1;
                        records += 1;
                        live_value_bytes += value.len() as u64;
                        if let Some(old) = index.insert(key.clone(), entry) {
                            dead_records += 1;
                            dead_bytes += record_len(key.len(), old.value_len as usize);
                            live_value_bytes -= u64::from(old.value_len);
                        }
                        offset += footprint;
                    }
                    RecordRead::Eof => break,
                    RecordRead::Corrupt { .. } => {
                        // Crash recovery: drop the bad tail. Everything
                        // at `offset` and beyond is gone; the index
                        // already holds only records before it. A
                        // read-only open must not touch the file — the
                        // "tail" may be another process's append still
                        // in flight — so it only skips the bytes.
                        recovered_bytes = file_len - offset;
                        if !read_only {
                            file.set_len(offset)?;
                            file.sync_all()?;
                        }
                        break;
                    }
                }
            }
        }
        file.seek(SeekFrom::Start(offset))?;
        Ok(Store {
            path,
            read_only,
            state: RwLock::new(State {
                file,
                index,
                end_offset: offset,
                next_seq: seq,
                records,
                dead_records,
                dead_bytes,
                live_value_bytes,
                appends: 0,
                compactions: 0,
                recovered_bytes,
            }),
            gets: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            metrics: OnceLock::new(),
            fault_hook: OnceLock::new(),
        })
    }

    /// Attach WAL latency histograms (read / append / compaction
    /// durations, nanoseconds). Recording is lock-free and the store
    /// runs unobserved — at zero cost — until this is called. A second
    /// attachment is ignored: the first handles win.
    pub fn attach_metrics(
        &self,
        read_ns: Arc<Histogram>,
        write_ns: Arc<Histogram>,
        compact_ns: Arc<Histogram>,
    ) {
        let _ = self.metrics.set(StoreMetrics {
            read_ns,
            write_ns,
            compact_ns,
        });
    }

    /// Attach a fault-injection hook consulted at the top of
    /// [`Store::get`], [`Store::put`], and [`Store::compact`]. Like
    /// [`Store::attach_metrics`], the first attachment wins and the
    /// store runs hook-free — at zero cost — until one is attached.
    pub fn attach_fault_hook(&self, hook: FaultHook) {
        let _ = self.fault_hook.set(hook);
    }

    /// Consult the fault hook (if any) for `op`: sleeps out a `Delay`
    /// directive, surfaces `Fail` as [`StoreError::Injected`].
    fn injected_fault(&self, op: StoreOp) -> Result<(), StoreError> {
        match self.fault_hook.get().and_then(|hook| hook(op)) {
            None => Ok(()),
            Some(FaultDirective::Delay(jitter)) => {
                std::thread::sleep(jitter);
                Ok(())
            }
            Some(FaultDirective::Fail) => Err(StoreError::injected(format!(
                "fault plan failed this {}",
                op.label()
            ))),
        }
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        read_locked(&self.state).index.len()
    }

    /// True when no live keys exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when `key` is live.
    pub fn contains(&self, key: &str) -> bool {
        read_locked(&self.state).index.contains_key(key)
    }

    /// Fetch the value last stored under `key`. Concurrent callers
    /// proceed in parallel (shared read lock, positioned reads).
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or a checksum mismatch on the value bytes
    /// (on-disk bit rot since the log was opened).
    pub fn get(&self, key: &str) -> Result<Option<Vec<u8>>, StoreError> {
        self.injected_fault(StoreOp::Get)?;
        let start = Instant::now();
        let result = self.get_inner(key);
        if let Some(m) = self.metrics.get() {
            m.read_ns.record(elapsed_ns(start));
        }
        result
    }

    fn get_inner(&self, key: &str) -> Result<Option<Vec<u8>>, StoreError> {
        // ordering: Relaxed — `gets`/`hits` are statistics counters
        // only; no reader infers anything about the log from them.
        self.gets.fetch_add(1, Ordering::Relaxed);
        let state = read_locked(&self.state);
        let Some(entry) = state.index.get(key).copied() else {
            return Ok(None);
        };
        let mut value = vec![0u8; entry.value_len as usize];
        read_exact_at(&state.file, &self.path, &mut value, entry.value_offset)?;
        drop(state);
        let crc = crate::record::crc32(&[&value]);
        if crc != entry.value_crc {
            return Err(StoreError::corrupt(format!(
                "value of key {key:?} fails its checksum (stored {:#010x}, read {crc:#010x})",
                entry.value_crc
            )));
        }
        // ordering: Relaxed — statistics counter, see `gets` above.
        self.hits.fetch_add(1, Ordering::Relaxed);
        Ok(Some(value))
    }

    /// Append `value` under `key`, superseding any earlier record. The
    /// bytes reach the OS before `put` returns but are not `fsync`ed
    /// (see the module docs on durability).
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, payloads beyond the format's size caps, or
    /// a store opened read-only.
    pub fn put(&self, key: &str, value: &[u8]) -> Result<(), StoreError> {
        self.injected_fault(StoreOp::Put)?;
        let start = Instant::now();
        let result = self.put_inner(key, value);
        if let Some(m) = self.metrics.get() {
            m.write_ns.record(elapsed_ns(start));
        }
        result
    }

    fn put_inner(&self, key: &str, value: &[u8]) -> Result<(), StoreError> {
        self.check_writable()?;
        if key.len() > MAX_KEY_BYTES {
            return Err(StoreError::invalid(format!(
                "key of {} bytes exceeds the {MAX_KEY_BYTES}-byte cap",
                key.len()
            )));
        }
        if value.len() > MAX_VALUE_BYTES {
            return Err(StoreError::invalid(format!(
                "value of {} bytes exceeds the {MAX_VALUE_BYTES}-byte cap",
                value.len()
            )));
        }
        let record = encode_record(key, value);
        let mut state = write_locked(&self.state);
        let offset = state.end_offset;
        state.file.seek(SeekFrom::Start(offset))?;
        state.file.write_all(&record)?;
        state.end_offset += record.len() as u64;
        let entry = IndexEntry {
            value_offset: offset + 12 + key.len() as u64,
            value_len: value.len() as u32,
            value_crc: crate::record::crc32(&[value]),
            seq: state.next_seq,
        };
        state.next_seq += 1;
        state.records += 1;
        state.appends += 1;
        state.live_value_bytes += value.len() as u64;
        if let Some(old) = state.index.insert(key.to_owned(), entry) {
            state.dead_records += 1;
            state.dead_bytes += record_len(key.len(), old.value_len as usize);
            state.live_value_bytes -= u64::from(old.value_len);
        }
        Ok(())
    }

    /// Force the log to stable storage.
    ///
    /// # Errors
    ///
    /// Propagates the `fsync` failure; fails on a store opened
    /// read-only.
    pub fn sync(&self) -> Result<(), StoreError> {
        self.check_writable()?;
        write_locked(&self.state).file.sync_all()?;
        Ok(())
    }

    fn check_writable(&self) -> Result<(), StoreError> {
        if self.read_only {
            return Err(StoreError::invalid(format!(
                "store {:?} was opened read-only",
                self.path
            )));
        }
        Ok(())
    }

    /// Live keys ordered most-recently-written first — the "hot set"
    /// a warm start loads front to back. Keys under
    /// [`RESERVED_KEY_PREFIX`] are system records, not data, and are
    /// skipped.
    pub fn keys_by_recency(&self) -> Vec<String> {
        let state = read_locked(&self.state);
        let mut keys: Vec<(&String, u64)> = state
            .index
            .iter()
            .filter(|(k, _)| !k.starts_with(RESERVED_KEY_PREFIX))
            .map(|(k, e)| (k, e.seq))
            .collect();
        keys.sort_by_key(|&(_, seq)| std::cmp::Reverse(seq));
        keys.into_iter().map(|(k, _)| k.clone()).collect()
    }

    /// Live keys beginning with `prefix`, most-recently-written first.
    /// This is the listing surface for reserved system records (e.g.
    /// every persisted slow trace under [`SLOW_TRACE_KEY_PREFIX`]).
    pub fn keys_with_prefix(&self, prefix: &str) -> Vec<String> {
        let state = read_locked(&self.state);
        let mut keys: Vec<(&String, u64)> = state
            .index
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(k, e)| (k, e.seq))
            .collect();
        keys.sort_by_key(|&(_, seq)| std::cmp::Reverse(seq));
        keys.into_iter().map(|(k, _)| k.clone()).collect()
    }

    /// Bulk-load up to `limit` of the most recently written live
    /// entries as `(key, value)` pairs, newest first, under **one read
    /// lock** and **one forward pass** over the log instead of one
    /// locked, positioned lookup per key — the fast path for warm
    /// starts, where a cache wants the store's whole hot set at once.
    /// `None` loads every live entry.
    ///
    /// The in-memory index picks the hot set (so only `limit` values
    /// are ever held in memory, and dead records are never read), and
    /// the selected values are read in ascending offset order — a
    /// monotone sweep the OS read-ahead treats as sequential I/O.
    /// Value checksums are verified exactly as [`Store::get`] verifies
    /// them; a value that fails (on-disk bit rot since open) is
    /// *skipped* — counted in [`BulkLoad::damaged`], never allowed to
    /// abort the rest of the warm start. Lookup counters are untouched
    /// — a bulk load is not query traffic.
    ///
    /// # Errors
    ///
    /// Fails on genuine I/O errors only.
    pub fn bulk_load(&self, limit: Option<usize>) -> Result<BulkLoad, StoreError> {
        let state = read_locked(&self.state);
        // The hot set: top-`limit` live *data* keys by recency —
        // reserved system records are not warm-start material.
        let mut picked: Vec<(&String, IndexEntry)> = state
            .index
            .iter()
            .filter(|(k, _)| !k.starts_with(RESERVED_KEY_PREFIX))
            .map(|(k, e)| (k, *e))
            .collect();
        picked.sort_by_key(|&(_, e)| std::cmp::Reverse(e.seq));
        picked.truncate(limit.unwrap_or(usize::MAX));
        // Read in ascending offset order: one forward sweep of the log.
        picked.sort_by_key(|&(_, e)| e.value_offset);
        let mut loaded: Vec<(u64, String, Vec<u8>)> = Vec::with_capacity(picked.len());
        let mut damaged = 0u64;
        for (key, entry) in picked {
            let mut value = vec![0u8; entry.value_len as usize];
            read_exact_at(&state.file, &self.path, &mut value, entry.value_offset)?;
            if crate::record::crc32(&[&value]) == entry.value_crc {
                loaded.push((entry.seq, key.clone(), value));
            } else {
                damaged += 1;
            }
        }
        drop(state);
        loaded.sort_by_key(|&(seq, _, _)| std::cmp::Reverse(seq));
        Ok(BulkLoad {
            entries: loaded
                .into_iter()
                .map(|(_, key, value)| (key, value))
                .collect(),
            damaged,
        })
    }

    /// Live `(key, value-length)` pairs, sorted by key.
    pub fn entries(&self) -> Vec<(String, u32)> {
        let state = read_locked(&self.state);
        let mut entries: Vec<(String, u32)> = state
            .index
            .iter()
            .map(|(k, e)| (k.clone(), e.value_len))
            .collect();
        entries.sort();
        entries
    }

    /// Current counters and sizes.
    pub fn stats(&self) -> StoreStats {
        let state = read_locked(&self.state);
        StoreStats {
            live_entries: state.index.len(),
            records: state.records,
            dead_records: state.dead_records,
            file_bytes: state.end_offset,
            live_value_bytes: state.live_value_bytes,
            dead_bytes: state.dead_bytes,
            appends: state.appends,
            // ordering: Relaxed — statistics snapshot; a slightly stale
            // count is fine and the state mutex orders everything else.
            gets: self.gets.load(Ordering::Relaxed),
            // ordering: Relaxed — statistics snapshot, as `gets` above.
            hits: self.hits.load(Ordering::Relaxed),
            compactions: state.compactions,
            recovered_bytes: state.recovered_bytes,
        }
    }

    /// Rewrite the log to contain exactly the live records (preserving
    /// their recency order), sync it, and atomically swap it into
    /// place. Readers and writers block for the duration; a crash at
    /// any point leaves either the old or the new log intact — never a
    /// mix.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or a store opened read-only; the original
    /// log is untouched on failure.
    pub fn compact(&self) -> Result<CompactReport, StoreError> {
        self.injected_fault(StoreOp::Compact)?;
        let start = Instant::now();
        let result = self.compact_inner();
        if let Some(m) = self.metrics.get() {
            m.compact_ns.record(elapsed_ns(start));
        }
        result
    }

    fn compact_inner(&self) -> Result<CompactReport, StoreError> {
        self.check_writable()?;
        let mut state = write_locked(&self.state);
        let bytes_before = state.end_offset;
        let dropped_records = state.dead_records;

        // Oldest-first, so append order (and thus recency) survives.
        let mut live: Vec<(String, IndexEntry)> =
            state.index.iter().map(|(k, e)| (k.clone(), *e)).collect();
        live.sort_by_key(|(_, e)| e.seq);

        let tmp_path = PathBuf::from(format!("{}.compact", self.path.display()));
        let mut tmp = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp_path)?;
        tmp.write_all(&header())?;
        let mut new_index: HashMap<String, IndexEntry> = HashMap::with_capacity(live.len());
        let mut offset = HEADER_LEN;
        let mut live_value_bytes = 0u64;
        for (seq, (key, entry)) in live.iter().enumerate() {
            let mut value = vec![0u8; entry.value_len as usize];
            read_exact_at(&state.file, &self.path, &mut value, entry.value_offset)?;
            let crc = crate::record::crc32(&[&value]);
            if crc != entry.value_crc {
                return Err(StoreError::corrupt(format!(
                    "compaction read a damaged value for key {key:?}"
                )));
            }
            let record = encode_record(key, &value);
            tmp.write_all(&record)?;
            new_index.insert(
                key.clone(),
                IndexEntry {
                    value_offset: offset + 12 + key.len() as u64,
                    value_len: entry.value_len,
                    value_crc: entry.value_crc,
                    seq: seq as u64,
                },
            );
            live_value_bytes += u64::from(entry.value_len);
            offset += record.len() as u64;
        }
        tmp.sync_all()?;
        // Swap our open handle to the rewritten log *before* the
        // rename: Windows refuses to rename over a path the process
        // still holds open, and the `tmp` handle remains valid across
        // its own rename on every platform — no reopen needed.
        let old = std::mem::replace(&mut state.file, tmp);
        drop(old);
        if let Err(rename_error) = std::fs::rename(&tmp_path, &self.path) {
            // The original log on disk is intact; point the handle
            // back at it and surface the failure.
            let mut file = OpenOptions::new().read(true).write(true).open(&self.path)?;
            file.seek(SeekFrom::Start(state.end_offset))?;
            state.file = file;
            return Err(rename_error.into());
        }
        // Make the rename itself durable where the platform allows.
        if let Some(parent) = self.path.parent() {
            if let Ok(dir) = File::open(if parent.as_os_str().is_empty() {
                Path::new(".")
            } else {
                parent
            }) {
                let _ = dir.sync_all();
            }
        }

        let live_records = new_index.len() as u64;
        state.index = new_index;
        state.end_offset = offset;
        state.next_seq = live_records;
        state.records = live_records;
        state.dead_records = 0;
        state.dead_bytes = 0;
        state.live_value_bytes = live_value_bytes;
        state.compactions += 1;
        Ok(CompactReport {
            live_records,
            dropped_records,
            bytes_before,
            bytes_after: offset,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store_path(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("drmap-store-unit-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("store.wal")
    }

    #[test]
    fn store_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Store>();
    }

    #[test]
    fn fault_hook_fails_and_delays_the_ops_it_targets() {
        let path = temp_store_path("fault-hook");
        let _ = std::fs::remove_file(&path);
        let store = Store::open(&path).unwrap();
        store.put("live", b"before-hook").unwrap();
        store.attach_fault_hook(Box::new(|op| match op {
            StoreOp::Put => Some(FaultDirective::Fail),
            StoreOp::Get => Some(FaultDirective::Delay(Duration::from_millis(1))),
            StoreOp::Compact => None,
        }));
        assert!(matches!(store.put("k", b"v"), Err(StoreError::Injected(_))));
        // A delayed get still answers correctly.
        assert_eq!(store.get("live").unwrap().unwrap(), b"before-hook");
        // Untargeted ops are untouched.
        store.compact().unwrap();
        // A second attachment is ignored, like attach_metrics.
        store.attach_fault_hook(Box::new(|_| None));
        assert!(store.put("k", b"v").is_err());
    }

    #[test]
    fn put_get_survive_reopen() {
        let path = temp_store_path("reopen");
        let _ = std::fs::remove_file(&path);
        {
            let store = Store::open(&path).unwrap();
            store.put("a", b"alpha").unwrap();
            store.put("b", b"beta").unwrap();
            store.put("a", b"alpha-2").unwrap();
            assert_eq!(store.len(), 2);
            let stats = store.stats();
            assert_eq!(
                (stats.records, stats.dead_records, stats.appends),
                (3, 1, 3)
            );
        }
        let store = Store::open(&path).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.get("a").unwrap().unwrap(), b"alpha-2");
        assert_eq!(store.get("b").unwrap().unwrap(), b"beta");
        assert_eq!(store.get("c").unwrap(), None);
        let stats = store.stats();
        assert_eq!(stats.records, 3);
        assert_eq!(stats.dead_records, 1);
        assert_eq!(stats.gets, 3);
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.recovered_bytes, 0);
        assert_eq!(
            store.keys_by_recency(),
            vec!["a".to_owned(), "b".to_owned()]
        );
    }

    #[test]
    fn concurrent_readers_and_a_writer_agree() {
        let path = temp_store_path("concurrent");
        let _ = std::fs::remove_file(&path);
        let store = std::sync::Arc::new(Store::open(&path).unwrap());
        for i in 0..32 {
            store
                .put(&format!("k{i}"), format!("v{i}").as_bytes())
                .unwrap();
        }
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let store = std::sync::Arc::clone(&store);
                std::thread::spawn(move || {
                    for round in 0..64 {
                        let i = (t * 64 + round) % 32;
                        let got = store.get(&format!("k{i}")).unwrap().unwrap();
                        assert_eq!(got, format!("v{i}").as_bytes());
                    }
                    if t == 0 {
                        store.put("extra", b"late write").unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(store.get("extra").unwrap().unwrap(), b"late write");
        assert_eq!(store.len(), 33);
    }

    #[test]
    fn read_only_opens_never_create_truncate_or_write() {
        // A missing file is an error, not a fresh log.
        let path = temp_store_path("ro-missing");
        let _ = std::fs::remove_file(&path);
        assert!(matches!(
            Store::open_read_only(&path),
            Err(StoreError::Io(_))
        ));
        assert!(!path.exists(), "read-only open must not create the file");

        // A torn tail is skipped, not truncated.
        let store = Store::open(&path).unwrap();
        store.put("a", b"alpha").unwrap();
        store.put("b", b"beta").unwrap();
        drop(store);
        let clean_len = std::fs::metadata(&path).unwrap().len();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 2]).unwrap();

        let ro = Store::open_read_only(&path).unwrap();
        assert_eq!(ro.len(), 1, "only the intact record is indexed");
        assert_eq!(ro.get("a").unwrap().unwrap(), b"alpha");
        assert!(ro.stats().recovered_bytes > 0);
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            clean_len - 2,
            "the torn tail is left on disk for the writer to recover"
        );
        assert!(matches!(
            ro.put("c", b"gamma"),
            Err(StoreError::InvalidInput(_))
        ));
        assert!(matches!(ro.compact(), Err(StoreError::InvalidInput(_))));
        assert!(matches!(ro.sync(), Err(StoreError::InvalidInput(_))));

        // A writable reopen then performs the real recovery.
        let rw = Store::open(&path).unwrap();
        assert_eq!(rw.len(), 1);
        rw.put("b", b"beta-again").unwrap();
        assert_eq!(rw.len(), 2);
    }

    #[test]
    fn oversized_inputs_are_rejected() {
        let path = temp_store_path("oversized");
        let _ = std::fs::remove_file(&path);
        let store = Store::open(&path).unwrap();
        let huge_key = "k".repeat(MAX_KEY_BYTES + 1);
        assert!(matches!(
            store.put(&huge_key, b"v"),
            Err(StoreError::InvalidInput(_))
        ));
        assert!(store.is_empty());
    }

    #[test]
    fn bulk_load_returns_live_entries_newest_first() {
        let path = temp_store_path("bulk");
        let _ = std::fs::remove_file(&path);
        let store = Store::open(&path).unwrap();
        for i in 0..6 {
            store.put(&format!("k{i}"), b"stale").unwrap();
        }
        // Rewrite k1 so its recency jumps ahead and the old record dies.
        store.put("k1", b"fresh").unwrap();
        let gets_before = store.stats().gets;

        let all = store.bulk_load(None).unwrap();
        assert_eq!(all.damaged, 0);
        let all = all.entries;
        assert_eq!(all.len(), 6, "one live entry per key");
        assert_eq!(all[0].0, "k1", "rewritten key is newest");
        assert_eq!(all[0].1, b"fresh");
        assert_eq!(all[1].0, "k5");
        assert_eq!(all.last().unwrap().0, "k0");

        let top = store.bulk_load(Some(2)).unwrap().entries;
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, "k1");
        assert_eq!(top[1].0, "k5");
        assert_eq!(
            store.stats().gets,
            gets_before,
            "bulk loads are not query traffic"
        );

        // The sequential scan agrees with the positioned-read path.
        for (key, value) in &all {
            assert_eq!(store.get(key).unwrap().unwrap(), *value);
        }
        assert!(Store::open(&path)
            .unwrap()
            .bulk_load(Some(0))
            .unwrap()
            .entries
            .is_empty());
    }

    #[test]
    fn bulk_load_survives_bit_rot_in_dead_and_live_records() {
        let path = temp_store_path("bulk-rot");
        let _ = std::fs::remove_file(&path);
        let store = Store::open(&path).unwrap();
        store.put("k0", b"value-zero-unique").unwrap();
        store.put("k1", b"dead-value-unique").unwrap();
        store.put("k2", b"rotten-value-unique").unwrap();
        store.put("k1", b"live-value-unique").unwrap(); // supersedes the dead record

        // Bit rot strikes *after* open (recovery never saw it): flip a
        // byte inside the dead k1 value and inside the live k2 value.
        let mut bytes = std::fs::read(&path).unwrap();
        for needle in [b"dead-value-unique".as_slice(), b"rotten-value-unique"] {
            let at = bytes
                .windows(needle.len())
                .position(|w| w == needle)
                .unwrap();
            bytes[at] ^= 0xFF;
        }
        std::fs::write(&path, &bytes).unwrap();

        // The damaged dead record is never read; the damaged live value
        // is skipped without aborting the rest of the hot set.
        let loaded = store.bulk_load(None).unwrap();
        assert_eq!(loaded.damaged, 1, "the rotten live value is counted");
        let keys: Vec<&str> = loaded.entries.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["k1", "k0"], "k2 skipped, dead k1 ignored");
        assert_eq!(loaded.entries[0].1, b"live-value-unique");
        assert!(
            store.get("k2").is_err(),
            "the positioned path agrees k2 is damaged"
        );
    }

    #[test]
    fn bulk_load_of_a_read_only_store_skips_the_torn_tail() {
        let path = temp_store_path("bulk-ro");
        let _ = std::fs::remove_file(&path);
        let store = Store::open(&path).unwrap();
        store.put("a", b"alpha").unwrap();
        store.put("b", b"beta").unwrap();
        drop(store);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 2]).unwrap();
        let ro = Store::open_read_only(&path).unwrap();
        let loaded = ro.bulk_load(None).unwrap();
        assert_eq!(loaded.entries, vec![("a".to_owned(), b"alpha".to_vec())]);
        assert_eq!(loaded.damaged, 0);
    }

    #[test]
    fn reserved_keys_skip_warm_start_but_list_by_prefix() {
        let path = temp_store_path("reserved");
        let _ = std::fs::remove_file(&path);
        let store = Store::open(&path).unwrap();
        store.put("data-a", b"alpha").unwrap();
        store
            .put(&format!("{SLOW_TRACE_KEY_PREFIX}0"), b"trace-0")
            .unwrap();
        store.put("data-b", b"beta").unwrap();
        store
            .put(&format!("{SLOW_TRACE_KEY_PREFIX}1"), b"trace-1")
            .unwrap();

        // Warm-start surfaces see only data keys.
        assert_eq!(
            store.keys_by_recency(),
            vec!["data-b".to_owned(), "data-a".to_owned()]
        );
        let loaded = store.bulk_load(None).unwrap();
        let keys: Vec<&str> = loaded.entries.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["data-b", "data-a"]);
        // A limit counts data entries, never silently spent on traces.
        assert_eq!(store.bulk_load(Some(2)).unwrap().entries.len(), 2);

        // The prefix listing sees exactly the reserved records.
        assert_eq!(
            store.keys_with_prefix(SLOW_TRACE_KEY_PREFIX),
            vec![
                format!("{SLOW_TRACE_KEY_PREFIX}1"),
                format!("{SLOW_TRACE_KEY_PREFIX}0"),
            ]
        );
        // They remain ordinary records: readable, compactable, durable.
        assert_eq!(
            store
                .get(&format!("{SLOW_TRACE_KEY_PREFIX}0"))
                .unwrap()
                .unwrap(),
            b"trace-0"
        );
        store.compact().unwrap();
        assert_eq!(store.keys_with_prefix(SLOW_TRACE_KEY_PREFIX).len(), 2);
        assert_eq!(store.keys_by_recency().len(), 2);
    }

    #[test]
    fn compaction_drops_dead_records_and_preserves_recency() {
        let path = temp_store_path("compact");
        let _ = std::fs::remove_file(&path);
        let store = Store::open(&path).unwrap();
        for i in 0..8 {
            store.put(&format!("k{i}"), b"old-value-bytes").unwrap();
        }
        for i in 0..8 {
            store
                .put(&format!("k{i}"), format!("new-{i}").as_bytes())
                .unwrap();
        }
        let before = store.stats();
        assert_eq!(before.dead_records, 8);
        let report = store.compact().unwrap();
        assert_eq!(report.live_records, 8);
        assert_eq!(report.dropped_records, 8);
        assert!(report.bytes_after < report.bytes_before);
        let after = store.stats();
        assert_eq!(after.dead_records, 0);
        assert_eq!(after.live_entries, 8);
        for i in 0..8 {
            assert_eq!(
                store.get(&format!("k{i}")).unwrap().unwrap(),
                format!("new-{i}").as_bytes()
            );
        }
        // Recency order survives the rewrite and the next reopen.
        assert_eq!(store.keys_by_recency()[0], "k7");
        drop(store);
        let reopened = Store::open(&path).unwrap();
        assert_eq!(reopened.keys_by_recency()[0], "k7");
        assert_eq!(reopened.stats().records, 8);
    }
}
