//! The store's error type: I/O, corruption, and codec failures.

use core::fmt;

use drmap_core::bytes::CodecError;

/// Anything that can go wrong persisting or recovering DSE results.
#[derive(Debug)]
pub enum StoreError {
    /// File I/O failed.
    Io(std::io::Error),
    /// The log violates its format invariants (bad magic, version, or a
    /// checksum mismatch on a record the index points at).
    Corrupt(String),
    /// A stored value failed to decode as a DSE result.
    Codec(CodecError),
    /// A caller-supplied key or value violates the format's size caps.
    InvalidInput(String),
    /// A deliberately injected failure from an attached fault hook
    /// (see [`Store::attach_fault_hook`](crate::store::Store::attach_fault_hook)).
    /// Distinct from [`Io`](StoreError::Io)/[`Corrupt`](StoreError::Corrupt)
    /// so chaos tests can tell injected faults from real damage.
    Injected(String),
}

impl StoreError {
    /// A corruption error with the given message.
    pub fn corrupt(message: impl Into<String>) -> Self {
        StoreError::Corrupt(message.into())
    }

    /// An invalid-input error with the given message.
    pub fn invalid(message: impl Into<String>) -> Self {
        StoreError::InvalidInput(message.into())
    }

    /// An injected-fault error with the given message.
    pub fn injected(message: impl Into<String>) -> Self {
        StoreError::Injected(message.into())
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o error: {e}"),
            StoreError::Corrupt(m) => write!(f, "store corruption: {m}"),
            StoreError::Codec(e) => write!(f, "store value codec error: {e}"),
            StoreError::InvalidInput(m) => write!(f, "invalid store input: {m}"),
            StoreError::Injected(m) => write!(f, "injected store fault: {m}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Codec(e) => Some(e),
            StoreError::Corrupt(_) | StoreError::InvalidInput(_) | StoreError::Injected(_) => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<CodecError> for StoreError {
    fn from(e: CodecError) -> Self {
        StoreError::Codec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_each_variant() {
        assert!(StoreError::corrupt("bad crc")
            .to_string()
            .contains("bad crc"));
        assert!(StoreError::invalid("huge key")
            .to_string()
            .contains("huge key"));
        let io = std::io::Error::other("boom");
        assert!(StoreError::from(io).to_string().contains("boom"));
        let codec = CodecError::new("short");
        assert!(StoreError::from(codec).to_string().contains("short"));
    }
}
