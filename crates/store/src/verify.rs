//! Read-only log verification: the integrity check behind
//! `drmap-store verify`.

use std::collections::HashSet;
use std::fs::File;
use std::io::{BufReader, Read, Seek, SeekFrom};
use std::path::Path;

use crate::error::StoreError;
use crate::record::{check_header, read_record, RecordRead, HEADER_LEN};

/// What a verification scan found.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// Total file size in bytes.
    pub file_bytes: u64,
    /// Checksum-valid records scanned.
    pub records: u64,
    /// Distinct live keys (last record per key wins).
    pub live_keys: usize,
    /// Superseded records.
    pub dead_records: u64,
    /// Bytes covered by the header plus valid records.
    pub valid_bytes: u64,
    /// Set when the scan hit a torn or corrupt record; everything after
    /// `valid_bytes` is unreadable.
    pub tail_error: Option<String>,
    /// Values that decoded as stored DSE results (decode mode only).
    pub decoded: u64,
    /// Values that failed to decode (decode mode only).
    pub undecodable: u64,
}

impl VerifyReport {
    /// True when the whole log validated (and, in decode mode, every
    /// value decoded).
    pub fn is_clean(&self) -> bool {
        self.tail_error.is_none() && self.undecodable == 0
    }
}

/// Scan the log at `path` without modifying it, validating the header
/// and every record checksum. With `decode_values`, additionally decode
/// each value as a stored DSE result (duration + versioned payload).
///
/// # Errors
///
/// Fails on I/O errors or an unrecognizable header. Torn/corrupt
/// *records* are not errors: they are reported in the returned
/// [`VerifyReport::tail_error`], mirroring what recovery would truncate.
pub fn verify(path: impl AsRef<Path>, decode_values: bool) -> Result<VerifyReport, StoreError> {
    let mut file = File::open(path)?;
    let file_bytes = file.metadata()?.len();
    let mut head = vec![0u8; HEADER_LEN.min(file_bytes) as usize];
    file.read_exact(&mut head)?;
    check_header(&head).map_err(StoreError::Corrupt)?;
    file.seek(SeekFrom::Start(HEADER_LEN))?;
    let mut reader = BufReader::new(file);

    let mut report = VerifyReport {
        file_bytes,
        valid_bytes: HEADER_LEN,
        ..VerifyReport::default()
    };
    let mut seen: HashSet<String> = HashSet::new();
    loop {
        match read_record(&mut reader)? {
            RecordRead::Record { key, value } => {
                report.records += 1;
                report.valid_bytes += crate::record::record_len(key.len(), value.len());
                if !seen.insert(key) {
                    report.dead_records += 1;
                }
                if decode_values {
                    match drmap_core::bytes::decode_stored_result(&value) {
                        Ok(_) => report.decoded += 1,
                        Err(_) => report.undecodable += 1,
                    }
                }
            }
            RecordRead::Eof => break,
            RecordRead::Corrupt { reason } => {
                report.tail_error = Some(reason);
                break;
            }
        }
    }
    report.live_keys = seen.len();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::Store;
    use std::path::PathBuf;

    fn temp_store_path(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("drmap-store-verify-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("store.wal")
    }

    #[test]
    fn clean_logs_verify_clean() {
        let path = temp_store_path("clean");
        let _ = std::fs::remove_file(&path);
        let store = Store::open(&path).unwrap();
        store.put("a", b"one").unwrap();
        store.put("b", b"two").unwrap();
        store.put("a", b"three").unwrap();
        drop(store);
        let report = verify(&path, false).unwrap();
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(report.records, 3);
        assert_eq!(report.live_keys, 2);
        assert_eq!(report.dead_records, 1);
        assert_eq!(report.valid_bytes, report.file_bytes);
    }

    #[test]
    fn a_flipped_byte_is_reported_not_fatal() {
        let path = temp_store_path("flipped");
        let _ = std::fs::remove_file(&path);
        let store = Store::open(&path).unwrap();
        store.put("a", b"one").unwrap();
        store.put("b", b"two").unwrap();
        drop(store);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let report = verify(&path, false).unwrap();
        assert!(!report.is_clean());
        assert_eq!(report.records, 1, "only the first record survives");
        assert!(report.valid_bytes < report.file_bytes);
        assert!(report.tail_error.unwrap().contains("checksum"));
    }

    #[test]
    fn non_store_files_are_rejected() {
        let path = temp_store_path("not-a-log");
        std::fs::write(&path, b"this is not a drmap store log at all").unwrap();
        assert!(matches!(verify(&path, false), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn decode_mode_counts_undecodable_values() {
        let path = temp_store_path("decode");
        let _ = std::fs::remove_file(&path);
        let store = Store::open(&path).unwrap();
        store.put("garbage", b"not a stored result").unwrap();
        drop(store);
        let report = verify(&path, true).unwrap();
        assert_eq!(report.undecodable, 1);
        assert!(!report.is_clean());
    }
}
