//! The on-disk record format: length-prefixed, CRC-checksummed
//! key/value records appended after a fixed file header.
//!
//! ```text
//! file   := header record*
//! header := magic "DRMAPWAL" (8 bytes) ++ u32 LE format version
//! record := u32 LE crc      -- CRC-32 (IEEE) over the four length bytes
//!                           -- of key_len ++ val_len and the key and
//!                           -- value payloads
//!        ++ u32 LE key_len
//!        ++ u32 LE val_len
//!        ++ key bytes (UTF-8)
//!        ++ value bytes (opaque)
//! ```
//!
//! Everything is little-endian. The checksum makes a record
//! self-validating: recovery scans forward record by record and stops
//! (truncating the file) at the first record that is torn — the file
//! ends mid-record — or corrupt — the checksum disagrees, or a length
//! field exceeds the format's caps. Because records are append-only and
//! a partial append can only damage the *tail*, truncation at the first
//! bad record restores exactly the state of the last complete append.

use std::io::{BufRead, Read};

/// File magic: the first eight bytes of every store log.
pub const MAGIC: [u8; 8] = *b"DRMAPWAL";

/// On-disk format version written into the header.
pub const FORMAT_VERSION: u32 = 1;

/// Total header length in bytes (magic + version).
pub const HEADER_LEN: u64 = 12;

/// Cap on a record's key, defending recovery against garbage lengths.
pub const MAX_KEY_BYTES: usize = 64 * 1024;

/// Cap on a record's value, defending recovery against garbage lengths.
pub const MAX_VALUE_BYTES: usize = 256 * 1024 * 1024;

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) lookup table,
/// built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) over a sequence of byte chunks, as if concatenated.
pub fn crc32(chunks: &[&[u8]]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for chunk in chunks {
        for &byte in *chunk {
            crc = (crc >> 8) ^ CRC_TABLE[((crc ^ byte as u32) & 0xFF) as usize];
        }
    }
    !crc
}

/// The file header bytes (magic + version).
pub fn header() -> [u8; HEADER_LEN as usize] {
    let mut h = [0u8; HEADER_LEN as usize];
    h[..8].copy_from_slice(&MAGIC);
    h[8..].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    h
}

/// Validate a header read from disk.
///
/// # Errors
///
/// Returns a description of the mismatch (wrong magic or version).
pub fn check_header(bytes: &[u8]) -> Result<(), String> {
    if bytes.len() < HEADER_LEN as usize {
        return Err(format!(
            "file too short for a header: {} bytes",
            bytes.len()
        ));
    }
    if bytes[..8] != MAGIC {
        return Err("bad magic: not a drmap-store log".to_owned());
    }
    let version = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    if version != FORMAT_VERSION {
        return Err(format!(
            "unsupported format version {version} (this build reads {FORMAT_VERSION})"
        ));
    }
    Ok(())
}

/// Encode one record (header + payloads) ready to append.
pub fn encode_record(key: &str, value: &[u8]) -> Vec<u8> {
    let key_len = (key.len() as u32).to_le_bytes();
    let val_len = (value.len() as u32).to_le_bytes();
    let crc = crc32(&[&key_len, &val_len, key.as_bytes(), value]);
    let mut out = Vec::with_capacity(12 + key.len() + value.len());
    out.extend_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(&key_len);
    out.extend_from_slice(&val_len);
    out.extend_from_slice(key.as_bytes());
    out.extend_from_slice(value);
    out
}

/// Total on-disk footprint of a record with the given payload sizes.
pub fn record_len(key_len: usize, val_len: usize) -> u64 {
    12 + key_len as u64 + val_len as u64
}

/// Outcome of reading one record during a forward scan.
#[derive(Debug)]
pub enum RecordRead {
    /// A complete, checksum-valid record.
    Record {
        /// The record's key.
        key: String,
        /// The record's value payload.
        value: Vec<u8>,
    },
    /// Clean end of file at a record boundary.
    Eof,
    /// The log ends mid-record or the record fails validation; recovery
    /// truncates here.
    Corrupt {
        /// Human-readable description of what was wrong.
        reason: String,
    },
}

/// Fill `buf` from `reader`, reporting how many bytes arrived before
/// EOF (a short count means the file ended mid-record).
fn read_up_to(reader: &mut impl Read, buf: &mut [u8]) -> std::io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

/// Read the next record from a scan position.
///
/// Distinguishes a clean EOF (zero bytes available at the record
/// boundary) from a torn tail (some bytes, but not a whole record) and
/// from checksum/length corruption — the latter two become
/// [`RecordRead::Corrupt`] so the caller can truncate.
///
/// # Errors
///
/// Propagates genuine I/O failures (not EOF).
pub fn read_record(reader: &mut impl BufRead) -> std::io::Result<RecordRead> {
    let mut head = [0u8; 12];
    let got = read_up_to(reader, &mut head)?;
    if got == 0 {
        return Ok(RecordRead::Eof);
    }
    if got < head.len() {
        return Ok(RecordRead::Corrupt {
            reason: format!("torn record header: {got} of 12 bytes"),
        });
    }
    let crc = u32::from_le_bytes([head[0], head[1], head[2], head[3]]);
    let key_len = u32::from_le_bytes([head[4], head[5], head[6], head[7]]) as usize;
    let val_len = u32::from_le_bytes([head[8], head[9], head[10], head[11]]) as usize;
    if key_len > MAX_KEY_BYTES || val_len > MAX_VALUE_BYTES {
        return Ok(RecordRead::Corrupt {
            reason: format!("implausible record lengths: key {key_len}, value {val_len}"),
        });
    }
    let mut key = vec![0u8; key_len];
    let got = read_up_to(reader, &mut key)?;
    if got < key_len {
        return Ok(RecordRead::Corrupt {
            reason: format!("torn key: {got} of {key_len} bytes"),
        });
    }
    let mut value = vec![0u8; val_len];
    let got = read_up_to(reader, &mut value)?;
    if got < val_len {
        return Ok(RecordRead::Corrupt {
            reason: format!("torn value: {got} of {val_len} bytes"),
        });
    }
    let computed = crc32(&[&head[4..8], &head[8..12], &key, &value]);
    if computed != crc {
        return Ok(RecordRead::Corrupt {
            reason: format!("checksum mismatch: stored {crc:#010x}, computed {computed:#010x}"),
        });
    }
    let key = match String::from_utf8(key) {
        Ok(k) => k,
        Err(_) => {
            return Ok(RecordRead::Corrupt {
                reason: "record key is not UTF-8".to_owned(),
            })
        }
    };
    Ok(RecordRead::Record { key, value })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(&[b"123456789"]), 0xCBF4_3926);
        assert_eq!(crc32(&[b"", b""]), 0);
        // Chunking must not change the digest.
        assert_eq!(crc32(&[b"1234", b"56789"]), crc32(&[b"123456789"]));
    }

    #[test]
    fn records_round_trip() {
        let bytes = encode_record("layer-key", b"payload bytes");
        assert_eq!(bytes.len() as u64, record_len(9, 13));
        let mut reader = BufReader::new(&bytes[..]);
        match read_record(&mut reader).unwrap() {
            RecordRead::Record { key, value } => {
                assert_eq!(key, "layer-key");
                assert_eq!(value, b"payload bytes");
            }
            other => panic!("expected a record, got {other:?}"),
        }
        assert!(matches!(read_record(&mut reader).unwrap(), RecordRead::Eof));
    }

    #[test]
    fn every_truncation_is_torn_and_every_flip_is_caught() {
        let bytes = encode_record("k", b"value");
        for n in 1..bytes.len() {
            let mut reader = BufReader::new(&bytes[..n]);
            assert!(
                matches!(
                    read_record(&mut reader).unwrap(),
                    RecordRead::Corrupt { .. }
                ),
                "a {n}-byte prefix of a {}-byte record must be torn",
                bytes.len()
            );
        }
        for i in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[i] ^= 0x01;
            let mut reader = BufReader::new(&flipped[..]);
            assert!(
                !matches!(
                    read_record(&mut reader).unwrap(),
                    RecordRead::Record { ref key, ref value } if key == "k" && value == b"value"
                ),
                "flipping byte {i} went unnoticed"
            );
        }
    }

    #[test]
    fn implausible_lengths_are_corrupt_not_allocated() {
        let mut bytes = encode_record("k", b"v");
        // Overwrite val_len with u32::MAX; the crc now also mismatches,
        // but the length check must fire first (no 4 GiB allocation).
        bytes[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut reader = BufReader::new(&bytes[..]);
        match read_record(&mut reader).unwrap() {
            RecordRead::Corrupt { reason } => assert!(reason.contains("implausible"), "{reason}"),
            other => panic!("expected corruption, got {other:?}"),
        }
    }

    #[test]
    fn header_round_trips_and_rejects_mutations() {
        let h = header();
        check_header(&h).unwrap();
        let mut wrong_magic = h;
        wrong_magic[0] = b'X';
        assert!(check_header(&wrong_magic).unwrap_err().contains("magic"));
        let mut wrong_version = h;
        wrong_version[8] = 99;
        assert!(check_header(&wrong_version)
            .unwrap_err()
            .contains("version"));
        assert!(check_header(&h[..4]).unwrap_err().contains("short"));
    }
}
