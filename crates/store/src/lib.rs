//! # drmap-store
//!
//! An embedded, append-only, content-addressed persistence subsystem
//! for DSE results — the durable second tier beneath the service's
//! in-memory cache.
//!
//! DRMap's exploration results are deterministic functions of a
//! `(layer shape, accelerator config, DRAM architecture, objective)`
//! fingerprint, so once a configuration has been explored *anywhere*,
//! no process ever needs to explore it again. This crate makes that
//! "compute once, ever" contract durable:
//!
//! * [`record`] — the on-disk format: a fixed header plus
//!   length-prefixed, CRC-32-checksummed `(key, value)` records;
//! * [`store`] — the [`Store`](store::Store): write-ahead log +
//!   in-memory index with crash recovery (truncate at the first torn or
//!   corrupt record), concurrent positioned reads, explicit
//!   [`compact()`](store::Store::compact) with an atomic swap, and
//!   counters for operating it;
//! * [`verify`] — the read-only integrity scan behind
//!   `drmap-store verify`.
//!
//! Values are opaque bytes at this layer. The service stores results in
//! the versioned binary codec of [`drmap_core::bytes`] (compute
//! duration + bit-exact result), which the `drmap-store` CLI's
//! `get`/`verify --decode` subcommands also understand.
//!
//! ## Example
//!
//! ```no_run
//! use drmap_store::store::Store;
//!
//! let store = Store::open("/var/lib/drmap/results.wal")?;
//! store.put("fingerprint", b"encoded result")?;
//! assert_eq!(store.get("fingerprint")?.as_deref(), Some(&b"encoded result"[..]));
//! let report = store.compact()?;
//! println!("compacted: {} -> {} bytes", report.bytes_before, report.bytes_after);
//! # Ok::<(), drmap_store::error::StoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod record;
pub mod store;
pub mod verify;

/// Convenient re-exports of the most commonly used types.
pub mod prelude {
    pub use crate::error::StoreError;
    pub use crate::store::{CompactReport, Store, StoreStats};
    pub use crate::verify::{verify, VerifyReport};
}
