//! The proxy core: client sessions, the pending-job multiplexer,
//! rendezvous routing, failover, scatter/merge, and admin fan-out.
//!
//! # Correlation
//!
//! Clients choose their own job ids, and two clients may choose the
//! same one — so the router rewrites every submitted job's id to a
//! router-unique sequence number before forwarding, and rewrites it
//! back on the way out. The pending map (`router id → Pending`) is the
//! single correlation point: backend reader threads resolve responses
//! through it, failover drains it, and scatter parts hang their merge
//! state off it.
//!
//! # Failover
//!
//! Jobs are pure (results are deterministic and memoized server-side),
//! so a job in flight on a backend that dies can be resent elsewhere
//! without observable effect. Death is detected at the data path (a
//! reader thread's connection drops, a write fails); the backend is
//! retired, its pending jobs drained, and each is re-dispatched to the
//! next-ranked healthy backend under the client tier's
//! [`RetryPolicy`] (decorrelated-jitter backoff, bounded attempts). A
//! background probe loop re-admits the backend once it handshakes
//! again.
//!
//! # Scatter
//!
//! With `--scatter`, a single-layer job whose tiling enumeration
//! crosses the threshold is split into contiguous `[start, end)`
//! ranges, one ranged sub-job per healthy backend (up to a cap), and
//! the partial outcomes are merged exactly like the pool's
//! `LayerPartial::merge`: the winner is the part with the strictly
//! smallest objective score (earlier range wins ties), evaluation
//! counts sum.

use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use drmap_cnn::accelerator::AcceleratorConfig;
use drmap_core::dse::Objective;
use drmap_core::edp::EdpEstimate;
use drmap_core::tiling::count_tilings;
use drmap_service::client::{ClientConfig, RetryPolicy};
use drmap_service::engine::job_route_key;
use drmap_service::error::ServiceError;
use drmap_service::loadgen::SplitMix64;
use drmap_service::proto::{
    router_capabilities, Dialect, Request, Response, StatsReport, PROTOCOL_VERSION,
};
use drmap_service::spec::{JobResult, JobSpec, LayerOutcome};
use drmap_service::wire::{self, Encoding};
use drmap_telemetry::{Counter, Gauge, Histogram, MetricsRegistry};

use crate::backend::{self, lock_recovered, Backend};
use crate::hash;

/// Everything tunable about the router tier.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Backend addresses (`host:port`); the list's order is the
    /// tie-break order of the rendezvous ranking, so every router
    /// given the same list agrees on every pick.
    pub backends: Vec<String>,
    /// Split oversized single-layer jobs across backends.
    pub scatter: bool,
    /// Minimum tiling-enumeration length before a layer scatters.
    pub scatter_threshold: u64,
    /// At most this many scatter parts per job.
    pub scatter_max_parts: usize,
    /// Backoff/attempt budget for failing a job over between backends.
    pub retry: RetryPolicy,
    /// How often the probe loop re-checks unhealthy backends.
    pub probe_interval: Duration,
    /// Pipelined data connections per backend.
    pub data_conns: usize,
    /// Bound on establishing any backend connection.
    pub connect_timeout: Duration,
    /// Socket timeouts for the synchronous admin fan-out channels.
    pub admin_timeout: Duration,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            backends: Vec::new(),
            scatter: false,
            scatter_threshold: 4096,
            scatter_max_parts: 8,
            retry: RetryPolicy::default(),
            probe_interval: Duration::from_millis(500),
            data_conns: 2,
            connect_timeout: Duration::from_secs(2),
            admin_timeout: Duration::from_secs(10),
        }
    }
}

/// Cached handles for the router's own registry (fleet-wide names are
/// literals so `drmap-check`'s doc-drift lint can see them; the
/// per-backend family is indexed and documented as a pattern in
/// `docs/CLUSTER.md`).
#[derive(Debug)]
struct RouterMetrics {
    route_total: Arc<Counter>,
    failover_total: Arc<Counter>,
    scatter_jobs_total: Arc<Counter>,
    probe_total: Arc<Counter>,
    backends_up: Arc<Gauge>,
    route_pick_ns: Arc<Histogram>,
    per_backend: Vec<PerBackendMetrics>,
}

/// The per-backend instrument family.
#[derive(Debug)]
struct PerBackendMetrics {
    route_total: Arc<Counter>,
    failover_total: Arc<Counter>,
    inflight: Arc<Gauge>,
    up: Arc<Gauge>,
}

impl RouterMetrics {
    fn new(registry: &MetricsRegistry, backends: usize) -> Self {
        let per_backend = (0..backends)
            .map(|i| PerBackendMetrics {
                // Indexed names cannot be literals; the family is
                // documented as a pattern in docs/CLUSTER.md.
                // check:allow(metrics-doc-drift)
                route_total: registry.counter(&format!("route_backend{i}_total")),
                // check:allow(metrics-doc-drift)
                failover_total: registry.counter(&format!("failover_backend{i}_total")),
                // check:allow(metrics-doc-drift)
                inflight: registry.gauge(&format!("backend{i}_inflight")),
                // check:allow(metrics-doc-drift)
                up: registry.gauge(&format!("backend{i}_up")),
            })
            .collect();
        RouterMetrics {
            route_total: registry.counter("route_total"),
            failover_total: registry.counter("failover_total"),
            scatter_jobs_total: registry.counter("scatter_jobs_total"),
            probe_total: registry.counter("probe_total"),
            backends_up: registry.gauge("backends_up"),
            route_pick_ns: registry.histogram("route_pick_ns"),
            per_backend,
        }
    }
}

/// What a client session's writer thread consumes.
type Outbound = (Response, Dialect, Encoding);
/// Where a job's eventual response goes.
type ReplyTx = mpsc::Sender<Outbound>;

/// One in-flight job, keyed by its router-assigned id.
#[derive(Debug)]
struct Pending {
    /// The forwarded spec (`spec.id` is the router id), kept so
    /// failover can resend it verbatim.
    spec: JobSpec,
    /// The id the client chose, restored on the way out.
    client_id: u64,
    reply: ReplyTx,
    dialect: Dialect,
    encoding: Encoding,
    /// Index of the backend currently running the job.
    backend: usize,
    /// Dispatches so far (bounded by [`RetryPolicy::max_attempts`]).
    attempts: u32,
    /// Previous backoff sleep, for the decorrelated-jitter draw.
    prev_backoff_ms: u64,
    /// Set when this entry is one part of a scattered job.
    scatter: Option<ScatterPart>,
}

/// Membership of one pending entry in a scattered job.
#[derive(Debug)]
struct ScatterPart {
    job: Arc<ScatterJob>,
    part: usize,
}

/// Merge state shared by a scattered job's parts.
#[derive(Debug)]
struct ScatterJob {
    client_id: u64,
    workload: String,
    objective: Objective,
    parts: Mutex<Vec<Option<LayerOutcome>>>,
    /// Latched by the first part that fails terminally; exactly one
    /// error reply reaches the client, later parts are dropped.
    failed: AtomicBool,
    reply: ReplyTx,
    dialect: Dialect,
    encoding: Encoding,
}

/// Shared state behind every router thread.
pub struct RouterCore {
    cfg: RouterConfig,
    backends: Vec<Backend>,
    /// Denormalized addresses for the rendezvous ranking.
    addrs: Vec<String>,
    pending: Mutex<HashMap<u64, Pending>>,
    seq: AtomicU64,
    shutdown: AtomicBool,
    local_addr: Mutex<Option<SocketAddr>>,
    metrics: MetricsRegistry,
    m: RouterMetrics,
}

impl RouterCore {
    fn new(cfg: RouterConfig) -> Arc<Self> {
        let metrics = MetricsRegistry::new();
        let m = RouterMetrics::new(&metrics, cfg.backends.len());
        let backends: Vec<Backend> = cfg.backends.iter().cloned().map(Backend::new).collect();
        let addrs = cfg.backends.clone();
        Arc::new(RouterCore {
            cfg,
            backends,
            addrs,
            pending: Mutex::new(HashMap::new()),
            seq: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
            local_addr: Mutex::new(None),
            metrics,
            m,
        })
    }

    /// The router's own telemetry registry (merged into aggregated
    /// `metrics` responses).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Indices of currently healthy backends.
    pub fn healthy(&self) -> Vec<usize> {
        (0..self.backends.len())
            .filter(|&i| self.backends[i].is_healthy())
            .collect()
    }

    fn is_shutting_down(&self) -> bool {
        // ordering: Acquire pairs with the Release in
        // `trigger_shutdown`; the flag guards no other data.
        self.shutdown.load(Ordering::Acquire)
    }

    fn trigger_shutdown(&self) {
        // ordering: Release pairs with the Acquire in the accept and
        // probe loops; nothing besides the flag is published.
        self.shutdown.store(true, Ordering::Release);
        // Poke the listener so a blocked `accept` observes the flag
        // (wildcard binds are not connectable everywhere; use
        // loopback, mirroring the service tier).
        let addr = *lock_recovered(&self.local_addr);
        if let Some(mut addr) = addr {
            if addr.ip().is_unspecified() {
                let loopback: std::net::IpAddr = if addr.is_ipv4() {
                    std::net::Ipv4Addr::LOCALHOST.into()
                } else {
                    std::net::Ipv6Addr::LOCALHOST.into()
                };
                addr.set_ip(loopback);
            }
            let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(200));
        }
    }

    fn next_id(&self) -> u64 {
        // ordering: Relaxed — the sequence only needs uniqueness, and
        // fetch_add is atomic under any ordering.
        self.seq.fetch_add(1, Ordering::Relaxed)
    }

    fn admin_config(&self) -> ClientConfig {
        ClientConfig {
            connect_timeout: Some(self.cfg.connect_timeout),
            read_timeout: Some(self.cfg.admin_timeout),
            write_timeout: Some(self.cfg.admin_timeout),
        }
    }

    fn refresh_up_gauge(&self) {
        let up = self.healthy().len();
        self.m.backends_up.set(up as i64);
    }

    // -----------------------------------------------------------------
    // Admission / retirement
    // -----------------------------------------------------------------

    /// Connect, handshake, and admit backend `idx`: open the data
    /// connection pool and spawn one reader thread per connection.
    ///
    /// # Errors
    ///
    /// Whatever the handshake raised; the backend stays unhealthy.
    pub fn admit_backend(self: &Arc<Self>, idx: usize) -> Result<(), ServiceError> {
        let addr = &self.addrs[idx];
        let mut conns = Vec::new();
        let mut readers = Vec::new();
        let mut capabilities = Vec::new();
        for _ in 0..self.cfg.data_conns.max(1) {
            let (conn, reader, caps) = backend::open_data_conn(addr, self.cfg.connect_timeout)?;
            conns.push(Arc::new(conn));
            readers.push(reader);
            capabilities = caps;
        }
        let epoch = self.backends[idx].admit(conns, capabilities);
        self.m.per_backend[idx].up.set(1);
        self.refresh_up_gauge();
        for reader in readers {
            let core = Arc::clone(self);
            std::thread::spawn(move || core.backend_reader(idx, epoch, reader));
        }
        Ok(())
    }

    /// Drain one data connection's responses until it dies, then
    /// retire the backend (if the death is not stale) and fail its
    /// jobs over.
    fn backend_reader(self: Arc<Self>, idx: usize, epoch: u64, mut reader: BufReader<TcpStream>) {
        while let Ok(Some((response, _))) = wire::read_response(&mut reader) {
            self.on_backend_response(idx, response);
        }
        self.on_backend_down(idx, epoch);
    }

    /// Retire backend `idx` (stale epochs no-op) and re-dispatch every
    /// job that was in flight on it.
    fn on_backend_down(self: &Arc<Self>, idx: usize, epoch: u64) {
        if !self.backends[idx].retire(epoch) {
            return;
        }
        self.m.per_backend[idx].up.set(0);
        self.refresh_up_gauge();
        let orphans: Vec<(u64, Pending)> = {
            let mut pending = lock_recovered(&self.pending);
            let ids: Vec<u64> = pending
                .iter()
                .filter(|(_, p)| p.backend == idx)
                .map(|(&id, _)| id)
                .collect();
            ids.into_iter()
                .filter_map(|id| pending.remove(&id).map(|p| (id, p)))
                .collect()
        };
        if orphans.is_empty() {
            return;
        }
        for _ in &orphans {
            self.m.per_backend[idx].inflight.dec();
        }
        // Backoff sleeps must not stall the thread that detected the
        // death (it may be a reader with more connections to report).
        let core = Arc::clone(self);
        std::thread::spawn(move || core.redispatch(orphans, 0));
    }

    // -----------------------------------------------------------------
    // Routing
    // -----------------------------------------------------------------

    /// The rendezvous key of a pending entry: the job's cache
    /// fingerprint, plus the range suffix for scatter parts so parts
    /// of one job spread instead of piling onto one backend.
    fn pending_key(pending: &Pending) -> String {
        let mut key = job_route_key(&pending.spec);
        if let Some((start, end)) = pending.spec.options.tiling_range {
            key.push_str(&format!("|range={start}..{end}"));
        }
        key
    }

    /// Route one client job: rewrite its id, register it pending, and
    /// forward it to the rendezvous pick (or scatter it).
    fn submit(
        self: &Arc<Self>,
        mut spec: JobSpec,
        reply: &ReplyTx,
        dialect: Dialect,
        encoding: Encoding,
    ) {
        if let Some(ranges) = self.scatter_plan(&spec) {
            self.submit_scatter(spec, ranges, reply, dialect, encoding);
            return;
        }
        let client_id = spec.id;
        let router_id = self.next_id();
        spec.id = router_id;
        let pending = Pending {
            spec,
            client_id,
            reply: reply.clone(),
            dialect,
            encoding,
            backend: usize::MAX,
            attempts: 0,
            prev_backoff_ms: 0,
            scatter: None,
        };
        self.dispatch(router_id, pending, None);
    }

    /// Send `pending` to `preferred` (when given and healthy) or to
    /// its rendezvous pick; a dead pick fails over immediately.
    fn dispatch(self: &Arc<Self>, router_id: u64, mut pending: Pending, preferred: Option<usize>) {
        let key = Self::pending_key(&pending);
        let started = Instant::now();
        let picked = match preferred.filter(|&i| self.backends[i].is_healthy()) {
            Some(i) => Some(i),
            None => {
                let healthy: Vec<bool> = self.backends.iter().map(Backend::is_healthy).collect();
                hash::pick(&key, &self.addrs, &healthy)
            }
        };
        self.m
            .route_pick_ns
            .record(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX));
        let Some(idx) = picked else {
            self.reply_error(&pending, "no healthy backend available");
            return;
        };
        pending.backend = idx;
        pending.attempts += 1;
        let epoch = self.backends[idx].current_epoch();
        let request = Request::Submit(pending.spec.clone());
        self.m.route_total.inc();
        self.m.per_backend[idx].route_total.inc();
        self.m.per_backend[idx].inflight.inc();
        lock_recovered(&self.pending).insert(router_id, pending);
        if self.backends[idx].send(&request).is_err() {
            // The write failed: demote (stale epochs no-op) and rescue
            // our own entry if the demotion path did not already.
            self.on_backend_down(idx, epoch);
            if let Some(p) = lock_recovered(&self.pending).remove(&router_id) {
                self.m.per_backend[idx].inflight.dec();
                let core = Arc::clone(self);
                std::thread::spawn(move || core.redispatch(vec![(router_id, p)], 0));
            }
        }
    }

    /// Re-dispatch drained jobs after a failure: bounded attempts,
    /// decorrelated-jitter backoff, `floor_ms` honoring a server's
    /// `retry_after_ms` hint.
    fn redispatch(self: &Arc<Self>, orphans: Vec<(u64, Pending)>, floor_ms: u64) {
        let seed = self.cfg.retry.seed ^ orphans.first().map_or(0, |(id, _)| *id);
        let mut rng = SplitMix64::new(seed);
        for (router_id, mut pending) in orphans {
            if pending.attempts >= self.cfg.retry.max_attempts {
                self.reply_error(
                    &pending,
                    &format!(
                        "job gave up after {} attempts across backends",
                        pending.attempts
                    ),
                );
                continue;
            }
            let mut prev = pending.prev_backoff_ms;
            let sleep_ms = self
                .cfg
                .retry
                .next_backoff_ms(&mut rng, &mut prev)
                .max(floor_ms);
            pending.prev_backoff_ms = prev;
            std::thread::sleep(Duration::from_millis(sleep_ms));
            self.m.failover_total.inc();
            if pending.backend < self.m.per_backend.len() {
                self.m.per_backend[pending.backend].failover_total.inc();
            }
            self.dispatch(router_id, pending, None);
        }
    }

    /// Resolve one data-path response against the pending map.
    fn on_backend_response(self: &Arc<Self>, idx: usize, response: Response) {
        match response {
            Response::Job { mut result } => {
                let Some(pending) = lock_recovered(&self.pending).remove(&result.id) else {
                    return; // stale: the job already failed over
                };
                self.m.per_backend[idx].inflight.dec();
                match pending.scatter {
                    None => {
                        result.id = pending.client_id;
                        let _ = pending.reply.send((
                            Response::Job { result },
                            pending.dialect,
                            pending.encoding,
                        ));
                    }
                    Some(part) => self.scatter_collect(&part, result),
                }
            }
            Response::Overloaded {
                id: Some(id),
                retry_after_ms,
            } => {
                let Some(pending) = lock_recovered(&self.pending).remove(&id) else {
                    return;
                };
                self.m.per_backend[idx].inflight.dec();
                let core = Arc::clone(self);
                std::thread::spawn(move || core.redispatch(vec![(id, pending)], retry_after_ms));
            }
            Response::DeadlineExceeded {
                id: Some(id),
                deadline_ms,
            } => {
                let Some(pending) = lock_recovered(&self.pending).remove(&id) else {
                    return;
                };
                self.m.per_backend[idx].inflight.dec();
                match &pending.scatter {
                    None => {
                        let _ = pending.reply.send((
                            Response::DeadlineExceeded {
                                id: Some(pending.client_id),
                                deadline_ms,
                            },
                            pending.dialect,
                            pending.encoding,
                        ));
                    }
                    Some(part) => self
                        .scatter_fail(&part.job, &format!("deadline of {deadline_ms} ms exceeded")),
                }
            }
            Response::Error {
                id: Some(id),
                message,
            } => {
                let Some(pending) = lock_recovered(&self.pending).remove(&id) else {
                    return;
                };
                self.m.per_backend[idx].inflight.dec();
                self.reply_error(&pending, &message);
            }
            // Handshake echoes, pongs, and uncorrelatable errors carry
            // no router id to resolve; drop them.
            _ => {}
        }
    }

    /// Deliver a terminal error for one pending entry (routed to the
    /// scatter latch when the entry is a part).
    fn reply_error(&self, pending: &Pending, message: &str) {
        match &pending.scatter {
            None => {
                let _ = pending.reply.send((
                    Response::Error {
                        id: Some(pending.client_id),
                        message: message.to_owned(),
                    },
                    pending.dialect,
                    pending.encoding,
                ));
            }
            Some(part) => self.scatter_fail(&part.job, message),
        }
    }

    // -----------------------------------------------------------------
    // Scatter
    // -----------------------------------------------------------------

    /// The range split for `spec`, when it is scatter-eligible: ranged
    /// sweeps cover exactly `0..count` in contiguous chunks.
    fn scatter_plan(&self, spec: &JobSpec) -> Option<Vec<(u64, u64)>> {
        if !self.cfg.scatter || spec.options.keep_points || spec.options.tiling_range.is_some() {
            return None;
        }
        let [layer] = spec.workload.layers() else {
            return None;
        };
        let healthy = self.healthy().len();
        if healthy < 2 {
            return None;
        }
        let count = count_tilings(layer, &AcceleratorConfig::table_ii()).ok()? as u64;
        if count < self.cfg.scatter_threshold.max(2) {
            return None;
        }
        let parts = (healthy.min(self.cfg.scatter_max_parts).max(2)) as u64;
        let chunk = count.div_ceil(parts);
        Some(
            (0..parts)
                .map(|i| (i * chunk, ((i + 1) * chunk).min(count)))
                .filter(|(start, end)| start < end)
                .collect(),
        )
    }

    /// Split `spec` into ranged sub-jobs, one per range, spread over
    /// the rendezvous ranking of the job's base key.
    fn submit_scatter(
        self: &Arc<Self>,
        spec: JobSpec,
        ranges: Vec<(u64, u64)>,
        reply: &ReplyTx,
        dialect: Dialect,
        encoding: Encoding,
    ) {
        self.m.scatter_jobs_total.inc();
        let job = Arc::new(ScatterJob {
            client_id: spec.id,
            workload: spec.workload.name().to_owned(),
            objective: spec.engine.objective,
            parts: Mutex::new(vec![None; ranges.len()]),
            failed: AtomicBool::new(false),
            reply: reply.clone(),
            dialect,
            encoding,
        });
        // Spread the parts over the healthy slice of the base key's
        // ranking: part i starts on the i-th ranked healthy backend
        // (failover falls back to the per-part rendezvous pick).
        let base_key = job_route_key(&spec);
        let ranked: Vec<usize> = hash::rank(&base_key, &self.addrs)
            .into_iter()
            .filter(|&i| self.backends[i].is_healthy())
            .collect();
        for (part, &(start, end)) in ranges.iter().enumerate() {
            let mut part_spec = spec.clone();
            part_spec.options.tiling_range = Some((start, end));
            let router_id = self.next_id();
            part_spec.id = router_id;
            let pending = Pending {
                spec: part_spec,
                client_id: job.client_id,
                reply: reply.clone(),
                dialect,
                encoding,
                backend: usize::MAX,
                attempts: 0,
                prev_backoff_ms: 0,
                scatter: Some(ScatterPart {
                    job: Arc::clone(&job),
                    part,
                }),
            };
            let preferred = (!ranked.is_empty()).then(|| ranked[part % ranked.len()]);
            self.dispatch(router_id, pending, preferred);
        }
    }

    /// Record one scatter part's outcome; the last part in merges and
    /// answers the client.
    fn scatter_collect(&self, part: &ScatterPart, result: JobResult) {
        let job = &part.job;
        // ordering: Relaxed — the latch only suppresses duplicate
        // replies; the parts mutex orders the merge itself.
        if job.failed.load(Ordering::Relaxed) {
            return;
        }
        let Some(outcome) = result.layers.into_iter().next() else {
            self.scatter_fail(job, "backend answered a scatter part with no layer outcome");
            return;
        };
        let merged = {
            let mut parts = lock_recovered(&job.parts);
            if part.part >= parts.len() {
                return;
            }
            parts[part.part] = Some(outcome);
            if !parts.iter().all(Option::is_some) {
                return;
            }
            Self::merge_parts(job, &parts)
        };
        let Some(result) = merged else {
            self.scatter_fail(job, "scatter merge found no feasible configuration");
            return;
        };
        let _ = job
            .reply
            .send((Response::Job { result }, job.dialect, job.encoding));
    }

    /// Exact merge of the completed parts, mirroring the pool's
    /// `LayerPartial::merge`: strictly-smaller objective score wins,
    /// the earlier range keeps ties, evaluation counts sum.
    fn merge_parts(job: &ScatterJob, parts: &[Option<LayerOutcome>]) -> Option<JobResult> {
        let outcomes: Vec<&LayerOutcome> = parts.iter().filter_map(Option::as_ref).collect();
        let mut winner: Option<&LayerOutcome> = None;
        let mut evaluations = 0u64;
        for outcome in &outcomes {
            evaluations += outcome.evaluations;
            let better = match winner {
                None => true,
                Some(best) => {
                    job.objective.score(&outcome.estimate) < job.objective.score(&best.estimate)
                }
            };
            if better {
                winner = Some(outcome);
            }
        }
        let winner = winner?;
        let merged = LayerOutcome {
            name: winner.name.clone(),
            mapping: winner.mapping.clone(),
            scheme: winner.scheme.clone(),
            tiling: winner.tiling,
            estimate: winner.estimate,
            evaluations,
            // The merged result was computed across nodes this time;
            // per-part cache state is not meaningful for the whole.
            cached: false,
            coalesced: false,
            store_hit: false,
            pareto: Vec::new(),
        };
        let mut total = EdpEstimate::zero(winner.estimate.t_ck_ns);
        total.accumulate(&winner.estimate);
        Some(JobResult {
            id: job.client_id,
            workload: job.workload.clone(),
            total,
            layers: vec![merged],
        })
    }

    /// Latch the scatter job failed and deliver the (single) error.
    fn scatter_fail(&self, job: &ScatterJob, message: &str) {
        // ordering: Relaxed — the swap's atomicity alone guarantees a
        // single winner; no other data rides on the latch.
        if job.failed.swap(true, Ordering::Relaxed) {
            return;
        }
        let _ = job.reply.send((
            Response::Error {
                id: Some(job.client_id),
                message: format!("scatter failed: {message}"),
            },
            job.dialect,
            job.encoding,
        ));
    }

    // -----------------------------------------------------------------
    // Admin verbs
    // -----------------------------------------------------------------

    /// The capability list the router advertises: the intersection of
    /// its healthy backends' lists (minus per-node diagnostics), plus
    /// `router`.
    fn capabilities(&self) -> Vec<String> {
        let backend_caps: Vec<Vec<String>> = self
            .backends
            .iter()
            .filter(|b| b.is_healthy())
            .map(Backend::capabilities)
            .collect();
        router_capabilities(&backend_caps)
    }

    /// Aggregate `stats` across healthy backends: counters sum,
    /// configuration comes from the first, `backends` is the cluster
    /// size.
    fn aggregate_stats(&self, id: Option<u64>) -> Response {
        let mut merged: Option<StatsReport> = None;
        let mut reached = 0usize;
        for backend in self.backends.iter().filter(|b| b.is_healthy()) {
            let report = match backend
                .admin_request(&Request::Stats { id: None }, &self.admin_config())
            {
                Ok(Response::Stats { report, .. }) => report,
                Ok(Response::Error { message, .. }) => {
                    return Response::Error {
                        id,
                        message: format!("backend {}: {message}", backend.addr),
                    }
                }
                Ok(other) => {
                    return Response::Error {
                        id,
                        message: format!("backend {} answered stats with {other:?}", backend.addr),
                    }
                }
                Err(e) => {
                    return Response::Error {
                        id,
                        message: format!("backend {} unreachable: {e}", backend.addr),
                    }
                }
            };
            reached += 1;
            merged = Some(match merged {
                None => report,
                Some(acc) => sum_stats(acc, &report),
            });
        }
        match merged {
            Some(mut report) => {
                report.backends = Some(reached);
                Response::Stats { id, report }
            }
            None => Response::Error {
                id,
                message: "no healthy backend available".to_owned(),
            },
        }
    }

    /// Aggregate `metrics` across healthy backends plus the router's
    /// own registry; slow logs concatenate.
    fn aggregate_metrics(&self, id: Option<u64>) -> Response {
        let mut snapshot = self.metrics.snapshot();
        let mut slow = Vec::new();
        for backend in self.backends.iter().filter(|b| b.is_healthy()) {
            match backend.admin_request(&Request::Metrics { id: None }, &self.admin_config()) {
                Ok(Response::Metrics { report, .. }) => {
                    snapshot.merge(&report.snapshot);
                    slow.extend(report.slow);
                }
                Ok(Response::Error { message, .. }) => {
                    return Response::Error {
                        id,
                        message: format!("backend {}: {message}", backend.addr),
                    }
                }
                Ok(other) => {
                    return Response::Error {
                        id,
                        message: format!(
                            "backend {} answered metrics with {other:?}",
                            backend.addr
                        ),
                    }
                }
                Err(e) => {
                    return Response::Error {
                        id,
                        message: format!("backend {} unreachable: {e}", backend.addr),
                    }
                }
            }
        }
        Response::Metrics {
            id,
            report: drmap_service::proto::MetricsReport { snapshot, slow },
        }
    }

    /// Broadcast a configuration verb to every healthy backend; any
    /// failure fails the verb. Countable acknowledgements (`loaded`
    /// entries warmed, compaction reports) aggregate; the rest answer
    /// with the first backend's response.
    fn broadcast(&self, request: &Request) -> Response {
        let id = admin_request_id(request);
        let mut first: Option<Response> = None;
        let mut warmed = 0usize;
        let mut compact: Option<drmap_store::store::CompactReport> = None;
        for backend in self.backends.iter().filter(|b| b.is_healthy()) {
            match backend.admin_request(request, &self.admin_config()) {
                Ok(Response::Error { message, .. }) => {
                    return Response::Error {
                        id,
                        message: format!("backend {}: {message}", backend.addr),
                    }
                }
                Ok(response) => {
                    if let Response::CacheWarmed { loaded, .. } = &response {
                        warmed += loaded;
                    }
                    if let Response::StoreCompacted { report, .. } = &response {
                        let acc = compact.get_or_insert(drmap_store::store::CompactReport {
                            live_records: 0,
                            dropped_records: 0,
                            bytes_before: 0,
                            bytes_after: 0,
                        });
                        acc.live_records += report.live_records;
                        acc.dropped_records += report.dropped_records;
                        acc.bytes_before += report.bytes_before;
                        acc.bytes_after += report.bytes_after;
                    }
                    if first.is_none() {
                        first = Some(response);
                    }
                }
                Err(e) => {
                    return Response::Error {
                        id,
                        message: format!("backend {} unreachable: {e}", backend.addr),
                    }
                }
            }
        }
        match first {
            None => Response::Error {
                id,
                message: "no healthy backend available".to_owned(),
            },
            Some(Response::CacheWarmed { id, .. }) => Response::CacheWarmed { id, loaded: warmed },
            Some(Response::StoreCompacted { id, report: _ }) => match compact {
                Some(report) => Response::StoreCompacted { id, report },
                None => Response::Error {
                    id,
                    message: "store compaction lost its report".to_owned(),
                },
            },
            Some(response) => response,
        }
    }

    /// Answer one decoded client request; `true` ends the session.
    fn handle_request(
        self: &Arc<Self>,
        request: Request,
        dialect: Dialect,
        encoding: Encoding,
        reply: &ReplyTx,
    ) -> bool {
        let response = match request {
            Request::Hello { version, .. } => {
                if version == PROTOCOL_VERSION {
                    Response::Hello {
                        version: PROTOCOL_VERSION,
                        server: backend::identity(),
                        capabilities: self.capabilities(),
                    }
                } else {
                    Response::Error {
                        id: None,
                        message: format!(
                            "unsupported protocol version {version} (this router speaks \
                             {PROTOCOL_VERSION})"
                        ),
                    }
                }
            }
            Request::Ping { id } => Response::Pong { id },
            Request::Shutdown { id } => {
                // The session flushes this acknowledgement and *then*
                // triggers the shutdown — the process may exit moments
                // after the accept loop observes the flag.
                let _ = reply.send((Response::Shutdown { id }, dialect, encoding));
                return true;
            }
            Request::Submit(spec) => {
                self.submit(spec, reply, dialect, encoding);
                return false;
            }
            Request::Stats { id } => self.aggregate_stats(id),
            Request::Metrics { id } => self.aggregate_metrics(id),
            // Per-node diagnostics do not aggregate meaningfully (the
            // ring windows and persisted traces are node-local); the
            // router does not advertise these capabilities.
            Request::MetricsHistory { id } => Response::Error {
                id,
                message: "metrics-history is per-node; query the backend directly".to_owned(),
            },
            Request::SlowTraces { id, .. } => Response::Error {
                id,
                message: "slow-traces is per-node; query the backend directly".to_owned(),
            },
            other => self.broadcast(&other),
        };
        let _ = reply.send((response, dialect, encoding));
        false
    }
}

/// Field-wise sum of two stats reports (configuration fields keep the
/// accumulator's — i.e. the first healthy backend's — values).
fn sum_stats(mut acc: StatsReport, other: &StatsReport) -> StatsReport {
    let c = &mut acc.cache;
    let o = &other.cache;
    c.hits += o.hits;
    c.misses += o.misses;
    c.coalesced += o.coalesced;
    c.bypasses += o.bypasses;
    c.refreshes += o.refreshes;
    c.evictions += o.evictions;
    c.cost_evictions += o.cost_evictions;
    c.entries += o.entries;
    c.bytes += o.bytes;
    c.store_hits += o.store_hits;
    c.store_misses += o.store_misses;
    c.store_errors += o.store_errors;
    c.compute_ns_min = if c.compute_ns_min == 0 {
        o.compute_ns_min
    } else if o.compute_ns_min == 0 {
        c.compute_ns_min
    } else {
        c.compute_ns_min.min(o.compute_ns_min)
    };
    c.compute_ns_max = c.compute_ns_max.max(o.compute_ns_max);
    c.compute_ns_total += o.compute_ns_total;
    acc.workers += other.workers;
    acc.store = match (acc.store, &other.store) {
        (Some(mut a), Some(b)) => {
            a.live_entries += b.live_entries;
            a.records += b.records;
            a.dead_records += b.dead_records;
            a.file_bytes += b.file_bytes;
            a.live_value_bytes += b.live_value_bytes;
            a.dead_bytes += b.dead_bytes;
            a.appends += b.appends;
            a.gets += b.gets;
            a.hits += b.hits;
            a.compactions += b.compactions;
            a.recovered_bytes += b.recovered_bytes;
            Some(a)
        }
        (None, Some(b)) => Some(*b),
        (a, None) => a,
    };
    acc
}

/// The correlation id carried by an admin request (for error replies
/// composed by the router itself).
fn admin_request_id(request: &Request) -> Option<u64> {
    match request {
        Request::Hello { .. } | Request::Submit(_) => None,
        Request::Ping { id }
        | Request::Stats { id }
        | Request::Shutdown { id }
        | Request::SetPolicy { id, .. }
        | Request::SetShardPolicy { id, .. }
        | Request::CacheClear { id }
        | Request::CacheWarm { id, .. }
        | Request::StoreCompact { id, .. }
        | Request::Metrics { id }
        | Request::SetBounds { id, .. }
        | Request::MetricsHistory { id }
        | Request::SlowTraces { id, .. }
        | Request::SetSlowLog { id, .. }
        | Request::SetFaults { id, .. }
        | Request::SetOverload { id, .. } => *id,
    }
}

// ---------------------------------------------------------------------
// The listener
// ---------------------------------------------------------------------

/// A bound router, ready to serve.
pub struct Router {
    core: Arc<RouterCore>,
    listener: TcpListener,
}

impl Router {
    /// Bind `addr` and prepare (but do not yet connect) the backends.
    ///
    /// # Errors
    ///
    /// Bind failures, or a config with no backends.
    pub fn bind(addr: &str, cfg: RouterConfig) -> Result<Router, ServiceError> {
        if cfg.backends.is_empty() {
            return Err(ServiceError::protocol(
                "router needs at least one --backend",
            ));
        }
        let listener = TcpListener::bind(addr)?;
        Ok(Router {
            core: RouterCore::new(cfg),
            listener,
        })
    }

    /// The bound address (for `--addr 127.0.0.1:0` in tests).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> Result<SocketAddr, ServiceError> {
        Ok(self.listener.local_addr()?)
    }

    /// The shared core (tests use it to reach the registry and the
    /// health view).
    pub fn core(&self) -> Arc<RouterCore> {
        Arc::clone(&self.core)
    }

    /// Connect the backends, start the probe loop, and serve client
    /// sessions until a `shutdown` verb arrives. Backends that are
    /// down at boot stay unhealthy until a probe readmits them; at
    /// least one must handshake for startup to succeed.
    ///
    /// # Errors
    ///
    /// Accept failures, and a startup error when no backend at all is
    /// reachable.
    pub fn run(self) -> Result<(), ServiceError> {
        *lock_recovered(&self.core.local_addr) = Some(self.listener.local_addr()?);
        let mut last_err = None;
        for idx in 0..self.core.backends.len() {
            if let Err(e) = self.core.admit_backend(idx) {
                last_err = Some(e);
            }
        }
        if self.core.healthy().is_empty() {
            return Err(last_err
                .unwrap_or_else(|| ServiceError::protocol("no backend reachable at startup")));
        }
        let probe_core = Arc::clone(&self.core);
        std::thread::spawn(move || probe_loop(&probe_core));
        for stream in self.listener.incoming() {
            if self.core.is_shutting_down() {
                break;
            }
            let stream = stream?;
            let core = Arc::clone(&self.core);
            std::thread::spawn(move || {
                let _ = client_session(&core, stream);
            });
        }
        Ok(())
    }
}

/// Periodically re-handshake unhealthy backends; a success re-admits
/// the node into the rendezvous ranking.
fn probe_loop(core: &Arc<RouterCore>) {
    loop {
        std::thread::sleep(core.cfg.probe_interval);
        if core.is_shutting_down() {
            break;
        }
        for idx in 0..core.backends.len() {
            if core.backends[idx].is_healthy() {
                continue;
            }
            core.m.probe_total.inc();
            let _ = core.admit_backend(idx);
        }
    }
}

/// Serve one client connection: a reader loop on this thread, a writer
/// thread draining the outbound channel (backend reader threads feed
/// job responses into the same channel, preserving one-writer framing).
fn client_session(core: &Arc<RouterCore>, stream: TcpStream) -> Result<(), ServiceError> {
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let (tx, rx) = mpsc::channel::<Outbound>();
    let writer = std::thread::spawn(move || {
        let mut writer = BufWriter::new(stream);
        while let Ok((response, dialect, encoding)) = rx.recv() {
            if wire::write_response(&mut writer, &response, dialect, encoding).is_err() {
                break;
            }
            if writer.flush().is_err() {
                break;
            }
        }
    });
    let mut stop = false;
    while let Ok(Some(message)) = wire::read_request(&mut reader) {
        match message {
            (Err(decode), encoding) => {
                let _ = tx.send((
                    Response::Error {
                        id: decode.id,
                        message: decode.message,
                    },
                    decode.dialect,
                    encoding,
                ));
            }
            (Ok((request, dialect)), encoding) => {
                if core.handle_request(request, dialect, encoding, &tx) {
                    stop = true;
                    break;
                }
            }
        }
    }
    // Drop our sender so the writer drains and exits once the pending
    // map's clones are gone too, then join it: a shutdown request must
    // have its acknowledgement on the wire before the accept loop is
    // told to stop, because the process may exit right after.
    drop(tx);
    let _ = writer.join();
    if stop {
        core.trigger_shutdown();
    }
    Ok(())
}
