//! `drmap-router` — a consistent-hashing cluster tier over N
//! `drmap-serve` backends.
//!
//! The router speaks the typed protocol v1 on both sides: clients
//! connect to it exactly as they would to a single `drmap-serve`, and
//! it holds a small connection pool to every configured backend. Each
//! job is routed by rendezvous (highest-random-weight) hashing of its
//! cache fingerprint ([`drmap_service::engine::job_route_key`]), so
//! every backend's memo cache and WAL store stay hot for a stable
//! slice of the key space and membership changes reshuffle only the
//! keys they must (see [`hash`]).
//!
//! Jobs are pure computations, so failover is safe: when a backend
//! dies mid-flight its jobs are retried on the next-ranked healthy
//! node under the client tier's
//! [`RetryPolicy`](drmap_service::client::RetryPolicy), and health
//! probes gate the dead node's readmission. Admin verbs fan out —
//! `stats`/`metrics` aggregate, configuration verbs broadcast — and
//! `--scatter` splits one oversized layer's tiling enumeration into
//! ranges swept on different backends and merged exactly (the
//! node-level analogue of the pool's intra-layer sharding). See
//! `docs/CLUSTER.md` for the full semantics.

#![forbid(unsafe_code)]

pub mod backend;
pub mod hash;
pub mod proxy;
