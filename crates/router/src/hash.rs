//! Rendezvous (highest-random-weight) hashing over backend addresses.
//!
//! Every `(job key, backend)` pair gets a deterministic 64-bit weight;
//! a job runs on the reachable backend with the highest weight. The
//! property that makes this the right tool for a cache-affine cluster:
//! removing one backend remaps **only** the keys that backend owned
//! (every other key keeps its champion), and re-adding it restores the
//! exact prior assignment — no ring to rebalance, no assignment table
//! to ship. Failover falls out of the same ranking: the retry target
//! for a dead backend's key is simply the next weight down, so every
//! router in a fleet agrees on it without coordination.
//!
//! The weight is FNV-1a over the key bytes, a separator, and the
//! backend's name, passed through a SplitMix64-style finisher so
//! near-identical inputs (backend names sharing a long prefix) still
//! produce uncorrelated weights.

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// The deterministic weight of `backend` for `key`.
pub fn weight(key: &str, backend: &str) -> u64 {
    let mut h = FNV_OFFSET;
    for b in key.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    // Separator outside both alphabets, so ("ab","c") != ("a","bc").
    h ^= 0xff;
    h = h.wrapping_mul(FNV_PRIME);
    for b in backend.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    finish(h)
}

/// SplitMix64-style avalanche finisher: every input bit affects every
/// output bit, decorrelating weights of backends with shared prefixes.
fn finish(mut h: u64) -> u64 {
    h = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// Indices of `backends`, ranked best-first for `key` (highest weight
/// wins; ties — astronomically unlikely with 64-bit weights — break
/// toward the lower index so every router ranks identically).
pub fn rank(key: &str, backends: &[String]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..backends.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(weight(key, &backends[i])), i));
    order
}

/// The best-ranked backend index for `key` among those `healthy`;
/// `None` when nothing is healthy.
pub fn pick(key: &str, backends: &[String], healthy: &[bool]) -> Option<usize> {
    rank(key, backends)
        .into_iter()
        .find(|&i| healthy.get(i).copied().unwrap_or(false))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::{prop_assert, prop_assert_eq, proptest, ProptestConfig};

    fn backend_set(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("10.0.0.{i}:7878")).collect()
    }

    fn keys(rng_seed: u64, count: usize) -> Vec<String> {
        // Key shapes mirror real route keys: long, structured, shared
        // prefixes.
        (0..count)
            .map(|i| format!("SALP-2@salp_2gb_x8/key-{rng_seed}-{i}|conv|edp"))
            .collect()
    }

    #[test]
    fn picking_skips_unhealthy_backends_in_rank_order() {
        let backends = backend_set(4);
        let key = "some-layer-key";
        let order = rank(key, &backends);
        let mut healthy = vec![true; 4];
        assert_eq!(pick(key, &backends, &healthy), Some(order[0]));
        healthy[order[0]] = false;
        assert_eq!(pick(key, &backends, &healthy), Some(order[1]));
        healthy[order[1]] = false;
        assert_eq!(pick(key, &backends, &healthy), Some(order[2]));
        assert_eq!(pick(key, &backends, &[false; 4]), None);
    }

    #[test]
    fn weights_depend_on_both_halves_and_are_separator_safe() {
        assert_ne!(weight("a", "x"), weight("a", "y"));
        assert_ne!(weight("a", "x"), weight("b", "x"));
        // The separator keeps (key ‖ backend) concatenation ambiguity
        // from colliding.
        assert_ne!(weight("ab", "c"), weight("a", "bc"));
        // Deterministic across calls.
        assert_eq!(weight("k", "b"), weight("k", "b"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Removing one backend remaps only the keys it owned;
        /// re-adding it restores the exact prior assignment.
        #[test]
        fn rendezvous_is_minimally_disruptive(
            n in (2usize..8), seed in (0u64..1 << 32), victim_pick in (0usize..8)
        ) {
            let backends = backend_set(n);
            let all_healthy = vec![true; n];
            let victim = victim_pick % n;
            let mut without = all_healthy.clone();
            without[victim] = false;
            for key in keys(seed, 40) {
                let before = pick(&key, &backends, &all_healthy).unwrap();
                let during = pick(&key, &backends, &without).unwrap();
                if before == victim {
                    // An orphaned key must land somewhere else...
                    prop_assert!(during != victim);
                } else {
                    // ...and every other key must not move at all.
                    prop_assert_eq!(during, before);
                }
                // Readmission restores the exact prior assignment.
                let after = pick(&key, &backends, &all_healthy).unwrap();
                prop_assert_eq!(after, before);
            }
        }

        /// The full ranking is a permutation of the backend indices,
        /// identical on every evaluation (routers agree by
        /// construction).
        #[test]
        fn rank_is_a_stable_permutation(n in (1usize..9), seed in (0u64..1 << 32)) {
            let backends = backend_set(n);
            for key in keys(seed, 10) {
                let order = rank(&key, &backends);
                let mut sorted = order.clone();
                sorted.sort_unstable();
                prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
                prop_assert_eq!(rank(&key, &backends), order);
            }
        }

        /// No backend is starved: over many distinct keys every
        /// backend wins at least once (sanity on weight dispersion).
        #[test]
        fn every_backend_owns_some_keys(n in (2usize..6), seed in (0u64..1 << 32)) {
            let backends = backend_set(n);
            let healthy = vec![true; n];
            let mut owned = vec![0usize; n];
            for key in keys(seed, 200) {
                owned[pick(&key, &backends, &healthy).unwrap()] += 1;
            }
            for (i, &count) in owned.iter().enumerate() {
                prop_assert!(count > 0, "backend {} never won of 200 keys", i);
            }
        }
    }
}
