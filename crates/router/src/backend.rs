//! One routed backend: the handshaked data-connection pool, the
//! dedicated admin channel, and the health/epoch state machine.
//!
//! A backend's lifetime is a sequence of *epochs*. Each admission
//! (boot, or a probe readmitting a dead node) installs a fresh set of
//! data connections under a new epoch; each retirement (a connection
//! dying, a write failing) tears the set down and bumps the epoch
//! again. Every notification carries the epoch it observed, so a
//! stale reader thread reporting the death of an already-replaced
//! connection set cannot demote the healthy successor.
//!
//! Data connections speak the pipelined job path: requests are written
//! by whichever proxy thread holds the writer lock, responses are
//! drained by one dedicated reader thread per connection (spawned by
//! the proxy, which owns the correlation map). The admin channel is a
//! plain synchronous [`Client`], lazily connected, used for the verbs
//! that fan out rather than pipeline (`stats`, `set-policy`, …).

use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

use drmap_service::client::{Client, ClientConfig};
use drmap_service::error::ServiceError;
use drmap_service::proto::{Request, Response, PROTOCOL_VERSION};
use drmap_service::wire::{self, Encoding};

/// Lock `mutex`, recovering the guard if a panicking thread poisoned
/// it. Everything the router guards (writer buffers, connection sets,
/// the pending map) is left structurally valid on unwind, so poison
/// must not cascade — same policy as the service tier's
/// `sync::lock_recovered`.
pub(crate) fn lock_recovered<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

/// The identification string the router sends in hellos and answers
/// hellos with.
pub fn identity() -> String {
    format!("drmap-router/{}", env!("CARGO_PKG_VERSION"))
}

/// The capabilities a backend must advertise before the router will
/// pipeline jobs at it.
const REQUIRED_CAPABILITIES: [&str; 2] = ["jobs", "pipelining"];

/// One pipelined data connection: the write half, plus the raw stream
/// handle so retirement can force the (blocked) reader side to wake.
#[derive(Debug)]
pub struct DataConn {
    stream: TcpStream,
    writer: Mutex<BufWriter<TcpStream>>,
}

impl DataConn {
    /// Serialize one request onto the connection and flush it.
    pub fn send(&self, request: &Request) -> Result<(), ServiceError> {
        let mut writer = lock_recovered(&self.writer);
        wire::write_request(&mut *writer, request, Encoding::Text)?;
        writer.flush().map_err(ServiceError::from)
    }

    /// Close both halves, unblocking the reader thread.
    pub fn close(&self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }
}

fn resolve(addr: &str) -> Result<SocketAddr, ServiceError> {
    addr.to_socket_addrs()?
        .next()
        .ok_or_else(|| ServiceError::protocol(format!("backend address {addr:?} did not resolve")))
}

/// Connect to `addr`, perform the hello handshake, and verify the
/// backend speaks our protocol version with the capabilities the data
/// path relies on. Returns the write half, the read half (for the
/// caller to hand to a reader thread), and the backend's advertised
/// capabilities.
///
/// # Errors
///
/// Connection and socket errors; a protocol error when the backend
/// answers with a different version, refuses the hello, or lacks a
/// required capability.
pub fn open_data_conn(
    addr: &str,
    connect_timeout: Duration,
) -> Result<(DataConn, BufReader<TcpStream>, Vec<String>), ServiceError> {
    let stream = TcpStream::connect_timeout(&resolve(addr)?, connect_timeout)?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream.try_clone()?);
    wire::write_request(
        &mut writer,
        &Request::Hello {
            version: PROTOCOL_VERSION,
            client: Some(identity()),
        },
        Encoding::Text,
    )?;
    writer.flush()?;
    let Some((response, _)) = wire::read_response(&mut reader)? else {
        return Err(ServiceError::protocol(format!(
            "backend {addr} closed the connection during the hello handshake"
        )));
    };
    let capabilities = match response {
        Response::Hello {
            version,
            capabilities,
            ..
        } if version == PROTOCOL_VERSION => capabilities,
        Response::Hello { version, .. } => {
            return Err(ServiceError::protocol(format!(
                "backend {addr} speaks protocol version {version}, router requires \
                 {PROTOCOL_VERSION}"
            )));
        }
        Response::Error { message, .. } => {
            return Err(ServiceError::protocol(format!(
                "backend {addr} refused the hello: {message}"
            )));
        }
        other => {
            return Err(ServiceError::protocol(format!(
                "backend {addr} answered the hello with {other:?}"
            )));
        }
    };
    for required in REQUIRED_CAPABILITIES {
        if !capabilities.iter().any(|c| c == required) {
            return Err(ServiceError::protocol(format!(
                "backend {addr} does not advertise the {required:?} capability"
            )));
        }
    }
    let conn = DataConn {
        stream,
        writer: Mutex::new(writer),
    };
    Ok((conn, reader, capabilities))
}

/// One configured backend's live state.
#[derive(Debug)]
pub struct Backend {
    /// `host:port` — also the backend's rendezvous-hash identity, so
    /// restarts keep their slice of the key space.
    pub addr: String,
    healthy: AtomicBool,
    epoch: AtomicU64,
    conns: Mutex<Vec<Arc<DataConn>>>,
    next_conn: AtomicUsize,
    admin: Mutex<Option<Client>>,
    capabilities: Mutex<Vec<String>>,
}

impl Backend {
    /// A backend that has never been connected (unhealthy until the
    /// first admission).
    pub fn new(addr: String) -> Self {
        Backend {
            addr,
            healthy: AtomicBool::new(false),
            epoch: AtomicU64::new(0),
            conns: Mutex::new(Vec::new()),
            next_conn: AtomicUsize::new(0),
            admin: Mutex::new(None),
            capabilities: Mutex::new(Vec::new()),
        }
    }

    /// Whether the router currently routes jobs here.
    pub fn is_healthy(&self) -> bool {
        // ordering: Acquire pairs with the Release store in
        // `admit`/`retire`; the connection set itself is published by
        // the `conns` mutex, the flag is only the routing hint.
        self.healthy.load(Ordering::Acquire)
    }

    /// The current connection-set epoch (captured at dispatch so a
    /// later failure report can be recognized as stale).
    pub fn current_epoch(&self) -> u64 {
        // ordering: Acquire pairs with the epoch bump under the conns
        // lock in `admit`/`retire`; a stale read only widens the
        // stale-notification window, never corrupts state.
        self.epoch.load(Ordering::Acquire)
    }

    /// The capabilities advertised at the last admission.
    pub fn capabilities(&self) -> Vec<String> {
        lock_recovered(&self.capabilities).clone()
    }

    /// Install a fresh connection set, record `capabilities`, and mark
    /// the backend healthy. Returns the new epoch, which the caller
    /// threads through to the reader threads it spawns.
    pub fn admit(&self, conns: Vec<Arc<DataConn>>, capabilities: Vec<String>) -> u64 {
        let mut guard = lock_recovered(&self.conns);
        for conn in guard.drain(..) {
            conn.close();
        }
        *guard = conns;
        *lock_recovered(&self.capabilities) = capabilities;
        // ordering: AcqRel under the conns lock — every transition
        // holds that lock, so the bump is totally ordered with other
        // transitions; Acquire loads elsewhere see it no later than
        // the lock release.
        let epoch = self.epoch.fetch_add(1, Ordering::AcqRel) + 1;
        // ordering: Release pairs with the Acquire in `is_healthy`;
        // the conns mutex published the connection set already.
        self.healthy.store(true, Ordering::Release);
        epoch
    }

    /// Tear the connection set down and mark the backend unhealthy —
    /// but only if `epoch` is still current. Returns whether this call
    /// performed the demotion (a `false` means some other transition
    /// already replaced the set the caller saw die).
    pub fn retire(&self, epoch: u64) -> bool {
        let mut guard = lock_recovered(&self.conns);
        // ordering: Acquire under the conns lock that every transition
        // holds; see `admit`.
        if self.epoch.load(Ordering::Acquire) != epoch {
            return false;
        }
        // ordering: Release pairs with the Acquire in `is_healthy`.
        self.healthy.store(false, Ordering::Release);
        // ordering: AcqRel under the conns lock; see `admit`.
        self.epoch.fetch_add(1, Ordering::AcqRel);
        for conn in guard.drain(..) {
            conn.close();
        }
        *lock_recovered(&self.admin) = None;
        true
    }

    /// Send one request on the next data connection (round-robin, so
    /// pipelined jobs spread over the pool).
    ///
    /// # Errors
    ///
    /// Socket errors, or a protocol error when no connection set is
    /// installed (the backend raced into retirement).
    pub fn send(&self, request: &Request) -> Result<(), ServiceError> {
        let conn = {
            let guard = lock_recovered(&self.conns);
            if guard.is_empty() {
                return Err(ServiceError::protocol(format!(
                    "backend {} has no live connection",
                    self.addr
                )));
            }
            // ordering: Relaxed — the counter only spreads load; any
            // interleaving of picks is correct.
            let i = self.next_conn.fetch_add(1, Ordering::Relaxed);
            Arc::clone(&guard[i % guard.len()])
        };
        conn.send(request)
    }

    /// Send one admin verb over the dedicated synchronous channel,
    /// connecting (and handshaking) it lazily. A failed exchange drops
    /// the channel so the next verb reconnects fresh.
    ///
    /// # Errors
    ///
    /// Connection, socket, and protocol errors from the exchange.
    pub fn admin_request(
        &self,
        request: &Request,
        config: &ClientConfig,
    ) -> Result<Response, ServiceError> {
        let mut slot = lock_recovered(&self.admin);
        if slot.is_none() {
            let mut client = Client::connect_with(&self.addr, *config)?;
            client.hello()?;
            *slot = Some(client);
        }
        let result = match slot.as_mut() {
            Some(client) => client.typed_request(request),
            None => Err(ServiceError::protocol("admin channel missing")),
        };
        if result.is_err() {
            *slot = None;
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epochs_make_stale_retirement_a_no_op() {
        let backend = Backend::new("127.0.0.1:0".to_owned());
        assert!(!backend.is_healthy());
        let first = backend.admit(Vec::new(), vec!["jobs".to_owned()]);
        assert!(backend.is_healthy());
        assert_eq!(backend.capabilities(), vec!["jobs".to_owned()]);

        // A probe replaces the connection set...
        assert!(backend.retire(first));
        let second = backend.admit(Vec::new(), Vec::new());
        assert!(backend.is_healthy());

        // ...so the old epoch's death notice must not demote it.
        assert!(!backend.retire(first));
        assert!(backend.is_healthy());
        assert!(backend.retire(second));
        assert!(!backend.is_healthy());
    }

    #[test]
    fn sending_without_connections_reports_a_protocol_error() {
        let backend = Backend::new("127.0.0.1:0".to_owned());
        let err = backend
            .send(&Request::Ping { id: None })
            .expect_err("no connection set installed");
        assert!(err.to_string().contains("no live connection"), "{err}");
    }
}
