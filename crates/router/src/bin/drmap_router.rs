//! `drmap-router` — the consistent-hashing cluster tier.
//!
//! ```text
//! drmap-router --backend HOST:PORT [--backend HOST:PORT ...]
//!              [--addr HOST:PORT] [--data-conns N]
//!              [--scatter] [--scatter-threshold N] [--scatter-parts N]
//!              [--retry-attempts N] [--retry-base-ms N] [--retry-cap-ms N]
//!              [--probe-ms N] [--connect-timeout-ms N] [--admin-timeout-ms N]
//! ```
//!
//! Clients connect to the router exactly as they would to a single
//! `drmap-serve`: it speaks the typed protocol v1 on both sides, routes
//! each job by rendezvous-hashing its cache fingerprint onto a backend,
//! pipelines in-flight jobs over a small per-backend connection pool,
//! and fails jobs on dead backends over to the next-ranked node (jobs
//! are pure, so a resend is safe). `stats` and `metrics` aggregate
//! across the fleet, configuration verbs broadcast, and `--scatter`
//! splits one oversized layer's tiling sweep into ranges swept on
//! different backends and merged exactly. See `docs/CLUSTER.md`.

use std::process::ExitCode;
use std::time::Duration;

use drmap_router::proxy::{Router, RouterConfig};

fn parse_args() -> Result<(String, RouterConfig), String> {
    let mut addr = "127.0.0.1:7879".to_owned();
    let mut cfg = RouterConfig::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => addr = value("--addr")?,
            "--backend" => cfg.backends.push(value("--backend")?),
            "--data-conns" => {
                cfg.data_conns = parse_positive("--data-conns", &value("--data-conns")?)?;
            }
            "--scatter" => cfg.scatter = true,
            "--scatter-threshold" => {
                cfg.scatter_threshold =
                    parse_positive("--scatter-threshold", &value("--scatter-threshold")?)? as u64;
            }
            "--scatter-parts" => {
                cfg.scatter_max_parts =
                    parse_positive("--scatter-parts", &value("--scatter-parts")?)?;
            }
            "--retry-attempts" => {
                cfg.retry.max_attempts =
                    parse_positive("--retry-attempts", &value("--retry-attempts")?)? as u32;
            }
            "--retry-base-ms" => {
                cfg.retry.base_ms =
                    parse_positive("--retry-base-ms", &value("--retry-base-ms")?)? as u64;
            }
            "--retry-cap-ms" => {
                cfg.retry.cap_ms =
                    parse_positive("--retry-cap-ms", &value("--retry-cap-ms")?)? as u64;
            }
            "--probe-ms" => {
                cfg.probe_interval = Duration::from_millis(parse_positive(
                    "--probe-ms",
                    &value("--probe-ms")?,
                )? as u64);
            }
            "--connect-timeout-ms" => {
                cfg.connect_timeout = Duration::from_millis(parse_positive(
                    "--connect-timeout-ms",
                    &value("--connect-timeout-ms")?,
                )? as u64);
            }
            "--admin-timeout-ms" => {
                cfg.admin_timeout = Duration::from_millis(parse_positive(
                    "--admin-timeout-ms",
                    &value("--admin-timeout-ms")?,
                )? as u64);
            }
            "--help" | "-h" => {
                println!(
                    "usage: drmap-router --backend HOST:PORT [--backend HOST:PORT ...] \
                     [--addr HOST:PORT] [--data-conns N] \
                     [--scatter] [--scatter-threshold N] [--scatter-parts N] \
                     [--retry-attempts N] [--retry-base-ms N] [--retry-cap-ms N] \
                     [--probe-ms N] [--connect-timeout-ms N] [--admin-timeout-ms N]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    if cfg.backends.is_empty() {
        return Err("at least one --backend is required".to_owned());
    }
    Ok((addr, cfg))
}

fn parse_positive(name: &str, v: &str) -> Result<usize, String> {
    v.parse()
        .ok()
        .filter(|n: &usize| *n > 0)
        .ok_or_else(|| format!("invalid {name} value {v:?} (expected a positive integer)"))
}

fn main() -> ExitCode {
    let (addr, cfg) = match parse_args() {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("drmap-router: {e}");
            return ExitCode::FAILURE;
        }
    };
    let backends = cfg.backends.clone();
    let router = match Router::bind(&addr, cfg) {
        Ok(router) => router,
        Err(e) => {
            eprintln!("drmap-router: cannot bind {addr:?}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match router.local_addr() {
        Ok(bound) => eprintln!(
            "drmap-router: listening on {bound}, routing over {} backend(s): {}",
            backends.len(),
            backends.join(", ")
        ),
        Err(e) => {
            eprintln!("drmap-router: {e}");
            return ExitCode::FAILURE;
        }
    }
    match router.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("drmap-router: {e}");
            ExitCode::FAILURE
        }
    }
}
