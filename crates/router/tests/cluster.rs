//! Live cluster tests: a 3-backend fleet behind `drmap-router` must be
//! observationally identical to a single `drmap-serve` — results
//! bit-identical to direct engine calls, scatter merges exact, admin
//! verbs aggregating — and a SIGKILLed backend's jobs must fail over
//! with zero client-visible errors.

use std::sync::Arc;
use std::time::{Duration, Instant};

use drmap_cnn::layer::Layer;
use drmap_cnn::network::Network;
use drmap_router::hash;
use drmap_router::proxy::{Router, RouterConfig, RouterCore};
use drmap_service::client::Client;
use drmap_service::engine::{job_route_key, ServiceState};
use drmap_service::pool::DsePool;
use drmap_service::server::JobServer;
use drmap_service::spec::{EngineSpec, JobResult, JobSpec};

/// One in-process backend: a live `JobServer` plus its state handle so
/// tests can inspect the node directly.
struct InProcBackend {
    addr: String,
    state: Arc<ServiceState>,
}

fn boot_backends(n: usize) -> Vec<InProcBackend> {
    (0..n)
        .map(|_| {
            let state = ServiceState::new().unwrap();
            let pool = Arc::new(DsePool::new(Arc::clone(&state), 2));
            let server = JobServer::with_pool("127.0.0.1:0", pool).unwrap();
            let addr = server.local_addr().unwrap().to_string();
            std::thread::spawn(move || {
                let _ = server.run();
            });
            InProcBackend { addr, state }
        })
        .collect()
}

fn boot_router(
    backends: &[String],
    tune: impl FnOnce(&mut RouterConfig),
) -> (String, Arc<RouterCore>) {
    let mut cfg = RouterConfig {
        backends: backends.to_vec(),
        probe_interval: Duration::from_millis(100),
        ..RouterConfig::default()
    };
    tune(&mut cfg);
    let router = Router::bind("127.0.0.1:0", cfg).unwrap();
    let addr = router.local_addr().unwrap().to_string();
    let core = router.core();
    std::thread::spawn(move || {
        let _ = router.run();
    });
    (addr, core)
}

fn wait_healthy(core: &RouterCore, n: usize) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while core.healthy().len() < n {
        assert!(
            Instant::now() < deadline,
            "router admitted {} of {n} backends within 10 s",
            core.healthy().len()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn assert_bit_identical(served: &JobResult, direct: &JobResult) {
    assert_eq!(served.workload, direct.workload);
    assert_eq!(served.layers.len(), direct.layers.len());
    for (s, d) in served.layers.iter().zip(&direct.layers) {
        assert_eq!(s.name, d.name);
        assert_eq!(s.mapping, d.mapping, "mapping differs for {}", s.name);
        assert_eq!(s.scheme, d.scheme, "scheme differs for {}", s.name);
        assert_eq!(s.tiling, d.tiling, "tiling differs for {}", s.name);
        assert_eq!(
            s.estimate.energy.to_bits(),
            d.estimate.energy.to_bits(),
            "energy differs for {}",
            s.name
        );
        assert_eq!(
            s.estimate.cycles.to_bits(),
            d.estimate.cycles.to_bits(),
            "cycles differ for {}",
            s.name
        );
        assert_eq!(
            s.evaluations, d.evaluations,
            "evaluations differ for {}",
            s.name
        );
    }
    assert_eq!(served.total.energy.to_bits(), direct.total.energy.to_bits());
    assert_eq!(served.total.cycles.to_bits(), direct.total.cycles.to_bits());
}

#[test]
fn routed_results_are_bit_identical_to_direct() {
    let backends = boot_backends(3);
    let addrs: Vec<String> = backends.iter().map(|b| b.addr.clone()).collect();
    let (addr, core) = boot_router(&addrs, |_| {});
    wait_healthy(&core, 3);

    let mut client = Client::connect(&addr).unwrap();
    let hello = client.hello().unwrap();
    assert!(hello.has("router"), "router capability missing: {hello:?}");
    assert!(hello.has("jobs"));
    assert!(hello.has("pipelining"));
    assert!(
        !hello.has("metrics-history"),
        "per-node diagnostics must not be advertised by the router"
    );

    let reference = ServiceState::new().unwrap();
    for (i, network) in [Network::tiny(), Network::alexnet()]
        .into_iter()
        .enumerate()
    {
        let spec = JobSpec::network(i as u64 + 1, EngineSpec::default(), network);
        let served = client.submit(&spec).unwrap();
        let direct = reference.run_job(&spec).unwrap();
        assert_eq!(served.id, spec.id, "client id must be restored");
        assert_bit_identical(&served, &direct);
    }
    let snapshot = core.metrics().snapshot();
    assert!(snapshot.counter("route_total").unwrap() >= 2);
    assert_eq!(snapshot.gauge("backends_up"), Some(3));
}

#[test]
fn scattered_layer_merges_bit_identically() {
    let backends = boot_backends(3);
    let addrs: Vec<String> = backends.iter().map(|b| b.addr.clone()).collect();
    let (addr, core) = boot_router(&addrs, |cfg| {
        cfg.scatter = true;
        cfg.scatter_threshold = 2; // everything scatters
    });
    wait_healthy(&core, 3);

    let mut client = Client::connect(&addr).unwrap();
    let reference = ServiceState::new().unwrap();
    for (i, layer) in Network::tiny().layers().iter().enumerate() {
        let spec = JobSpec::layer(i as u64 + 10, EngineSpec::default(), layer.clone());
        let served = client.submit(&spec).unwrap();
        let direct = reference.run_job(&spec).unwrap();
        assert_bit_identical(&served, &direct);
    }
    let scattered = core
        .metrics()
        .snapshot()
        .counter("scatter_jobs_total")
        .unwrap();
    assert!(
        scattered >= 1,
        "at least one job should have scattered, got {scattered}"
    );
}

#[test]
fn admin_verbs_aggregate_and_broadcast() {
    let backends = boot_backends(3);
    let addrs: Vec<String> = backends.iter().map(|b| b.addr.clone()).collect();
    let (addr, core) = boot_router(&addrs, |_| {});
    wait_healthy(&core, 3);

    let mut client = Client::connect(&addr).unwrap();
    // Distinct single-layer jobs spread over the fleet and populate
    // each backend's cache.
    let specs: Vec<JobSpec> = (0..6)
        .map(|i| {
            let layer = Layer::conv(&format!("L{i}"), 8, 8, 8 + i, 3, 3, 3, 1);
            JobSpec::layer(i as u64 + 1, EngineSpec::default(), layer)
        })
        .collect();
    for result in client.submit_batch(&specs).unwrap() {
        result.unwrap();
    }

    let report = client.stats_report().unwrap();
    assert_eq!(report.backends, Some(3), "router must report cluster size");
    assert_eq!(report.workers, 6, "2 workers per backend must sum");
    let direct_entries: usize = backends
        .iter()
        .map(|b| b.state.cache().stats().entries)
        .sum();
    assert_eq!(report.cache.entries, direct_entries);
    assert!(report.cache.entries >= 6, "6 distinct layers were explored");

    // Aggregated metrics carry both tiers: a backend counter summed
    // over the fleet and the router's own routing counters.
    let metrics = client.metrics().unwrap();
    assert!(metrics.snapshot.counter("route_total").unwrap() >= 6);
    assert!(metrics.snapshot.counter("connections_total").is_some());

    // A broadcast verb reaches every node.
    client.cache_clear().unwrap();
    for backend in &backends {
        assert_eq!(backend.state.cache().stats().entries, 0);
    }
}

// ---------------------------------------------------------------------
// Failover under SIGKILL (external backend processes)
// ---------------------------------------------------------------------

fn serve_bin() -> std::path::PathBuf {
    // target/debug/deps/cluster-… → target/debug/drmap-serve
    let mut path = std::env::current_exe().unwrap();
    path.pop();
    if path.ends_with("deps") {
        path.pop();
    }
    path.join(format!("drmap-serve{}", std::env::consts::EXE_SUFFIX))
}

fn wait_for_backend(addr: &str) {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        if let Ok(mut client) = Client::connect(addr) {
            if client.ping().is_ok() {
                return;
            }
        }
        assert!(
            Instant::now() < deadline,
            "backend {addr} not up within 20 s"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

#[test]
fn sigkilled_backend_fails_over_without_job_errors() {
    let bin = serve_bin();
    if !bin.exists() {
        // The serve binary is built by a workspace `cargo test` /
        // `cargo build`; a bare `cargo test -p drmap-router` may
        // predate it. CI's cluster-smoke job covers this path too.
        eprintln!("skipping: {} not built", bin.display());
        return;
    }

    let ports: Vec<u16> = (0..3)
        .map(|_| {
            std::net::TcpListener::bind("127.0.0.1:0")
                .unwrap()
                .local_addr()
                .unwrap()
                .port()
        })
        .collect();
    let addrs: Vec<String> = ports.iter().map(|p| format!("127.0.0.1:{p}")).collect();
    let mut children: Vec<std::process::Child> = addrs
        .iter()
        .map(|addr| {
            std::process::Command::new(&bin)
                .args(["--addr", addr, "--workers", "2"])
                .stdout(std::process::Stdio::null())
                .stderr(std::process::Stdio::null())
                .spawn()
                .unwrap()
        })
        .collect();
    for addr in &addrs {
        wait_for_backend(addr);
    }

    let (addr, core) = boot_router(&addrs, |cfg| {
        cfg.retry.base_ms = 10;
        cfg.retry.cap_ms = 100;
    });
    wait_healthy(&core, 3);

    // Jobs whose rendezvous pick is the victim: every one of them is
    // in flight on the node we are about to kill.
    let victim = 0usize;
    let all_healthy = vec![true; addrs.len()];
    let mut specs = Vec::new();
    let mut candidate = 0usize;
    while specs.len() < 6 {
        let layer = Layer::conv(
            &format!("victim-{candidate}"),
            27,
            27,
            64 + candidate,
            32,
            5,
            5,
            1,
        );
        let spec = JobSpec::layer(specs.len() as u64 + 1, EngineSpec::default(), layer);
        let key = job_route_key(&spec);
        if hash::pick(&key, &addrs, &all_healthy) == Some(victim) {
            specs.push(spec);
        }
        candidate += 1;
        assert!(
            candidate < 10_000,
            "could not find keys owned by the victim"
        );
    }

    let killer_addrs = addrs.clone();
    let victim_child = children.remove(victim);
    let killer = std::thread::spawn(move || {
        // Let the pipelined batch land on the victim, then kill it
        // mid-flight.
        std::thread::sleep(Duration::from_millis(50));
        let mut child = victim_child;
        let _ = child.kill();
        let _ = child.wait();
        killer_addrs
    });

    let mut client = Client::connect(&addr).unwrap();
    let results = client.submit_batch(&specs).unwrap();
    for (spec, result) in specs.iter().zip(results) {
        let job = result.unwrap_or_else(|e| panic!("job {} failed after failover: {e}", spec.id));
        assert_eq!(job.id, spec.id);
        assert_eq!(job.layers.len(), 1);
    }
    killer.join().unwrap();

    let snapshot = core.metrics().snapshot();
    assert!(
        snapshot.counter("failover_total").unwrap() >= 1,
        "killed mid-flight jobs must have failed over"
    );
    assert_eq!(snapshot.gauge("backends_up"), Some(2));

    // The survivors still answer admin verbs, reporting the shrunken
    // fleet.
    let report = client.stats_report().unwrap();
    assert_eq!(report.backends, Some(2));

    for mut child in children {
        let _ = child.kill();
        let _ = child.wait();
    }
}
