//! `dse_hot` — the DSE hot-loop benchmark.
//!
//! Measures the invariant-hoisted evaluation pipeline against a
//! faithful re-implementation of the pre-pipeline sweep (per-evaluation
//! `evaluate()` calls, a `format!`ed label per point, collect-then-
//! filter Pareto extraction), on the full AlexNet layer set with
//! `keep_points` enabled — the paper's Algorithm 1 at its most
//! expensive. Also measures intra-layer tiling-range sharding (one
//! oversized layer split across pool workers) and **verifies the
//! sharded-vs-sequential bit-identity** before reporting anything: a
//! mismatch fails the run with a non-zero exit, so CI catches identity
//! regressions here as well as in the proptests. A second hard gate
//! bounds the cost of the service's telemetry instrumentation at <3%
//! of the sweep's wall clock (see `verify_telemetry_overhead`).
//!
//! Writes `BENCH_dse.json` at the workspace root. Run with `--smoke`
//! (as CI does) for a fast low-iteration pass.

use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, Criterion};
use drmap_bench::build_engines;
use drmap_cnn::accelerator::AcceleratorConfig;
use drmap_cnn::layer::Layer;
use drmap_cnn::network::Network;
use drmap_core::dse::{DseCandidate, DseConfig, DseEngine, LayerDseResult, LayerPartial};
use drmap_core::pareto::{pareto_front, DesignPoint};
use drmap_core::tiling::enumerate_tilings;
use drmap_service::engine::ServiceState;
use drmap_service::json::Json;
use drmap_service::pool::{DsePool, ShardPolicy};
use drmap_service::prelude::{Counter, Histogram, Span};
use drmap_service::spec::{EngineSpec, JobSpec};

/// The keep-points sweep configuration both contenders run.
fn sweep_config() -> DseConfig {
    DseConfig {
        keep_points: true,
        ..DseConfig::default()
    }
}

/// A SALP-2 engine with `keep_points` enabled.
fn hot_engine() -> DseEngine {
    let engines = build_engines(AcceleratorConfig::table_ii()).unwrap();
    DseEngine::new(engines[2].engine.model().clone(), sweep_config())
}

/// The pre-pipeline `explore_layer`, re-derived from the public
/// single-point evaluator: per-evaluation schedule resolution and
/// transition counting inside `evaluate()`, a heap-allocated label per
/// point, and batch Pareto extraction at the end. This is the baseline
/// the ≥3x acceptance target is measured against.
fn naive_explore(engine: &DseEngine, layer: &Layer) -> LayerDseResult {
    let acc = *engine.model().traffic_model().accelerator();
    let tilings = enumerate_tilings(layer, &acc).unwrap();
    let objective = engine.config().objective;
    let mut best: Option<DseCandidate> = None;
    let mut evaluations = 0usize;
    let mut points = Vec::new();
    for tiling in &tilings {
        for &scheme in &engine.config().schemes {
            for mapping in &engine.config().mappings {
                let estimate = engine.evaluate(layer, tiling, scheme, mapping);
                evaluations += 1;
                if engine.config().keep_points {
                    points.push(DesignPoint::new(
                        format!("{} | {} | {}", mapping.name(), scheme, tiling),
                        estimate,
                    ));
                }
                let better = best
                    .as_ref()
                    .is_none_or(|b| objective.score(&estimate) < objective.score(&b.estimate));
                if better {
                    best = Some(DseCandidate {
                        mapping: *mapping,
                        tiling: *tiling,
                        scheme,
                        estimate,
                    });
                }
            }
        }
    }
    LayerDseResult {
        layer_name: layer.name.clone(),
        best: best.expect("non-empty sweep"),
        evaluations,
        pareto: pareto_front(&points),
    }
}

fn assert_bit_identical(a: &LayerDseResult, b: &LayerDseResult, context: &str) -> bool {
    let best_ok = a.best.mapping == b.best.mapping
        && a.best.scheme == b.best.scheme
        && a.best.tiling == b.best.tiling
        && a.best.estimate.cycles.to_bits() == b.best.estimate.cycles.to_bits()
        && a.best.estimate.energy.to_bits() == b.best.estimate.energy.to_bits();
    let front_ok = a.pareto.len() == b.pareto.len()
        && a.pareto.iter().zip(&b.pareto).all(|(p, q)| {
            p.label == q.label
                && p.estimate.cycles.to_bits() == q.estimate.cycles.to_bits()
                && p.estimate.energy.to_bits() == q.estimate.energy.to_bits()
        });
    let ok = best_ok && front_ok && a.evaluations == b.evaluations;
    if !ok {
        eprintln!("dse_hot: IDENTITY FAILURE in {context}");
    }
    ok
}

/// Hard gate: the pipelined sweep must match the naive sweep, and
/// merged range partials must match the sequential sweep, bit for bit,
/// on every AlexNet layer. Exits non-zero on any mismatch.
fn verify_identity(engine: &DseEngine, network: &Network) {
    let mut ok = true;
    for layer in network.layers() {
        let pipelined = engine.explore_layer(layer).unwrap();
        let naive = naive_explore(engine, layer);
        ok &= assert_bit_identical(
            &pipelined,
            &naive,
            &format!("{} pipelined-vs-naive", layer.name),
        );

        let n = engine.tiling_count(layer).unwrap();
        let mut merged: Option<LayerPartial> = None;
        let chunk = n.div_ceil(7).max(1);
        let mut start = 0usize;
        while start < n {
            let partial = engine
                .explore_layer_range(layer, start..(start + chunk).min(n))
                .unwrap();
            merged = Some(match merged {
                None => partial,
                Some(mut earlier) => {
                    earlier.merge(partial);
                    earlier
                }
            });
            start += chunk;
        }
        let merged = merged.unwrap().into_result(layer.name.clone());
        ok &= assert_bit_identical(
            &merged,
            &pipelined,
            &format!("{} sharded-vs-sequential", layer.name),
        );
    }
    if !ok {
        eprintln!("dse_hot: sharded or pipelined results diverged from the sequential sweep");
        std::process::exit(1);
    }
    println!("dse_hot: identity verified (pipelined == naive, merged ranges == sequential)");
}

/// Best-of-`repeats` wall-clock time of `f`.
fn best_of<R>(repeats: usize, mut f: impl FnMut() -> R) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..repeats {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed());
    }
    best
}

/// The telemetry overhead gate: instrumentation on the AlexNet sweep
/// must cost less than this fraction of the sweep's own wall clock.
const MAX_TELEMETRY_OVERHEAD: f64 = 0.03;

/// Hard gate on telemetry cost, measured deterministically instead of
/// by differencing two noisy wall-clock runs: run the AlexNet sweep
/// through the instrumented service stack, count every telemetry
/// operation it actually performed (each histogram sample is one span —
/// two `Instant::now` calls plus an atomic bucket add; each counter
/// unit is one atomic add), price the two operation kinds with tight
/// calibration loops, and compare the total against the sweep's wall
/// clock. Exits non-zero above [`MAX_TELEMETRY_OVERHEAD`].
fn verify_telemetry_overhead() -> Json {
    let state = ServiceState::new().unwrap();
    let pool = DsePool::new(Arc::clone(&state), 1);
    let spec = JobSpec::network(1, EngineSpec::default(), Network::alexnet());
    let start = Instant::now();
    pool.submit(&spec).wait().unwrap();
    let wall = start.elapsed();

    let snap = state.metrics().snapshot();
    let span_ops: u64 = snap.histograms.iter().map(|(_, h)| h.count).sum();
    let counter_ops: u64 = snap.counters.iter().map(|(_, v)| v).sum();

    // Per-operation prices. The span probe pays the full RAII cost:
    // enter (one `Instant::now`) plus drop (a second `Instant::now`
    // and the histogram record).
    let reps: u32 = 100_000;
    let hist = Arc::new(Histogram::new());
    let t = Instant::now();
    for _ in 0..reps {
        drop(std::hint::black_box(Span::enter("overhead_probe", &hist)));
    }
    let per_span_ns = t.elapsed().as_secs_f64() * 1e9 / f64::from(reps);
    let counter = Counter::new();
    let t = Instant::now();
    for _ in 0..reps {
        counter.inc();
    }
    std::hint::black_box(counter.get());
    let per_counter_ns = t.elapsed().as_secs_f64() * 1e9 / f64::from(reps);

    let overhead_ns = span_ops as f64 * per_span_ns + counter_ops as f64 * per_counter_ns;
    let frac = overhead_ns / (wall.as_secs_f64() * 1e9).max(1.0);
    println!(
        "dse_hot: telemetry overhead on the AlexNet sweep: {span_ops} spans \
         ({per_span_ns:.0} ns each) + {counter_ops} counter ops ({per_counter_ns:.1} ns each) \
         over {:.3}s -> {:.5}% of wall clock",
        wall.as_secs_f64(),
        frac * 100.0,
    );
    if frac >= MAX_TELEMETRY_OVERHEAD {
        eprintln!(
            "dse_hot: TELEMETRY OVERHEAD FAILURE: {:.3}% >= {:.0}%",
            frac * 100.0,
            MAX_TELEMETRY_OVERHEAD * 100.0,
        );
        std::process::exit(1);
    }
    Json::obj([
        ("span_ops", Json::num_u64(span_ops)),
        ("counter_ops", Json::num_u64(counter_ops)),
        ("per_span_ns", Json::Num(per_span_ns)),
        ("per_counter_ns", Json::Num(per_counter_ns)),
        ("sweep_wall_s", Json::Num(wall.as_secs_f64())),
        ("overhead_frac", Json::Num(frac)),
        ("max_overhead_frac", Json::Num(MAX_TELEMETRY_OVERHEAD)),
    ])
}

fn bench_dse_hot(c: &mut Criterion) {
    let engine = hot_engine();
    let network = Network::alexnet();
    let conv3 = &network.layers()[2];
    c.bench_function("dse_hot_conv3_naive", |b| {
        b.iter(|| std::hint::black_box(naive_explore(&engine, conv3)))
    });
    c.bench_function("dse_hot_conv3_pipelined", |b| {
        b.iter(|| std::hint::black_box(engine.explore_layer(conv3).unwrap()))
    });
}

fn emit_bench_json(smoke: bool) {
    let engine = hot_engine();
    let network = Network::alexnet();
    verify_identity(&engine, &network);

    let repeats = if smoke { 1 } else { 5 };
    // Single-thread AlexNet sweep, keep_points on: old loop vs new.
    let baseline = best_of(repeats, || {
        for layer in network.layers() {
            std::hint::black_box(naive_explore(&engine, layer));
        }
    });
    let pipelined = best_of(repeats, || {
        for layer in network.layers() {
            std::hint::black_box(engine.explore_layer(layer).unwrap());
        }
    });
    let speedup = baseline.as_secs_f64() / pipelined.as_secs_f64().max(1e-9);
    let evaluations: usize = network
        .layers()
        .iter()
        .map(|l| engine.explore_layer(l).unwrap().evaluations)
        .sum();
    println!(
        "dse_hot: AlexNet sweep ({evaluations} evaluations, keep_points on): \
         naive {:.3}s, pipelined {:.3}s -> {speedup:.2}x",
        baseline.as_secs_f64(),
        pipelined.as_secs_f64(),
    );

    // Intra-layer sharding: one oversized layer (the largest tiling
    // enumeration in AlexNet) on a 1-worker vs a multi-worker pool.
    // Every submission uses a fresh state so nothing is cached.
    let big = network
        .layers()
        .iter()
        .max_by_key(|l| engine.tiling_count(l).unwrap())
        .unwrap()
        .clone();
    let tilings = engine.tiling_count(&big).unwrap();
    let policy = ShardPolicy {
        min_tilings: 8,
        chunks_per_worker: 3,
        chunk_tilings: None,
    };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let workers = cores.clamp(2, 4);
    let shard_repeats = if smoke { 1 } else { 3 };
    let time_pool = |n_workers: usize| {
        best_of(shard_repeats, || {
            let state = ServiceState::new().unwrap();
            let pool = DsePool::with_shard_policy(state, n_workers, policy);
            let spec = JobSpec::layer(1, EngineSpec::default(), big.clone());
            pool.submit(&spec).wait().unwrap()
        })
    };
    let one_worker = time_pool(1);
    let many_workers = time_pool(workers);
    let shard_speedup = one_worker.as_secs_f64() / many_workers.as_secs_f64().max(1e-9);
    println!(
        "dse_hot: intra-layer sharding of {} ({tilings} tilings): \
         1 worker {:.3}s, {workers} workers {:.3}s -> {shard_speedup:.2}x \
         ({cores} cores available{})",
        big.name,
        one_worker.as_secs_f64(),
        many_workers.as_secs_f64(),
        if cores == 1 {
            "; scaling needs >1 core"
        } else {
            ""
        },
    );

    let telemetry = verify_telemetry_overhead();

    let secs = |d: Duration| Json::Num(d.as_secs_f64());
    let report = Json::obj([
        ("bench", Json::str("dse_hot")),
        ("smoke", Json::Bool(smoke)),
        ("identity", Json::str("ok")),
        (
            "alexnet_sweep",
            Json::obj([
                ("layers", Json::num_usize(network.layers().len())),
                ("evaluations", Json::num_usize(evaluations)),
                ("keep_points", Json::Bool(true)),
                ("naive_s", secs(baseline)),
                ("pipelined_s", secs(pipelined)),
                ("speedup", Json::Num(speedup)),
            ]),
        ),
        (
            "intra_layer_sharding",
            Json::obj([
                ("layer", Json::str(big.name.clone())),
                ("tilings", Json::num_usize(tilings)),
                ("workers", Json::num_usize(workers)),
                ("cores_available", Json::num_usize(cores)),
                ("one_worker_s", secs(one_worker)),
                ("sharded_s", secs(many_workers)),
                ("speedup", Json::Num(shard_speedup)),
            ]),
        ),
        ("telemetry_overhead", telemetry),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_dse.json");
    match std::fs::write(path, report.render() + "\n") {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_dse_hot);

fn main() {
    // Harness introspection flags (`cargo bench -- --list`, `--test`)
    // expect a fast exit: skip measurement and don't clobber a previous
    // run's artifact.
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--list" || a == "--test") {
        println!("dse_hot: benchmark");
        return;
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    if !smoke {
        benches();
    }
    emit_bench_json(smoke);
}
