//! Criterion bench for E1: how fast the access-condition profiler
//! regenerates the Fig. 1 data (one full condition × architecture grid).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use drmap_dram::profiler::{AccessCondition, Profiler};
use drmap_dram::request::RequestKind;
use drmap_dram::timing::DramArch;

fn bench_fig1(c: &mut Criterion) {
    let mut profiler = Profiler::table_ii().unwrap();
    profiler.set_rounds(8);
    let mut group = c.benchmark_group("fig1_profile");
    for arch in DramArch::ALL {
        group.bench_with_input(
            BenchmarkId::new("conditions", arch.label()),
            &arch,
            |b, &arch| {
                b.iter(|| {
                    for condition in AccessCondition::ALL {
                        std::hint::black_box(profiler.fig1_condition(
                            arch,
                            condition,
                            RequestKind::Read,
                        ));
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
