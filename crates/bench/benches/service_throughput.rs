//! Criterion bench for the job-server subsystem: batched multi-worker
//! throughput vs sequential single-worker execution on the same
//! workload set, plus the cost of a warm-cache resubmission.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use drmap_service::engine::ServiceState;
use drmap_service::pool::DsePool;
use drmap_service::prelude::Network;
use drmap_service::spec::{EngineSpec, JobSpec};

fn batch() -> Vec<JobSpec> {
    vec![
        JobSpec::network(1, EngineSpec::default(), Network::tiny()),
        JobSpec::network(2, EngineSpec::default(), Network::alexnet()),
        JobSpec::network(3, EngineSpec::default(), Network::squeezenet()),
    ]
}

fn bench_service(c: &mut Criterion) {
    let jobs = batch();
    let layers: u64 = jobs.iter().map(|j| j.workload.layers().len() as u64).sum();

    let mut group = c.benchmark_group("service");
    group.throughput(Throughput::Elements(layers));
    for workers in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("cold_batch", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    // Fresh state per iteration: an empty cache, so every
                    // layer is computed. 1 worker ≙ sequential execution.
                    let state = ServiceState::new().unwrap();
                    let pool = DsePool::new(state, workers);
                    for result in pool.run_batch(&jobs) {
                        std::hint::black_box(result.unwrap());
                    }
                })
            },
        );
    }

    // Warm cache: every layer is a memo hit.
    let state = ServiceState::new().unwrap();
    let pool = DsePool::new(Arc::clone(&state), 4);
    for result in pool.run_batch(&jobs) {
        result.unwrap();
    }
    group.bench_function("warm_batch/4", |b| {
        b.iter(|| {
            for result in pool.run_batch(&jobs) {
                std::hint::black_box(result.unwrap());
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_service);
criterion_main!(benches);
