//! Criterion bench for the job-server subsystem: batched multi-worker
//! throughput vs sequential single-worker execution on the same
//! workload set, the cost of a warm-cache resubmission (bounded and
//! unbounded), and pipelined-vs-blocking TCP submission. Besides the
//! per-benchmark report lines, the run writes `BENCH_service.json` to
//! the working directory so the service's perf trajectory can be
//! tracked across PRs.

use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use drmap_service::cache::CacheConfig;
use drmap_service::client::Client;
use drmap_service::engine::ServiceState;
use drmap_service::json::Json;
use drmap_service::pool::DsePool;
use drmap_service::prelude::Network;
use drmap_service::server::JobServer;
use drmap_service::spec::{EngineSpec, JobSpec};

fn batch() -> Vec<JobSpec> {
    vec![
        JobSpec::network(1, EngineSpec::default(), Network::tiny()),
        JobSpec::network(2, EngineSpec::default(), Network::alexnet()),
        JobSpec::network(3, EngineSpec::default(), Network::squeezenet()),
    ]
}

/// A tight entry bound relative to the batch's distinct shapes, so the
/// bounded benchmarks actually evict.
const BOUNDED_ENTRIES: usize = 4;

fn bench_service(c: &mut Criterion) {
    let jobs = batch();
    let layers: u64 = jobs.iter().map(|j| j.workload.layers().len() as u64).sum();

    let mut group = c.benchmark_group("service");
    group.throughput(Throughput::Elements(layers));
    for workers in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("cold_batch", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    // Fresh state per iteration: an empty cache, so every
                    // layer is computed. 1 worker ≙ sequential execution.
                    let state = ServiceState::new().unwrap();
                    let pool = DsePool::new(state, workers);
                    for result in pool.run_batch(&jobs) {
                        std::hint::black_box(result.unwrap());
                    }
                })
            },
        );
    }

    // Warm cache: every layer is a memo hit.
    let state = ServiceState::new().unwrap();
    let pool = DsePool::new(Arc::clone(&state), 4);
    for result in pool.run_batch(&jobs) {
        result.unwrap();
    }
    group.bench_function("warm_batch/4", |b| {
        b.iter(|| {
            for result in pool.run_batch(&jobs) {
                std::hint::black_box(result.unwrap());
            }
        })
    });

    // Warm but *bounded* cache: the bound is tighter than the batch's
    // distinct-shape count, so resubmissions keep missing on evicted
    // shapes — the price of a capped footprint.
    let bounded_state =
        ServiceState::with_cache_config(CacheConfig::unbounded().with_max_entries(BOUNDED_ENTRIES))
            .unwrap();
    let bounded_pool = DsePool::new(Arc::clone(&bounded_state), 4);
    for result in bounded_pool.run_batch(&jobs) {
        result.unwrap();
    }
    group.bench_function("warm_batch_bounded/4", |b| {
        b.iter(|| {
            for result in bounded_pool.run_batch(&jobs) {
                std::hint::black_box(result.unwrap());
            }
        })
    });
    group.finish();
}

/// Time one closure once.
fn time_once<R>(f: impl FnOnce() -> R) -> (Duration, R) {
    let start = Instant::now();
    let result = f();
    (start.elapsed(), result)
}

/// A cold 4-worker server plus a connected client.
fn fresh_server() -> (Client, std::thread::JoinHandle<()>) {
    let server = JobServer::bind("127.0.0.1:0", 4).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.run().unwrap());
    (Client::connect(addr).unwrap(), handle)
}

/// One-shot comparisons that don't fit the criterion loop (they need a
/// fresh server or fresh cache per measurement), recorded into
/// `BENCH_service.json`.
fn emit_bench_json() {
    let jobs = batch();
    let layers: u64 = jobs.iter().map(|j| j.workload.layers().len() as u64).sum();

    // Cold and warm in-process batches.
    let (cold_1w, _) = time_once(|| {
        let pool = DsePool::new(ServiceState::new().unwrap(), 1);
        pool.run_batch(&jobs).into_iter().for_each(|r| {
            std::hint::black_box(r.unwrap());
        })
    });
    let (cold_4w, _) = time_once(|| {
        let pool = DsePool::new(ServiceState::new().unwrap(), 4);
        pool.run_batch(&jobs).into_iter().for_each(|r| {
            std::hint::black_box(r.unwrap());
        })
    });
    let state = ServiceState::new().unwrap();
    let pool = DsePool::new(Arc::clone(&state), 4);
    pool.run_batch(&jobs).into_iter().for_each(|r| {
        r.unwrap();
    });
    let (warm_4w, _) = time_once(|| {
        pool.run_batch(&jobs).into_iter().for_each(|r| {
            std::hint::black_box(r.unwrap());
        })
    });

    // Bounded warm batch: the cap forces recomputation of evicted
    // shapes on every resubmission.
    let bounded_state =
        ServiceState::with_cache_config(CacheConfig::unbounded().with_max_entries(BOUNDED_ENTRIES))
            .unwrap();
    let bounded_pool = DsePool::new(Arc::clone(&bounded_state), 4);
    bounded_pool.run_batch(&jobs).into_iter().for_each(|r| {
        r.unwrap();
    });
    let (warm_bounded, _) = time_once(|| {
        bounded_pool.run_batch(&jobs).into_iter().for_each(|r| {
            std::hint::black_box(r.unwrap());
        })
    });
    let bounded_stats = bounded_state.cache().stats();

    // Blocking vs pipelined submission of the same cold batch over TCP.
    let (mut blocking_client, blocking_server) = fresh_server();
    let (tcp_blocking, _) = time_once(|| {
        for job in &jobs {
            std::hint::black_box(blocking_client.submit(job).unwrap());
        }
    });
    blocking_client.shutdown().unwrap();
    blocking_server.join().unwrap();

    let (mut pipelined_client, pipelined_server) = fresh_server();
    let (tcp_pipelined, results) = time_once(|| pipelined_client.submit_batch(&jobs).unwrap());
    results.into_iter().for_each(|r| {
        r.unwrap();
    });
    pipelined_client.shutdown().unwrap();
    pipelined_server.join().unwrap();

    let secs = |d: Duration| Json::Num(d.as_secs_f64());
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let report = Json::obj([
        ("bench", Json::str("service_throughput")),
        (
            "environment",
            Json::obj([
                ("cores_available", Json::num_usize(cores)),
                ("workers", Json::num_usize(4)),
                ("connections", Json::num_usize(1)),
            ]),
        ),
        ("layers_per_batch", Json::num_u64(layers)),
        (
            "cold_batch_s",
            Json::obj([("workers_1", secs(cold_1w)), ("workers_4", secs(cold_4w))]),
        ),
        (
            "warm_batch_s",
            Json::obj([
                ("unbounded", secs(warm_4w)),
                ("bounded", secs(warm_bounded)),
            ]),
        ),
        (
            "bounded_cache",
            Json::obj([
                ("max_entries", Json::num_usize(BOUNDED_ENTRIES)),
                ("entries", Json::num_usize(bounded_stats.entries)),
                ("evictions", Json::num_u64(bounded_stats.evictions)),
                ("hit_rate", Json::Num(bounded_stats.hit_rate())),
            ]),
        ),
        (
            "tcp_cold_batch_s",
            Json::obj([
                ("blocking", secs(tcp_blocking)),
                ("pipelined", secs(tcp_pipelined)),
                (
                    "pipelining_speedup",
                    Json::Num(tcp_blocking.as_secs_f64() / tcp_pipelined.as_secs_f64().max(1e-9)),
                ),
            ]),
        ),
    ]);
    // Write at the workspace root (two levels up from this crate), so
    // the artifact lands in a stable place regardless of the bench
    // binary's working directory.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_service.json");
    match std::fs::write(path, report.render() + "\n") {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_service);

fn main() {
    // Harness introspection flags (`cargo bench -- --list`, `--test`)
    // expect a fast exit: skip both the measurement groups and the
    // one-shot JSON suite, and don't clobber a previous run's artifact.
    let introspecting = std::env::args().any(|a| a == "--list" || a == "--test");
    if introspecting {
        println!("service_throughput: benchmark");
        return;
    }
    benches();
    emit_bench_json();
}
