//! Criterion bench for the mapping layer: closed-form transition counting
//! (the DSE inner loop) vs explicit address-stream generation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use drmap_core::access_model::transition_counts;
use drmap_core::mapping::MappingPolicy;
use drmap_dram::geometry::Geometry;

fn bench_mapping(c: &mut Criterion) {
    let g = Geometry::salp_2gb_x8();
    let units = 8192u64;

    let mut group = c.benchmark_group("mapping");
    group.throughput(Throughput::Elements(units));
    for policy in MappingPolicy::table_i() {
        group.bench_with_input(
            BenchmarkId::new("closed_form_counts", policy.name()),
            &policy,
            |b, policy| b.iter(|| std::hint::black_box(transition_counts(policy, &g, units))),
        );
    }
    group.bench_function("address_stream_8k", |b| {
        let drmap = MappingPolicy::drmap();
        b.iter(|| std::hint::black_box(drmap.address_stream(g, 0, units).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_mapping);
criterion_main!(benches);
