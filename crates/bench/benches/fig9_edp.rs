//! Criterion bench for E4–E7: the cost of computing one Fig. 9 cell
//! (min-EDP over all feasible tilings for a layer × scheme × mapping).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use drmap_bench::{build_engines, fig9_cell};
use drmap_cnn::accelerator::AcceleratorConfig;
use drmap_cnn::network::Network;
use drmap_core::mapping::MappingPolicy;
use drmap_core::schedule::ReuseScheme;

fn bench_fig9(c: &mut Criterion) {
    let engines = build_engines(AcceleratorConfig::table_ii()).unwrap();
    let network = Network::alexnet();
    let ddr3 = &engines[0].engine;
    let drmap = MappingPolicy::drmap();

    let mut group = c.benchmark_group("fig9_cell");
    for layer in [&network.layers()[1], &network.layers()[5]] {
        group.bench_with_input(
            BenchmarkId::new("min_over_tilings", &layer.name),
            layer,
            |b, layer| {
                b.iter(|| {
                    std::hint::black_box(
                        fig9_cell(ddr3, layer, ReuseScheme::AdaptiveReuse, &drmap).unwrap(),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
