//! Criterion bench for E11: Algorithm 1's cost — single-layer exploration
//! (tilings × schemes × mappings) and the parallel whole-network run.

use criterion::{criterion_group, criterion_main, Criterion};
use drmap_bench::build_engines;
use drmap_cnn::accelerator::AcceleratorConfig;
use drmap_cnn::network::Network;

fn bench_dse(c: &mut Criterion) {
    let engines = build_engines(AcceleratorConfig::table_ii()).unwrap();
    let salp2 = &engines[2].engine;
    let network = Network::alexnet();
    let conv3 = &network.layers()[2];
    let tiny = Network::tiny();

    c.bench_function("dse_explore_layer_conv3", |b| {
        b.iter(|| std::hint::black_box(salp2.explore_layer(conv3).unwrap()))
    });
    c.bench_function("dse_explore_network_tiny", |b| {
        b.iter(|| std::hint::black_box(salp2.explore_network(&tiny).unwrap()))
    });
}

criterion_group!(benches, bench_dse);
criterion_main!(benches);
