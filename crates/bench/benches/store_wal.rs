//! Criterion bench for the persistent result store: append and read
//! throughput of the WAL, recovery-scan (reopen) cost, and the price of
//! a compaction — the numbers that justify fronting the store with the
//! in-memory LRU tier.

use std::path::PathBuf;

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use drmap_store::store::Store;

const ENTRIES: usize = 512;
const VALUE_BYTES: usize = 256;

fn bench_path(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("drmap-store-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{tag}.wal"));
    let _ = std::fs::remove_file(&path);
    path
}

fn populated(tag: &str, entries: usize) -> (PathBuf, Store) {
    let path = bench_path(tag);
    let store = Store::open(&path).unwrap();
    let value = vec![0xAB_u8; VALUE_BYTES];
    for i in 0..entries {
        store.put(&format!("fingerprint-{i:06}"), &value).unwrap();
    }
    (path, store)
}

fn bench_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_wal");
    group.throughput(Throughput::Elements(ENTRIES as u64));

    group.bench_function("put_512x256B", |b| {
        let value = vec![0xCD_u8; VALUE_BYTES];
        b.iter(|| {
            let path = bench_path("puts");
            let store = Store::open(&path).unwrap();
            for i in 0..ENTRIES {
                store.put(&format!("fingerprint-{i:06}"), &value).unwrap();
            }
            store.len()
        });
    });

    let (_path, warm) = populated("gets", ENTRIES);
    group.bench_function("get_512_hits", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for i in 0..ENTRIES {
                total += warm
                    .get(&format!("fingerprint-{i:06}"))
                    .unwrap()
                    .unwrap()
                    .len();
            }
            total
        });
    });

    for entries in [128usize, ENTRIES] {
        let (path, store) = populated(&format!("reopen-{entries}"), entries);
        drop(store);
        group.bench_with_input(
            BenchmarkId::new("reopen_scan", entries),
            &path,
            |b, path| {
                b.iter(|| Store::open(path).unwrap().len());
            },
        );
    }

    group.bench_function("compact_half_dead", |b| {
        b.iter(|| {
            let (_path, store) = populated("compact", ENTRIES / 2);
            let value = vec![0xEF_u8; VALUE_BYTES];
            for i in 0..ENTRIES / 2 {
                store.put(&format!("fingerprint-{i:06}"), &value).unwrap();
            }
            store.compact().unwrap().bytes_after
        });
    });

    group.finish();
}

criterion_group!(benches, bench_store);

fn main() {
    // Under `cargo test`/`--list` introspection, exit without running
    // the measurement loops.
    let introspecting = std::env::args().any(|a| a == "--list" || a == "--test");
    if introspecting {
        println!("store_wal: benchmark");
        return;
    }
    benches();
}
