//! Criterion bench for the DRAM substrate: requests per second through
//! the cycle-level controller on hit-heavy and conflict-heavy streams.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use drmap_dram::controller::ControllerConfig;
use drmap_dram::energy::EnergyParams;
use drmap_dram::geometry::Geometry;
use drmap_dram::request::DriveMode;
use drmap_dram::sim::DramSimulator;
use drmap_dram::timing::{DramArch, TimingParams};
use drmap_dram::trace::TraceBuilder;

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    let n = 4096usize;
    group.throughput(Throughput::Elements(n as u64));
    let traces = [
        (
            "hits",
            TraceBuilder::new()
                .sequential_columns(0, 0, 0, 128)
                .sequential_columns(1, 0, 0, 128)
                .build()
                .into_iter()
                .cycle()
                .take(n)
                .collect::<Vec<_>>(),
        ),
        (
            "subarray_sweep",
            TraceBuilder::new().subarray_sweep(0, 8, n / 8).build(),
        ),
    ];
    for arch in [DramArch::Ddr3, DramArch::SalpMasa] {
        for (name, trace) in &traces {
            group.bench_with_input(BenchmarkId::new(*name, arch.label()), trace, |b, trace| {
                b.iter(|| {
                    let mut sim = DramSimulator::new(
                        Geometry::salp_2gb_x8(),
                        TimingParams::ddr3_1600k(),
                        ControllerConfig::new(arch),
                        EnergyParams::micron_2gb_x8(),
                    )
                    .unwrap();
                    std::hint::black_box(sim.run(trace, DriveMode::Streamed))
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
