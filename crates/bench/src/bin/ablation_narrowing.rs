//! Ablation A8: is the paper's design-space narrowing lossless?
//!
//! Section III-B, Step 2 narrows 24 loop-order permutations down to the
//! six of Table I by fixing `row` outermost. This ablation sweeps all 24
//! permutations — plus the commodity controller's default mapping — and
//! checks that nothing outside Table I beats DRMap.
//!
//! Run with: `cargo run --release -p drmap-bench --bin ablation_narrowing`

use drmap_bench::{build_engines, fig9_cell, tsv_row};
use drmap_cnn::accelerator::AcceleratorConfig;
use drmap_cnn::network::Network;
use drmap_core::mapping::MappingPolicy;
use drmap_core::schedule::ReuseScheme;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let network = Network::alexnet();
    let conv3 = &network.layers()[2];
    let engines = build_engines(AcceleratorConfig::table_ii())?;

    println!("# Ablation A8 — all 24 permutations + commodity default (AlexNet CONV3, adaptive)");
    println!(
        "{}",
        tsv_row(["arch", "order", "table_i", "EDP_Js", "vs_drmap"].map(String::from))
    );
    let mut policies = MappingPolicy::all_permutations();
    policies.push(MappingPolicy::commodity_default());
    for ae in &engines {
        let drmap_edp = fig9_cell(
            &ae.engine,
            conv3,
            ReuseScheme::AdaptiveReuse,
            &MappingPolicy::drmap(),
        )?;
        let mut rows: Vec<(f64, String, usize)> = Vec::new();
        for policy in &policies {
            let edp = fig9_cell(&ae.engine, conv3, ReuseScheme::AdaptiveReuse, policy)?;
            let order = policy
                .order()
                .iter()
                .map(|l| l.name())
                .collect::<Vec<_>>()
                .join(">");
            rows.push((edp, order, policy.index()));
        }
        rows.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for (edp, order, index) in &rows {
            println!(
                "{}",
                tsv_row([
                    ae.arch.label().to_owned(),
                    order.clone(),
                    if *index > 0 {
                        format!("Mapping-{index}")
                    } else {
                        "-".to_owned()
                    },
                    format!("{edp:.4e}"),
                    format!("{:.2}x", edp / drmap_edp),
                ])
            );
        }
        let best = &rows[0];
        println!(
            "#   best on {}: {} ({}) — narrowing lossless: {}",
            ae.arch,
            best.1,
            if best.2 > 0 {
                format!("Mapping-{}", best.2)
            } else {
                "outside Table I".into()
            },
            best.0 >= drmap_edp * 0.999,
        );
        println!();
    }
    Ok(())
}
