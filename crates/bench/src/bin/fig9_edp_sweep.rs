//! Regenerates **Fig. 9** of the paper: the EDP of AlexNet for the six
//! Table I mapping policies across DDR3, SALP-1, SALP-2 and SALP-MASA,
//! per layer (CONV1..FC8) plus the network total, for each scheduling
//! scheme — (a) ifms-reuse, (b) wghs-reuse, (c) ofms-reuse,
//! (d) adaptive-reuse.
//!
//! Each cell is the minimum EDP over all buffer-feasible tilings, exactly
//! as Algorithm 1 explores them.
//!
//! Run with:
//! `cargo run --release -p drmap-bench --bin fig9_edp_sweep [-- --schedule <ifms|wghs|ofms|adaptive|all>]`

use drmap_bench::{build_engines, fig9_cell, fmt_edp, tsv_row};
use drmap_cnn::accelerator::AcceleratorConfig;
use drmap_cnn::network::Network;
use drmap_core::mapping::MappingPolicy;
use drmap_core::schedule::ReuseScheme;

fn parse_schedules() -> Vec<ReuseScheme> {
    let args: Vec<String> = std::env::args().collect();
    let mut schedules = ReuseScheme::ALL.to_vec();
    if let Some(pos) = args.iter().position(|a| a == "--schedule") {
        if let Some(v) = args.get(pos + 1) {
            schedules = match v.as_str() {
                "ifms" => vec![ReuseScheme::IfmsReuse],
                "wghs" => vec![ReuseScheme::WghsReuse],
                "ofms" => vec![ReuseScheme::OfmsReuse],
                "adaptive" => vec![ReuseScheme::AdaptiveReuse],
                "all" => ReuseScheme::ALL.to_vec(),
                other => {
                    eprintln!("unknown schedule '{other}', using all");
                    ReuseScheme::ALL.to_vec()
                }
            };
        }
    }
    schedules
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let schedules = parse_schedules();
    let network = Network::alexnet();
    let engines = build_engines(AcceleratorConfig::table_ii())?;
    let mappings = MappingPolicy::table_i();

    let subplot = |s: ReuseScheme| match s {
        ReuseScheme::IfmsReuse => "(a)",
        ReuseScheme::WghsReuse => "(b)",
        ReuseScheme::OfmsReuse => "(c)",
        ReuseScheme::AdaptiveReuse => "(d)",
    };

    for scheme in schedules {
        println!(
            "# Fig. 9{} — EDP [J*s] on AlexNet, {} scheduling",
            subplot(scheme),
            scheme
        );
        let mut header = vec!["layer".to_owned(), "arch".to_owned()];
        header.extend(mappings.iter().map(|m| m.name()));
        println!("{}", tsv_row(header));

        let mut totals = vec![[0.0f64; 6]; engines.len()];
        for layer in network.layers() {
            for (ai, ae) in engines.iter().enumerate() {
                let mut row = vec![layer.name.clone(), ae.arch.label().to_owned()];
                for (mi, mapping) in mappings.iter().enumerate() {
                    let edp = fig9_cell(&ae.engine, layer, scheme, mapping)?;
                    totals[ai][mi] += edp;
                    row.push(fmt_edp(edp));
                }
                println!("{}", tsv_row(row));
            }
        }
        for (ai, ae) in engines.iter().enumerate() {
            let mut row = vec!["Total".to_owned(), ae.arch.label().to_owned()];
            row.extend(totals[ai].iter().map(|&e| fmt_edp(e)));
            println!("{}", tsv_row(row));
        }
        println!();
    }
    Ok(())
}
