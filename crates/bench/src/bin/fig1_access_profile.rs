//! Regenerates **Fig. 1** of the paper: DRAM latency-per-access and
//! energy-per-access for a row buffer hit, row buffer miss, row buffer
//! conflict, subarray-level parallelism and bank-level parallelism, on
//! DDR3, SALP-1, SALP-2 and SALP-MASA (DDR3-1600 2 Gb x8, 8 subarrays
//! per bank).
//!
//! Run with: `cargo run --release -p drmap-bench --bin fig1_access_profile`

use drmap_bench::tsv_row;
use drmap_dram::profiler::{AccessCondition, Profiler};
use drmap_dram::request::RequestKind;
use drmap_dram::timing::DramArch;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profiler = Profiler::table_ii()?;

    println!("# Fig. 1 — per-access latency and energy by access condition");
    println!("# condition, architecture, cycles/access, energy [nJ/access]");
    println!(
        "{}",
        tsv_row(["condition", "arch", "cycles", "energy_nj", "norm_cycles"].map(String::from))
    );

    // Normalization baseline: DDR3 row-buffer hit (the paper's Fig. 1
    // shows normalized cycles alongside absolute energy).
    let base = profiler
        .fig1_condition(
            DramArch::Ddr3,
            AccessCondition::RowBufferHit,
            RequestKind::Read,
        )
        .cycles;

    for condition in AccessCondition::ALL {
        for arch in DramArch::ALL {
            let cost = profiler.fig1_condition(arch, condition, RequestKind::Read);
            println!(
                "{}",
                tsv_row([
                    condition.label().to_owned(),
                    arch.label().to_owned(),
                    format!("{:.2}", cost.cycles),
                    format!("{:.3}", cost.energy * 1e9),
                    format!("{:.2}", cost.cycles / base),
                ])
            );
        }
    }

    println!();
    println!("# Write-access profile (same conditions, WR bursts)");
    for condition in AccessCondition::ALL {
        for arch in DramArch::ALL {
            let cost = profiler.fig1_condition(arch, condition, RequestKind::Write);
            println!(
                "{}",
                tsv_row([
                    condition.label().to_owned(),
                    arch.label().to_owned(),
                    format!("{:.2}", cost.cycles),
                    format!("{:.3}", cost.energy * 1e9),
                    String::new(),
                ])
            );
        }
    }
    Ok(())
}
