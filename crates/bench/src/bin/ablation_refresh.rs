//! Ablation A3: effect of periodic refresh on per-access costs.
//!
//! The paper's analytical model (like ours) excludes refresh. This
//! ablation bounds the error: refresh steals `tRFC` every `tREFI`
//! (≈ 2% of cycles on DDR3-1600 2 Gb) plus refresh energy.
//!
//! Run with: `cargo run --release -p drmap-bench --bin ablation_refresh`

use drmap_bench::tsv_row;
use drmap_dram::controller::ControllerConfig;
use drmap_dram::energy::EnergyParams;
use drmap_dram::geometry::Geometry;
use drmap_dram::request::DriveMode;
use drmap_dram::sim::DramSimulator;
use drmap_dram::timing::{DramArch, TimingParams};
use drmap_dram::trace::TraceBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("# Ablation A3 — refresh on/off (DDR3, long column-sequential stream)");
    println!(
        "{}",
        tsv_row(
            [
                "refresh",
                "makespan_cycles",
                "cycles/access",
                "energy_nJ/access"
            ]
            .map(String::from)
        )
    );
    // A stream long enough to span several tREFI windows when spaced.
    let trace = {
        let mut b = TraceBuilder::new();
        for row in 0..64 {
            b = b.sequential_columns(0, 0, row, 128);
        }
        b.build()
    };
    for refresh_enabled in [false, true] {
        let config = ControllerConfig {
            refresh_enabled,
            ..ControllerConfig::new(DramArch::Ddr3)
        };
        let mut sim = DramSimulator::new(
            Geometry::salp_2gb_x8(),
            TimingParams::ddr3_1600k(),
            config,
            EnergyParams::micron_2gb_x8(),
        )?;
        let stats = sim.run(&trace, DriveMode::Spaced(4));
        println!(
            "{}",
            tsv_row([
                refresh_enabled.to_string(),
                stats.makespan_cycles.to_string(),
                format!("{:.2}", stats.cycles_per_access()),
                format!("{:.3}", stats.energy_per_access() * 1e9),
            ])
        );
    }
    Ok(())
}
