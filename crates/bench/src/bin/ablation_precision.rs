//! Ablation A4: does the mapping ranking survive a precision change?
//!
//! The paper evaluates one (8-bit) precision. Doubling the element size
//! doubles every tile's burst count; this ablation confirms the DRMap
//! ranking is precision-invariant (it is a property of the address
//! stream's *structure*, not its length).
//!
//! Run with: `cargo run --release -p drmap-bench --bin ablation_precision`

use drmap_bench::{build_engines, network_totals, tsv_row};
use drmap_cnn::accelerator::{AcceleratorConfig, Precision};
use drmap_cnn::network::Network;
use drmap_core::mapping::MappingPolicy;
use drmap_core::schedule::ReuseScheme;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let network = Network::alexnet();
    let mappings = MappingPolicy::table_i();
    println!("# Ablation A4 — AlexNet adaptive-reuse EDP totals per precision (DDR3)");
    println!(
        "{}",
        tsv_row(["precision", "mapping", "EDP_Js", "rank"].map(String::from))
    );
    for precision in [Precision::Int8, Precision::Int16] {
        let acc = AcceleratorConfig {
            precision,
            ..AcceleratorConfig::table_ii()
        };
        let engines = build_engines(acc)?;
        let totals = network_totals(
            &engines[0].engine,
            &network,
            ReuseScheme::AdaptiveReuse,
            &mappings,
        )?;
        let mut ranked: Vec<usize> = (0..totals.len()).collect();
        ranked.sort_by(|&a, &b| totals[a].1.partial_cmp(&totals[b].1).unwrap());
        for (mi, (mapping, edp)) in totals.iter().enumerate() {
            let rank = ranked.iter().position(|&r| r == mi).unwrap() + 1;
            println!(
                "{}",
                tsv_row([
                    precision.to_string(),
                    mapping.name(),
                    format!("{edp:.4e}"),
                    rank.to_string(),
                ])
            );
        }
    }
    Ok(())
}
