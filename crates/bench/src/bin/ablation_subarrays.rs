//! Ablation A5: subarrays-per-bank sweep.
//!
//! Table II fixes 8 subarrays per bank. This ablation sweeps 2..32 and
//! reports the DRMap-vs-worst-mapping improvement on SALP-MASA, showing
//! how much subarray-level parallelism the mapping question is worth as
//! the architecture scales.
//!
//! Run with: `cargo run --release -p drmap-bench --bin ablation_subarrays`

use drmap_bench::{build_engines_with, improvement_pct, network_totals, tsv_row};
use drmap_cnn::accelerator::AcceleratorConfig;
use drmap_cnn::network::Network;
use drmap_core::mapping::MappingPolicy;
use drmap_core::schedule::ReuseScheme;
use drmap_dram::geometry::Geometry;
use drmap_dram::timing::DramArch;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let network = Network::tiny();
    let mappings = MappingPolicy::table_i();
    println!("# Ablation A5 — subarrays-per-bank sweep (TinyNet, SALP-MASA, adaptive)");
    println!(
        "{}",
        tsv_row(["subarrays", "drmap_EDP_Js", "worst_EDP_Js", "improvement_%"].map(String::from))
    );
    for subarrays in [2usize, 4, 8, 16, 32] {
        let geometry = Geometry::builder().subarrays(subarrays).build()?;
        let engines = build_engines_with(AcceleratorConfig::table_ii(), geometry)?;
        let masa = engines
            .iter()
            .find(|e| e.arch == DramArch::SalpMasa)
            .expect("MASA engine present");
        let totals = network_totals(
            &masa.engine,
            &network,
            ReuseScheme::AdaptiveReuse,
            &mappings,
        )?;
        let drmap = totals[2].1;
        let worst = totals.iter().map(|t| t.1).fold(0.0f64, f64::max);
        println!(
            "{}",
            tsv_row([
                subarrays.to_string(),
                format!("{drmap:.4e}"),
                format!("{worst:.4e}"),
                format!("{:.1}", improvement_pct(drmap, worst)),
            ])
        );
    }
    Ok(())
}
