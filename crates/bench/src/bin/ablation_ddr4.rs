//! Ablation A7: commodity-DRAM generality.
//!
//! Section I of the paper argues that "different types of commodity DRAM
//! have similar behavior regarding latency-per-access and
//! energy-per-access", so DRMap should transfer across generations. This
//! ablation re-runs the key result with DDR4-2400 and LPDDR3-1600 timing
//! in place of DDR3-1600.
//!
//! Run with: `cargo run --release -p drmap-bench --bin ablation_ddr4`

use drmap_bench::{improvement_pct, network_totals, tsv_row};
use drmap_cnn::accelerator::AcceleratorConfig;
use drmap_cnn::network::Network;
use drmap_core::dse::{DseConfig, DseEngine};
use drmap_core::edp::EdpModel;
use drmap_core::mapping::MappingPolicy;
use drmap_core::schedule::ReuseScheme;
use drmap_dram::energy::EnergyParams;
use drmap_dram::geometry::Geometry;
use drmap_dram::profiler::Profiler;
use drmap_dram::timing::{DramArch, TimingParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let network = Network::tiny();
    let mappings = MappingPolicy::table_i();
    let geometry = Geometry::salp_2gb_x8();
    let generations = [
        ("DDR3-1600", TimingParams::ddr3_1600k()),
        ("DDR4-2400", TimingParams::ddr4_2400r()),
        ("LPDDR3-1600", TimingParams::lpddr3_1600()),
    ];

    println!("# Ablation A7 — DRMap across commodity-DRAM generations (TinyNet, adaptive)");
    println!(
        "{}",
        tsv_row(
            [
                "generation",
                "best_mapping",
                "drmap_EDP_Js",
                "worst_EDP_Js",
                "improvement_%"
            ]
            .map(String::from)
        )
    );
    for (name, timing) in generations {
        let profiler = Profiler::new(geometry, timing, EnergyParams::micron_2gb_x8())?;
        let table = profiler.cost_table(DramArch::Ddr3);
        let engine = DseEngine::new(
            EdpModel::new(geometry, table, AcceleratorConfig::table_ii()),
            DseConfig::default(),
        );
        let totals = network_totals(&engine, &network, ReuseScheme::AdaptiveReuse, &mappings)?;
        let best = totals
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        let drmap = totals[2].1;
        let worst = totals.iter().map(|t| t.1).fold(0.0f64, f64::max);
        println!(
            "{}",
            tsv_row([
                name.to_owned(),
                best.0.name(),
                format!("{drmap:.4e}"),
                format!("{worst:.4e}"),
                format!("{:.1}", improvement_pct(drmap, worst)),
            ])
        );
    }
    Ok(())
}
