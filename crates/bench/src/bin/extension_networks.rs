//! Ablation A6 / extension: networks beyond the paper.
//!
//! The paper evaluates AlexNet only. This extension runs the identical
//! DSE on VGG-16 and TinyNet, confirming DRMap's generality across layer
//! shapes (the paper's "generic" claim).
//!
//! Run with: `cargo run --release -p drmap-bench --bin extension_networks`

use drmap_bench::{build_engines, improvement_pct, network_totals, tsv_row};
use drmap_cnn::accelerator::AcceleratorConfig;
use drmap_cnn::network::Network;
use drmap_core::mapping::MappingPolicy;
use drmap_core::schedule::ReuseScheme;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let engines = build_engines(AcceleratorConfig::table_ii())?;
    let mappings = MappingPolicy::table_i();
    println!("# Extension — DRMap vs best/worst alternative on other networks (adaptive)");
    println!(
        "{}",
        tsv_row(
            [
                "network",
                "arch",
                "drmap_EDP_Js",
                "best_other",
                "worst_other",
                "improvement_%"
            ]
            .map(String::from)
        )
    );
    for network in [
        Network::tiny(),
        Network::alexnet_grouped(),
        Network::resnet18(),
        Network::vgg16(),
    ] {
        for ae in &engines {
            let totals =
                network_totals(&ae.engine, &network, ReuseScheme::AdaptiveReuse, &mappings)?;
            let drmap = totals[2].1;
            let others: Vec<f64> = totals
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != 2)
                .map(|(_, t)| t.1)
                .collect();
            let best_other = others.iter().cloned().fold(f64::INFINITY, f64::min);
            let worst_other = others.iter().cloned().fold(0.0, f64::max);
            println!(
                "{}",
                tsv_row([
                    network.name().to_owned(),
                    ae.arch.label().to_owned(),
                    format!("{drmap:.4e}"),
                    format!("{best_other:.4e}"),
                    format!("{worst_other:.4e}"),
                    format!("{:.1}", improvement_pct(drmap, worst_other)),
                ])
            );
        }
    }
    Ok(())
}
