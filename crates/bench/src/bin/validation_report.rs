//! Simulator-backed validation of the DSE winners (the trust-but-verify
//! step): replays each AlexNet layer's winning configuration through the
//! cycle-level DRAM simulator and reports analytical-vs-simulated
//! agreement.
//!
//! Run with: `cargo run --release -p drmap-bench --bin validation_report`

use drmap_bench::{build_engines, tsv_row};
use drmap_cnn::accelerator::AcceleratorConfig;
use drmap_cnn::network::Network;
use drmap_core::validate::Validator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let network = Network::alexnet();
    let engines = build_engines(AcceleratorConfig::table_ii())?;

    println!("# Simulator validation of DSE winners (AlexNet)");
    println!(
        "{}",
        tsv_row(
            [
                "arch",
                "layer",
                "mapping",
                "cycle_ratio",
                "energy_ratio",
                "sim_hit_rate"
            ]
            .map(String::from)
        )
    );
    for ae in &engines {
        let validator = Validator::table_ii(ae.arch)?;
        for layer in network.layers() {
            let result = ae.engine.explore_layer(layer)?;
            let report = validator.validate(ae.engine.model(), layer, &result.best)?;
            println!(
                "{}",
                tsv_row([
                    ae.arch.label().to_owned(),
                    layer.name.clone(),
                    result.best.mapping.name(),
                    format!("{:.2}", report.cycle_ratio()),
                    format!("{:.2}", report.energy_ratio()),
                    format!("{:.2}", report.hit_rate),
                ])
            );
        }
    }
    println!("# ratio = analytical / simulated; 1.00 is perfect agreement");
    Ok(())
}
