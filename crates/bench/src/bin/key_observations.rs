//! Regenerates the paper's headline numbers:
//!
//! * **Key result** — DRMap's EDP improvement over the other mapping
//!   policies (paper: up to 96% DDR3, 94% SALP-1, 91% SALP-2, 80%
//!   SALP-MASA on AlexNet).
//! * **Key Observation 1–3** — DRMap lowest everywhere; Mapping-2/5
//!   worst; Mapping-1 comparable to Mapping-3.
//! * **Key Observation 4** — EDP improvement of each SALP architecture
//!   over DDR3 per mapping policy, adaptive-reuse scheduling.
//!
//! Run with: `cargo run --release -p drmap-bench --bin key_observations`

use drmap_bench::{build_engines, improvement_pct, network_totals, tsv_row};
use drmap_cnn::accelerator::AcceleratorConfig;
use drmap_cnn::network::Network;
use drmap_core::mapping::MappingPolicy;
use drmap_core::schedule::ReuseScheme;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let network = Network::alexnet();
    let engines = build_engines(AcceleratorConfig::table_ii())?;
    let mappings = MappingPolicy::table_i();
    let drmap_idx = 2; // Mapping-3

    // Totals per (arch, scheme, mapping).
    println!("# Key result — DRMap EDP improvement over other mappings (AlexNet totals)");
    println!(
        "{}",
        tsv_row(["arch", "scheme", "worst_mapping", "improvement_%"].map(String::from))
    );
    let mut max_improvement = vec![0.0f64; engines.len()];
    for ae in &engines {
        for scheme in ReuseScheme::ALL {
            let totals = network_totals(&ae.engine, &network, scheme, &mappings)?;
            let drmap_edp = totals[drmap_idx].1;
            let (worst_mapping, worst_edp) = totals
                .iter()
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                .map(|(m, e)| (m.name(), *e))
                .unwrap();
            let imp = improvement_pct(drmap_edp, worst_edp);
            let ai = engines.iter().position(|e| e.arch == ae.arch).unwrap();
            if imp > max_improvement[ai] {
                max_improvement[ai] = imp;
            }
            println!(
                "{}",
                tsv_row([
                    ae.arch.label().to_owned(),
                    scheme.label().to_owned(),
                    worst_mapping,
                    format!("{imp:.1}"),
                ])
            );
        }
    }
    println!();
    println!("# Maximum improvement per architecture (paper: 96/94/91/80 %)");
    for (ae, imp) in engines.iter().zip(&max_improvement) {
        println!(
            "{}",
            tsv_row([ae.arch.label().to_owned(), format!("{imp:.1}")])
        );
    }

    // KO-1..3 checks on adaptive scheduling.
    println!();
    println!("# Key Observations 1-3 — adaptive-reuse totals per mapping");
    println!(
        "{}",
        tsv_row(["arch", "mapping", "EDP_Js"].map(String::from))
    );
    for ae in &engines {
        let totals = network_totals(&ae.engine, &network, ReuseScheme::AdaptiveReuse, &mappings)?;
        for (m, edp) in &totals {
            println!(
                "{}",
                tsv_row([ae.arch.label().to_owned(), m.name(), format!("{edp:.4e}"),])
            );
        }
        let best = totals
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        println!(
            "#   -> lowest on {}: {} (DRMap is Mapping-3)",
            ae.arch,
            best.0.name()
        );
    }

    // KO-4: SALP vs DDR3 per mapping, adaptive.
    println!();
    println!("# Key Observation 4 — EDP improvement of SALP archs vs DDR3 (adaptive-reuse)");
    println!(
        "{}",
        tsv_row(["mapping", "SALP-1_%", "SALP-2_%", "SALP-MASA_%"].map(String::from))
    );
    let ddr3_totals = network_totals(
        &engines[0].engine,
        &network,
        ReuseScheme::AdaptiveReuse,
        &mappings,
    )?;
    let salp_totals: Vec<_> = engines[1..]
        .iter()
        .map(|ae| network_totals(&ae.engine, &network, ReuseScheme::AdaptiveReuse, &mappings))
        .collect::<Result<_, _>>()?;
    for (mi, mapping) in mappings.iter().enumerate() {
        let base = ddr3_totals[mi].1;
        let row: Vec<String> = std::iter::once(mapping.name())
            .chain(
                salp_totals
                    .iter()
                    .map(|t| format!("{:.2}", improvement_pct(t[mi].1, base))),
            )
            .collect();
        println!("{}", tsv_row(row));
    }
    Ok(())
}
