//! Ablation A2: FCFS vs FR-FCFS request scheduling.
//!
//! Table II fixes FCFS. FR-FCFS reorders row hits ahead of conflicts
//! within a small window; this ablation measures how much that recovers
//! on a mapping-adversarial (row-interleaved) stream.
//!
//! Run with: `cargo run --release -p drmap-bench --bin ablation_scheduler`

use drmap_bench::tsv_row;
use drmap_dram::address::PhysicalAddress;
use drmap_dram::controller::{ControllerConfig, SchedulerKind};
use drmap_dram::energy::EnergyParams;
use drmap_dram::geometry::Geometry;
use drmap_dram::request::{DriveMode, Request};
use drmap_dram::sim::DramSimulator;
use drmap_dram::timing::{DramArch, TimingParams};

/// A stream that alternates a row-conflicting access with row hits — the
/// pattern FR-FCFS is designed to untangle.
fn adversarial_trace() -> Vec<Request> {
    let mut out = Vec::new();
    for i in 0..64 {
        let row = if i % 4 == 3 { 1 + (i / 4) % 8 } else { 0 };
        out.push(Request::read(PhysicalAddress {
            bank: 0,
            subarray: 0,
            row,
            column: i % 128,
            ..PhysicalAddress::default()
        }));
    }
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("# Ablation A2 — FCFS vs FR-FCFS on a hit/conflict-interleaved stream (DDR3)");
    println!(
        "{}",
        tsv_row(["scheduler", "makespan_cycles", "cycles/access", "hit_rate"].map(String::from))
    );
    for scheduler in [SchedulerKind::Fcfs, SchedulerKind::FrFcfs] {
        let config = ControllerConfig {
            scheduler,
            ..ControllerConfig::new(DramArch::Ddr3)
        };
        let mut sim = DramSimulator::new(
            Geometry::salp_2gb_x8(),
            TimingParams::ddr3_1600k(),
            config,
            EnergyParams::micron_2gb_x8(),
        )?;
        let stats = sim.run(&adversarial_trace(), DriveMode::Streamed);
        println!(
            "{}",
            tsv_row([
                format!("{scheduler:?}"),
                stats.makespan_cycles.to_string(),
                format!("{:.2}", stats.cycles_per_access()),
                format!("{:.2}", stats.hit_rate()),
            ])
        );
    }
    Ok(())
}
