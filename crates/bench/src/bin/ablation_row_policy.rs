//! Ablation A1: open-row vs closed-row controller policy.
//!
//! The paper's Table II fixes the controller to open-row. This ablation
//! quantifies why: under a closed-row policy every access pays an
//! activation, flattening the hit/conflict distinction that DRMap
//! exploits.
//!
//! Run with: `cargo run --release -p drmap-bench --bin ablation_row_policy`

use drmap_bench::tsv_row;
use drmap_dram::controller::{ControllerConfig, RowPolicy};
use drmap_dram::energy::EnergyParams;
use drmap_dram::geometry::Geometry;
use drmap_dram::request::DriveMode;
use drmap_dram::sim::DramSimulator;
use drmap_dram::timing::{DramArch, TimingParams};
use drmap_dram::trace::TraceBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("# Ablation A1 — open vs closed row policy (DDR3, column-sequential stream)");
    println!(
        "{}",
        tsv_row(["policy", "cycles/access", "energy_nJ/access", "hit_rate"].map(String::from))
    );
    for policy in [RowPolicy::Open, RowPolicy::Closed, RowPolicy::Timeout(64)] {
        let config = ControllerConfig {
            row_policy: policy,
            ..ControllerConfig::new(DramArch::Ddr3)
        };
        let mut sim = DramSimulator::new(
            Geometry::salp_2gb_x8(),
            TimingParams::ddr3_1600k(),
            config,
            EnergyParams::micron_2gb_x8(),
        )?;
        let trace = TraceBuilder::new().sequential_columns(0, 0, 0, 128).build();
        let stats = sim.run(&trace, DriveMode::Streamed);
        println!(
            "{}",
            tsv_row([
                format!("{policy:?}"),
                format!("{:.2}", stats.cycles_per_access()),
                format!("{:.3}", stats.energy_per_access() * 1e9),
                format!("{:.2}", stats.hit_rate()),
            ])
        );
    }
    Ok(())
}
