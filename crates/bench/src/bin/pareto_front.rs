//! Regenerates the abstract's claim: the DSE identifies **pareto-optimal
//! design choices** in the (energy, latency) plane.
//!
//! For AlexNet CONV2 on each architecture, prints the full design-point
//! cloud size and the Pareto front (configurations no other configuration
//! beats in both energy and latency).
//!
//! Run with: `cargo run --release -p drmap-bench --bin pareto_front`

use drmap_bench::{build_engines, tsv_row};
use drmap_cnn::accelerator::AcceleratorConfig;
use drmap_cnn::network::Network;
use drmap_core::dse::{DseConfig, DseEngine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let network = Network::alexnet();
    let conv2 = &network.layers()[1];
    let engines = build_engines(AcceleratorConfig::table_ii())?;

    for ae in &engines {
        let engine = DseEngine::new(
            ae.engine.model().clone(),
            DseConfig {
                keep_points: true,
                ..DseConfig::default()
            },
        );
        let result = engine.explore_layer(conv2)?;
        println!(
            "# Pareto front — AlexNet {} on {} ({} points evaluated)",
            conv2.name, ae.arch, result.evaluations
        );
        println!(
            "{}",
            tsv_row(["energy_J", "latency_s", "EDP_Js", "configuration"].map(String::from))
        );
        for p in &result.pareto {
            println!(
                "{}",
                tsv_row([
                    format!("{:.4e}", p.estimate.energy),
                    format!("{:.4e}", p.estimate.seconds()),
                    format!("{:.4e}", p.estimate.edp()),
                    p.label.clone(),
                ])
            );
        }
        let drmap_on_front = result
            .pareto
            .iter()
            .filter(|p| p.label.contains("DRMap"))
            .count();
        println!(
            "#   front size {} of which DRMap configurations: {}",
            result.pareto.len(),
            drmap_on_front
        );
        println!();
    }
    Ok(())
}
