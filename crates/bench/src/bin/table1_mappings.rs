//! Regenerates **Table I** of the paper: the six DRAM mapping policies
//! explored by the DSE (inner-most to outer-most loop order), and — as an
//! extension — the 18 permutations the paper's row-outermost narrowing
//! rule excludes.
//!
//! Run with: `cargo run -p drmap-bench --bin table1_mappings`

use drmap_bench::tsv_row;
use drmap_core::mapping::MappingPolicy;
use drmap_dram::geometry::Level;

fn order_string(order: &[Level; 4]) -> String {
    order
        .iter()
        .map(|l| l.name())
        .collect::<Vec<_>>()
        .join(", ")
}

fn main() {
    println!("# Table I — DRAM mapping policies for the DSE");
    println!(
        "{}",
        tsv_row(["mapping", "inner-most to outer-most loops"].map(String::from))
    );
    for policy in MappingPolicy::table_i() {
        println!("{}", tsv_row([policy.name(), order_string(policy.order())]));
    }

    println!();
    println!("# Excluded permutations (row not outermost — most expensive transitions)");
    for policy in MappingPolicy::all_permutations() {
        if policy.index() == 0 {
            println!(
                "{}",
                tsv_row(["excluded".to_owned(), order_string(policy.order())])
            );
        }
    }
}
