//! Regenerates **Table II** of the paper: the CNN accelerator and DRAM
//! configuration used throughout the evaluation.
//!
//! Run with: `cargo run -p drmap-bench --bin table2_config`

use drmap_cnn::accelerator::AcceleratorConfig;
use drmap_dram::controller::ControllerConfig;
use drmap_dram::geometry::Geometry;
use drmap_dram::timing::{DramArch, TimingParams};

fn main() {
    let acc = AcceleratorConfig::table_ii();
    let ddr3 = Geometry::ddr3_2gb_x8();
    let salp = Geometry::salp_2gb_x8();
    let t = TimingParams::ddr3_1600k();
    let mc = ControllerConfig::new(DramArch::Ddr3);

    println!("# Table II — configuration of the CNN accelerator");
    println!(
        "CNN Processing Array : {}x{} MACs",
        acc.mac_rows, acc.mac_cols
    );
    println!(
        "On-chip Buffers      : iB {}KB, wB {}KB, oB {}KB ({})",
        acc.ifms_buffer / 1024,
        acc.wghs_buffer / 1024,
        acc.ofms_buffer / 1024,
        acc.precision
    );
    println!(
        "Memory Controller    : policy = {:?} row, scheduler = {:?}",
        mc.row_policy, mc.scheduler
    );
    println!(
        "DDR3-1600            : {} ({} Mb/chip)",
        ddr3,
        ddr3.capacity_bytes() * 8 / (1024 * 1024)
    );
    println!(
        "SALP                 : {} ({} Mb/chip)",
        salp,
        salp.capacity_bytes() * 8 / (1024 * 1024)
    );
    println!(
        "Timing (cycles)      : CL={} tRCD={} tRP={} tRAS={} tRC={} tCK={}ns",
        t.cl, t.t_rcd, t.t_rp, t.t_ras, t.t_rc, t.t_ck_ns
    );
}
