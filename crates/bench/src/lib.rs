//! # drmap-bench
//!
//! Shared harness for the DRMap reproduction benchmarks: builds profiled
//! DSE engines for all four DRAM architectures and provides the
//! tab-separated report formatting used by every figure/table binary.
//!
//! Binaries (one per paper artefact — see DESIGN.md's experiment index):
//!
//! * `fig1_access_profile` — Fig. 1 per-access cycles and energy,
//! * `table1_mappings` / `table2_config` — the configuration tables,
//! * `fig9_edp_sweep` — Fig. 9(a)–(d) EDP sweeps on AlexNet,
//! * `key_observations` — the paper's headline improvement percentages,
//! * `pareto_front` — the abstract's Pareto-optimal design points,
//! * `ablation_*` and `extension_networks` — beyond-paper studies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use drmap_cnn::accelerator::AcceleratorConfig;
use drmap_cnn::network::Network;
use drmap_core::dse::{DseConfig, DseEngine};
use drmap_core::edp::EdpModel;
use drmap_core::error::DseError;
use drmap_core::mapping::MappingPolicy;
use drmap_core::schedule::ReuseScheme;
use drmap_dram::geometry::Geometry;
use drmap_dram::profiler::Profiler;
use drmap_dram::timing::DramArch;

/// A profiled DSE engine for one DRAM architecture.
#[derive(Debug, Clone)]
pub struct ArchEngine {
    /// The architecture.
    pub arch: DramArch,
    /// DSE engine backed by this architecture's profiled cost table.
    pub engine: DseEngine,
}

/// Build profiled engines for all four architectures of the paper
/// (Table II geometry, default accelerator).
///
/// # Errors
///
/// Propagates configuration errors from the profiler (none for the
/// built-in configuration).
pub fn build_engines(acc: AcceleratorConfig) -> Result<Vec<ArchEngine>, DseError> {
    build_engines_with(acc, Geometry::salp_2gb_x8())
}

/// Build profiled engines on a custom geometry.
///
/// # Errors
///
/// Propagates profiler configuration errors (e.g. too few subarrays).
pub fn build_engines_with(
    acc: AcceleratorConfig,
    geometry: Geometry,
) -> Result<Vec<ArchEngine>, DseError> {
    let profiler = Profiler::new(
        geometry,
        drmap_dram::timing::TimingParams::ddr3_1600k(),
        drmap_dram::energy::EnergyParams::micron_2gb_x8(),
    )?;
    Ok(DramArch::ALL
        .iter()
        .map(|&arch| {
            let table = profiler.cost_table(arch);
            let model = EdpModel::new(geometry, table, acc);
            ArchEngine {
                arch,
                engine: DseEngine::new(model, DseConfig::default()),
            }
        })
        .collect())
}

/// EDP of one `(layer, scheme, mapping)` cell of Fig. 9: minimum over all
/// feasible tilings.
///
/// # Errors
///
/// Propagates [`DseEngine::best_over_tilings`] failures.
pub fn fig9_cell(
    engine: &DseEngine,
    layer: &drmap_cnn::layer::Layer,
    scheme: ReuseScheme,
    mapping: &MappingPolicy,
) -> Result<f64, DseError> {
    Ok(engine
        .best_over_tilings(layer, scheme, mapping)?
        .estimate
        .edp())
}

/// Per-mapping total EDP over a network for one scheme.
///
/// # Errors
///
/// Propagates per-layer failures.
pub fn network_totals(
    engine: &DseEngine,
    network: &Network,
    scheme: ReuseScheme,
    mappings: &[MappingPolicy],
) -> Result<Vec<(MappingPolicy, f64)>, DseError> {
    let mut out = Vec::with_capacity(mappings.len());
    for mapping in mappings {
        let mut total = 0.0;
        for layer in network.layers() {
            total += fig9_cell(engine, layer, scheme, mapping)?;
        }
        out.push((*mapping, total));
    }
    Ok(out)
}

/// Percentage improvement of `better` over `worse` (positive when
/// `better < worse`), the paper's "improves EDP by X%" metric.
pub fn improvement_pct(better: f64, worse: f64) -> f64 {
    if worse == 0.0 {
        0.0
    } else {
        (1.0 - better / worse) * 100.0
    }
}

/// Render a TSV row.
pub fn tsv_row<I: IntoIterator<Item = String>>(cells: I) -> String {
    cells.into_iter().collect::<Vec<_>>().join("\t")
}

/// Format an EDP in scientific notation for figure output.
pub fn fmt_edp(edp: f64) -> String {
    format!("{edp:.4e}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvement_pct_basics() {
        assert_eq!(improvement_pct(50.0, 100.0), 50.0);
        assert_eq!(improvement_pct(100.0, 100.0), 0.0);
        assert_eq!(improvement_pct(1.0, 0.0), 0.0);
        assert!(improvement_pct(110.0, 100.0) < 0.0);
    }

    #[test]
    fn tsv_row_joins_with_tabs() {
        let row = tsv_row(["a".to_owned(), "b".to_owned()]);
        assert_eq!(row, "a\tb");
    }

    #[test]
    fn fmt_edp_scientific() {
        assert_eq!(fmt_edp(0.000123), "1.2300e-4");
    }

    #[test]
    fn engines_cover_all_archs() {
        let engines = build_engines(AcceleratorConfig::table_ii()).unwrap();
        assert_eq!(engines.len(), 4);
        assert_eq!(engines[0].arch, DramArch::Ddr3);
        assert_eq!(engines[3].arch, DramArch::SalpMasa);
    }

    #[test]
    fn fig9_cell_is_positive() {
        let engines = build_engines(AcceleratorConfig::table_ii()).unwrap();
        let net = Network::tiny();
        let edp = fig9_cell(
            &engines[0].engine,
            &net.layers()[0],
            ReuseScheme::OfmsReuse,
            &MappingPolicy::drmap(),
        )
        .unwrap();
        assert!(edp > 0.0);
    }

    #[test]
    fn network_totals_preserve_mapping_order() {
        let engines = build_engines(AcceleratorConfig::table_ii()).unwrap();
        let net = Network::tiny();
        let totals = network_totals(
            &engines[0].engine,
            &net,
            ReuseScheme::AdaptiveReuse,
            &MappingPolicy::table_i(),
        )
        .unwrap();
        assert_eq!(totals.len(), 6);
        for (i, (mapping, edp)) in totals.iter().enumerate() {
            assert_eq!(mapping.index(), i + 1);
            assert!(*edp > 0.0);
        }
        // DRMap (index 2) is the minimum on DDR3.
        let min = totals
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        assert!(min.0.is_drmap());
    }

    #[test]
    fn salp_engines_never_worse_than_ddr3_for_drmap() {
        let engines = build_engines(AcceleratorConfig::table_ii()).unwrap();
        let net = Network::tiny();
        let drmap = [MappingPolicy::drmap()];
        let ddr3 = network_totals(&engines[0].engine, &net, ReuseScheme::AdaptiveReuse, &drmap)
            .unwrap()[0]
            .1;
        for ae in &engines[1..] {
            let salp =
                network_totals(&ae.engine, &net, ReuseScheme::AdaptiveReuse, &drmap).unwrap()[0].1;
            assert!(salp <= ddr3 * 1.001, "{}: {salp} vs {ddr3}", ae.arch);
        }
    }
}
