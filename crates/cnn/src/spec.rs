//! A compact, line-oriented network description format.
//!
//! The job-server and batch CLI accept workloads beyond the built-in
//! zoo; this module parses (and renders) a plain-text spec so custom
//! networks can live in version-controlled files:
//!
//! ```text
//! # anything after '#' is a comment
//! network my-edge-model
//! conv  CONV1 55 55 96 3 11 11 4     # name h w j i p q stride
//! gconv DW1   55 55 96 96 3 3 1 96   # name h w j i p q stride groups
//! fc    FC2   4096 1000              # name inputs outputs
//! ```
//!
//! # Examples
//!
//! ```
//! use drmap_cnn::spec::{parse_network, render_network};
//!
//! let spec = "network two-layer\nconv C1 8 8 16 3 3 3 1\nfc F2 1024 10\n";
//! let net = parse_network(spec)?;
//! assert_eq!(net.name(), "two-layer");
//! assert_eq!(net.layers().len(), 2);
//! assert_eq!(parse_network(&render_network(&net))?, net);
//! # Ok::<(), drmap_cnn::error::ModelError>(())
//! ```

use crate::error::ModelError;
use crate::layer::{Layer, LayerKind};
use crate::network::Network;

fn parse_dim(line_no: usize, field: &str, value: &str) -> Result<usize, ModelError> {
    value.parse().map_err(|_| {
        ModelError::new(format!(
            "spec line {line_no}: {field} must be a positive integer, got {value:?}"
        ))
    })
}

/// Parse a network from the line-oriented spec format.
///
/// # Errors
///
/// Returns [`ModelError`] naming the offending line for unknown
/// directives, wrong field counts, non-numeric dimensions, or a network
/// that fails [`Network::new`] validation.
pub fn parse_network(text: &str) -> Result<Network, ModelError> {
    let mut name: Option<String> = None;
    let mut layers = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        let args = &fields[1..];
        match fields[0] {
            "network" => {
                if args.len() != 1 {
                    return Err(ModelError::new(format!(
                        "spec line {line_no}: expected `network <name>`"
                    )));
                }
                name = Some(args[0].to_owned());
            }
            directive @ ("conv" | "gconv") => {
                let want = if directive == "conv" { 8 } else { 9 };
                if args.len() != want {
                    return Err(ModelError::new(format!(
                        "spec line {line_no}: `{directive}` takes {want} fields, got {}",
                        args.len()
                    )));
                }
                let mut dims = [0usize; 8];
                for (slot, (field, value)) in dims.iter_mut().zip(
                    ["h", "w", "j", "i", "p", "q", "stride", "groups"]
                        .iter()
                        .zip(&args[1..]),
                ) {
                    *slot = parse_dim(line_no, field, value)?;
                }
                let [h, w, j, i, p, q, stride, groups] = dims;
                let layer = if directive == "conv" {
                    Layer::conv(args[0], h, w, j, i, p, q, stride)
                } else {
                    if groups == 0 || !i.is_multiple_of(groups) || !j.is_multiple_of(groups) {
                        return Err(ModelError::new(format!(
                            "spec line {line_no}: groups ({groups}) must divide i ({i}) and j ({j})"
                        )));
                    }
                    Layer::conv_grouped(args[0], h, w, j, i, p, q, stride, groups)
                };
                layers.push(layer);
            }
            "fc" => {
                if args.len() != 3 {
                    return Err(ModelError::new(format!(
                        "spec line {line_no}: `fc` takes 3 fields (name inputs outputs), got {}",
                        args.len()
                    )));
                }
                let inputs = parse_dim(line_no, "inputs", args[1])?;
                let outputs = parse_dim(line_no, "outputs", args[2])?;
                layers.push(Layer::fully_connected(args[0], inputs, outputs));
            }
            other => {
                return Err(ModelError::new(format!(
                    "spec line {line_no}: unknown directive {other:?} \
                     (expected network/conv/gconv/fc)"
                )));
            }
        }
    }
    let name = name.ok_or_else(|| ModelError::new("spec has no `network <name>` line"))?;
    Network::new(&name, layers)
}

/// Render a network back into the spec format parsed by
/// [`parse_network`]. Round-trips exactly for any valid network whose
/// name and layer names contain no whitespace or `#`.
pub fn render_network(network: &Network) -> String {
    let mut out = format!("network {}\n", network.name());
    for layer in network.layers() {
        match layer.kind {
            LayerKind::FullyConnected => {
                out.push_str(&format!("fc {} {} {}\n", layer.name, layer.i, layer.j));
            }
            LayerKind::Conv if layer.groups == 1 => {
                out.push_str(&format!(
                    "conv {} {} {} {} {} {} {} {}\n",
                    layer.name, layer.h, layer.w, layer.j, layer.i, layer.p, layer.q, layer.stride
                ));
            }
            LayerKind::Conv => {
                out.push_str(&format!(
                    "gconv {} {} {} {} {} {} {} {} {}\n",
                    layer.name,
                    layer.h,
                    layer.w,
                    layer.j,
                    layer.i,
                    layer.p,
                    layer.q,
                    layer.stride,
                    layer.groups
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::DataKind;

    #[test]
    fn parses_all_three_directives() {
        let net = parse_network(
            "# header comment\n\
             network mixed\n\
             conv C1 13 13 384 256 3 3 1\n\
             gconv DW 13 13 384 384 3 3 1 384  # depthwise\n\
             fc F 4096 1000\n",
        )
        .unwrap();
        assert_eq!(net.name(), "mixed");
        assert_eq!(net.layers().len(), 3);
        assert_eq!(net.layers()[1].groups, 384);
        assert_eq!(net.layers()[2].elems(DataKind::Ofms), 1000);
    }

    #[test]
    fn round_trips_every_zoo_network() {
        for (name, build) in Network::zoo() {
            let net = build();
            let reparsed = parse_network(&render_network(&net)).unwrap();
            assert_eq!(reparsed, net, "round-trip failed for {name}");
        }
    }

    #[test]
    fn errors_name_the_line() {
        let err = parse_network("network x\nconv C1 13 13\n").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        let err = parse_network("network x\nwat C1 1 1\n").unwrap_err();
        assert!(err.to_string().contains("wat"), "{err}");
        let err = parse_network("conv C1 1 1 1 1 1 1 1\n").unwrap_err();
        assert!(err.to_string().contains("no `network"), "{err}");
    }

    #[test]
    fn rejects_bad_numbers_and_groups() {
        let err = parse_network("network x\nconv C1 a 1 1 1 1 1 1\n").unwrap_err();
        assert!(err.to_string().contains('h'), "{err}");
        let err = parse_network("network x\ngconv C1 1 1 5 5 1 1 1 2\n").unwrap_err();
        assert!(err.to_string().contains("groups"), "{err}");
    }

    #[test]
    fn empty_spec_is_rejected() {
        assert!(parse_network("network empty\n").is_err());
        assert!(parse_network("").is_err());
    }
}
