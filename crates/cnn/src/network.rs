//! Network presets: AlexNet (the paper's workload) plus VGG-16 and a tiny
//! test network as extensions.

use core::fmt;

use crate::error::ModelError;
use crate::layer::Layer;

/// An ordered list of layers processed one at a time on the accelerator.
///
/// # Examples
///
/// ```
/// use drmap_cnn::network::Network;
///
/// let alexnet = Network::alexnet();
/// assert_eq!(alexnet.layers().len(), 8);
/// assert_eq!(alexnet.layers()[0].name, "CONV1");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Network {
    name: String,
    layers: Vec<Layer>,
}

impl Network {
    /// Build a network from explicit layers.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if the network is empty or any layer fails
    /// validation.
    pub fn new(name: &str, layers: Vec<Layer>) -> Result<Self, ModelError> {
        if layers.is_empty() {
            return Err(ModelError::new(format!("network {name} has no layers")));
        }
        for layer in &layers {
            layer.validate()?;
        }
        Ok(Network {
            name: name.to_owned(),
            layers,
        })
    }

    /// Network name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The layers in processing order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Total MAC operations per image.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(Layer::macs).sum()
    }

    /// AlexNet (Krizhevsky et al., NIPS 2012) — the paper's evaluation
    /// workload: CONV1–CONV5 and FC6–FC8 with the standard merged-tower
    /// dimensions on 227×227×3 ImageNet inputs.
    pub fn alexnet() -> Self {
        Network::new(
            "AlexNet",
            vec![
                Layer::conv("CONV1", 55, 55, 96, 3, 11, 11, 4),
                Layer::conv("CONV2", 27, 27, 256, 96, 5, 5, 1),
                Layer::conv("CONV3", 13, 13, 384, 256, 3, 3, 1),
                Layer::conv("CONV4", 13, 13, 384, 384, 3, 3, 1),
                Layer::conv("CONV5", 13, 13, 256, 384, 3, 3, 1),
                Layer::fully_connected("FC6", 9216, 4096),
                Layer::fully_connected("FC7", 4096, 4096),
                Layer::fully_connected("FC8", 4096, 1000),
            ],
        )
        .expect("AlexNet preset is valid")
    }

    /// VGG-16 (Simonyan & Zisserman, 2015) — an extension workload with
    /// much larger feature maps than AlexNet.
    pub fn vgg16() -> Self {
        Network::new(
            "VGG-16",
            vec![
                Layer::conv("CONV1_1", 224, 224, 64, 3, 3, 3, 1),
                Layer::conv("CONV1_2", 224, 224, 64, 64, 3, 3, 1),
                Layer::conv("CONV2_1", 112, 112, 128, 64, 3, 3, 1),
                Layer::conv("CONV2_2", 112, 112, 128, 128, 3, 3, 1),
                Layer::conv("CONV3_1", 56, 56, 256, 128, 3, 3, 1),
                Layer::conv("CONV3_2", 56, 56, 256, 256, 3, 3, 1),
                Layer::conv("CONV3_3", 56, 56, 256, 256, 3, 3, 1),
                Layer::conv("CONV4_1", 28, 28, 512, 256, 3, 3, 1),
                Layer::conv("CONV4_2", 28, 28, 512, 512, 3, 3, 1),
                Layer::conv("CONV4_3", 28, 28, 512, 512, 3, 3, 1),
                Layer::conv("CONV5_1", 14, 14, 512, 512, 3, 3, 1),
                Layer::conv("CONV5_2", 14, 14, 512, 512, 3, 3, 1),
                Layer::conv("CONV5_3", 14, 14, 512, 512, 3, 3, 1),
                Layer::fully_connected("FC6", 25088, 4096),
                Layer::fully_connected("FC7", 4096, 4096),
                Layer::fully_connected("FC8", 4096, 1000),
            ],
        )
        .expect("VGG-16 preset is valid")
    }

    /// AlexNet with the **original two-tower grouping** (CONV2, CONV4 and
    /// CONV5 split across the two GTX 580s in the 2012 paper): halves
    /// those layers' weight volumes and MACs relative to
    /// [`Network::alexnet`].
    pub fn alexnet_grouped() -> Self {
        Network::new(
            "AlexNet-grouped",
            vec![
                Layer::conv("CONV1", 55, 55, 96, 3, 11, 11, 4),
                Layer::conv_grouped("CONV2", 27, 27, 256, 96, 5, 5, 1, 2),
                Layer::conv("CONV3", 13, 13, 384, 256, 3, 3, 1),
                Layer::conv_grouped("CONV4", 13, 13, 384, 384, 3, 3, 1, 2),
                Layer::conv_grouped("CONV5", 13, 13, 256, 384, 3, 3, 1, 2),
                Layer::fully_connected("FC6", 9216, 4096),
                Layer::fully_connected("FC7", 4096, 4096),
                Layer::fully_connected("FC8", 4096, 1000),
            ],
        )
        .expect("grouped AlexNet preset is valid")
    }

    /// ResNet-18 (He et al., 2016) with plain layer shapes: the residual
    /// additions do not change DRAM tile traffic, so only the conv/FC
    /// shapes are modelled. The stride-2 1×1 downsample projections are
    /// included as their own layers.
    pub fn resnet18() -> Self {
        let mut layers = vec![Layer::conv("CONV1", 112, 112, 64, 3, 7, 7, 2)];
        let stages: [(usize, usize, usize); 4] =
            [(56, 64, 64), (28, 128, 64), (14, 256, 128), (7, 512, 256)];
        for (si, &(hw, ch, in_ch)) in stages.iter().enumerate() {
            let stage = si + 1;
            let stride = if stage == 1 { 1 } else { 2 };
            layers.push(Layer::conv(
                &format!("S{stage}B1_CONV1"),
                hw,
                hw,
                ch,
                in_ch,
                3,
                3,
                stride,
            ));
            layers.push(Layer::conv(
                &format!("S{stage}B1_CONV2"),
                hw,
                hw,
                ch,
                ch,
                3,
                3,
                1,
            ));
            if stage > 1 {
                layers.push(Layer::conv(
                    &format!("S{stage}B1_PROJ"),
                    hw,
                    hw,
                    ch,
                    in_ch,
                    1,
                    1,
                    stride,
                ));
            }
            layers.push(Layer::conv(
                &format!("S{stage}B2_CONV1"),
                hw,
                hw,
                ch,
                ch,
                3,
                3,
                1,
            ));
            layers.push(Layer::conv(
                &format!("S{stage}B2_CONV2"),
                hw,
                hw,
                ch,
                ch,
                3,
                3,
                1,
            ));
        }
        layers.push(Layer::fully_connected("FC", 512, 1000));
        Network::new("ResNet-18", layers).expect("ResNet-18 preset is valid")
    }

    /// A tiny three-layer network for fast tests and examples.
    pub fn tiny() -> Self {
        Network::new(
            "TinyNet",
            vec![
                Layer::conv("CONV1", 16, 16, 16, 3, 3, 3, 1),
                Layer::conv("CONV2", 8, 8, 32, 16, 3, 3, 2),
                Layer::fully_connected("FC3", 2048, 10),
            ],
        )
        .expect("TinyNet preset is valid")
    }
}

impl fmt::Display for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} layers)", self.name, self.layers.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::DataKind;

    #[test]
    fn alexnet_layer_dims_match_paper() {
        let net = Network::alexnet();
        let l = net.layers();
        assert_eq!(l[0].ifm_h(), 227);
        assert_eq!(l[1].j, 256);
        assert_eq!(l[4].name, "CONV5");
        assert_eq!(l[4].j, 256);
        // FC6 weights: 9216 * 4096 ≈ 37.7M.
        assert_eq!(l[5].wghs_elems(), 37_748_736);
        assert_eq!(l[7].j, 1000);
    }

    #[test]
    fn alexnet_macs_are_about_1_1g() {
        // Merged-tower AlexNet (no grouped convolutions) is ~1.13 GMACs;
        // the often-quoted 724M figure assumes the original 2-GPU grouping.
        let net = Network::alexnet();
        let total = net.total_macs();
        assert!(total > 1_000_000_000, "{total}");
        assert!(total < 1_250_000_000, "{total}");
    }

    #[test]
    fn vgg16_is_much_bigger_than_alexnet() {
        let vgg = Network::vgg16();
        let alex = Network::alexnet();
        assert!(vgg.total_macs() > 10 * alex.total_macs());
        assert_eq!(vgg.layers().len(), 16);
    }

    #[test]
    fn tiny_network_is_small() {
        let t = Network::tiny();
        assert!(t.total_macs() < 3_000_000);
        // FC3 input matches CONV2 output volume: 8*8*32 = 2048.
        assert_eq!(
            t.layers()[1].elems(DataKind::Ofms),
            t.layers()[2].elems(DataKind::Ifms)
        );
    }

    #[test]
    fn grouped_alexnet_matches_the_724m_figure() {
        let g = Network::alexnet_grouped();
        let macs = g.total_macs();
        // The canonical grouped-AlexNet figure is ~724 M MACs.
        assert!(macs > 650_000_000 && macs < 800_000_000, "{macs}");
        assert!(macs < Network::alexnet().total_macs());
        // CONV2 weights halve under grouping: 5*5*48*256.
        assert_eq!(g.layers()[1].wghs_elems(), 5 * 5 * 48 * 256);
    }

    #[test]
    fn resnet18_has_expected_structure() {
        let r = Network::resnet18();
        // 1 stem + 4 stages * 4 convs + 3 projections + 1 FC = 21 layers.
        assert_eq!(r.layers().len(), 21);
        assert_eq!(r.layers()[0].name, "CONV1");
        assert!(r.layers().iter().any(|l| l.name == "S4B2_CONV2"));
        assert!(r.layers().iter().any(|l| l.name == "S2B1_PROJ"));
        // ~1.8 GMACs is the canonical figure.
        let macs = r.total_macs();
        assert!(macs > 1_500_000_000 && macs < 2_100_000_000, "{macs}");
    }

    #[test]
    fn empty_network_rejected() {
        assert!(Network::new("empty", vec![]).is_err());
    }

    #[test]
    fn invalid_layer_rejected() {
        let mut bad = Layer::conv("c", 4, 4, 8, 2, 3, 3, 1);
        bad.i = 0;
        assert!(Network::new("bad", vec![bad]).is_err());
    }

    #[test]
    fn display_shows_name_and_count() {
        assert_eq!(Network::alexnet().to_string(), "AlexNet (8 layers)");
    }
}
