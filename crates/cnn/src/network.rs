//! Network presets: AlexNet (the paper's workload) plus VGG-16 and a tiny
//! test network as extensions.

use core::fmt;

use crate::error::ModelError;
use crate::layer::Layer;

/// A model-zoo entry: lookup name plus preset constructor.
pub type ZooEntry = (&'static str, fn() -> Network);

/// An ordered list of layers processed one at a time on the accelerator.
///
/// # Examples
///
/// ```
/// use drmap_cnn::network::Network;
///
/// let alexnet = Network::alexnet();
/// assert_eq!(alexnet.layers().len(), 8);
/// assert_eq!(alexnet.layers()[0].name, "CONV1");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Network {
    name: String,
    layers: Vec<Layer>,
}

impl Network {
    /// Build a network from explicit layers.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if the network is empty or any layer fails
    /// validation.
    pub fn new(name: &str, layers: Vec<Layer>) -> Result<Self, ModelError> {
        if layers.is_empty() {
            return Err(ModelError::new(format!("network {name} has no layers")));
        }
        for layer in &layers {
            layer.validate()?;
        }
        Ok(Network {
            name: name.to_owned(),
            layers,
        })
    }

    /// Network name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The layers in processing order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Total MAC operations per image.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(Layer::macs).sum()
    }

    /// AlexNet (Krizhevsky et al., NIPS 2012) — the paper's evaluation
    /// workload: CONV1–CONV5 and FC6–FC8 with the standard merged-tower
    /// dimensions on 227×227×3 ImageNet inputs.
    pub fn alexnet() -> Self {
        Network::new(
            "AlexNet",
            vec![
                Layer::conv("CONV1", 55, 55, 96, 3, 11, 11, 4),
                Layer::conv("CONV2", 27, 27, 256, 96, 5, 5, 1),
                Layer::conv("CONV3", 13, 13, 384, 256, 3, 3, 1),
                Layer::conv("CONV4", 13, 13, 384, 384, 3, 3, 1),
                Layer::conv("CONV5", 13, 13, 256, 384, 3, 3, 1),
                Layer::fully_connected("FC6", 9216, 4096),
                Layer::fully_connected("FC7", 4096, 4096),
                Layer::fully_connected("FC8", 4096, 1000),
            ],
        )
        .expect("AlexNet preset is valid")
    }

    /// VGG-16 (Simonyan & Zisserman, 2015) — an extension workload with
    /// much larger feature maps than AlexNet.
    pub fn vgg16() -> Self {
        Network::new(
            "VGG-16",
            vec![
                Layer::conv("CONV1_1", 224, 224, 64, 3, 3, 3, 1),
                Layer::conv("CONV1_2", 224, 224, 64, 64, 3, 3, 1),
                Layer::conv("CONV2_1", 112, 112, 128, 64, 3, 3, 1),
                Layer::conv("CONV2_2", 112, 112, 128, 128, 3, 3, 1),
                Layer::conv("CONV3_1", 56, 56, 256, 128, 3, 3, 1),
                Layer::conv("CONV3_2", 56, 56, 256, 256, 3, 3, 1),
                Layer::conv("CONV3_3", 56, 56, 256, 256, 3, 3, 1),
                Layer::conv("CONV4_1", 28, 28, 512, 256, 3, 3, 1),
                Layer::conv("CONV4_2", 28, 28, 512, 512, 3, 3, 1),
                Layer::conv("CONV4_3", 28, 28, 512, 512, 3, 3, 1),
                Layer::conv("CONV5_1", 14, 14, 512, 512, 3, 3, 1),
                Layer::conv("CONV5_2", 14, 14, 512, 512, 3, 3, 1),
                Layer::conv("CONV5_3", 14, 14, 512, 512, 3, 3, 1),
                Layer::fully_connected("FC6", 25088, 4096),
                Layer::fully_connected("FC7", 4096, 4096),
                Layer::fully_connected("FC8", 4096, 1000),
            ],
        )
        .expect("VGG-16 preset is valid")
    }

    /// AlexNet with the **original two-tower grouping** (CONV2, CONV4 and
    /// CONV5 split across the two GTX 580s in the 2012 paper): halves
    /// those layers' weight volumes and MACs relative to
    /// [`Network::alexnet`].
    pub fn alexnet_grouped() -> Self {
        Network::new(
            "AlexNet-grouped",
            vec![
                Layer::conv("CONV1", 55, 55, 96, 3, 11, 11, 4),
                Layer::conv_grouped("CONV2", 27, 27, 256, 96, 5, 5, 1, 2),
                Layer::conv("CONV3", 13, 13, 384, 256, 3, 3, 1),
                Layer::conv_grouped("CONV4", 13, 13, 384, 384, 3, 3, 1, 2),
                Layer::conv_grouped("CONV5", 13, 13, 256, 384, 3, 3, 1, 2),
                Layer::fully_connected("FC6", 9216, 4096),
                Layer::fully_connected("FC7", 4096, 4096),
                Layer::fully_connected("FC8", 4096, 1000),
            ],
        )
        .expect("grouped AlexNet preset is valid")
    }

    /// ResNet-18 (He et al., 2016) with plain layer shapes: the residual
    /// additions do not change DRAM tile traffic, so only the conv/FC
    /// shapes are modelled. The stride-2 1×1 downsample projections are
    /// included as their own layers.
    pub fn resnet18() -> Self {
        let mut layers = vec![Layer::conv("CONV1", 112, 112, 64, 3, 7, 7, 2)];
        let stages: [(usize, usize, usize); 4] =
            [(56, 64, 64), (28, 128, 64), (14, 256, 128), (7, 512, 256)];
        for (si, &(hw, ch, in_ch)) in stages.iter().enumerate() {
            let stage = si + 1;
            let stride = if stage == 1 { 1 } else { 2 };
            layers.push(Layer::conv(
                &format!("S{stage}B1_CONV1"),
                hw,
                hw,
                ch,
                in_ch,
                3,
                3,
                stride,
            ));
            layers.push(Layer::conv(
                &format!("S{stage}B1_CONV2"),
                hw,
                hw,
                ch,
                ch,
                3,
                3,
                1,
            ));
            if stage > 1 {
                layers.push(Layer::conv(
                    &format!("S{stage}B1_PROJ"),
                    hw,
                    hw,
                    ch,
                    in_ch,
                    1,
                    1,
                    stride,
                ));
            }
            layers.push(Layer::conv(
                &format!("S{stage}B2_CONV1"),
                hw,
                hw,
                ch,
                ch,
                3,
                3,
                1,
            ));
            layers.push(Layer::conv(
                &format!("S{stage}B2_CONV2"),
                hw,
                hw,
                ch,
                ch,
                3,
                3,
                1,
            ));
        }
        layers.push(Layer::fully_connected("FC", 512, 1000));
        Network::new("ResNet-18", layers).expect("ResNet-18 preset is valid")
    }

    /// MobileNetV1 (Howard et al., 2017) with the standard 224×224
    /// configuration: a stride-2 stem followed by 13 depthwise-separable
    /// blocks, each modelled as a grouped 3×3 depthwise convolution
    /// (`groups == channels`) plus a dense 1×1 pointwise convolution.
    /// Exercises layer shapes AlexNet/VGG never produce: extreme
    /// channel-grouping and 1×1 kernels at every spatial scale.
    pub fn mobilenet_v1() -> Self {
        let mut layers = vec![Layer::conv("CONV1", 112, 112, 32, 3, 3, 3, 2)];
        // (output hw, input channels, output channels, depthwise stride);
        // stride 2 halves the spatial size relative to the previous block.
        let blocks: [(usize, usize, usize, usize); 13] = [
            (112, 32, 64, 1),
            (56, 64, 128, 2),
            (56, 128, 128, 1),
            (28, 128, 256, 2),
            (28, 256, 256, 1),
            (14, 256, 512, 2),
            (14, 512, 512, 1),
            (14, 512, 512, 1),
            (14, 512, 512, 1),
            (14, 512, 512, 1),
            (14, 512, 512, 1),
            (7, 512, 1024, 2),
            (7, 1024, 1024, 1),
        ];
        for (n, &(hw, in_ch, out_ch, stride)) in blocks.iter().enumerate() {
            let b = n + 1;
            layers.push(Layer::conv_grouped(
                &format!("DW{b}"),
                hw,
                hw,
                in_ch,
                in_ch,
                3,
                3,
                stride,
                in_ch,
            ));
            layers.push(Layer::conv(
                &format!("PW{b}"),
                hw,
                hw,
                out_ch,
                in_ch,
                1,
                1,
                1,
            ));
        }
        layers.push(Layer::fully_connected("FC", 1024, 1000));
        Network::new("MobileNetV1", layers).expect("MobileNetV1 preset is valid")
    }

    /// SqueezeNet v1.1 (Iandola et al., 2016): a small stem plus eight
    /// "fire" modules, each modelled as a 1×1 squeeze convolution and two
    /// parallel expand convolutions (1×1 and 3×3) over the squeezed
    /// channels. Pooling layers move no DRAM tile traffic and are
    /// represented by the spatial-size drops between modules.
    pub fn squeezenet() -> Self {
        let mut layers = vec![Layer::conv("CONV1", 113, 113, 64, 3, 3, 3, 2)];
        // (module, output hw, input channels, squeeze, expand) — expand
        // applies to both the 1×1 and 3×3 branches; the module outputs
        // their concatenation (2 × expand channels).
        let fires: [(usize, usize, usize, usize, usize); 8] = [
            (2, 56, 64, 16, 64),
            (3, 56, 128, 16, 64),
            (4, 28, 128, 32, 128),
            (5, 28, 256, 32, 128),
            (6, 14, 256, 48, 192),
            (7, 14, 384, 48, 192),
            (8, 14, 384, 64, 256),
            (9, 14, 512, 64, 256),
        ];
        for &(m, hw, in_ch, squeeze, expand) in &fires {
            layers.push(Layer::conv(
                &format!("FIRE{m}_SQ"),
                hw,
                hw,
                squeeze,
                in_ch,
                1,
                1,
                1,
            ));
            layers.push(Layer::conv(
                &format!("FIRE{m}_E1"),
                hw,
                hw,
                expand,
                squeeze,
                1,
                1,
                1,
            ));
            layers.push(Layer::conv(
                &format!("FIRE{m}_E3"),
                hw,
                hw,
                expand,
                squeeze,
                3,
                3,
                1,
            ));
        }
        layers.push(Layer::conv("CONV10", 14, 14, 1000, 512, 1, 1, 1));
        Network::new("SqueezeNet-v1.1", layers).expect("SqueezeNet preset is valid")
    }

    /// The built-in model zoo: every preset constructor by its lookup
    /// name, in a stable order.
    pub fn zoo() -> Vec<ZooEntry> {
        vec![
            ("alexnet", Network::alexnet as fn() -> Network),
            ("alexnet-grouped", Network::alexnet_grouped),
            ("vgg16", Network::vgg16),
            ("resnet18", Network::resnet18),
            ("mobilenet", Network::mobilenet_v1),
            ("squeezenet", Network::squeezenet),
            ("tiny", Network::tiny),
        ]
    }

    /// Look up a preset network by its zoo name (case-insensitive).
    pub fn by_name(name: &str) -> Option<Network> {
        let name = name.to_ascii_lowercase();
        Network::zoo()
            .into_iter()
            .find(|(n, _)| *n == name)
            .map(|(_, build)| build())
    }

    /// A tiny three-layer network for fast tests and examples.
    pub fn tiny() -> Self {
        Network::new(
            "TinyNet",
            vec![
                Layer::conv("CONV1", 16, 16, 16, 3, 3, 3, 1),
                Layer::conv("CONV2", 8, 8, 32, 16, 3, 3, 2),
                Layer::fully_connected("FC3", 2048, 10),
            ],
        )
        .expect("TinyNet preset is valid")
    }
}

impl fmt::Display for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} layers)", self.name, self.layers.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::DataKind;

    #[test]
    fn alexnet_layer_dims_match_paper() {
        let net = Network::alexnet();
        let l = net.layers();
        assert_eq!(l[0].ifm_h(), 227);
        assert_eq!(l[1].j, 256);
        assert_eq!(l[4].name, "CONV5");
        assert_eq!(l[4].j, 256);
        // FC6 weights: 9216 * 4096 ≈ 37.7M.
        assert_eq!(l[5].wghs_elems(), 37_748_736);
        assert_eq!(l[7].j, 1000);
    }

    #[test]
    fn alexnet_macs_are_about_1_1g() {
        // Merged-tower AlexNet (no grouped convolutions) is ~1.13 GMACs;
        // the often-quoted 724M figure assumes the original 2-GPU grouping.
        let net = Network::alexnet();
        let total = net.total_macs();
        assert!(total > 1_000_000_000, "{total}");
        assert!(total < 1_250_000_000, "{total}");
    }

    #[test]
    fn vgg16_is_much_bigger_than_alexnet() {
        let vgg = Network::vgg16();
        let alex = Network::alexnet();
        assert!(vgg.total_macs() > 10 * alex.total_macs());
        assert_eq!(vgg.layers().len(), 16);
    }

    #[test]
    fn tiny_network_is_small() {
        let t = Network::tiny();
        assert!(t.total_macs() < 3_000_000);
        // FC3 input matches CONV2 output volume: 8*8*32 = 2048.
        assert_eq!(
            t.layers()[1].elems(DataKind::Ofms),
            t.layers()[2].elems(DataKind::Ifms)
        );
    }

    #[test]
    fn grouped_alexnet_matches_the_724m_figure() {
        let g = Network::alexnet_grouped();
        let macs = g.total_macs();
        // The canonical grouped-AlexNet figure is ~724 M MACs.
        assert!(macs > 650_000_000 && macs < 800_000_000, "{macs}");
        assert!(macs < Network::alexnet().total_macs());
        // CONV2 weights halve under grouping: 5*5*48*256.
        assert_eq!(g.layers()[1].wghs_elems(), 5 * 5 * 48 * 256);
    }

    #[test]
    fn resnet18_has_expected_structure() {
        let r = Network::resnet18();
        // 1 stem + 4 stages * 4 convs + 3 projections + 1 FC = 21 layers.
        assert_eq!(r.layers().len(), 21);
        assert_eq!(r.layers()[0].name, "CONV1");
        assert!(r.layers().iter().any(|l| l.name == "S4B2_CONV2"));
        assert!(r.layers().iter().any(|l| l.name == "S2B1_PROJ"));
        // ~1.8 GMACs is the canonical figure.
        let macs = r.total_macs();
        assert!(macs > 1_500_000_000 && macs < 2_100_000_000, "{macs}");
    }

    #[test]
    fn mobilenet_shapes_and_macs() {
        let m = Network::mobilenet_v1();
        // 1 stem + 13 * (depthwise + pointwise) + 1 FC = 28 layers.
        assert_eq!(m.layers().len(), 28);
        // Every depthwise layer is fully grouped.
        for l in m.layers().iter().filter(|l| l.name.starts_with("DW")) {
            assert_eq!(l.groups, l.i);
            assert_eq!(l.i, l.j);
        }
        // Every pointwise layer is a dense 1×1 convolution.
        for l in m.layers().iter().filter(|l| l.name.starts_with("PW")) {
            assert_eq!((l.p, l.q, l.groups), (1, 1, 1));
        }
        // The canonical MobileNetV1 figure is ~569 M MACs.
        let macs = m.total_macs();
        assert!(macs > 500_000_000 && macs < 640_000_000, "{macs}");
    }

    #[test]
    fn squeezenet_shapes_and_macs() {
        let s = Network::squeezenet();
        // 1 stem + 8 fire modules * 3 convs + 1 classifier = 26 layers.
        assert_eq!(s.layers().len(), 26);
        // Expand branches consume the squeezed channels.
        let sq = s.layers().iter().find(|l| l.name == "FIRE2_SQ").unwrap();
        let e3 = s.layers().iter().find(|l| l.name == "FIRE2_E3").unwrap();
        assert_eq!(e3.i, sq.j);
        // SqueezeNet v1.1 is ~350 M MACs — far smaller than AlexNet.
        let macs = s.total_macs();
        assert!(macs > 200_000_000 && macs < 500_000_000, "{macs}");
        assert!(macs < Network::alexnet().total_macs());
    }

    #[test]
    fn zoo_lookup_finds_every_preset() {
        for (name, build) in Network::zoo() {
            let from_name = Network::by_name(name).expect("zoo name resolves");
            assert_eq!(from_name, build(), "zoo mismatch for {name}");
        }
        assert_eq!(
            Network::by_name("AlexNet").unwrap(),
            Network::alexnet(),
            "lookup is case-insensitive"
        );
        assert!(Network::by_name("no-such-net").is_none());
    }

    #[test]
    fn empty_network_rejected() {
        assert!(Network::new("empty", vec![]).is_err());
    }

    #[test]
    fn invalid_layer_rejected() {
        let mut bad = Layer::conv("c", 4, 4, 8, 2, 3, 3, 1);
        bad.i = 0;
        assert!(Network::new("bad", vec![bad]).is_err());
    }

    #[test]
    fn display_shows_name_and_count() {
        assert_eq!(Network::alexnet().to_string(), "AlexNet (8 layers)");
    }
}
