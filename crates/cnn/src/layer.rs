//! CNN layer shape models.
//!
//! Only layer *shapes* matter for DRAM traffic analysis: the heights,
//! widths, channel depths, kernel sizes and strides that determine the
//! `ifms` / `wghs` / `ofms` data volumes of Fig. 3's loop nest. No weights
//! or activations are stored.

use core::fmt;

use crate::error::ModelError;

/// The three CNN data types moved between DRAM and the on-chip buffers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum DataKind {
    /// Input feature maps (activations).
    Ifms,
    /// Weights (filters).
    Wghs,
    /// Output feature maps (partial sums / activations).
    Ofms,
}

impl DataKind {
    /// All data kinds.
    pub const ALL: [DataKind; 3] = [DataKind::Ifms, DataKind::Wghs, DataKind::Ofms];

    /// Paper-style label (`ifms`, `wghs`, `ofms`).
    pub fn label(self) -> &'static str {
        match self {
            DataKind::Ifms => "ifms",
            DataKind::Wghs => "wghs",
            DataKind::Ofms => "ofms",
        }
    }
}

impl fmt::Display for DataKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Layer category, used for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum LayerKind {
    /// Convolutional layer.
    Conv,
    /// Fully-connected layer (modelled as a 1×1-output convolution).
    FullyConnected,
}

/// Shape of one convolutional (or fully-connected) layer.
///
/// Notation follows Fig. 3 of the paper: the layer produces `H × W × J`
/// ofms from `I`-channel ifms using `P × Q × I × J` weights with stride
/// `stride`.
///
/// # Examples
///
/// ```
/// use drmap_cnn::layer::Layer;
///
/// let conv1 = Layer::conv("CONV1", 55, 55, 96, 3, 11, 11, 4);
/// assert_eq!(conv1.macs(), 55 * 55 * 96 * 3 * 11 * 11);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Layer {
    /// Layer name (e.g. `CONV1`, `FC6`).
    pub name: String,
    /// Layer category.
    pub kind: LayerKind,
    /// Output feature-map height `H`.
    pub h: usize,
    /// Output feature-map width `W`.
    pub w: usize,
    /// Output channels `J` (depth of ofms).
    pub j: usize,
    /// Input channels `I` (depth of ifms and wghs).
    pub i: usize,
    /// Kernel height `P`.
    pub p: usize,
    /// Kernel width `Q`.
    pub q: usize,
    /// Convolution stride.
    pub stride: usize,
    /// Channel groups (1 = dense convolution; AlexNet's original two-GPU
    /// layers use 2; depthwise convolutions use `groups == i`). Each
    /// filter sees only `I / groups` input channels.
    pub groups: usize,
}

impl Layer {
    /// A convolutional layer.
    #[allow(clippy::too_many_arguments)]
    pub fn conv(
        name: &str,
        h: usize,
        w: usize,
        j: usize,
        i: usize,
        p: usize,
        q: usize,
        stride: usize,
    ) -> Self {
        Layer {
            name: name.to_owned(),
            kind: LayerKind::Conv,
            h,
            w,
            j,
            i,
            p,
            q,
            stride,
            groups: 1,
        }
    }

    /// A grouped convolutional layer: `groups` independent channel
    /// groups, each filter seeing `i / groups` input channels (AlexNet's
    /// original CONV2/4/5; depthwise convolutions).
    ///
    /// # Panics
    ///
    /// Panics if `groups` does not divide both `i` and `j`.
    #[allow(clippy::too_many_arguments)]
    pub fn conv_grouped(
        name: &str,
        h: usize,
        w: usize,
        j: usize,
        i: usize,
        p: usize,
        q: usize,
        stride: usize,
        groups: usize,
    ) -> Self {
        assert!(
            groups > 0 && i.is_multiple_of(groups) && j.is_multiple_of(groups),
            "groups must divide both channel counts"
        );
        Layer {
            groups,
            ..Self::conv(name, h, w, j, i, p, q, stride)
        }
    }

    /// A fully-connected layer with `inputs` inputs and `outputs` outputs,
    /// modelled as a 1×1×`inputs` → 1×1×`outputs` convolution.
    pub fn fully_connected(name: &str, inputs: usize, outputs: usize) -> Self {
        Layer {
            name: name.to_owned(),
            kind: LayerKind::FullyConnected,
            h: 1,
            w: 1,
            j: outputs,
            i: inputs,
            p: 1,
            q: 1,
            stride: 1,
            groups: 1,
        }
    }

    /// Validate that every dimension is non-zero.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] naming the offending dimension.
    pub fn validate(&self) -> Result<(), ModelError> {
        for (name, v) in [
            ("h", self.h),
            ("w", self.w),
            ("j", self.j),
            ("i", self.i),
            ("p", self.p),
            ("q", self.q),
            ("stride", self.stride),
            ("groups", self.groups),
        ] {
            if v == 0 {
                return Err(ModelError::new(format!(
                    "layer {}: {} must be non-zero",
                    self.name, name
                )));
            }
        }
        if !self.i.is_multiple_of(self.groups) || !self.j.is_multiple_of(self.groups) {
            return Err(ModelError::new(format!(
                "layer {}: groups ({}) must divide i ({}) and j ({})",
                self.name, self.groups, self.i, self.j
            )));
        }
        Ok(())
    }

    /// Height of the ifms region feeding `rows` output rows
    /// (`rows·stride + P − stride`, the halo-aware patch height).
    pub fn ifm_patch_h(&self, rows: usize) -> usize {
        rows * self.stride + self.p.saturating_sub(self.stride)
    }

    /// Width of the ifms region feeding `cols` output columns.
    pub fn ifm_patch_w(&self, cols: usize) -> usize {
        cols * self.stride + self.q.saturating_sub(self.stride)
    }

    /// Input feature-map height consumed by the full layer.
    pub fn ifm_h(&self) -> usize {
        self.ifm_patch_h(self.h)
    }

    /// Input feature-map width consumed by the full layer.
    pub fn ifm_w(&self) -> usize {
        self.ifm_patch_w(self.w)
    }

    /// Elements in the full ifms volume (per image).
    pub fn ifms_elems(&self) -> u64 {
        self.ifm_h() as u64 * self.ifm_w() as u64 * self.i as u64
    }

    /// Elements in the full weight volume (each filter sees `i / groups`
    /// input channels).
    pub fn wghs_elems(&self) -> u64 {
        self.p as u64 * self.q as u64 * (self.i / self.groups) as u64 * self.j as u64
    }

    /// Elements in the full ofms volume (per image).
    pub fn ofms_elems(&self) -> u64 {
        self.h as u64 * self.w as u64 * self.j as u64
    }

    /// Elements of the given data kind.
    pub fn elems(&self, kind: DataKind) -> u64 {
        match kind {
            DataKind::Ifms => self.ifms_elems(),
            DataKind::Wghs => self.wghs_elems(),
            DataKind::Ofms => self.ofms_elems(),
        }
    }

    /// Multiply-accumulate operations for the layer (per image).
    pub fn macs(&self) -> u64 {
        self.ofms_elems() * self.p as u64 * self.q as u64 * (self.i / self.groups) as u64
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}x{}x{} <- {}ch {}x{} s{}",
            self.name, self.h, self.w, self.j, self.i, self.p, self.q, self.stride
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_constructor_sets_dims() {
        let l = Layer::conv("c", 13, 13, 384, 256, 3, 3, 1);
        assert_eq!(l.kind, LayerKind::Conv);
        assert_eq!(l.ofms_elems(), 13 * 13 * 384);
        assert_eq!(l.wghs_elems(), 3 * 3 * 256 * 384);
    }

    #[test]
    fn fc_is_1x1_conv() {
        let l = Layer::fully_connected("fc", 9216, 4096);
        assert_eq!(l.kind, LayerKind::FullyConnected);
        assert_eq!(l.h, 1);
        assert_eq!(l.w, 1);
        assert_eq!(l.wghs_elems(), 9216 * 4096);
        assert_eq!(l.ofms_elems(), 4096);
        assert_eq!(l.ifms_elems(), 9216);
        assert_eq!(l.macs(), 9216 * 4096);
    }

    #[test]
    fn ifm_patch_includes_halo() {
        let l = Layer::conv("c", 55, 55, 96, 3, 11, 11, 4);
        // One output row needs 11 input rows; two need 15 (stride 4).
        assert_eq!(l.ifm_patch_h(1), 11);
        assert_eq!(l.ifm_patch_h(2), 15);
        // Full layer: 55*4 + 11 - 4 = 227 (AlexNet's input size).
        assert_eq!(l.ifm_h(), 227);
        assert_eq!(l.ifm_w(), 227);
    }

    #[test]
    fn unit_stride_patch() {
        let l = Layer::conv("c", 13, 13, 384, 256, 3, 3, 1);
        assert_eq!(l.ifm_patch_h(13), 15); // 13 + 3 - 1
        assert_eq!(l.ifm_patch_h(4), 6);
    }

    #[test]
    fn validate_rejects_zero_dims() {
        let mut l = Layer::conv("c", 13, 13, 384, 256, 3, 3, 1);
        l.j = 0;
        let err = l.validate().unwrap_err();
        assert!(err.to_string().contains("j"));
    }

    #[test]
    fn elems_dispatch() {
        let l = Layer::conv("c", 4, 4, 8, 2, 3, 3, 1);
        assert_eq!(l.elems(DataKind::Ifms), l.ifms_elems());
        assert_eq!(l.elems(DataKind::Wghs), l.wghs_elems());
        assert_eq!(l.elems(DataKind::Ofms), l.ofms_elems());
    }

    #[test]
    fn display_is_informative() {
        let l = Layer::conv("CONV3", 13, 13, 384, 256, 3, 3, 1);
        let s = l.to_string();
        assert!(s.contains("CONV3"));
        assert!(s.contains("13x13x384"));
    }

    #[test]
    fn datakind_labels() {
        assert_eq!(DataKind::Ifms.label(), "ifms");
        assert_eq!(DataKind::Wghs.label(), "wghs");
        assert_eq!(DataKind::Ofms.label(), "ofms");
    }
}
