//! # drmap-cnn
//!
//! CNN layer/network shape models and accelerator configuration for the
//! DRMap (DAC 2020) reproduction.
//!
//! Only the quantities that shape DRAM traffic are modelled: layer
//! dimensions (Fig. 3's loop bounds), data volumes for the three data
//! kinds (`ifms` / `wghs` / `ofms`), and the accelerator's buffer sizes
//! and precision (Table II).
//!
//! ## Example
//!
//! ```
//! use drmap_cnn::prelude::*;
//!
//! let alexnet = Network::alexnet();
//! let acc = AcceleratorConfig::table_ii();
//! let conv2 = &alexnet.layers()[1];
//! // CONV2's weights are far too large for the 64 KB weight buffer:
//! assert!(acc.bytes_for(conv2.wghs_elems()) > acc.wghs_buffer as u64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accelerator;
pub mod error;
pub mod layer;
pub mod network;
pub mod spec;

/// Convenient re-exports of the most commonly used types.
pub mod prelude {
    pub use crate::accelerator::{AcceleratorConfig, Precision};
    pub use crate::error::ModelError;
    pub use crate::layer::{DataKind, Layer, LayerKind};
    pub use crate::network::Network;
    pub use crate::spec::{parse_network, render_network};
}
