//! Accelerator configuration: the TPU-like design of Table II.
//!
//! Only the properties that shape DRAM traffic are modelled: the separate
//! on-chip buffers (iB/wB/oB), the MAC array size, and the arithmetic
//! precision (bytes per element).

use core::fmt;

use crate::error::ModelError;
use crate::layer::DataKind;

/// Arithmetic precision of activations and weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Precision {
    /// 8-bit integer (1 byte per element).
    Int8,
    /// 16-bit integer / fixed point (2 bytes per element).
    Int16,
    /// 32-bit floating point (4 bytes per element).
    Fp32,
}

impl Precision {
    /// Bytes per element.
    pub fn bytes(self) -> usize {
        match self {
            Precision::Int8 => 1,
            Precision::Int16 => 2,
            Precision::Fp32 => 4,
        }
    }
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Precision::Int8 => "int8",
            Precision::Int16 => "int16",
            Precision::Fp32 => "fp32",
        };
        f.write_str(s)
    }
}

/// CNN accelerator configuration (Table II of the paper).
///
/// # Examples
///
/// ```
/// use drmap_cnn::accelerator::AcceleratorConfig;
/// use drmap_cnn::layer::DataKind;
///
/// let acc = AcceleratorConfig::table_ii();
/// assert_eq!(acc.buffer_bytes(DataKind::Ifms), 64 * 1024);
/// assert_eq!(acc.mac_rows * acc.mac_cols, 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AcceleratorConfig {
    /// Input-buffer capacity in bytes (iB).
    pub ifms_buffer: usize,
    /// Weight-buffer capacity in bytes (wB).
    pub wghs_buffer: usize,
    /// Output-buffer capacity in bytes (oB).
    pub ofms_buffer: usize,
    /// MAC array rows.
    pub mac_rows: usize,
    /// MAC array columns.
    pub mac_cols: usize,
    /// Element precision.
    pub precision: Precision,
    /// Batch size `B` of Fig. 3's outermost loop.
    pub batch: usize,
}

impl AcceleratorConfig {
    /// The paper's Table II configuration: 8×8 MACs, 64 KB per buffer,
    /// 8-bit precision, batch 1.
    pub fn table_ii() -> Self {
        AcceleratorConfig {
            ifms_buffer: 64 * 1024,
            wghs_buffer: 64 * 1024,
            ofms_buffer: 64 * 1024,
            mac_rows: 8,
            mac_cols: 8,
            precision: Precision::Int8,
            batch: 1,
        }
    }

    /// Validate the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if any buffer, MAC dimension, or the batch
    /// size is zero.
    pub fn validate(&self) -> Result<(), ModelError> {
        for (name, v) in [
            ("ifms_buffer", self.ifms_buffer),
            ("wghs_buffer", self.wghs_buffer),
            ("ofms_buffer", self.ofms_buffer),
            ("mac_rows", self.mac_rows),
            ("mac_cols", self.mac_cols),
            ("batch", self.batch),
        ] {
            if v == 0 {
                return Err(ModelError::new(format!("{name} must be non-zero")));
            }
        }
        Ok(())
    }

    /// Buffer capacity in bytes for the given data kind.
    pub fn buffer_bytes(&self, kind: DataKind) -> usize {
        match kind {
            DataKind::Ifms => self.ifms_buffer,
            DataKind::Wghs => self.wghs_buffer,
            DataKind::Ofms => self.ofms_buffer,
        }
    }

    /// Buffer capacity in elements for the given data kind.
    pub fn buffer_elems(&self, kind: DataKind) -> usize {
        self.buffer_bytes(kind) / self.precision.bytes()
    }

    /// Bytes occupied by `elems` elements at this precision.
    pub fn bytes_for(&self, elems: u64) -> u64 {
        elems * self.precision.bytes() as u64
    }
}

impl Default for AcceleratorConfig {
    fn default() -> Self {
        Self::table_ii()
    }
}

impl fmt::Display for AcceleratorConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{} MACs, iB {}KB, wB {}KB, oB {}KB, {} batch {}",
            self.mac_rows,
            self.mac_cols,
            self.ifms_buffer / 1024,
            self.wghs_buffer / 1024,
            self.ofms_buffer / 1024,
            self.precision,
            self.batch
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_matches_paper() {
        let acc = AcceleratorConfig::table_ii();
        assert_eq!(acc.ifms_buffer, 65536);
        assert_eq!(acc.wghs_buffer, 65536);
        assert_eq!(acc.ofms_buffer, 65536);
        assert_eq!(acc.mac_rows, 8);
        assert_eq!(acc.mac_cols, 8);
        assert_eq!(acc.batch, 1);
    }

    #[test]
    fn buffer_elems_respect_precision() {
        let mut acc = AcceleratorConfig::table_ii();
        assert_eq!(acc.buffer_elems(DataKind::Ifms), 65536);
        acc.precision = Precision::Int16;
        assert_eq!(acc.buffer_elems(DataKind::Ifms), 32768);
        acc.precision = Precision::Fp32;
        assert_eq!(acc.buffer_elems(DataKind::Ifms), 16384);
    }

    #[test]
    fn bytes_for_scales_elements() {
        let mut acc = AcceleratorConfig::table_ii();
        acc.precision = Precision::Int16;
        assert_eq!(acc.bytes_for(100), 200);
    }

    #[test]
    fn validate_rejects_zero_buffer() {
        let mut acc = AcceleratorConfig::table_ii();
        acc.ofms_buffer = 0;
        assert!(acc.validate().is_err());
    }

    #[test]
    fn precision_bytes() {
        assert_eq!(Precision::Int8.bytes(), 1);
        assert_eq!(Precision::Int16.bytes(), 2);
        assert_eq!(Precision::Fp32.bytes(), 4);
    }

    #[test]
    fn display_mentions_buffers() {
        let s = AcceleratorConfig::table_ii().to_string();
        assert!(s.contains("64KB"));
        assert!(s.contains("8x8"));
    }
}
