//! Error types for the CNN models.

use core::fmt;

/// An invalid layer, network, or accelerator description.
///
/// # Examples
///
/// ```
/// use drmap_cnn::layer::Layer;
///
/// let mut layer = Layer::conv("c", 4, 4, 8, 2, 3, 3, 1);
/// layer.stride = 0;
/// assert!(layer.validate().is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelError {
    message: String,
}

impl ModelError {
    /// Create a model error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        ModelError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid model: {}", self.message)
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_prefixes_invalid_model() {
        let e = ModelError::new("layer x: j must be non-zero");
        assert!(e.to_string().starts_with("invalid model"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelError>();
    }
}
