//! End-to-end service tests: the job server (pool and TCP paths) must
//! return results bit-identical to direct `DseEngine` calls, and
//! resubmissions must be served from the memo cache without changing a
//! single bit.

use std::sync::Arc;

use drmap_cnn::network::Network;
use drmap_core::dse::NetworkDseResult;
use drmap_dram::timing::DramArch;
use drmap_service::client::Client;
use drmap_service::engine::ServiceState;
use drmap_service::pool::DsePool;
use drmap_service::server::JobServer;
use drmap_service::spec::{EngineSpec, JobResult, JobSpec};

fn test_networks() -> Vec<Network> {
    vec![Network::tiny(), Network::alexnet(), Network::squeezenet()]
}

fn assert_matches_direct(served: &JobResult, direct: &NetworkDseResult) {
    assert_eq!(served.layers.len(), direct.layers.len());
    for (s, d) in served.layers.iter().zip(&direct.layers) {
        assert_eq!(s.name, d.layer_name);
        assert_eq!(s.mapping, d.best.mapping.name());
        assert_eq!(s.scheme, d.best.scheme.label());
        assert_eq!(s.tiling, d.best.tiling);
        assert_eq!(
            s.estimate.energy.to_bits(),
            d.best.estimate.energy.to_bits(),
            "energy differs for {}",
            s.name
        );
        assert_eq!(
            s.estimate.cycles.to_bits(),
            d.best.estimate.cycles.to_bits(),
            "cycles differ for {}",
            s.name
        );
        assert_eq!(s.evaluations, d.evaluations as u64);
    }
    assert_eq!(served.total.energy.to_bits(), direct.total.energy.to_bits());
    assert_eq!(served.total.cycles.to_bits(), direct.total.cycles.to_bits());
}

#[test]
fn pooled_batch_matches_direct_engine_calls() {
    let state = ServiceState::new().unwrap();
    let pool = DsePool::new(Arc::clone(&state), 4);
    let engine_spec = EngineSpec::default();
    let specs: Vec<JobSpec> = test_networks()
        .into_iter()
        .enumerate()
        .map(|(i, net)| JobSpec::network(i as u64 + 1, engine_spec, net))
        .collect();

    let results: Vec<JobResult> = pool
        .run_batch(&specs)
        .into_iter()
        .map(Result::unwrap)
        .collect();

    let engine = state.factory().engine(&engine_spec);
    for (spec, served) in specs.iter().zip(&results) {
        let net = match &spec.workload {
            drmap_service::spec::Workload::Network(n) => n.clone(),
            _ => unreachable!(),
        };
        let direct = engine.explore_network(&net).unwrap();
        assert_matches_direct(served, &direct);
    }
}

#[test]
fn resubmission_reports_cache_hits_with_identical_results() {
    let state = ServiceState::new().unwrap();
    let pool = DsePool::new(Arc::clone(&state), 4);
    let spec = JobSpec::network(1, EngineSpec::default(), Network::squeezenet());

    let cold = pool.submit(&spec).wait().unwrap();
    let warm = pool.submit(&spec).wait().unwrap();

    assert_eq!(warm.cache_hits(), warm.layers.len());
    let stats = state.cache().stats();
    assert!(stats.hits > 0, "expected cache hits, got {stats:?}");
    // SqueezeNet repeats expand shapes within one network, so even the
    // cold run deduplicates some layers.
    assert!(stats.entries < 2 * warm.layers.len());

    assert_eq!(warm.total.energy.to_bits(), cold.total.energy.to_bits());
    assert_eq!(warm.total.cycles.to_bits(), cold.total.cycles.to_bits());
    for (c, w) in cold.layers.iter().zip(&warm.layers) {
        assert_eq!(c.name, w.name);
        assert_eq!(c.mapping, w.mapping);
        assert_eq!(c.tiling, w.tiling);
        assert_eq!(c.estimate.energy.to_bits(), w.estimate.energy.to_bits());
        assert_eq!(c.estimate.cycles.to_bits(), w.estimate.cycles.to_bits());
    }
}

#[test]
fn tcp_round_trip_matches_direct_engine_calls() {
    let server = JobServer::bind("127.0.0.1:0", 4).unwrap();
    let addr = server.local_addr().unwrap();
    let state = Arc::clone(server.pool().state());
    let server_thread = std::thread::spawn(move || server.run().unwrap());

    let mut client = Client::connect(addr).unwrap();
    client.ping().unwrap();

    let engine_spec = EngineSpec::for_arch(DramArch::SalpMasa);
    let engine = state.factory().engine(&engine_spec);
    let mut first_pass = Vec::new();
    for (i, net) in test_networks().into_iter().enumerate() {
        let spec = JobSpec::network(i as u64 + 1, engine_spec, net.clone());
        let served = client.submit(&spec).unwrap();
        assert_eq!(served.id, i as u64 + 1);
        assert_eq!(served.workload, net.name());
        let direct = engine.explore_network(&net).unwrap();
        // The result crossed the JSON wire: floats must still be
        // bit-identical thanks to shortest-roundtrip rendering.
        assert_matches_direct(&served, &direct);
        first_pass.push(served);
    }

    // Resubmit the whole batch on a second connection: all cache hits.
    let mut second = Client::connect(addr).unwrap();
    for (i, net) in test_networks().into_iter().enumerate() {
        let spec = JobSpec::network(10 + i as u64, engine_spec, net);
        let served = second.submit(&spec).unwrap();
        assert_eq!(served.cache_hits(), served.layers.len());
        assert_eq!(
            served.total.energy.to_bits(),
            first_pass[i].total.energy.to_bits()
        );
    }

    let stats = second.stats().unwrap();
    assert!(stats.hits > 0);
    assert_eq!(stats.workers, 4);
    assert!(stats.hit_rate > 0.0);
    assert!(stats.entries > 0);
    assert!(stats.bytes > 0, "resident entries are byte-accounted");
    assert_eq!(stats.evictions, 0, "an unbounded cache never evicts");

    // Unknown models produce an error response, not a dead connection.
    let bad =
        drmap_service::json::Json::parse(r#"{"id": 99, "network": {"model": "nope"}}"#).unwrap();
    let response = second.request(&bad).unwrap();
    assert_eq!(
        response
            .get("ok")
            .and_then(drmap_service::json::Json::as_bool),
        Some(false)
    );

    second.shutdown().unwrap();
    server_thread.join().unwrap();
}
