//! Persistence integration tests: a service restarted over the same
//! store file must serve previously computed fingerprints from disk —
//! bit-identically and without recomputation — through both the
//! in-process pool API and a real TCP server restart.
//!
//! The TCP test deliberately leaves its log at
//! `target/store-smoke/store.wal` (workspace-relative), where CI runs a
//! `drmap-store verify` smoke pass over it after the test suite.

use std::path::PathBuf;
use std::sync::Arc;

use drmap_cnn::layer::Layer;
use drmap_cnn::network::Network;
use drmap_service::cache::CacheConfig;
use drmap_service::client::Client;
use drmap_service::engine::ServiceState;
use drmap_service::pool::DsePool;
use drmap_service::server::JobServer;
use drmap_service::spec::{CacheMode, EngineSpec, JobSpec};
use drmap_store::store::Store;
use drmap_store::verify::verify;

/// The workspace `target/` directory, resolved from this crate's
/// manifest so it works from any test working directory.
fn smoke_path(file: &str) -> PathBuf {
    let dir = PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../target/store-smoke"
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(file);
    let _ = std::fs::remove_file(&path);
    path
}

fn jobs() -> Vec<JobSpec> {
    vec![
        JobSpec::network(1, EngineSpec::default(), Network::tiny()),
        JobSpec::layer(
            2,
            EngineSpec::default(),
            Layer::conv("EXTRA", 8, 8, 24, 8, 3, 3, 1),
        ),
    ]
}

#[test]
fn a_restarted_pool_serves_previous_results_from_disk() {
    let path = smoke_path("restart.wal");
    let specs = jobs();

    // First life: everything computes and writes through.
    let store = Arc::new(Store::open(&path).unwrap());
    let state = ServiceState::with_cache_and_store(CacheConfig::unbounded(), Some(store)).unwrap();
    let pool = DsePool::new(Arc::clone(&state), 2);
    let first: Vec<_> = pool
        .run_batch(&specs)
        .into_iter()
        .map(|r| r.unwrap())
        .collect();
    assert_eq!(first.iter().map(|r| r.store_hits()).sum::<usize>(), 0);
    let persisted = state.cache().store().unwrap().len();
    assert!(persisted > 0, "computations were persisted");
    assert_eq!(
        state.cache().stats().store_misses,
        persisted as u64,
        "every distinct fingerprint consulted the store exactly once"
    );
    drop(pool);
    drop(state);

    // Restart: a fresh process image — new store handle, empty cache.
    let store = Arc::new(Store::open(&path).unwrap());
    assert_eq!(store.len(), persisted, "the log survived the restart");
    let state = ServiceState::with_cache_and_store(CacheConfig::unbounded(), Some(store)).unwrap();
    let pool = DsePool::new(Arc::clone(&state), 2);
    let second: Vec<_> = pool
        .run_batch(&specs)
        .into_iter()
        .map(|r| r.unwrap())
        .collect();

    let store_hits: usize = second.iter().map(|r| r.store_hits()).sum();
    assert!(store_hits > 0, "restart must serve from disk");
    let stats = state.cache().stats();
    assert_eq!(stats.store_hits, persisted as u64);
    assert_eq!(stats.store_misses, 0, "nothing was recomputed");
    assert!(
        stats.compute_ns_total > 0,
        "compute durations were revived from the store"
    );
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(a.total.energy.to_bits(), b.total.energy.to_bits());
        assert_eq!(a.total.cycles.to_bits(), b.total.cycles.to_bits());
        for (x, y) in a.layers.iter().zip(&b.layers) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.tiling, y.tiling);
            assert_eq!(x.mapping, y.mapping);
            assert_eq!(x.estimate.energy.to_bits(), y.estimate.energy.to_bits());
            assert_eq!(x.estimate.cycles.to_bits(), y.estimate.cycles.to_bits());
        }
    }
    drop(pool);
    drop(state);

    // Third life, warm-started: the hot set is resident before the
    // first request, so every layer is a plain memory hit.
    let store = Arc::new(Store::open(&path).unwrap());
    let state = ServiceState::with_cache_and_store(CacheConfig::unbounded(), Some(store)).unwrap();
    assert_eq!(state.warm_start(None), persisted);
    let pool = DsePool::new(Arc::clone(&state), 2);
    let third: Vec<_> = pool
        .run_batch(&specs)
        .into_iter()
        .map(|r| r.unwrap())
        .collect();
    assert_eq!(
        third.iter().map(|r| r.cache_hits()).sum::<usize>(),
        specs
            .iter()
            .map(|s| s.workload.layers().len())
            .sum::<usize>(),
        "a warm-started cache answers everything from memory"
    );
    assert_eq!(state.cache().stats().store_hits, 0);
}

#[test]
fn a_restarted_tcp_server_serves_store_hits_over_the_wire() {
    let path = smoke_path("store.wal");
    let specs = jobs();

    let serve_once = |path: &PathBuf, warm: bool| -> (Vec<drmap_service::spec::JobResult>, u64) {
        let store = Arc::new(Store::open(path).unwrap());
        let state =
            ServiceState::with_cache_and_store(CacheConfig::unbounded(), Some(store)).unwrap();
        if warm {
            state.warm_start(None);
        }
        let pool = Arc::new(DsePool::new(state, 2));
        let server = JobServer::with_pool("127.0.0.1:0", pool).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.run().unwrap());
        let mut client = Client::connect(addr).unwrap();
        let results: Vec<_> = client
            .submit_batch(&specs)
            .unwrap()
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        let stats = client.stats().unwrap();
        client.shutdown().unwrap();
        handle.join().unwrap();
        (results, stats.store_hits)
    };

    let (first, first_store_hits) = serve_once(&path, false);
    assert_eq!(first_store_hits, 0, "a fresh log has nothing to serve");

    // Restart the server process state over the same log.
    let (second, second_store_hits) = serve_once(&path, false);
    assert!(
        second_store_hits > 0,
        "the restarted server must hit the store"
    );
    let wire_store_hits: usize = second.iter().map(|r| r.store_hits()).sum();
    assert!(
        wire_store_hits > 0,
        "store hits are visible per layer on the wire"
    );
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(a.total.energy.to_bits(), b.total.energy.to_bits());
        assert_eq!(a.total.cycles.to_bits(), b.total.cycles.to_bits());
    }

    // The log this test leaves behind must verify clean — CI reruns
    // this exact check via the drmap-store CLI.
    let report = verify(&path, true).unwrap();
    assert!(report.is_clean(), "{report:?}");
    assert!(report.records > 0);
    assert_eq!(report.undecodable, 0);
}

#[test]
fn auto_compaction_triggers_on_the_dead_bytes_ratio() {
    let path = smoke_path("autocompact.wal");
    let store = Arc::new(Store::open(&path).unwrap());
    let state = ServiceState::with_cache_and_store(CacheConfig::unbounded(), Some(store)).unwrap();

    // Disarmed and empty: the check must be a no-op.
    assert!(!state.maybe_auto_compact());
    assert_eq!(state.auto_compact_ratio(), None);

    // Populate the log, then refresh the same fingerprints so every
    // original record is superseded in place — pure dead bytes.
    let mut spec = JobSpec::network(1, EngineSpec::default(), Network::tiny());
    state.run_job(&spec).unwrap();
    spec.options.cache = CacheMode::Refresh;
    state.run_job(&spec).unwrap();
    let stats = state.cache().store().unwrap().stats();
    assert!(stats.dead_bytes > 0, "refresh must strand the old records");

    // Armed above the current ratio: still a no-op.
    assert_eq!(state.set_auto_compact_ratio(Some(0.99)), None);
    assert!(!state.maybe_auto_compact());
    assert_eq!(
        state.metrics().snapshot().counter("wal_autocompact_total"),
        Some(0)
    );

    // Armed below it: the background check compacts and counts.
    assert_eq!(state.set_auto_compact_ratio(Some(0.01)), Some(0.99));
    assert!(state.maybe_auto_compact());
    let stats = state.cache().store().unwrap().stats();
    assert_eq!(stats.dead_bytes, 0, "compaction dropped the dead records");
    assert_eq!(stats.compactions, 1);
    assert_eq!(
        state.metrics().snapshot().counter("wal_autocompact_total"),
        Some(1)
    );
    // And it does not retrigger on a clean log.
    assert!(!state.maybe_auto_compact());
}
