//! Integration tests for the bounded single-flight cache and the
//! pipelined TCP protocol: concurrent duplicate submissions must
//! compute each distinct shape exactly once, bounded caches must never
//! exceed their limits while staying bit-identical, pipelined clients
//! must get every response matched by id with no deadlock, and a
//! panicking computation must produce errors — never hangs.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, OnceLock};
use std::time::Duration;

use drmap_cnn::layer::Layer;
use drmap_cnn::network::Network;
use drmap_core::dse::{DseCandidate, LayerDseResult};
use drmap_core::edp::EdpEstimate;
use drmap_core::mapping::MappingPolicy;
use drmap_core::schedule::ReuseScheme;
use drmap_core::tiling::Tiling;
use drmap_service::cache::{CacheConfig, CacheOutcome, DseCache};
use drmap_service::client::Client;
use drmap_service::engine::ServiceState;
use drmap_service::json::Json;
use drmap_service::pool::DsePool;
use drmap_service::server::JobServer;
use drmap_service::spec::{EngineSpec, JobSpec};
use proptest::{proptest, ProptestConfig};

fn dummy_result(name: &str) -> LayerDseResult {
    LayerDseResult {
        layer_name: name.to_owned(),
        best: DseCandidate {
            mapping: MappingPolicy::drmap(),
            tiling: Tiling::new(1, 1, 1, 1),
            scheme: ReuseScheme::OfmsReuse,
            estimate: EdpEstimate {
                cycles: 1.0,
                energy: 2.0,
                t_ck_ns: 1.25,
            },
        },
        evaluations: 1,
        pareto: vec![],
    }
}

/// One profiled service state shared by the whole test binary:
/// profiling the substrate is the expensive part and every test needs
/// only its own pool/cache on top.
fn shared_state() -> &'static Arc<ServiceState> {
    static STATE: OnceLock<Arc<ServiceState>> = OnceLock::new();
    STATE.get_or_init(|| ServiceState::new().unwrap())
}

// ---------------------------------------------------------------------
// Single-flight
// ---------------------------------------------------------------------

#[test]
fn concurrent_same_key_lookups_compute_exactly_once() {
    const THREADS: usize = 8;
    let cache = Arc::new(DseCache::new());
    let computes = Arc::new(AtomicUsize::new(0));
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let cache = Arc::clone(&cache);
            let computes = Arc::clone(&computes);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                cache
                    .get_or_compute("shared-key", || {
                        computes.fetch_add(1, Ordering::SeqCst);
                        // Stay in flight long enough for every other
                        // thread to arrive and coalesce.
                        std::thread::sleep(Duration::from_millis(100));
                        Ok(dummy_result("x"))
                    })
                    .unwrap()
            })
        })
        .collect();
    let outcomes: Vec<CacheOutcome> = handles.into_iter().map(|h| h.join().unwrap().1).collect();

    assert_eq!(computes.load(Ordering::SeqCst), 1, "exactly one compute");
    let misses = outcomes
        .iter()
        .filter(|o| **o == CacheOutcome::Miss)
        .count();
    assert_eq!(misses, 1, "exactly one leader: {outcomes:?}");
    let stats = cache.stats();
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.hits + stats.coalesced, (THREADS - 1) as u64);
    assert_eq!(stats.entries, 1);
}

#[test]
fn a_panicking_leader_wakes_every_waiter_with_an_error() {
    const WAITERS: usize = 4;
    let cache = Arc::new(DseCache::new());
    let barrier = Arc::new(Barrier::new(WAITERS + 1));
    let leader = {
        let cache = Arc::clone(&cache);
        let barrier = Arc::clone(&barrier);
        std::thread::spawn(move || {
            cache.get_or_compute("k", || {
                barrier.wait(); // every waiter is queued behind us
                std::thread::sleep(Duration::from_millis(50));
                panic!("exploration bug");
            })
        })
    };
    let waiters: Vec<_> = (0..WAITERS)
        .map(|_| {
            let cache = Arc::clone(&cache);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                cache.get_or_compute("k", || Ok(dummy_result("x")))
            })
        })
        .collect();

    let leader_result = leader.join().expect("leader thread must not die");
    let err = leader_result.unwrap_err();
    assert!(err.to_string().contains("panicked"), "{err}");
    for waiter in waiters {
        // Each waiter either coalesced onto the panicking leader (and
        // must observe its error, not hang) or arrived after the flight
        // was torn down and computed fresh.
        match waiter.join().expect("waiter thread must not die") {
            Ok((_, outcome)) => assert_ne!(outcome, CacheOutcome::Hit, "errors are not cached"),
            Err(e) => assert!(e.to_string().contains("panicked"), "{e}"),
        }
    }
}

// ---------------------------------------------------------------------
// Duplicate-shape batches through the pool (the acceptance scenario)
// ---------------------------------------------------------------------

#[test]
fn concurrent_duplicate_shape_batch_computes_each_key_once() {
    const JOBS: u64 = 8;
    // A fresh state so the cache counters start at zero; the profiled
    // table memoization inside the factory is per-state and cheap after
    // the shared state has already profiled once.
    let state = ServiceState::new().unwrap();
    let pool = DsePool::new(Arc::clone(&state), 4);
    // Eight jobs, all carrying the *same layer shape* under different
    // names: every worker races on one cache key.
    let specs: Vec<JobSpec> = (0..JOBS)
        .map(|i| {
            let layer = Layer::conv(&format!("L{i}"), 8, 8, 16, 8, 3, 3, 1);
            JobSpec::layer(i + 1, EngineSpec::default(), layer)
        })
        .collect();
    let results: Vec<_> = pool
        .run_batch(&specs)
        .into_iter()
        .collect::<Result<Vec<_>, _>>()
        .unwrap();

    let stats = state.cache().stats();
    assert_eq!(stats.misses, 1, "one distinct key -> one computation");
    assert_eq!(stats.hits + stats.coalesced, JOBS - 1);
    assert_eq!(stats.entries, 1);

    // Every job reports its own layer name and the bit-identical result.
    let reference = &results[0].layers[0];
    for (i, result) in results.iter().enumerate() {
        assert_eq!(result.id, i as u64 + 1);
        let layer = &result.layers[0];
        assert_eq!(layer.name, format!("L{i}"));
        assert_eq!(
            layer.estimate.energy.to_bits(),
            reference.estimate.energy.to_bits()
        );
        assert_eq!(
            layer.estimate.cycles.to_bits(),
            reference.estimate.cycles.to_bits()
        );
        assert_eq!(layer.tiling, reference.tiling);
    }
    // The per-layer flags agree with the cache counters.
    let served: usize = results
        .iter()
        .map(|r| r.cache_hits() + r.coalesced_hits())
        .sum();
    assert_eq!(served, (JOBS - 1) as usize);
}

// ---------------------------------------------------------------------
// Bounded cache end-to-end
// ---------------------------------------------------------------------

#[test]
fn bounded_cache_never_exceeds_limits_and_stays_bit_identical() {
    let config = CacheConfig::unbounded().with_max_entries(2);
    let bounded = ServiceState::with_cache_config(config).unwrap();
    let pool = DsePool::new(Arc::clone(&bounded), 2);
    let spec = JobSpec::network(1, EngineSpec::default(), Network::alexnet());
    let served = pool.submit(&spec).wait().unwrap();

    let stats = bounded.cache().stats();
    assert!(stats.entries <= 2, "entry bound violated: {stats:?}");
    assert!(
        stats.evictions > 0,
        "alexnet has more distinct shapes than the bound: {stats:?}"
    );

    // Eviction affects only *retention*, never results: compare against
    // the unbounded shared state.
    let unbounded = shared_state();
    let reference = unbounded.run_job(&spec).unwrap();
    assert_eq!(
        served.total.energy.to_bits(),
        reference.total.energy.to_bits()
    );
    assert_eq!(
        served.total.cycles.to_bits(),
        reference.total.cycles.to_bits()
    );
    for (s, r) in served.layers.iter().zip(&reference.layers) {
        assert_eq!(s.estimate.energy.to_bits(), r.estimate.energy.to_bits());
        assert_eq!(s.tiling, r.tiling);
    }
}

// ---------------------------------------------------------------------
// Pipelined TCP protocol
// ---------------------------------------------------------------------

#[test]
fn pipelined_client_gets_all_eight_inflight_responses_by_id() {
    let server = JobServer::bind("127.0.0.1:0", 4).unwrap();
    let addr = server.local_addr().unwrap();
    let server_thread = std::thread::spawn(move || server.run().unwrap());

    let mut client = Client::connect(addr).unwrap();
    // Eight jobs in flight at once: two heavyweight networks first so
    // lighter jobs submitted *after* them can overtake on the wire.
    let mut specs = vec![
        JobSpec::network(1, EngineSpec::default(), Network::alexnet()),
        JobSpec::network(2, EngineSpec::default(), Network::squeezenet()),
    ];
    for id in 3..=8 {
        specs.push(JobSpec::network(id, EngineSpec::default(), Network::tiny()));
    }
    for spec in &specs {
        client.send(&spec.to_json()).unwrap();
    }
    // Collect raw responses in completion order.
    let mut arrival = Vec::new();
    for _ in 0..specs.len() {
        let response = client.recv().unwrap();
        assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
        let id = response.get("id").and_then(Json::as_u64).unwrap();
        let result = response.get("result").unwrap();
        assert_eq!(result.get("id").and_then(Json::as_u64), Some(id));
        arrival.push(id);
    }
    let mut sorted = arrival.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, (1..=8).collect::<Vec<u64>>(), "every id answered");

    // The high-level pipelined API restores submission order and the
    // results are bit-identical to a direct engine run.
    let batch: Vec<_> = specs
        .iter()
        .map(|s| {
            let mut s = s.clone();
            s.id += 100;
            s
        })
        .collect();
    let results = client.submit_batch(&batch).unwrap();
    assert_eq!(results.len(), batch.len());
    let engine = shared_state().factory().engine(&EngineSpec::default());
    let direct = engine.explore_network(&Network::alexnet()).unwrap();
    let first = results[0].as_ref().unwrap();
    assert_eq!(first.id, 101);
    assert_eq!(first.total.energy.to_bits(), direct.total.energy.to_bits());
    for (spec, result) in batch.iter().zip(&results) {
        assert_eq!(result.as_ref().unwrap().id, spec.id);
    }

    // Per-job failures occupy their slot without sinking the batch.
    let mut mixed = vec![
        JobSpec::network(201, EngineSpec::default(), Network::tiny()),
        JobSpec::layer(
            202,
            EngineSpec::default(),
            Layer::conv("HUGE", 1, 1, 1, 1, 4096, 4096, 1),
        ),
        JobSpec::network(203, EngineSpec::default(), Network::tiny()),
    ];
    let outcomes = client.submit_batch(&mixed).unwrap();
    assert!(outcomes[0].is_ok());
    assert!(outcomes[1].is_err(), "infeasible layer fails its own slot");
    assert!(outcomes[2].is_ok());

    // Duplicate ids are rejected client-side before hitting the wire.
    mixed[2].id = 201;
    assert!(client.submit_batch(&mixed).is_err());

    client.shutdown().unwrap();
    server_thread.join().unwrap();
}

#[test]
fn binary_frames_round_trip_jobs_and_interleave_with_text() {
    let server = JobServer::bind("127.0.0.1:0", 2).unwrap();
    let addr = server.local_addr().unwrap();
    let server_thread = std::thread::spawn(move || server.run().unwrap());

    let mut client = Client::connect(addr).unwrap();
    client.ping().unwrap();

    // A custom network serializes as a full inline layer list — the
    // case binary framing exists for.
    let custom = Network::new(
        "inline-net",
        vec![
            Layer::conv("C1", 16, 16, 16, 3, 3, 3, 1),
            Layer::conv("C2", 8, 8, 32, 16, 3, 3, 2),
        ],
    )
    .unwrap();
    let framed_spec = JobSpec::network(7, EngineSpec::default(), custom);

    client.set_binary(true);
    let framed = client.submit(&framed_spec).unwrap();
    assert_eq!(framed.id, 7);
    assert_eq!(framed.layers.len(), 2);

    // Text and binary requests interleave freely on one connection.
    client.set_binary(false);
    let text = client
        .submit(&JobSpec::network(8, EngineSpec::default(), Network::tiny()))
        .unwrap();
    assert_eq!(text.id, 8);

    client.set_binary(true);
    let again = client.submit(&framed_spec).unwrap();
    assert_eq!(again.cache_hits(), again.layers.len(), "warm resubmission");
    assert_eq!(
        again.total.energy.to_bits(),
        framed.total.energy.to_bits(),
        "binary frames preserve float bits"
    );

    client.shutdown().unwrap();
    server_thread.join().unwrap();
}

// ---------------------------------------------------------------------
// Property: caching is invisible in the results
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For arbitrary feasible conv layers, exploring through the cache
    /// (miss, then hit) returns results bit-identical to a direct
    /// engine call — the cache can change *when* work happens, never
    /// *what* comes out.
    #[test]
    fn cache_on_and_off_results_are_bit_identical(
        h in 4_usize..=12,
        w in 4_usize..=12,
        j in 1_usize..=32,
        i in 1_usize..=16,
        p in 1_usize..=3,
        q in 1_usize..=3,
        stride in 1_usize..=2,
    ) {
        let state = shared_state();
        let spec = EngineSpec::default();
        let engine = state.factory().engine(&spec);
        let tag = state.factory().engine_tag(&spec);
        let layer = Layer::conv("PROP", h, w, j, i, p, q, stride);

        let direct = engine.explore_layer(&layer);
        let cached_cold = state.explore_layer_cached(&engine, &tag, &layer);
        let cached_warm = state.explore_layer_cached(&engine, &tag, &layer);
        match direct {
            Ok(direct) => {
                let (cold, _) = cached_cold.unwrap();
                let (warm, warm_outcome) = cached_warm.unwrap();
                assert_eq!(warm_outcome, CacheOutcome::Hit);
                for served in [&cold, &warm] {
                    assert_eq!(served.best.tiling, direct.best.tiling);
                    assert_eq!(served.best.scheme, direct.best.scheme);
                    assert_eq!(
                        served.best.estimate.energy.to_bits(),
                        direct.best.estimate.energy.to_bits()
                    );
                    assert_eq!(
                        served.best.estimate.cycles.to_bits(),
                        direct.best.estimate.cycles.to_bits()
                    );
                    assert_eq!(served.evaluations, direct.evaluations);
                }
            }
            Err(_) => {
                // Infeasible layers fail identically through the cache.
                assert!(cached_cold.is_err());
                assert!(cached_warm.is_err());
            }
        }
    }
}

#[test]
fn a_batch_far_beyond_the_inflight_cap_completes_without_deadlock() {
    // 300 jobs is well over the server's 128-in-flight-per-connection
    // cap and the client's 64-job send window: the windowed submit
    // loop must interleave sends and receives instead of wedging both
    // sides on full socket buffers. Warm the cache first so the sheer
    // job count, not exploration time, dominates.
    let server = JobServer::bind("127.0.0.1:0", 2).unwrap();
    let addr = server.local_addr().unwrap();
    let server_thread = std::thread::spawn(move || server.run().unwrap());

    let mut client = Client::connect(addr).unwrap();
    client
        .submit(&JobSpec::network(0, EngineSpec::default(), Network::tiny()))
        .unwrap();

    let batch: Vec<JobSpec> = (1..=300)
        .map(|id| JobSpec::network(id, EngineSpec::default(), Network::tiny()))
        .collect();
    let results = client.submit_batch(&batch).unwrap();
    assert_eq!(results.len(), 300);
    for (spec, result) in batch.iter().zip(&results) {
        let result = result.as_ref().unwrap();
        assert_eq!(result.id, spec.id);
        assert_eq!(result.cache_hits(), result.layers.len());
    }

    client.shutdown().unwrap();
    server_thread.join().unwrap();
}
