//! In-flight limit tests: the per-connection cap and the global
//! cross-connection cap must bound concurrency without ever deadlocking
//! or dropping responses.

use std::sync::Arc;

use drmap_cnn::network::Network;
use drmap_service::client::Client;
use drmap_service::engine::ServiceState;
use drmap_service::pool::DsePool;
use drmap_service::server::{JobServer, ServerConfig};
use drmap_service::spec::{EngineSpec, JobSpec};

fn batch(ids: std::ops::Range<u64>) -> Vec<JobSpec> {
    ids.map(|id| JobSpec::network(id, EngineSpec::default(), Network::tiny()))
        .collect()
}

/// A tiny global cap shared by several pipelining connections: every
/// job still completes, in spite of constant cross-connection
/// contention for the two global slots.
#[test]
fn a_small_global_cap_never_deadlocks_concurrent_connections() {
    let state = ServiceState::new().unwrap();
    let pool = Arc::new(DsePool::new(state, 2));
    let server = JobServer::with_config(
        "127.0.0.1:0",
        pool,
        ServerConfig {
            max_inflight: 2,
            max_inflight_global: Some(2),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    assert_eq!(server.config().max_inflight, 2);
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.run().unwrap());

    let clients: Vec<_> = (0..3)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let specs = batch(c * 100..c * 100 + 6);
                let results = client.submit_batch(&specs).unwrap();
                for (spec, result) in specs.iter().zip(results) {
                    let result = result.unwrap();
                    assert_eq!(result.id, spec.id);
                    assert_eq!(result.layers.len(), 3);
                }
            })
        })
        .collect();
    for c in clients {
        c.join().unwrap();
    }

    let mut closer = Client::connect(addr).unwrap();
    closer.shutdown().unwrap();
    handle.join().unwrap();
}

/// A per-connection cap of one forces strictly serial service of a
/// pipelined burst — slow, but complete and correctly correlated.
#[test]
fn a_per_connection_cap_of_one_still_serves_a_pipelined_burst() {
    let state = ServiceState::new().unwrap();
    let pool = Arc::new(DsePool::new(state, 2));
    let server = JobServer::with_config(
        "127.0.0.1:0",
        pool,
        ServerConfig {
            max_inflight: 1,
            max_inflight_global: None,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.run().unwrap());

    let mut client = Client::connect(addr).unwrap();
    let specs = batch(1..9);
    let results = client.submit_batch(&specs).unwrap();
    assert_eq!(results.len(), 8);
    for (spec, result) in specs.iter().zip(results) {
        assert_eq!(result.unwrap().id, spec.id);
    }
    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// Zero caps are configuration errors, not latent deadlocks.
#[test]
fn zero_caps_are_rejected_at_construction() {
    let state = ServiceState::new().unwrap();
    let pool = Arc::new(DsePool::new(state, 1));
    assert!(JobServer::with_config(
        "127.0.0.1:0",
        Arc::clone(&pool),
        ServerConfig {
            max_inflight: 0,
            max_inflight_global: None,
            ..ServerConfig::default()
        },
    )
    .is_err());
    assert!(JobServer::with_config(
        "127.0.0.1:0",
        pool,
        ServerConfig {
            max_inflight: 4,
            max_inflight_global: Some(0),
            ..ServerConfig::default()
        },
    )
    .is_err());
}
