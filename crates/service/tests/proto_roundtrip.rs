//! Protocol-level integration tests: every typed `Request`/`Response`
//! variant must survive a round trip through **both** wire encodings
//! (NDJSON lines and length-prefixed binary frames), and pre-versioning
//! clients — bare job lines, `{"cmd": …}` verbs, old binary frames —
//! must keep receiving byte-compatible answers through the shim.

use std::io::BufReader;

use drmap_service::cache::{CacheStats, EvictionPolicy};
use drmap_service::engine::ServiceState;
use drmap_service::json::Json;
use drmap_service::pool::{DsePool, ShardPolicy};
use drmap_service::proto::{
    capabilities, Dialect, Request, Response, ShardPolicyUpdate, StatsReport, PROTOCOL_VERSION,
};
use drmap_service::server::handle_request;
use drmap_service::spec::{CacheMode, EngineSpec, JobOptions, JobResult, JobSpec, LayerOutcome};
use drmap_service::wire::{self, Encoding};
use drmap_store::store::{CompactReport, StoreStats};
use proptest::{proptest, ProptestConfig};

use drmap_cnn::layer::Layer;
use drmap_core::edp::EdpEstimate;
use drmap_core::pareto::DesignPoint;
use drmap_core::tiling::Tiling;

/// Push a request through one encoding and decode it back.
fn round_trip_request(request: &Request, encoding: Encoding) -> (Request, Dialect, Encoding) {
    let mut bytes = Vec::new();
    wire::write_request(&mut bytes, request, encoding).unwrap();
    let (decoded, got_encoding) = wire::read_request(&mut BufReader::new(&bytes[..]))
        .unwrap()
        .expect("one message was written");
    let (request, dialect) = decoded.expect("a well-formed request decodes");
    (request, dialect, got_encoding)
}

/// Push a response through one encoding and decode it back.
fn round_trip_response(response: &Response, encoding: Encoding) -> (Response, Encoding) {
    let mut bytes = Vec::new();
    wire::write_response(&mut bytes, response, Dialect::V1, encoding).unwrap();
    wire::read_response(&mut BufReader::new(&bytes[..]))
        .unwrap()
        .expect("one message was written")
}

/// Deterministically build one of every `Request` variant from fuzz
/// inputs.
fn request_variant(kind: usize, a: u64, b: u64, flag: bool) -> Request {
    let id = flag.then_some(a);
    match kind % 10 {
        0 => Request::Hello {
            version: a,
            client: flag.then(|| format!("client-{b}")),
        },
        1 => Request::Ping { id },
        2 => Request::Stats { id },
        3 => Request::Shutdown { id },
        4 => Request::SetPolicy {
            id,
            policy: if b.is_multiple_of(2) {
                EvictionPolicy::Lru
            } else {
                EvictionPolicy::Cost
            },
        },
        5 => Request::SetShardPolicy {
            id,
            update: ShardPolicyUpdate {
                min_tilings: (b.is_multiple_of(3)).then_some(b as usize % 1000 + 1),
                chunks_per_worker: (b % 3 == 1).then_some(b as usize % 16 + 1),
                chunk_tilings: (b.is_multiple_of(2)).then_some(b as usize % 64),
            },
        },
        6 => Request::CacheClear { id },
        7 => Request::CacheWarm {
            id,
            limit: (b.is_multiple_of(2)).then_some(b as usize % 10_000),
        },
        8 => Request::StoreCompact {
            id,
            auto_ratio: (b.is_multiple_of(3)).then_some((b % 100) as f64 / 100.0),
        },
        _ => {
            let mut spec = JobSpec::layer(
                a,
                EngineSpec::default(),
                Layer::conv("P", 8, 8, 16, 8, 3, 3, 1),
            );
            spec.options = JobOptions {
                cache: match b % 3 {
                    0 => CacheMode::Default,
                    1 => CacheMode::Bypass,
                    _ => CacheMode::Refresh,
                },
                keep_points: flag,
                shard_chunk: (b.is_multiple_of(2)).then_some(b as usize % 128 + 1),
                deadline_ms: (b.is_multiple_of(5)).then_some(b % 60_000 + 1),
                tiling_range: (b.is_multiple_of(7)).then_some((b % 64, b % 64 + b % 100 + 1)),
            };
            Request::Submit(spec)
        }
    }
}

/// Deterministically build one of every `Response` variant from fuzz
/// inputs, exercising float bit-exactness through the job result.
fn response_variant(kind: usize, a: u64, b: u64, x: f64, flag: bool) -> Response {
    let id = flag.then_some(a);
    let shard = ShardPolicy {
        min_tilings: b as usize % 512 + 1,
        chunks_per_worker: b as usize % 7 + 1,
        chunk_tilings: (b.is_multiple_of(2)).then_some(b as usize % 32 + 1),
    };
    match kind % 10 {
        0 => Response::Hello {
            version: a,
            server: format!("drmap-service/{b}"),
            capabilities: capabilities(flag),
        },
        1 => Response::Pong { id },
        2 => Response::Stats {
            id,
            report: StatsReport {
                cache: CacheStats {
                    hits: a,
                    misses: b,
                    coalesced: a % 100,
                    bypasses: b % 13,
                    refreshes: a % 7,
                    evictions: b % 29,
                    cost_evictions: b % 5,
                    entries: a as usize % 1000,
                    bytes: b as usize % 1_000_000,
                    store_hits: a % 17,
                    store_misses: b % 19,
                    store_errors: a % 3,
                    compute_ns_min: a % 1_000_000,
                    compute_ns_max: b % 1_000_000_000,
                    compute_ns_total: a.min(1 << 50),
                },
                policy: if a.is_multiple_of(2) {
                    EvictionPolicy::Lru
                } else {
                    EvictionPolicy::Cost
                },
                max_entries: flag.then_some(a as usize % 10_000),
                max_bytes: (b.is_multiple_of(2)).then_some(b as usize % (1 << 30)),
                shard,
                workers: b as usize % 64 + 1,
                store: flag.then_some(StoreStats {
                    live_entries: a as usize % 100,
                    records: b % 1000,
                    dead_records: b % 37,
                    file_bytes: a % (1 << 40),
                    live_value_bytes: b % (1 << 30),
                    dead_bytes: a % (1 << 20),
                    appends: b % 500,
                    gets: a % 800,
                    hits: b % 300,
                    compactions: a % 4,
                    recovered_bytes: b % 128,
                }),
                backends: (a.is_multiple_of(3)).then_some(a as usize % 16 + 1),
            },
        },
        3 => Response::Shutdown { id },
        4 => Response::PolicySet {
            id,
            policy: EvictionPolicy::Cost,
            previous: EvictionPolicy::Lru,
        },
        5 => Response::ShardPolicySet {
            id,
            policy: shard,
            previous: ShardPolicy::default(),
        },
        6 => Response::CacheCleared { id },
        7 => Response::CacheWarmed {
            id,
            loaded: b as usize % 5000,
        },
        8 => Response::StoreCompacted {
            id,
            report: CompactReport {
                live_records: a % 1000,
                dropped_records: b % 1000,
                bytes_before: a % (1 << 40),
                bytes_after: b % (1 << 40),
            },
        },
        _ => Response::Job {
            result: JobResult {
                id: a,
                workload: format!("net-{b}"),
                total: EdpEstimate {
                    cycles: x,
                    energy: x * 1.3e-9,
                    t_ck_ns: 1.25,
                },
                layers: vec![LayerOutcome {
                    name: "L".into(),
                    mapping: "Mapping-3 (DRMap)".into(),
                    scheme: "adaptive".into(),
                    tiling: Tiling::new(
                        a as usize % 32 + 1,
                        b as usize % 32 + 1,
                        a as usize % 16 + 1,
                        b as usize % 16 + 1,
                    ),
                    estimate: EdpEstimate {
                        cycles: x + 0.1,
                        energy: x * 7.7e-12,
                        t_ck_ns: 1.25,
                    },
                    evaluations: b,
                    cached: flag,
                    coalesced: !flag && b.is_multiple_of(2),
                    store_hit: !flag && b % 2 == 1,
                    pareto: if flag {
                        vec![DesignPoint::new(
                            format!("point-{a}"),
                            EdpEstimate {
                                cycles: x * 0.5,
                                energy: x * 1.1e-10,
                                t_ck_ns: 1.25,
                            },
                        )]
                    } else {
                        vec![]
                    },
                }],
            },
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every request variant survives NDJSON and binary framing with
    /// nothing lost: same variant, same fields, typed dialect, and the
    /// encoding auto-detected back.
    #[test]
    fn every_request_variant_round_trips_through_both_encodings(
        kind in 0_usize..10,
        a in 0_u64..1_000_000,
        b in 0_u64..1_000_000,
        flag in proptest::bool::ANY,
    ) {
        let request = request_variant(kind, a, b, flag);
        for encoding in [Encoding::Text, Encoding::Binary] {
            let (decoded, dialect, got) = round_trip_request(&request, encoding);
            assert_eq!(decoded, request);
            assert_eq!(dialect, Dialect::V1);
            assert_eq!(got, encoding);
        }
    }

    /// Every response variant survives both encodings — including the
    /// job result's floats, bit for bit.
    #[test]
    fn every_response_variant_round_trips_through_both_encodings(
        kind in 0_usize..10,
        a in 0_u64..1_000_000,
        b in 0_u64..1_000_000,
        x in 0.0_f64..1.0e12,
        flag in proptest::bool::ANY,
    ) {
        let response = response_variant(kind, a, b, x, flag);
        for encoding in [Encoding::Text, Encoding::Binary] {
            let (decoded, got) = round_trip_response(&response, encoding);
            assert_eq!(decoded, response);
            assert_eq!(got, encoding);
        }
        if let Response::Job { result } = &response {
            let (Response::Job { result: decoded }, _) =
                round_trip_response(&response, Encoding::Binary)
            else {
                panic!("job response decoded as a different variant");
            };
            assert_eq!(
                decoded.total.energy.to_bits(),
                result.total.energy.to_bits(),
                "floats must survive bit-exactly"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Back-compat: the pre-versioning protocol keeps working, byte for byte
// ---------------------------------------------------------------------

#[test]
fn legacy_cmd_verbs_answer_byte_identically() {
    let pool = DsePool::new(ServiceState::new().unwrap(), 2);
    let (pong, stop) = handle_request(&pool, r#"{"cmd": "ping"}"#);
    assert_eq!(pong.render(), r#"{"ok":true,"pong":true}"#);
    assert!(!stop);

    // A fresh 2-worker server's stats, exactly as the old server
    // rendered them: the old field set in the old order, no "type", no
    // config extensions.
    let (stats, _) = handle_request(&pool, r#"{"cmd": "stats"}"#);
    assert_eq!(
        stats.render(),
        "{\"ok\":true,\"stats\":{\"hits\":0,\"misses\":0,\"coalesced\":0,\
         \"evictions\":0,\"cost_evictions\":0,\"entries\":0,\"bytes\":0,\
         \"hit_rate\":0,\"workers\":2,\"store_hits\":0,\"store_misses\":0,\
         \"store_errors\":0,\"compute_ns_min\":0,\"compute_ns_max\":0,\
         \"compute_ns_total\":0}}"
    );

    let (unknown, stop) = handle_request(&pool, r#"{"cmd": "reboot", "id": 6}"#);
    assert_eq!(
        unknown.render(),
        r#"{"ok":false,"id":6,"error":"unknown command \"reboot\""}"#
    );
    assert!(!stop);

    let (down, stop) = handle_request(&pool, r#"{"cmd": "shutdown"}"#);
    assert_eq!(down.render(), r#"{"ok":true,"shutdown":true}"#);
    assert!(stop);
}

#[test]
fn legacy_bare_job_lines_answer_without_a_type_field() {
    let pool = DsePool::new(ServiceState::new().unwrap(), 2);
    let (response, _) = handle_request(&pool, r#"{"id": 5, "network": {"model": "tiny"}}"#);
    assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(response.get("id").and_then(Json::as_u64), Some(5));
    assert!(
        response.get("type").is_none(),
        "legacy responses must not grow a type field"
    );
    let rendered = response.render();
    assert!(
        rendered.starts_with(r#"{"ok":true,"id":5,"result":"#),
        "legacy job responses keep the old field order: {rendered}"
    );
    assert!(
        !rendered.contains("\"pareto\""),
        "point-free responses must not grow a pareto field"
    );
    let result = response.get("result").unwrap();
    assert_eq!(result.get("layers").unwrap().as_array().unwrap().len(), 3);
}

#[test]
fn typed_requests_through_handle_request_answer_typed() {
    let pool = DsePool::new(ServiceState::new().unwrap(), 2);
    let (hello, _) = handle_request(
        &pool,
        &format!(r#"{{"type":"hello","version":{PROTOCOL_VERSION}}}"#),
    );
    assert_eq!(hello.get("type").and_then(Json::as_str), Some("hello"));
    assert_eq!(
        hello.get("version").and_then(Json::as_u64),
        Some(PROTOCOL_VERSION)
    );

    // Unknown version: graceful reject naming the supported version.
    let (reject, stop) = handle_request(&pool, r#"{"type":"hello","version":99}"#);
    assert_eq!(reject.get("ok"), Some(&Json::Bool(false)));
    assert!(!stop, "a rejected hello must not kill the server");
    let message = reject.get("error").and_then(Json::as_str).unwrap();
    assert!(message.contains("99"), "{message}");
    assert!(message.contains(&PROTOCOL_VERSION.to_string()), "{message}");

    // The typed stats carry the active configuration.
    let (stats, _) = handle_request(&pool, r#"{"type":"stats","id":8}"#);
    assert_eq!(stats.get("type").and_then(Json::as_str), Some("stats"));
    assert_eq!(stats.get("id").and_then(Json::as_u64), Some(8));
    let report = StatsReport::from_json(stats.get("stats").unwrap()).unwrap();
    assert_eq!(report.workers, 2);
    assert_eq!(report.policy, EvictionPolicy::Lru);
    assert_eq!(report.shard, ShardPolicy::default());
}

#[test]
fn old_binary_frames_still_work_over_a_live_socket() {
    use drmap_service::server::JobServer;
    use std::io::{BufReader as IoBufReader, BufWriter};
    use std::net::TcpStream;

    let pool = std::sync::Arc::new(DsePool::new(ServiceState::new().unwrap(), 2));
    let server = JobServer::with_pool("127.0.0.1:0", std::sync::Arc::clone(&pool)).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.run().unwrap());

    // A pre-versioning client: raw legacy payloads in binary frames.
    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = IoBufReader::new(stream.try_clone().unwrap());
    let mut writer = BufWriter::new(stream);
    wire::write_message(&mut writer, r#"{"cmd":"ping"}"#, Encoding::Binary).unwrap();
    let (payload, encoding) = wire::read_message(&mut reader).unwrap().unwrap();
    assert_eq!(encoding, Encoding::Binary, "responses answer in kind");
    assert_eq!(payload, r#"{"ok":true,"pong":true}"#);

    wire::write_message(
        &mut writer,
        r#"{"id":1,"network":{"model":"tiny"}}"#,
        Encoding::Binary,
    )
    .unwrap();
    let (payload, encoding) = wire::read_message(&mut reader).unwrap().unwrap();
    assert_eq!(encoding, Encoding::Binary);
    let parsed = Json::parse(&payload).unwrap();
    assert_eq!(parsed.get("ok"), Some(&Json::Bool(true)));
    assert!(parsed.get("type").is_none());

    wire::write_message(&mut writer, r#"{"cmd":"shutdown"}"#, Encoding::Binary).unwrap();
    let (payload, _) = wire::read_message(&mut reader).unwrap().unwrap();
    assert_eq!(payload, r#"{"ok":true,"shutdown":true}"#);
    handle.join().unwrap();
}

#[test]
fn mistyped_typed_requests_get_typed_errors() {
    let pool = DsePool::new(ServiceState::new().unwrap(), 2);
    for (bad, expect) in [
        (r#"{"type":"frobnicate","id":3}"#, "unknown request type"),
        (r#"{"type":"set-policy","policy":"mru"}"#, "eviction policy"),
        (r#"{"type":"set-shard-policy","min_tilings":0}"#, "positive"),
        (r#"{"type":"cache-warm","limit":"many"}"#, "limit"),
        (r#"{"type":"hello"}"#, "version"),
    ] {
        let (response, stop) = handle_request(&pool, bad);
        assert!(!stop);
        assert_eq!(
            response.get("type").and_then(Json::as_str),
            Some("error"),
            "typed requests get typed errors: {bad}"
        );
        let message = response.get("error").and_then(Json::as_str).unwrap();
        assert!(message.contains(expect), "{bad} -> {message}");
    }
    // Admin verbs without a store answer errors, not panics.
    let (response, _) = handle_request(&pool, r#"{"type":"store-compact"}"#);
    assert_eq!(response.get("type").and_then(Json::as_str), Some("error"));
    let (response, _) = handle_request(&pool, r#"{"type":"cache-warm"}"#);
    assert_eq!(response.get("type").and_then(Json::as_str), Some("error"));
}
