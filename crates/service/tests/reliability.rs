//! Reliability integration tests over live sockets: chaos (a seeded
//! fault plan against a fixed-seed load mix), graceful-shutdown drain,
//! and the wire-level `deadline_exceeded` response.
//!
//! The chaos test asserts the contract `docs/RELIABILITY.md` promises:
//! under injected store failures, wire stalls, and a worker panic,
//! every response is either **bit-identical** to the fault-free run's
//! response or a **typed error** — never a hang (a watchdog thread
//! fails the test if the run wedges), never a silent wrong answer.

use std::path::PathBuf;
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::{Duration, Instant};

use drmap_cnn::network::Network;
use drmap_service::cache::CacheConfig;
use drmap_service::client::{Client, ClientConfig};
use drmap_service::engine::ServiceState;
use drmap_service::error::ServiceError;
use drmap_service::faults::FaultPlan;
use drmap_service::loadgen::JobMix;
use drmap_service::pool::DsePool;
use drmap_service::proto::MetricsReport;
use drmap_service::server::{JobServer, ServerConfig};
use drmap_service::spec::{EngineSpec, JobOptions, JobResult, JobSpec};
use drmap_store::store::Store;

/// A scratch WAL path under the workspace `target/`, resolved from
/// this crate's manifest so it works from any test working directory.
fn scratch_path(file: &str) -> PathBuf {
    let dir = PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../target/chaos-scratch"
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(file);
    let _ = std::fs::remove_file(&path);
    path
}

fn counter(report: &MetricsReport, name: &str) -> u64 {
    report
        .snapshot
        .counters
        .iter()
        .find(|(n, _)| n == name)
        .map_or(0, |(_, v)| *v)
}

fn gauge(report: &MetricsReport, name: &str) -> i64 {
    report
        .snapshot
        .gauges
        .iter()
        .find(|(n, _)| n == name)
        .map_or(0, |(_, v)| *v)
}

/// Bit-exact fingerprint of a job's merged estimate.
fn bits(result: &JobResult) -> (u64, u64) {
    (result.total.energy.to_bits(), result.total.cycles.to_bits())
}

// ---------------------------------------------------------------------
// Chaos: seeded fault plan vs fixed-seed load
// ---------------------------------------------------------------------

/// The plan the chaos run arms. Probabilities are deliberately high
/// enough that every fault site fires within a 48-job run (the draws
/// are a pure function of the seed, so the firing pattern is stable
/// across runs and machines); `wire-stall-ms` is kept tiny so the
/// stalls prove the path without slowing the suite.
const CHAOS_PLAN: &str = "seed=42,store-fail=0.1,wire-stall=0.15,wire-stall-ms=2,panic-job=1";
const CHAOS_JOBS: usize = 48;

#[test]
fn chaos_load_is_bit_identical_or_typed_error() {
    // Watchdog: the whole chaos run executes on a driver thread; if it
    // wedges (a lost response would block the pipelined client
    // forever), the receive below times out and fails the test instead
    // of hanging the suite.
    let (tx, rx) = mpsc::channel();
    let driver = thread::spawn(move || {
        run_chaos();
        let _ = tx.send(());
    });
    match rx.recv_timeout(Duration::from_secs(120)) {
        Ok(()) => driver.join().unwrap(),
        Err(mpsc::RecvTimeoutError::Timeout) => {
            panic!("chaos run wedged: no completion within the watchdog window")
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => match driver.join() {
            Err(panic) => std::panic::resume_unwind(panic),
            Ok(()) => unreachable!("driver dropped the channel without panicking"),
        },
    }
}

fn run_chaos() {
    // Fixed-seed load plan: the same specs drive the baseline and the
    // chaos run, in the same order.
    let mut mix = JobMix::new(42, 1.1);
    let specs: Vec<JobSpec> = (0..CHAOS_JOBS).map(|_| mix.next_spec()).collect();

    // Fault-free baseline, computed in-process on a clean state.
    let baseline: Vec<JobResult> = {
        let state = ServiceState::new().unwrap();
        let pool = DsePool::new(state, 2);
        pool.run_batch(&specs)
            .into_iter()
            .map(|r| r.expect("baseline job failed"))
            .collect()
    };

    // Chaos server: store-backed (so store faults have a site to hit),
    // with the seeded plan armed before any job arrives.
    let store = Arc::new(Store::open(scratch_path("chaos.wal")).unwrap());
    let state = ServiceState::with_cache_and_store(CacheConfig::unbounded(), Some(store)).unwrap();
    state
        .faults()
        .set_plan(Some(FaultPlan::parse(CHAOS_PLAN).unwrap()))
        .unwrap();
    let pool = Arc::new(DsePool::new(state, 2));
    let server = JobServer::with_pool("127.0.0.1:0", Arc::clone(&pool)).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = thread::spawn(move || server.run().unwrap());

    // A read timeout distinguishes "stalled frame" from "lost frame":
    // the armed plan stalls but never drops, so nothing here should
    // ever hit it — if it fires, the typed Timeout fails the batch and
    // the test, which is exactly the contract.
    let config = ClientConfig {
        read_timeout: Some(Duration::from_secs(30)),
        ..ClientConfig::default()
    };
    let mut client = Client::connect_with(addr, config).unwrap();
    let results = client.submit_batch(&specs).unwrap();

    // Every response: bit-identical to the fault-free baseline, or a
    // typed error. The injected worker panic must surface as at least
    // one of the latter.
    let mut identical = 0usize;
    let mut typed_errors = 0usize;
    for (slot, outcome) in results.iter().enumerate() {
        match outcome {
            Ok(result) => {
                assert_eq!(
                    bits(result),
                    bits(&baseline[slot]),
                    "job {} diverged from the fault-free baseline under faults",
                    specs[slot].id
                );
                identical += 1;
            }
            Err(err) => {
                assert!(
                    !err.to_string().is_empty(),
                    "typed errors must carry a message"
                );
                typed_errors += 1;
            }
        }
    }
    assert!(identical > 0, "no job survived the fault plan at all");
    assert!(
        typed_errors > 0,
        "the injected worker panic must surface as a typed job error"
    );

    // The plan actually fired, at every site.
    let report = client.metrics().unwrap();
    assert!(
        counter(&report, "fault_store_total") > 0,
        "store faults never fired"
    );
    assert!(
        counter(&report, "fault_wire_total") > 0,
        "wire faults never fired"
    );
    assert_eq!(
        counter(&report, "fault_pool_total"),
        1,
        "the worker panic fires exactly once per armed plan"
    );

    // Disarm and resubmit: the server recovered — the panicked
    // worker's replacement and the fault-free store now answer every
    // job, bit-identically.
    client.set_faults(None).unwrap();
    let healed = client.submit_batch(&specs).unwrap();
    for (slot, outcome) in healed.iter().enumerate() {
        let result = outcome
            .as_ref()
            .expect("disarmed server must answer every job");
        assert_eq!(
            bits(result),
            bits(&baseline[slot]),
            "post-disarm job {} diverged from the baseline",
            specs[slot].id
        );
    }

    let mut closer = Client::connect(addr).unwrap();
    closer.shutdown().unwrap();
    handle.join().unwrap();
}

// ---------------------------------------------------------------------
// Graceful shutdown: no in-flight job lost
// ---------------------------------------------------------------------

#[test]
fn graceful_shutdown_loses_no_in_flight_job() {
    let store = Arc::new(Store::open(scratch_path("drain.wal")).unwrap());
    let state = ServiceState::with_cache_and_store(CacheConfig::unbounded(), Some(store)).unwrap();
    let pool = Arc::new(DsePool::new(state, 2));
    let server = JobServer::with_config(
        "127.0.0.1:0",
        Arc::clone(&pool),
        ServerConfig {
            drain_timeout: Duration::from_secs(30),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let handle = thread::spawn(move || server.run().unwrap());

    // A pipelined batch of distinct (uncacheable-across-slots) ids;
    // tiny jobs keep the test fast while the batch is long enough that
    // the shutdown lands while responses are still streaming.
    let specs: Vec<JobSpec> = (0..64)
        .map(|i| JobSpec::network(i + 1, EngineSpec::default(), Network::tiny()))
        .collect();
    let batch = specs.clone();
    let mut submitter = Client::connect(addr).unwrap();
    let driver = thread::spawn(move || submitter.submit_batch(&batch));

    // Fire shutdown from a second connection while the batch is (very
    // likely) still in flight. Even if the batch already finished the
    // assertions below still hold — the test can only fail if a
    // response is actually lost.
    thread::sleep(Duration::from_millis(10));
    let mut closer = Client::connect(addr).unwrap();
    closer.shutdown().unwrap();

    let results = driver
        .join()
        .unwrap()
        .expect("pipelined batch failed across shutdown");
    assert_eq!(results.len(), specs.len());
    for (outcome, spec) in results.iter().zip(&specs) {
        let result = outcome
            .as_ref()
            .expect("an in-flight job lost its response across shutdown");
        assert_eq!(result.id, spec.id);
    }

    // run() returned only after the drain: every job had answered.
    handle.join().unwrap();
}

// ---------------------------------------------------------------------
// Deadlines over the wire
// ---------------------------------------------------------------------

#[test]
fn expired_deadline_answers_typed_over_the_wire() {
    // One worker, so a long job in flight forces the deadline job to
    // queue behind it past its 1 ms budget.
    let state = ServiceState::new().unwrap();
    let pool = Arc::new(DsePool::new(state, 1));
    let server = JobServer::with_pool("127.0.0.1:0", Arc::clone(&pool)).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = thread::spawn(move || server.run().unwrap());

    // Block the lone worker with a full AlexNet sweep on its own
    // connection.
    let mut blocker = Client::connect(addr).unwrap();
    let slow = JobSpec::network(1, EngineSpec::default(), Network::alexnet());
    let blocker_thread = thread::spawn(move || blocker.submit(&slow));

    // Wait until the server reports the blocker in flight, so the
    // deadline job deterministically queues behind it.
    let mut observer = Client::connect(addr).unwrap();
    let started = Instant::now();
    while gauge(&observer.metrics().unwrap(), "jobs_inflight") < 1 {
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "blocker job never became in-flight"
        );
        thread::sleep(Duration::from_millis(2));
    }

    let quick = JobSpec::network(2, EngineSpec::default(), Network::tiny());
    let options = JobOptions {
        deadline_ms: Some(1),
        ..JobOptions::default()
    };
    match observer.submit_with(&quick, options) {
        Err(ServiceError::DeadlineExceeded { deadline_ms }) => assert_eq!(deadline_ms, 1),
        other => panic!("expected a typed deadline_exceeded response, got {other:?}"),
    }

    blocker_thread
        .join()
        .unwrap()
        .expect("the blocking job itself must still succeed");
    let mut closer = Client::connect(addr).unwrap();
    closer.shutdown().unwrap();
    handle.join().unwrap();
}
