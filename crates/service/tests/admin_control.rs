//! Live control-plane integration tests: a running `JobServer` must
//! accept `hello`, `set-policy`, `set-shard-policy`, `set-bounds`,
//! `cache-clear`, `cache-warm`, `store-compact`, `metrics`,
//! `metrics-history`, `slow-traces`, and `set-slow-log` over TCP,
//! with every change observable through `stats` **without a
//! restart** — and per-job options (cache bypass/refresh, Pareto
//! retention) must behave over the wire exactly as they do in-process.

use std::sync::Arc;
use std::time::{Duration, Instant};

use drmap_service::cache::{CacheConfig, EvictionPolicy};
use drmap_service::client::Client;
use drmap_service::engine::ServiceState;
use drmap_service::pool::DsePool;
use drmap_service::proto::{BoundsUpdate, ShardPolicyUpdate, PROTOCOL_VERSION};
use drmap_service::server::{JobServer, ServerConfig};
use drmap_service::spec::{CacheMode, EngineSpec, JobOptions, JobSpec};
use drmap_store::store::Store;

use drmap_cnn::layer::Layer;
use drmap_cnn::network::Network;

fn temp_store_path(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("drmap-admin-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("store.wal");
    let _ = std::fs::remove_file(&path);
    path
}

/// Boot a server (2 workers, entry-bounded cache, persistent store) on
/// an ephemeral port; returns the address, its accept-loop handle, and
/// the shared pool for server-side assertions.
fn boot(
    tag: &str,
    cache: CacheConfig,
) -> (
    std::net::SocketAddr,
    std::thread::JoinHandle<()>,
    Arc<DsePool>,
) {
    let store = Arc::new(Store::open(temp_store_path(tag)).unwrap());
    let state = ServiceState::with_cache_and_store(cache, Some(store)).unwrap();
    let pool = Arc::new(DsePool::new(state, 2));
    let server = JobServer::with_pool("127.0.0.1:0", Arc::clone(&pool)).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.run().unwrap());
    (addr, handle, pool)
}

/// Distinctly shaped single-layer jobs (every shape gets its own cache
/// entry).
fn shaped_job(id: u64, j: usize) -> JobSpec {
    JobSpec::layer(
        id,
        EngineSpec::default(),
        Layer::conv(&format!("L{j}"), 8, 8, j, 8, 3, 3, 1),
    )
}

#[test]
fn set_policy_changes_eviction_on_a_live_server_observably() {
    // Room for 2 entries: the third insertion always evicts.
    let (addr, handle, _pool) = boot("set-policy", CacheConfig::unbounded().with_max_entries(2));
    let mut client = Client::connect(addr).unwrap();

    let info = client.hello().unwrap();
    assert_eq!(info.version, PROTOCOL_VERSION);
    assert!(info.has("admin"));
    assert!(info.has("store"));

    // Baseline: LRU evictions never consult the cost ranking.
    for (id, j) in [(1, 8), (2, 16), (3, 24)] {
        client.submit(&shaped_job(id, j)).unwrap();
    }
    let before = client.stats_report().unwrap();
    assert_eq!(before.policy, EvictionPolicy::Lru);
    assert!(before.cache.evictions >= 1, "{:?}", before.cache);
    assert_eq!(before.cache.cost_evictions, 0);

    // Flip to cost-aware eviction on the live server...
    let previous = client.set_policy(EvictionPolicy::Cost).unwrap();
    assert_eq!(previous, EvictionPolicy::Lru);
    // ...and the very next evictions are cost-chosen — same process,
    // same connection, no restart, observed through stats.
    for (id, j) in [(4, 32), (5, 40), (6, 48)] {
        client.submit(&shaped_job(id, j)).unwrap();
    }
    let after = client.stats_report().unwrap();
    assert_eq!(after.policy, EvictionPolicy::Cost);
    assert!(
        after.cache.cost_evictions > 0,
        "cost policy must drive the eviction order: {:?}",
        after.cache
    );
    assert!(after.cache.evictions > before.cache.evictions);

    // And back: cost_evictions stops growing.
    assert_eq!(
        client.set_policy(EvictionPolicy::Lru).unwrap(),
        EvictionPolicy::Cost
    );
    for (id, j) in [(7, 56), (8, 64), (9, 72)] {
        client.submit(&shaped_job(id, j)).unwrap();
    }
    let reverted = client.stats_report().unwrap();
    assert_eq!(reverted.policy, EvictionPolicy::Lru);
    assert_eq!(reverted.cache.cost_evictions, after.cache.cost_evictions);

    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn set_shard_policy_retunes_the_live_pool_and_results_stay_identical() {
    let (addr, handle, pool) = boot("set-shard", CacheConfig::unbounded());
    let mut client = Client::connect(addr).unwrap();

    let reference = client
        .submit(&JobSpec::network(1, EngineSpec::default(), Network::tiny()))
        .unwrap();

    // Retune: shard everything, tiny chunks, pinned chunk size.
    let policy = client
        .set_shard_policy(ShardPolicyUpdate {
            min_tilings: Some(2),
            chunks_per_worker: Some(2),
            chunk_tilings: Some(3),
        })
        .unwrap();
    assert_eq!(policy.min_tilings, 2);
    assert_eq!(policy.chunk_tilings, Some(3));
    assert_eq!(pool.shard_policy(), policy, "the live pool was retuned");
    let report = client.stats_report().unwrap();
    assert_eq!(report.shard, policy, "stats reflect the change");

    // Clear the cache so resubmission actually re-explores under the
    // new sharding — and still merges bit-identically.
    client.cache_clear().unwrap();
    assert_eq!(client.stats_report().unwrap().cache.entries, 0);
    let resharded = client
        .submit(&JobSpec::network(2, EngineSpec::default(), Network::tiny()))
        .unwrap();
    assert_eq!(
        resharded.total.energy.to_bits(),
        reference.total.energy.to_bits()
    );
    assert_eq!(
        resharded.total.cycles.to_bits(),
        reference.total.cycles.to_bits()
    );

    // Partial update: only the threshold moves, the rest stays.
    let partial = client
        .set_shard_policy(ShardPolicyUpdate {
            min_tilings: Some(100),
            chunks_per_worker: None,
            chunk_tilings: None,
        })
        .unwrap();
    assert_eq!(partial.min_tilings, 100);
    assert_eq!(partial.chunks_per_worker, 2);
    assert_eq!(partial.chunk_tilings, Some(3));
    // chunk_tilings:0 clears the pin.
    let cleared = client
        .set_shard_policy(ShardPolicyUpdate {
            min_tilings: None,
            chunks_per_worker: None,
            chunk_tilings: Some(0),
        })
        .unwrap();
    assert_eq!(cleared.chunk_tilings, None);

    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn cache_warm_and_store_compact_work_over_the_wire() {
    let (addr, handle, _pool) = boot("warm-compact", CacheConfig::unbounded());
    let mut client = Client::connect(addr).unwrap();

    // Populate the store: the tiny network plus one extra shape, then
    // refresh that shape so the log carries a superseded record for
    // compaction to drop.
    let job = JobSpec::network(1, EngineSpec::default(), Network::tiny());
    client.submit(&job).unwrap();
    client.submit(&shaped_job(2, 26)).unwrap();
    client
        .submit_with(
            &shaped_job(3, 26),
            JobOptions {
                cache: CacheMode::Refresh,
                ..JobOptions::default()
            },
        )
        .unwrap();
    let stats = client.stats_report().unwrap();
    let live = stats.store.expect("server has a store").live_entries;
    assert!(live >= 3, "{stats:?}");

    // Clear memory, warm back from disk, and the resubmission is all
    // resident hits — no exploration.
    client.cache_clear().unwrap();
    assert_eq!(client.stats_report().unwrap().cache.entries, 0);
    let loaded = client.cache_warm(Some(2)).unwrap();
    assert_eq!(loaded, 2, "warm honors its limit");
    let loaded = client.cache_warm(None).unwrap();
    assert_eq!(loaded, live, "a full warm promotes every stored result");
    let warmed = client.submit(&job).unwrap();
    assert_eq!(warmed.cache_hits(), warmed.layers.len());

    // Compact drops the refreshed entry's superseded record.
    let report = client.compact_store().unwrap();
    assert!(report.dropped_records >= 1, "{report:?}");
    assert!(report.bytes_after <= report.bytes_before);
    let after = client.stats_report().unwrap().store.unwrap();
    assert_eq!(after.dead_records, 0);

    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn metrics_verb_reports_live_telemetry_over_the_wire() {
    let (addr, handle, _pool) = boot("metrics", CacheConfig::unbounded());
    let mut client = Client::connect(addr).unwrap();
    let info = client.hello().unwrap();
    assert!(info.has("metrics"));
    assert!(info.has("set-bounds"));

    client
        .submit(&JobSpec::network(1, EngineSpec::default(), Network::tiny()))
        .unwrap();
    client.submit(&shaped_job(2, 16)).unwrap();

    let report = client.metrics().unwrap();
    let snap = &report.snapshot;
    assert_eq!(snap.counter("jobs_total"), Some(2));
    assert_eq!(snap.counter("layers_total"), Some(4));
    assert!(snap.counter("connections_total").unwrap() >= 1);
    assert!(
        snap.counter("frames_text_total").unwrap() >= 4,
        "hello + 2 submits + metrics all arrived as text frames"
    );
    let request_ns = snap.histogram("request_ns").unwrap();
    assert_eq!(request_ns.count, 2, "one sample per job");
    let lookup = snap.histogram("cache_lookup_ns").unwrap();
    assert_eq!(lookup.count, 4, "one sample per layer");
    assert!(lookup.p50() > 0);
    assert!(lookup.p50() <= lookup.p99(), "{lookup:?}");
    assert!(lookup.p99() <= lookup.max);
    // Cold lookups compute, so explore shows up too, and the
    // store-backed boot wires WAL write timings through.
    assert!(snap.histogram("explore_ns").unwrap().count >= 4);
    assert!(snap.histogram("store_write_ns").unwrap().count > 0);
    assert!(snap.histogram("wal_write_ns").unwrap().count > 0);
    // The snapshot renders as Prometheus-style exposition client-side.
    let text = snap.to_prometheus();
    assert!(text.contains("drmap_jobs_total 2"), "{text}");
    assert!(text.contains("drmap_request_ns_count 2"), "{text}");

    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn set_bounds_retunes_cache_caps_on_a_live_server() {
    let (addr, handle, pool) = boot("set-bounds", CacheConfig::unbounded());
    let mut client = Client::connect(addr).unwrap();

    // Six distinctly-shaped layers resident, unbounded.
    for (id, j) in [(1, 8), (2, 16), (3, 24), (4, 32), (5, 40), (6, 48)] {
        client.submit(&shaped_job(id, j)).unwrap();
    }
    let before = client.stats_report().unwrap();
    assert_eq!(before.cache.entries, 6);
    assert_eq!(before.max_entries, None);

    // Shrinking evicts down to the new cap immediately.
    let (entries, bytes, evicted) = client
        .set_bounds(BoundsUpdate {
            max_entries: Some(2),
            max_bytes: None,
        })
        .unwrap();
    assert_eq!(entries, Some(2));
    assert_eq!(bytes, None);
    assert_eq!(evicted, 4);
    assert_eq!(pool.state().cache().bounds(), (Some(2), None));
    let after = client.stats_report().unwrap();
    assert_eq!(after.cache.entries, 2);
    assert_eq!(after.max_entries, Some(2), "stats report the live bound");
    assert_eq!(after.cache.evictions, before.cache.evictions + 4);

    // 0 clears a bound back to unbounded; absent fields keep.
    let (entries, bytes, evicted) = client
        .set_bounds(BoundsUpdate {
            max_entries: Some(0),
            max_bytes: Some(1 << 20),
        })
        .unwrap();
    assert_eq!(entries, None);
    assert_eq!(bytes, Some(1 << 20));
    assert_eq!(evicted, 0);
    let cleared = client.stats_report().unwrap();
    assert_eq!(cleared.max_entries, None);
    assert_eq!(cleared.max_bytes, Some(1 << 20));

    // An empty update is rejected client-side as a usage error.
    assert!(client.set_bounds(BoundsUpdate::default()).is_err());

    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn trace_stage_spans_cover_most_of_the_request_wall_clock() {
    // One worker, so a job's layer tasks run sequentially and its
    // stage spans are disjoint in time — their sum can approach but
    // never exceed the request's wall clock.
    let store = Arc::new(Store::open(temp_store_path("span-sum")).unwrap());
    let state = ServiceState::with_cache_and_store(CacheConfig::unbounded(), Some(store)).unwrap();
    let pool = Arc::new(DsePool::new(state, 1));
    let config = ServerConfig {
        slow_ms: Some(0), // log every request
        ..ServerConfig::default()
    };
    let server = JobServer::with_config("127.0.0.1:0", Arc::clone(&pool), config).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.run().unwrap());
    let mut client = Client::connect(addr).unwrap();

    client
        .submit(&JobSpec::network(
            1,
            EngineSpec::default(),
            Network::alexnet(),
        ))
        .unwrap();

    let report = client.metrics().unwrap();
    assert_eq!(report.slow.len(), 1, "threshold 0 logs every job");
    let entry = &report.slow[0];
    assert_eq!(entry.trace_id, 1, "traces carry the wire job id");
    let stage = |name: &str| {
        entry
            .stages
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, ns)| *ns)
    };
    assert!(stage("explore") > 0, "a cold cache explores every layer");
    // frame_decode and cache_lookup are the disjoint stages of the
    // request path (explore nests *inside* cache_lookup); together
    // they account for nearly all of the request's wall clock.
    let disjoint = stage("frame_decode") + stage("cache_lookup");
    assert!(
        disjoint <= entry.total_ns,
        "disjoint spans cannot exceed the wall clock: {entry:?}"
    );
    assert!(
        disjoint * 5 >= entry.total_ns * 4,
        "stage spans must cover >= 80% of the request: {disjoint} of {} ns ({:?})",
        entry.total_ns,
        entry.stages,
    );

    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn metrics_history_samples_reconstruct_the_cumulative_snapshot_exactly() {
    // A fast sampler so the test sees several windows in well under a
    // second of wall clock.
    let store = Arc::new(Store::open(temp_store_path("history")).unwrap());
    let state = ServiceState::with_cache_and_store(CacheConfig::unbounded(), Some(store)).unwrap();
    let pool = Arc::new(DsePool::new(state, 2));
    let config = ServerConfig {
        sample_interval: Some(Duration::from_millis(25)),
        ..ServerConfig::default()
    };
    let server = JobServer::with_config("127.0.0.1:0", Arc::clone(&pool), config).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.run().unwrap());
    let mut client = Client::connect(addr).unwrap();
    assert!(client.hello().unwrap().has("metrics-history"));

    // Spread work across several sampler windows so the deltas are
    // non-trivial (not all concentrated in one sample).
    for (id, j) in [(1, 8), (2, 16), (3, 24)] {
        client.submit(&shaped_job(id, j)).unwrap();
        std::thread::sleep(Duration::from_millis(30));
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    let history = loop {
        let history = client.metrics_history().unwrap();
        if history.samples.len() >= 3 {
            break history;
        }
        assert!(
            Instant::now() < deadline,
            "sampler produced only {} windows",
            history.samples.len()
        );
        std::thread::sleep(Duration::from_millis(25));
    };

    // The ring's contract, verified over the wire: base plus every
    // retained windowed delta reproduces the cumulative snapshot
    // *exactly* — counters, gauges, and full histogram bucket vectors.
    assert_eq!(history.reconstructed(), history.cumulative);
    // The summed per-window job deltas match the cumulative counter.
    let summed: u64 = history
        .samples
        .iter()
        .map(|s| s.delta.counter("jobs_total").unwrap_or(0))
        .sum();
    assert_eq!(
        history.base.counter("jobs_total").unwrap_or(0) + summed,
        history.cumulative.counter("jobs_total").unwrap_or(0),
    );
    assert_eq!(history.cumulative.counter("jobs_total"), Some(3));
    // Windows carry their width and are strictly ordered by uptime.
    for pair in history.samples.windows(2) {
        assert!(pair[0].uptime_ms < pair[1].uptime_ms, "{pair:?}");
    }
    assert!(history.samples.iter().all(|s| s.window_ms > 0));

    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn slow_traces_persist_through_the_wal_and_survive_a_restart() {
    let path = temp_store_path("slow-restart");
    let boot_slow = |path: &std::path::Path| {
        let store = Arc::new(Store::open(path).unwrap());
        let state =
            ServiceState::with_cache_and_store(CacheConfig::unbounded(), Some(store)).unwrap();
        let pool = Arc::new(DsePool::new(state, 2));
        let config = ServerConfig {
            slow_ms: Some(0), // every request is a "slow" request
            ..ServerConfig::default()
        };
        let server = JobServer::with_config("127.0.0.1:0", pool, config).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.run().unwrap());
        (addr, handle)
    };

    // First life: run a job, see its trace in the persistent log.
    let (addr, handle) = boot_slow(&path);
    let mut client = Client::connect(addr).unwrap();
    assert!(client.hello().unwrap().has("slow-traces"));
    client.submit(&shaped_job(7, 16)).unwrap();
    let traces = client.slow_traces(None).unwrap();
    assert_eq!(traces.len(), 1, "{traces:?}");
    assert_eq!(traces[0].entry.trace_id, 7, "traces carry the wire id");
    assert!(traces[0].entry.total_ns > 0);
    assert!(traces[0].unix_ms > 0);
    let first_seq = traces[0].seq;
    client.shutdown().unwrap();
    handle.join().unwrap();

    // Second life, same WAL: the pre-restart post-mortem is still
    // there, and new traces sequence *after* it instead of clobbering.
    let (addr, handle) = boot_slow(&path);
    let mut client = Client::connect(addr).unwrap();
    let survived = client.slow_traces(None).unwrap();
    assert_eq!(survived.len(), 1, "the old trace survived the restart");
    assert_eq!(survived[0].seq, first_seq);
    assert_eq!(survived[0].entry.trace_id, 7);
    client.submit(&shaped_job(8, 24)).unwrap();
    let both = client.slow_traces(None).unwrap();
    assert_eq!(both.len(), 2, "{both:?}");
    assert_eq!(both[0].entry.trace_id, 8, "newest first");
    assert!(both[0].seq > first_seq, "sequence resumes past the old max");
    // A limit keeps only the newest.
    let latest = client.slow_traces(Some(1)).unwrap();
    assert_eq!(latest.len(), 1);
    assert_eq!(latest[0].entry.trace_id, 8);

    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn set_slow_log_retunes_threshold_and_capacity_live() {
    let (addr, handle, pool) = boot("set-slow-log", CacheConfig::unbounded());
    let mut client = Client::connect(addr).unwrap();

    // Slow logging is off by default: a job leaves no trace.
    client.submit(&shaped_job(1, 8)).unwrap();
    assert!(client.metrics().unwrap().slow.is_empty());

    // Turn it on (threshold 0 = log everything) and shrink the ring.
    let (slow_ms, cap) = client.set_slow_log(Some(0), Some(2)).unwrap();
    assert_eq!(slow_ms, Some(0));
    assert_eq!(cap, 2);
    assert_eq!(pool.state().slow_log().capacity(), 2);
    for (id, j) in [(2, 16), (3, 24), (4, 32)] {
        client.submit(&shaped_job(id, j)).unwrap();
    }
    let slow = client.metrics().unwrap().slow;
    assert_eq!(slow.len(), 2, "the ring holds only its capacity");
    assert_eq!(slow[1].trace_id, 4, "newest entries win");

    // Partial update: only the threshold moves.
    let (slow_ms, cap) = client.set_slow_log(Some(60_000), None).unwrap();
    assert_eq!(slow_ms, Some(60_000));
    assert_eq!(cap, 2);
    client.submit(&shaped_job(5, 40)).unwrap();
    assert_eq!(
        client.metrics().unwrap().slow.len(),
        2,
        "a fast job no longer logs under the raised threshold"
    );

    // An empty update is a usage error, rejected client-side.
    assert!(client.set_slow_log(None, None).is_err());

    // Without a store, slow-traces is a capability-gated error.
    assert!(client.slow_traces(None).is_ok(), "store-backed boot has it");

    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn per_job_options_thread_through_the_wire() {
    let (addr, handle, pool) = boot("job-options", CacheConfig::unbounded());
    let mut client = Client::connect(addr).unwrap();

    let spec = shaped_job(1, 16);
    let first = client.submit(&spec).unwrap();
    assert_eq!(first.cache_hits(), 0);

    // Bypass: recomputes despite the resident entry, touches nothing.
    let stats_before = client.stats_report().unwrap();
    let bypassed = client
        .submit_with(
            &spec,
            JobOptions {
                cache: CacheMode::Bypass,
                ..JobOptions::default()
            },
        )
        .unwrap();
    assert_eq!(bypassed.cache_hits(), 0, "bypass never reads the cache");
    assert_eq!(
        bypassed.total.energy.to_bits(),
        first.total.energy.to_bits(),
        "bypassed recomputation is bit-identical"
    );
    let stats_after = client.stats_report().unwrap();
    assert_eq!(stats_after.cache.bypasses, stats_before.cache.bypasses + 1);
    assert_eq!(stats_after.cache.hits, stats_before.cache.hits);

    // Refresh: recomputes and replaces; counted distinctly.
    let refreshed = client
        .submit_with(
            &spec,
            JobOptions {
                cache: CacheMode::Refresh,
                ..JobOptions::default()
            },
        )
        .unwrap();
    assert_eq!(refreshed.cache_hits(), 0);
    assert_eq!(client.stats_report().unwrap().cache.refreshes, 1);
    // A plain resubmission now hits the refreshed entry.
    let warm = client.submit(&spec).unwrap();
    assert_eq!(warm.cache_hits(), 1);

    // keep_points: the result carries the Pareto front, and is cached
    // under its own key (the point-free entry still hits).
    let with_points = client
        .submit_with(
            &spec,
            JobOptions {
                keep_points: true,
                ..JobOptions::default()
            },
        )
        .unwrap();
    assert!(
        !with_points.layers[0].pareto.is_empty(),
        "keep_points returns the front over the wire"
    );
    assert_eq!(with_points.cache_hits(), 0, "separate cache key");
    let without = client.submit(&spec).unwrap();
    assert!(without.layers[0].pareto.is_empty());
    assert_eq!(without.cache_hits(), 1);

    // shard_chunk hint: bit-identical results under forced chunking.
    client
        .set_shard_policy(ShardPolicyUpdate {
            min_tilings: Some(2),
            chunks_per_worker: None,
            chunk_tilings: None,
        })
        .unwrap();
    let hinted = client
        .submit_with(
            &shaped_job(9, 32),
            JobOptions {
                cache: CacheMode::Bypass,
                shard_chunk: Some(2),
                ..JobOptions::default()
            },
        )
        .unwrap();
    let direct = pool
        .state()
        .factory()
        .engine(&EngineSpec::default())
        .explore_layer(&Layer::conv("L32", 8, 8, 32, 8, 3, 3, 1))
        .unwrap();
    assert_eq!(
        hinted.layers[0].estimate.energy.to_bits(),
        direct.best.estimate.energy.to_bits()
    );
    assert_eq!(hinted.layers[0].evaluations as usize, direct.evaluations);

    client.shutdown().unwrap();
    handle.join().unwrap();
}
