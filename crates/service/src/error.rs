//! The service's error type: protocol, exploration, and I/O failures.

use core::fmt;

use drmap_core::error::DseError;

use crate::json::JsonError;

/// Anything that can go wrong serving a job.
#[derive(Debug)]
pub enum ServiceError {
    /// Malformed request or response (bad JSON, missing fields).
    Protocol(String),
    /// The exploration itself failed (e.g. no feasible tiling).
    Dse(DseError),
    /// Socket or file I/O failed.
    Io(std::io::Error),
    /// A socket read/write exceeded its configured timeout — the
    /// peer stalled, not necessarily died. Distinct from [`Io`]
    /// (ServiceError::Io) so retry policies can treat a stall as
    /// retryable without pattern-matching error strings.
    Timeout(String),
    /// The job's `deadline_ms` elapsed before the result was computed;
    /// the server abandoned the remaining work instead of computing a
    /// result nobody is waiting for.
    DeadlineExceeded {
        /// The deadline the job carried, in milliseconds.
        deadline_ms: u64,
    },
    /// The server's admission controller is shedding load; retry after
    /// the hinted delay.
    Overloaded {
        /// Server-suggested backoff before retrying, in milliseconds.
        retry_after_ms: u64,
    },
}

/// Marker prefix the pool embeds in a [`DseError`] raised by a missed
/// deadline, so [`PendingJob::wait`](crate::pool::PendingJob::wait) can
/// lift it back into the typed [`ServiceError::DeadlineExceeded`]
/// without threading a new error type through every layer reply.
pub(crate) const DEADLINE_MARKER: &str = "deadline exceeded after ";

impl ServiceError {
    /// A protocol error with the given message.
    pub fn protocol(message: impl Into<String>) -> Self {
        ServiceError::Protocol(message.into())
    }

    /// A socket-timeout error with the given context.
    pub fn timeout(message: impl Into<String>) -> Self {
        ServiceError::Timeout(message.into())
    }

    /// Whether retrying this error can help: stalls and shed load are
    /// transient; protocol and exploration failures are deterministic
    /// (the same request fails the same way again).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            ServiceError::Timeout(_) | ServiceError::Overloaded { .. } | ServiceError::Io(_)
        )
    }
}

/// Best-effort text of a panic payload (the argument of `panic!`), for
/// surfacing a caught worker/computation panic as an error message.
/// Payloads that are neither `&str` nor `String` — rare in practice —
/// render as a placeholder.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Protocol(m) => write!(f, "protocol error: {m}"),
            ServiceError::Dse(e) => write!(f, "exploration failed: {e}"),
            ServiceError::Io(e) => write!(f, "i/o error: {e}"),
            ServiceError::Timeout(m) => write!(f, "timed out: {m}"),
            ServiceError::DeadlineExceeded { deadline_ms } => {
                write!(f, "{DEADLINE_MARKER}{deadline_ms} ms")
            }
            ServiceError::Overloaded { retry_after_ms } => {
                write!(f, "server overloaded; retry after {retry_after_ms} ms")
            }
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Dse(e) => Some(e),
            ServiceError::Io(e) => Some(e),
            ServiceError::Protocol(_)
            | ServiceError::Timeout(_)
            | ServiceError::DeadlineExceeded { .. }
            | ServiceError::Overloaded { .. } => None,
        }
    }
}

impl From<DseError> for ServiceError {
    /// Lifts a pool-raised deadline error (recognized by
    /// [`DEADLINE_MARKER`]) back into the typed
    /// [`ServiceError::DeadlineExceeded`]; everything else stays a
    /// plain exploration failure.
    fn from(e: DseError) -> Self {
        let message = e.to_string();
        if let Some(at) = message.find(DEADLINE_MARKER) {
            let rest = &message[at + DEADLINE_MARKER.len()..];
            if let Some(ms) = rest.strip_suffix(" ms").and_then(|n| n.parse().ok()) {
                return ServiceError::DeadlineExceeded { deadline_ms: ms };
            }
        }
        ServiceError::Dse(e)
    }
}

impl From<std::io::Error> for ServiceError {
    fn from(e: std::io::Error) -> Self {
        ServiceError::Io(e)
    }
}

impl From<JsonError> for ServiceError {
    fn from(e: JsonError) -> Self {
        ServiceError::Protocol(e.to_string())
    }
}

impl From<drmap_cnn::error::ModelError> for ServiceError {
    fn from(e: drmap_cnn::error::ModelError) -> Self {
        ServiceError::Protocol(e.to_string())
    }
}

impl From<drmap_dram::error::ConfigError> for ServiceError {
    fn from(e: drmap_dram::error::ConfigError) -> Self {
        ServiceError::Protocol(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_each_variant() {
        assert!(ServiceError::protocol("bad field")
            .to_string()
            .contains("bad field"));
        assert!(ServiceError::from(DseError::new("no tiling"))
            .to_string()
            .contains("no tiling"));
        let io = std::io::Error::other("boom");
        assert!(ServiceError::from(io).to_string().contains("boom"));
    }

    #[test]
    fn marked_dse_errors_lift_into_the_typed_deadline_variant() {
        let marked = DseError::new(format!("{DEADLINE_MARKER}250 ms"));
        assert!(matches!(
            ServiceError::from(marked),
            ServiceError::DeadlineExceeded { deadline_ms: 250 }
        ));
        // A message that merely mentions deadlines is not lifted.
        let plain = DseError::new("deadline exceeded after lunch");
        assert!(matches!(ServiceError::from(plain), ServiceError::Dse(_)));
        assert!(ServiceError::timeout("read").is_retryable());
        assert!(ServiceError::Overloaded { retry_after_ms: 5 }.is_retryable());
        assert!(!ServiceError::DeadlineExceeded { deadline_ms: 1 }.is_retryable());
        assert!(!ServiceError::protocol("bad").is_retryable());
    }

    #[test]
    fn panic_messages_are_extracted() {
        let caught = std::panic::catch_unwind(|| panic!("static str")).unwrap_err();
        assert_eq!(panic_message(caught.as_ref()), "static str");
        let caught = std::panic::catch_unwind(|| panic!("formatted {}", 7)).unwrap_err();
        assert_eq!(panic_message(caught.as_ref()), "formatted 7");
        let caught = std::panic::catch_unwind(|| std::panic::panic_any(42_u32)).unwrap_err();
        assert_eq!(panic_message(caught.as_ref()), "non-string panic payload");
    }
}
