//! The service's error type: protocol, exploration, and I/O failures.

use core::fmt;

use drmap_core::error::DseError;

use crate::json::JsonError;

/// Anything that can go wrong serving a job.
#[derive(Debug)]
pub enum ServiceError {
    /// Malformed request or response (bad JSON, missing fields).
    Protocol(String),
    /// The exploration itself failed (e.g. no feasible tiling).
    Dse(DseError),
    /// Socket or file I/O failed.
    Io(std::io::Error),
}

impl ServiceError {
    /// A protocol error with the given message.
    pub fn protocol(message: impl Into<String>) -> Self {
        ServiceError::Protocol(message.into())
    }
}

/// Best-effort text of a panic payload (the argument of `panic!`), for
/// surfacing a caught worker/computation panic as an error message.
/// Payloads that are neither `&str` nor `String` — rare in practice —
/// render as a placeholder.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Protocol(m) => write!(f, "protocol error: {m}"),
            ServiceError::Dse(e) => write!(f, "exploration failed: {e}"),
            ServiceError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Dse(e) => Some(e),
            ServiceError::Io(e) => Some(e),
            ServiceError::Protocol(_) => None,
        }
    }
}

impl From<DseError> for ServiceError {
    fn from(e: DseError) -> Self {
        ServiceError::Dse(e)
    }
}

impl From<std::io::Error> for ServiceError {
    fn from(e: std::io::Error) -> Self {
        ServiceError::Io(e)
    }
}

impl From<JsonError> for ServiceError {
    fn from(e: JsonError) -> Self {
        ServiceError::Protocol(e.to_string())
    }
}

impl From<drmap_cnn::error::ModelError> for ServiceError {
    fn from(e: drmap_cnn::error::ModelError) -> Self {
        ServiceError::Protocol(e.to_string())
    }
}

impl From<drmap_dram::error::ConfigError> for ServiceError {
    fn from(e: drmap_dram::error::ConfigError) -> Self {
        ServiceError::Protocol(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_each_variant() {
        assert!(ServiceError::protocol("bad field")
            .to_string()
            .contains("bad field"));
        assert!(ServiceError::from(DseError::new("no tiling"))
            .to_string()
            .contains("no tiling"));
        let io = std::io::Error::other("boom");
        assert!(ServiceError::from(io).to_string().contains("boom"));
    }

    #[test]
    fn panic_messages_are_extracted() {
        let caught = std::panic::catch_unwind(|| panic!("static str")).unwrap_err();
        assert_eq!(panic_message(caught.as_ref()), "static str");
        let caught = std::panic::catch_unwind(|| panic!("formatted {}", 7)).unwrap_err();
        assert_eq!(panic_message(caught.as_ref()), "formatted 7");
        let caught = std::panic::catch_unwind(|| std::panic::panic_any(42_u32)).unwrap_err();
        assert_eq!(panic_message(caught.as_ref()), "non-string panic payload");
    }
}
