//! # drmap-service
//!
//! A batched, cached DSE job server over the DRMap reproduction.
//!
//! The core crates answer one question at a time — "what is the best
//! DRAM mapping for this layer/network?". This crate turns that into a
//! *service*: many jobs, from many clients, answered concurrently from
//! a shared worker pool with a memoization cache over per-layer results.
//!
//! ## Architecture
//!
//! ```text
//!  drmap-serve (TCP, NDJSON)      drmap-batch (CLI)
//!            \                      /
//!             v                    v
//!        JobSpec ──► DsePool (N workers, one shared layer queue)
//!                        │ per-layer tasks
//!                        v
//!        ServiceState ── EngineFactory (cost table per DramArch)
//!                   └─── DseCache (canonical shape-keyed memo)
//!                            └─── Store (WAL-backed persistent tier,
//!                                 optional: --store PATH)
//! ```
//!
//! * [`spec`] — typed [`JobSpec`](spec::JobSpec)/[`JobResult`](spec::JobResult)
//!   covering network- and layer-level jobs across every
//!   [`DramArch`](drmap_dram::timing::DramArch) and
//!   [`Objective`](drmap_core::dse::Objective);
//! * [`pool`] — the worker-pool engine: every job is sharded into
//!   per-layer tasks on one queue, so batches saturate all workers; a
//!   worker that panics surfaces a job error instead of hanging the
//!   submitter;
//! * [`cache`] — the shared memo cache keyed by
//!   [`layer_cache_key`](drmap_core::dse::layer_cache_key) (layer
//!   *shape* + accelerator + substrate + sweep config): a bounded LRU
//!   (entry and approximate-byte caps) with single-flight coalescing of
//!   concurrent identical lookups, hit/miss/coalesced/eviction
//!   counters, per-entry compute-duration tracking, and an optional
//!   persistent second tier (a [`drmap_store`](drmap_store) WAL):
//!   resident misses consult the store before computing, fresh results
//!   write through, and restarts warm-start from disk — each
//!   fingerprint is explored once, *ever*;
//! * [`proto`] — the typed, versioned protocol: [`Request`](proto::Request)
//!   /[`Response`](proto::Response) enums with one JSON codec, a `hello`
//!   handshake advertising [`PROTOCOL_VERSION`](proto::PROTOCOL_VERSION)
//!   and capabilities, admin verbs (`set-policy`, `set-shard-policy`,
//!   `set-bounds`, `cache-clear`/`cache-warm`, `store-compact`,
//!   `metrics`), per-job options, and a legacy shim keeping
//!   pre-versioning clients byte-compatible;
//! * [`server`]/[`client`] — a hand-rolled, std-only, **pipelined**
//!   TCP front-end: submit many jobs tagged by `id`, receive responses
//!   out of order as they complete; the client grows typed admin
//!   methods (`hello`, `set_policy`, `set_shard_policy`, …);
//! * [`wire`] — the one codec over both encodings: newline-delimited
//!   text plus a length-prefixed binary frame mode for large inline
//!   networks;
//! * [`json`] — the dependency-free JSON layer (floats round-trip
//!   bit-exactly);
//! * [`loadgen`] — the seeded zipfian request mix behind the
//!   `drmap-loadgen` bin: reproducible load plans, plus the schema
//!   gate that refuses a `BENCH_load.json` missing its environment
//!   block;
//! * [`faults`] — seeded, deterministic fault injection into the
//!   store, the wire, and the pool (`--fault-plan` / `set-faults`),
//!   compiled out of release builds unless the `faults` feature is on;
//! * [`overload`] — the hysteretic admission controller behind the
//!   `overloaded` shed response and the `set-overload` verb; paired
//!   with per-job deadlines (`deadline_ms`) and the client's bounded,
//!   jittered [`RetryPolicy`](client::RetryPolicy). See
//!   `docs/RELIABILITY.md`.
//!
//! Every layer is threaded with [`drmap_telemetry`]: lock-free latency
//! histograms and counters for each request stage (frame decode, cache
//! lookup, store read, single-flight wait, explore, shard chunks,
//! merge, frame encode), per-request traces keyed by the wire `id`,
//! and a slow-request ring buffer — all dumped by the `metrics` admin
//! verb, structured or as Prometheus-style text. See
//! `docs/OBSERVABILITY.md` for the metric taxonomy.
//!
//! Results are **bit-identical** across every path — direct
//! [`DseEngine`](drmap_core::dse::DseEngine) call, sequential
//! [`ServiceState::run_job`](engine::ServiceState::run_job), pooled
//! execution, cache hit, or a TCP round trip.
//!
//! ## Example
//!
//! ```
//! use drmap_service::prelude::*;
//!
//! let state = ServiceState::new()?;
//! let pool = DsePool::new(state, 2);
//! let job = JobSpec::network(1, EngineSpec::default(), Network::tiny());
//! let result = pool.submit(&job).wait()?;
//! assert_eq!(result.layers.len(), 3);
//! // Resubmission is answered from the memo cache, bit-identically.
//! let again = pool.submit(&job).wait()?;
//! assert_eq!(again.cache_hits(), 3);
//! assert_eq!(again.total.energy.to_bits(), result.total.energy.to_bits());
//! # Ok::<(), drmap_service::error::ServiceError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod cli;
pub mod client;
pub mod engine;
pub mod error;
pub mod faults;
pub mod json;
pub mod loadgen;
pub mod overload;
pub mod pool;
pub mod proto;
pub mod server;
pub mod spec;
mod sync;
pub mod wire;

/// Convenient re-exports of the most commonly used types.
pub mod prelude {
    pub use crate::cache::{CacheConfig, CacheOutcome, CacheStats, DseCache, EvictionPolicy};
    pub use crate::client::{Client, ClientConfig, RetryPolicy, ServerStats};
    pub use crate::engine::{default_workers, EngineFactory, ServiceState};
    pub use crate::error::ServiceError;
    pub use crate::faults::{FaultPlan, FaultState};
    pub use crate::json::Json;
    pub use crate::overload::{OverloadConfig, OverloadController};
    pub use crate::pool::{DsePool, PendingJob, ShardPolicy};
    pub use crate::proto::{
        BoundsUpdate, Dialect, MetricsReport, OverloadUpdate, Request, Response, ShardPolicyUpdate,
        StatsReport, PROTOCOL_VERSION,
    };
    pub use crate::server::{JobServer, ServerConfig};
    pub use crate::spec::{
        CacheMode, EngineSpec, JobOptions, JobResult, JobSpec, LayerOutcome, Workload,
    };
    pub use crate::wire::Encoding;
    pub use drmap_cnn::network::Network;
    pub use drmap_store::store::Store;
    pub use drmap_telemetry::{
        Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot, SlowEntry,
        SlowLog, Span, Trace,
    };
}
