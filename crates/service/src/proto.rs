//! The typed, versioned service protocol: every message the server and
//! client exchange, as Rust enums with one JSON codec.
//!
//! ## Versioning
//!
//! The protocol version is a single integer, [`PROTOCOL_VERSION`].
//! A client *may* open a connection with a [`Request::Hello`]
//! advertising the version it speaks; the server answers with a
//! [`Response::Hello`] carrying its own version and capability list, or
//! an error naming the version it supports (the connection stays usable
//! — a multi-version client can downgrade and continue). The handshake
//! is optional: requests are self-describing, so a client that knows
//! what it speaks may skip straight to business.
//!
//! Compatibility rules:
//!
//! * Additions (new verbs, new optional request fields, new response
//!   fields) do **not** bump the version — unknown response fields must
//!   be ignored by clients, and unknown verbs answer with a typed
//!   error.
//! * Changes to the meaning or shape of an *existing* field bump
//!   [`PROTOCOL_VERSION`]; servers reject hellos for versions they do
//!   not speak.
//!
//! ## Dialects
//!
//! Two request dialects share the wire, distinguished per message:
//!
//! * **Typed (v1)** — objects carrying a `"type"` field naming the
//!   verb. Responses to typed requests carry `"type"` too.
//! * **Legacy** — the pre-versioning protocol: bare job objects (no
//!   `"type"`, no `"cmd"`) and `{"cmd": "ping"|"stats"|"shutdown"}`
//!   control verbs. Responses to legacy requests are rendered
//!   **byte-identically** to the pre-versioning server, so deployed
//!   clients keep working unchanged.
//!
//! Either dialect travels in either encoding of [`crate::wire`]
//! (newline-delimited JSON text or length-prefixed binary frames); a
//! response always uses the encoding of its request.
//!
//! See `docs/PROTOCOL.md` for the full verb-by-verb reference.

use drmap_store::store::{CompactReport, StoreStats};
use drmap_telemetry::{
    HistogramSnapshot, MetricsSnapshot, SlowEntry, SnapshotHistory, SnapshotSample,
};

use crate::cache::{CacheStats, EvictionPolicy};
use crate::error::ServiceError;
use crate::json::Json;
use crate::overload::OverloadConfig;
use crate::pool::ShardPolicy;
use crate::spec::{JobResult, JobSpec};

/// The protocol version this build speaks. See the module docs for
/// when it bumps.
pub const PROTOCOL_VERSION: u64 = 1;

/// Which request dialect a message arrived in — the server answers in
/// kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dialect {
    /// Pre-versioning messages: bare job objects and `{"cmd": …}`
    /// verbs. Responses render byte-identically to the old server.
    Legacy,
    /// `{"type": …}` messages of the versioned protocol.
    V1,
}

/// The capability strings a server advertises in its hello response.
/// `store` and `slow-traces` appear only when a persistent result
/// store is attached (without it, `cache-warm`, `store-compact`, and
/// `slow-traces` answer with errors — persisted post-mortems need
/// somewhere to live). `faults` appears only in builds with fault
/// injection compiled in (debug, or the `faults` cargo feature) —
/// release servers without it refuse `set-faults` outright.
pub fn capabilities(store_attached: bool) -> Vec<String> {
    let mut caps = vec![
        "jobs".to_owned(),
        "pipelining".to_owned(),
        "binary-frames".to_owned(),
        "per-job-options".to_owned(),
        "admin".to_owned(),
        "metrics".to_owned(),
        "metrics-history".to_owned(),
        "set-bounds".to_owned(),
        "deadlines".to_owned(),
        "overload-control".to_owned(),
        "tiling-range".to_owned(),
    ];
    if crate::faults::FAULTS_COMPILED_IN {
        caps.push("faults".to_owned());
    }
    if store_attached {
        caps.push("store".to_owned());
        caps.push("slow-traces".to_owned());
    }
    caps
}

/// The capability string `drmap-router` adds to the backend
/// intersection it advertises, so clients (and the loadgen's
/// environment block) can tell a cluster tier from a single node.
/// Backends never advertise it.
pub const ROUTER_CAPABILITY: &str = "router";

/// The capability set a router advertises: the intersection of its
/// healthy backends' capabilities — a verb is only promised when every
/// node that might serve it understands it — minus the verbs the
/// router cannot aggregate meaningfully (`metrics-history`,
/// `slow-traces` are per-node rings; ask a backend directly), plus
/// [`ROUTER_CAPABILITY`].
pub fn router_capabilities(backend_caps: &[Vec<String>]) -> Vec<String> {
    let mut caps: Vec<String> = match backend_caps.split_first() {
        None => Vec::new(),
        Some((first, rest)) => first
            .iter()
            .filter(|cap| rest.iter().all(|other| other.contains(cap)))
            .filter(|cap| cap.as_str() != "metrics-history" && cap.as_str() != "slow-traces")
            .cloned()
            .collect(),
    };
    caps.push(ROUTER_CAPABILITY.to_owned());
    caps
}

/// A partial [`ShardPolicy`] update: absent fields keep the running
/// pool's current value, so an operator can retune one knob without
/// restating the rest. `chunk_tilings` uses `0` on the wire to clear
/// the explicit chunk-size override (returning to the
/// `chunks_per_worker` derivation), since "absent" already means
/// "keep".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardPolicyUpdate {
    /// New sharding threshold, if given.
    pub min_tilings: Option<usize>,
    /// New chunks-per-worker target, if given.
    pub chunks_per_worker: Option<usize>,
    /// New explicit chunk size; `Some(0)` clears the override.
    pub chunk_tilings: Option<usize>,
}

impl ShardPolicyUpdate {
    /// The policy that results from applying this update to `current`.
    pub fn apply(&self, current: ShardPolicy) -> ShardPolicy {
        ShardPolicy {
            min_tilings: self.min_tilings.unwrap_or(current.min_tilings),
            chunks_per_worker: self.chunks_per_worker.unwrap_or(current.chunks_per_worker),
            chunk_tilings: match self.chunk_tilings {
                None => current.chunk_tilings,
                Some(0) => None,
                Some(n) => Some(n),
            },
        }
    }
}

/// A partial cache-bounds update: absent fields keep the running
/// cache's current bound. `0` on the wire clears a bound entirely
/// (unbounded), since "absent" already means "keep" — the same
/// convention [`ShardPolicyUpdate::chunk_tilings`] uses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BoundsUpdate {
    /// New resident-entry cap; `Some(0)` clears it (unbounded).
    pub max_entries: Option<usize>,
    /// New approximate-byte cap; `Some(0)` clears it (unbounded).
    pub max_bytes: Option<usize>,
}

impl BoundsUpdate {
    /// True when the update changes nothing. Clients reject empty
    /// updates as usage errors rather than sending silent no-ops.
    pub fn is_empty(&self) -> bool {
        self.max_entries.is_none() && self.max_bytes.is_none()
    }

    /// The entry-bound field in the cache's nested-option form:
    /// `None` keeps, `Some(None)` clears to unbounded, `Some(Some(n))`
    /// sets.
    pub fn entries_action(&self) -> Option<Option<usize>> {
        Self::action(self.max_entries)
    }

    /// As [`BoundsUpdate::entries_action`], for the byte bound.
    pub fn bytes_action(&self) -> Option<Option<usize>> {
        Self::action(self.max_bytes)
    }

    fn action(field: Option<usize>) -> Option<Option<usize>> {
        match field {
            None => None,
            Some(0) => Some(None),
            Some(n) => Some(Some(n)),
        }
    }
}

/// A partial overload-controller update: absent fields keep the
/// running controller's current value, so an operator can retune one
/// watermark without restating the rest. `max_inflight` uses `0` on
/// the wire to clear the cap (returning admission to purely
/// latency-driven), the same convention [`BoundsUpdate`] uses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OverloadUpdate {
    /// Arm or disarm the controller, if given.
    pub enabled: Option<bool>,
    /// New high (shed-entry) watermark in milliseconds, if given.
    pub high_ms: Option<u64>,
    /// New low (recovery) watermark in milliseconds, if given.
    pub low_ms: Option<u64>,
    /// New consecutive-healthy-window requirement, if given.
    pub recover_windows: Option<u32>,
    /// New backoff advice for shed responses, if given.
    pub retry_after_ms: Option<u64>,
    /// New in-flight cap; `Some(0)` clears it.
    pub max_inflight: Option<u64>,
}

impl OverloadUpdate {
    /// True when the update changes nothing. Clients reject empty
    /// updates as usage errors rather than sending silent no-ops.
    pub fn is_empty(&self) -> bool {
        *self == OverloadUpdate::default()
    }

    /// The (sanitized) configuration that results from applying this
    /// update to `current`.
    pub fn apply(&self, current: OverloadConfig) -> OverloadConfig {
        OverloadConfig {
            enabled: self.enabled.unwrap_or(current.enabled),
            high_ms: self.high_ms.unwrap_or(current.high_ms),
            low_ms: self.low_ms.unwrap_or(current.low_ms),
            recover_windows: self.recover_windows.unwrap_or(current.recover_windows),
            retry_after_ms: self.retry_after_ms.unwrap_or(current.retry_after_ms),
            max_inflight: match self.max_inflight {
                None => current.max_inflight,
                Some(0) => None,
                Some(n) => Some(n),
            },
        }
        .sanitized()
    }
}

/// Everything a client can ask of the server.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Open the conversation: advertise the protocol version the
    /// client speaks (and optionally who it is, for server logs).
    Hello {
        /// Protocol version the client speaks.
        version: u64,
        /// Free-form client identification, e.g. `drmap-batch/0.1.0`.
        client: Option<String>,
    },
    /// Liveness check.
    Ping {
        /// Optional correlation id, echoed in the response.
        id: Option<u64>,
    },
    /// Fetch counters plus the **active configuration** (live eviction
    /// policy, cache bounds, shard policy, protocol version).
    Stats {
        /// Optional correlation id, echoed in the response.
        id: Option<u64>,
    },
    /// Stop accepting connections.
    Shutdown {
        /// Optional correlation id, echoed in the response.
        id: Option<u64>,
    },
    /// Swap the cache's eviction policy on the live server.
    SetPolicy {
        /// Optional correlation id, echoed in the response.
        id: Option<u64>,
        /// The policy to switch to.
        policy: EvictionPolicy,
    },
    /// Retune the running pool's intra-layer sharding policy.
    SetShardPolicy {
        /// Optional correlation id, echoed in the response.
        id: Option<u64>,
        /// Partial update; absent fields keep their current values.
        update: ShardPolicyUpdate,
    },
    /// Drop every resident cache entry and zero the counters (the
    /// persistent store tier is untouched).
    CacheClear {
        /// Optional correlation id, echoed in the response.
        id: Option<u64>,
    },
    /// Promote stored results into the resident cache tier.
    CacheWarm {
        /// Optional correlation id, echoed in the response.
        id: Option<u64>,
        /// At most this many entries (`None`: up to the cache's entry
        /// bound, or everything).
        limit: Option<usize>,
    },
    /// Rewrite the persistent store's log, dropping superseded records
    /// — and/or retune the background auto-compaction check.
    StoreCompact {
        /// Optional correlation id, echoed in the response.
        id: Option<u64>,
        /// Without `auto_ratio`, compact unconditionally right now
        /// (the wire-compatible pre-auto-compaction behavior). With
        /// it, arm the background check at that dead-bytes ratio
        /// (`0` disarms, since "absent" already means "compact now")
        /// and compact immediately only if the store is already past
        /// the threshold.
        auto_ratio: Option<f64>,
    },
    /// Fetch the telemetry snapshot: every counter, gauge, and latency
    /// histogram, plus the slow-request log.
    Metrics {
        /// Optional correlation id, echoed in the response.
        id: Option<u64>,
    },
    /// Retune the cache's resident bounds on the live server
    /// (shrinking a bound evicts down to the new cap immediately).
    SetBounds {
        /// Optional correlation id, echoed in the response.
        id: Option<u64>,
        /// Partial update; absent fields keep their current values.
        update: BoundsUpdate,
    },
    /// Fetch the windowed metrics time series: the sampler ring's base
    /// snapshot, its per-window deltas, and the cumulative snapshot
    /// they reconstruct.
    MetricsHistory {
        /// Optional correlation id, echoed in the response.
        id: Option<u64>,
    },
    /// Fetch the slow traces persisted through the store (post-mortems
    /// that survive restarts). Requires an attached store.
    SlowTraces {
        /// Optional correlation id, echoed in the response.
        id: Option<u64>,
        /// At most this many traces, newest last (`None`: all
        /// retained).
        limit: Option<usize>,
    },
    /// Retune the slow-request log live: its threshold and/or its ring
    /// capacity. Absent fields keep their current values.
    SetSlowLog {
        /// Optional correlation id, echoed in the response.
        id: Option<u64>,
        /// New slow threshold in milliseconds (`0` logs everything).
        slow_ms: Option<u64>,
        /// New ring capacity (clamped to at least 1).
        cap: Option<usize>,
    },
    /// Arm, replace, or disarm the deterministic fault plan on the
    /// live server. Only honored by builds with fault injection
    /// compiled in (debug, or the `faults` cargo feature) — the
    /// capability list advertises `faults` when it is.
    SetFaults {
        /// Optional correlation id, echoed in the response.
        id: Option<u64>,
        /// The plan to arm, in `key=value,…` form (see
        /// [`FaultPlan::parse`](crate::faults::FaultPlan::parse));
        /// absent disarms fault injection.
        spec: Option<String>,
    },
    /// Retune the adaptive overload controller on the live server.
    SetOverload {
        /// Optional correlation id, echoed in the response.
        id: Option<u64>,
        /// Partial update; absent fields keep their current values.
        update: OverloadUpdate,
    },
    /// Run a DSE job (the job's own `id` is the correlation key).
    Submit(JobSpec),
}

/// A snapshot of the server's counters **and active configuration**,
/// carried by the typed `stats` response. The legacy `{"cmd":"stats"}`
/// rendering exposes only the counter subset the old protocol had.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatsReport {
    /// Cache counters and sizes.
    pub cache: CacheStats,
    /// The eviction policy currently in force (live, not the boot
    /// value).
    pub policy: EvictionPolicy,
    /// Resident-entry bound, if any.
    pub max_entries: Option<usize>,
    /// Approximate-byte bound, if any.
    pub max_bytes: Option<usize>,
    /// The sharding policy currently in force.
    pub shard: ShardPolicy,
    /// Worker threads in the pool.
    pub workers: usize,
    /// Persistent-store counters, when a store is attached.
    pub store: Option<StoreStats>,
    /// How many backends stand behind this endpoint: `Some(n)` from a
    /// `drmap-router` (whose report sums its backends' counters),
    /// `None` from a single node. V1-only — the legacy rendering
    /// predates clusters.
    pub backends: Option<usize>,
}

/// The telemetry snapshot carried by the typed `metrics` response:
/// every registered counter, gauge, and latency histogram, plus the
/// slow-request log. Clients can render the snapshot as
/// Prometheus-style text exposition via
/// [`drmap_telemetry::MetricsSnapshot::to_prometheus`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsReport {
    /// Every registered metric, sorted by name.
    pub snapshot: MetricsSnapshot,
    /// The most recent slow requests, oldest first.
    pub slow: Vec<SlowEntry>,
}

/// One slow trace read back from the persistent store: the entry plus
/// the monotonic sequence number and wall-clock stamp it was persisted
/// under — enough to order post-mortems across restarts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistedSlowTrace {
    /// Monotonic persistence sequence number (survives restarts).
    pub seq: u64,
    /// Milliseconds since the Unix epoch when the trace was captured.
    pub unix_ms: u64,
    /// The slow request itself.
    pub entry: SlowEntry,
}

/// Everything the server can answer.
// The size spread (a stats report is ~an order of magnitude bigger than
// a pong) is fine here: responses are transient — built, rendered to
// JSON, and dropped — never stored in bulk.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Handshake accepted.
    Hello {
        /// Protocol version the server speaks.
        version: u64,
        /// Server identification, e.g. `drmap-service/0.1.0`.
        server: String,
        /// What this server can do (see [`capabilities`]).
        capabilities: Vec<String>,
    },
    /// `ping` answer.
    Pong {
        /// Echoed request id.
        id: Option<u64>,
    },
    /// `stats` answer.
    Stats {
        /// Echoed request id.
        id: Option<u64>,
        /// Counters plus active configuration.
        report: StatsReport,
    },
    /// `shutdown` acknowledged: the server stops accepting.
    Shutdown {
        /// Echoed request id.
        id: Option<u64>,
    },
    /// `set-policy` applied.
    PolicySet {
        /// Echoed request id.
        id: Option<u64>,
        /// The policy now in force.
        policy: EvictionPolicy,
        /// The policy that was in force before.
        previous: EvictionPolicy,
    },
    /// `set-shard-policy` applied.
    ShardPolicySet {
        /// Echoed request id.
        id: Option<u64>,
        /// The full policy now in force (after merging the update).
        policy: ShardPolicy,
        /// The policy that was in force before.
        previous: ShardPolicy,
    },
    /// `cache clear` done.
    CacheCleared {
        /// Echoed request id.
        id: Option<u64>,
    },
    /// `cache warm` done.
    CacheWarmed {
        /// Echoed request id.
        id: Option<u64>,
        /// Entries promoted into the resident tier.
        loaded: usize,
    },
    /// `store compact` done.
    StoreCompacted {
        /// Echoed request id.
        id: Option<u64>,
        /// What the compaction accomplished.
        report: CompactReport,
    },
    /// `metrics` answer.
    Metrics {
        /// Echoed request id.
        id: Option<u64>,
        /// The telemetry snapshot and slow-request log.
        report: MetricsReport,
    },
    /// `set-bounds` applied.
    BoundsSet {
        /// Echoed request id.
        id: Option<u64>,
        /// The resident-entry bound now in force.
        max_entries: Option<usize>,
        /// The approximate-byte bound now in force.
        max_bytes: Option<usize>,
        /// The entry bound that was in force before.
        previous_entries: Option<usize>,
        /// The byte bound that was in force before.
        previous_bytes: Option<usize>,
        /// Entries evicted immediately to honor a shrunk bound.
        evicted: u64,
    },
    /// `metrics-history` answer.
    MetricsHistory {
        /// Echoed request id.
        id: Option<u64>,
        /// The sampler ring's base, windowed deltas, and cumulative.
        history: SnapshotHistory,
    },
    /// `slow-traces` answer.
    SlowTraces {
        /// Echoed request id.
        id: Option<u64>,
        /// Persisted slow traces, oldest first.
        traces: Vec<PersistedSlowTrace>,
    },
    /// `set-slow-log` applied.
    SlowLogSet {
        /// Echoed request id.
        id: Option<u64>,
        /// The threshold now in force, in milliseconds (`None`:
        /// logging disabled).
        slow_ms: Option<u64>,
        /// The ring capacity now in force.
        cap: usize,
        /// The threshold that was in force before.
        previous_ms: Option<u64>,
        /// The capacity that was in force before.
        previous_cap: usize,
    },
    /// `set-faults` applied.
    FaultsSet {
        /// Echoed request id.
        id: Option<u64>,
        /// The canonical rendering of the plan now armed (`None`:
        /// fault injection disarmed).
        spec: Option<String>,
    },
    /// `set-overload` applied.
    OverloadSet {
        /// Echoed request id.
        id: Option<u64>,
        /// The configuration now in force (after merging the update
        /// and sanitizing).
        config: OverloadConfig,
        /// The configuration that was in force before.
        previous: OverloadConfig,
    },
    /// The admission controller refused the job: the server is
    /// shedding load. Retry after the hinted delay.
    Overloaded {
        /// Echoed job id.
        id: Option<u64>,
        /// Server-suggested backoff before retrying, in milliseconds.
        retry_after_ms: u64,
    },
    /// The job's `deadline_ms` elapsed before its result was ready;
    /// the server abandoned the remaining work.
    DeadlineExceeded {
        /// Echoed job id.
        id: Option<u64>,
        /// The deadline the job carried, in milliseconds.
        deadline_ms: u64,
    },
    /// A job finished successfully.
    Job {
        /// The job's result (its `id` is the correlation key).
        result: JobResult,
    },
    /// Anything that failed.
    Error {
        /// Echoed request/job id, when one was recognizable.
        id: Option<u64>,
        /// What went wrong.
        message: String,
    },
}

/// A request that could not be decoded, with enough context to answer
/// in the right dialect with the right correlation id.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodeError {
    /// The request's id, when one was recognizable.
    pub id: Option<u64>,
    /// The dialect the malformed request appeared to be in (errors are
    /// answered in kind).
    pub dialect: Dialect,
    /// What was wrong with it.
    pub message: String,
}

impl DecodeError {
    fn new(id: Option<u64>, dialect: Dialect, message: impl Into<String>) -> Self {
        DecodeError {
            id,
            dialect,
            message: message.into(),
        }
    }
}

// ---------------------------------------------------------------------
// Request codec
// ---------------------------------------------------------------------

fn push_id(pairs: &mut Vec<(String, Json)>, id: Option<u64>) {
    if let Some(id) = id {
        pairs.push(("id".to_owned(), Json::num_u64(id)));
    }
}

fn typed(kind: &str, id: Option<u64>, rest: Vec<(String, Json)>) -> Json {
    let mut pairs = vec![("type".to_owned(), Json::str(kind))];
    push_id(&mut pairs, id);
    pairs.extend(rest);
    Json::Obj(pairs)
}

impl Request {
    /// The typed (v1) wire form. Legacy forms are only *parsed* (the
    /// compatibility shim); new writers always emit typed messages.
    pub fn to_json(&self) -> Json {
        match self {
            Request::Hello { version, client } => {
                let mut rest = vec![("version".to_owned(), Json::num_u64(*version))];
                if let Some(client) = client {
                    rest.push(("client".to_owned(), Json::str(client)));
                }
                typed("hello", None, rest)
            }
            Request::Ping { id } => typed("ping", *id, vec![]),
            Request::Stats { id } => typed("stats", *id, vec![]),
            Request::Shutdown { id } => typed("shutdown", *id, vec![]),
            Request::SetPolicy { id, policy } => typed(
                "set-policy",
                *id,
                vec![("policy".to_owned(), Json::str(policy.label()))],
            ),
            Request::SetShardPolicy { id, update } => {
                let mut rest = Vec::new();
                if let Some(n) = update.min_tilings {
                    rest.push(("min_tilings".to_owned(), Json::num_usize(n)));
                }
                if let Some(n) = update.chunks_per_worker {
                    rest.push(("chunks_per_worker".to_owned(), Json::num_usize(n)));
                }
                if let Some(n) = update.chunk_tilings {
                    rest.push(("chunk_tilings".to_owned(), Json::num_usize(n)));
                }
                typed("set-shard-policy", *id, rest)
            }
            Request::CacheClear { id } => typed("cache-clear", *id, vec![]),
            Request::CacheWarm { id, limit } => {
                let mut rest = Vec::new();
                if let Some(limit) = limit {
                    rest.push(("limit".to_owned(), Json::num_usize(*limit)));
                }
                typed("cache-warm", *id, rest)
            }
            Request::StoreCompact { id, auto_ratio } => {
                let mut rest = Vec::new();
                if let Some(ratio) = auto_ratio {
                    rest.push(("auto_ratio".to_owned(), Json::Num(*ratio)));
                }
                typed("store-compact", *id, rest)
            }
            Request::Metrics { id } => typed("metrics", *id, vec![]),
            Request::SetBounds { id, update } => {
                let mut rest = Vec::new();
                if let Some(n) = update.max_entries {
                    rest.push(("max_entries".to_owned(), Json::num_usize(n)));
                }
                if let Some(n) = update.max_bytes {
                    rest.push(("max_bytes".to_owned(), Json::num_usize(n)));
                }
                typed("set-bounds", *id, rest)
            }
            Request::MetricsHistory { id } => typed("metrics-history", *id, vec![]),
            Request::SlowTraces { id, limit } => {
                let mut rest = Vec::new();
                if let Some(limit) = limit {
                    rest.push(("limit".to_owned(), Json::num_usize(*limit)));
                }
                typed("slow-traces", *id, rest)
            }
            Request::SetSlowLog { id, slow_ms, cap } => {
                let mut rest = Vec::new();
                if let Some(ms) = slow_ms {
                    rest.push(("slow_ms".to_owned(), Json::num_u64(*ms)));
                }
                if let Some(cap) = cap {
                    rest.push(("cap".to_owned(), Json::num_usize(*cap)));
                }
                typed("set-slow-log", *id, rest)
            }
            Request::SetFaults { id, spec } => {
                let mut rest = Vec::new();
                if let Some(spec) = spec {
                    rest.push(("spec".to_owned(), Json::str(spec)));
                }
                typed("set-faults", *id, rest)
            }
            Request::SetOverload { id, update } => {
                let mut rest = Vec::new();
                if let Some(enabled) = update.enabled {
                    rest.push(("enabled".to_owned(), Json::Bool(enabled)));
                }
                if let Some(ms) = update.high_ms {
                    rest.push(("high_ms".to_owned(), Json::num_u64(ms)));
                }
                if let Some(ms) = update.low_ms {
                    rest.push(("low_ms".to_owned(), Json::num_u64(ms)));
                }
                if let Some(n) = update.recover_windows {
                    rest.push(("recover_windows".to_owned(), Json::num_u64(u64::from(n))));
                }
                if let Some(ms) = update.retry_after_ms {
                    rest.push(("retry_after_ms".to_owned(), Json::num_u64(ms)));
                }
                if let Some(n) = update.max_inflight {
                    rest.push(("max_inflight".to_owned(), Json::num_u64(n)));
                }
                typed("set-overload", *id, rest)
            }
            Request::Submit(spec) => match spec.to_json() {
                Json::Obj(pairs) => {
                    let mut all = vec![("type".to_owned(), Json::str("submit"))];
                    all.extend(pairs);
                    Json::Obj(all)
                }
                _ => unreachable!("JobSpec::to_json builds an object"),
            },
        }
    }

    /// Decode one request in either dialect.
    ///
    /// * `"type"` present → typed (v1) verbs.
    /// * `"cmd"` present → the legacy control shim (`ping`, `stats`,
    ///   `shutdown` — exactly the verbs the old protocol had).
    /// * neither → a legacy bare job object.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] carrying the dialect and any
    /// recognizable id, so the caller can answer in kind.
    pub fn decode(v: &Json) -> Result<(Request, Dialect), DecodeError> {
        let id = v.get("id").and_then(Json::as_u64);
        if let Some(kind) = v.get("type") {
            let kind = kind
                .as_str()
                .ok_or_else(|| DecodeError::new(id, Dialect::V1, "\"type\" must be a string"))?;
            return Self::decode_typed(kind, id, v).map(|r| (r, Dialect::V1));
        }
        if let Some(cmd) = v.get("cmd") {
            let cmd = cmd
                .as_str()
                .ok_or_else(|| DecodeError::new(id, Dialect::Legacy, "\"cmd\" must be a string"))?;
            let request = match cmd {
                "ping" => Request::Ping { id },
                "stats" => Request::Stats { id },
                "shutdown" => Request::Shutdown { id },
                other => {
                    // Exactly the old server's message, byte for byte.
                    return Err(DecodeError::new(
                        id,
                        Dialect::Legacy,
                        format!("unknown command {other:?}"),
                    ));
                }
            };
            return Ok((request, Dialect::Legacy));
        }
        match JobSpec::from_json(v) {
            Ok(spec) => Ok((Request::Submit(spec), Dialect::Legacy)),
            Err(e) => Err(DecodeError::new(id, Dialect::Legacy, e.to_string())),
        }
    }

    fn decode_typed(kind: &str, id: Option<u64>, v: &Json) -> Result<Request, DecodeError> {
        let bad = |message: String| DecodeError::new(id, Dialect::V1, message);
        let opt_usize = |field: &str| -> Result<Option<usize>, DecodeError> {
            match v.get(field) {
                None | Some(Json::Null) => Ok(None),
                Some(n) => n
                    .as_usize()
                    .map(Some)
                    .ok_or_else(|| bad(format!("{field:?} must be a non-negative integer"))),
            }
        };
        match kind {
            "hello" => {
                let version = v
                    .get("version")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| bad("hello needs an integer \"version\"".to_owned()))?;
                let client = match v.get("client") {
                    None | Some(Json::Null) => None,
                    Some(c) => Some(
                        c.as_str()
                            .ok_or_else(|| bad("\"client\" must be a string".to_owned()))?
                            .to_owned(),
                    ),
                };
                Ok(Request::Hello { version, client })
            }
            "ping" => Ok(Request::Ping { id }),
            "stats" => Ok(Request::Stats { id }),
            "shutdown" => Ok(Request::Shutdown { id }),
            "set-policy" => {
                let label = v
                    .get("policy")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("set-policy needs a string \"policy\"".to_owned()))?;
                let policy = EvictionPolicy::from_label(label).ok_or_else(|| {
                    bad(format!(
                        "unknown eviction policy {label:?} (expected \"lru\" or \"cost\")"
                    ))
                })?;
                Ok(Request::SetPolicy { id, policy })
            }
            "set-shard-policy" => {
                let update = ShardPolicyUpdate {
                    min_tilings: opt_usize("min_tilings")?,
                    chunks_per_worker: opt_usize("chunks_per_worker")?,
                    chunk_tilings: opt_usize("chunk_tilings")?,
                };
                if update.min_tilings == Some(0) || update.chunks_per_worker == Some(0) {
                    return Err(bad(
                        "min_tilings and chunks_per_worker must be positive".to_owned()
                    ));
                }
                Ok(Request::SetShardPolicy { id, update })
            }
            "cache-clear" => Ok(Request::CacheClear { id }),
            "cache-warm" => Ok(Request::CacheWarm {
                id,
                limit: opt_usize("limit")?,
            }),
            "store-compact" => {
                let auto_ratio = match v.get("auto_ratio") {
                    None | Some(Json::Null) => None,
                    Some(Json::Num(n)) if (0.0..=1.0).contains(n) => Some(*n),
                    Some(_) => {
                        return Err(bad(
                            "\"auto_ratio\" must be a number in [0, 1] (0 disarms)".to_owned()
                        ))
                    }
                };
                Ok(Request::StoreCompact { id, auto_ratio })
            }
            "metrics" => Ok(Request::Metrics { id }),
            "set-bounds" => Ok(Request::SetBounds {
                id,
                update: BoundsUpdate {
                    max_entries: opt_usize("max_entries")?,
                    max_bytes: opt_usize("max_bytes")?,
                },
            }),
            "metrics-history" => Ok(Request::MetricsHistory { id }),
            "slow-traces" => Ok(Request::SlowTraces {
                id,
                limit: opt_usize("limit")?,
            }),
            "set-slow-log" => {
                let slow_ms = match v.get("slow_ms") {
                    None | Some(Json::Null) => None,
                    Some(n) => Some(n.as_u64().ok_or_else(|| {
                        bad("\"slow_ms\" must be a non-negative integer".to_owned())
                    })?),
                };
                let cap = opt_usize("cap")?;
                if cap == Some(0) {
                    return Err(bad("\"cap\" must be positive".to_owned()));
                }
                Ok(Request::SetSlowLog { id, slow_ms, cap })
            }
            "set-faults" => {
                let spec = match v.get("spec") {
                    None | Some(Json::Null) => None,
                    Some(s) => Some(
                        s.as_str()
                            .ok_or_else(|| bad("\"spec\" must be a string".to_owned()))?
                            .to_owned(),
                    ),
                };
                Ok(Request::SetFaults { id, spec })
            }
            "set-overload" => {
                let opt_u64 = |field: &str| -> Result<Option<u64>, DecodeError> {
                    match v.get(field) {
                        None | Some(Json::Null) => Ok(None),
                        Some(n) => n.as_u64().map(Some).ok_or_else(|| {
                            bad(format!("{field:?} must be a non-negative integer"))
                        }),
                    }
                };
                let enabled = match v.get("enabled") {
                    None | Some(Json::Null) => None,
                    Some(Json::Bool(b)) => Some(*b),
                    Some(_) => return Err(bad("\"enabled\" must be a boolean".to_owned())),
                };
                let recover_windows = match opt_u64("recover_windows")? {
                    None => None,
                    Some(n) => Some(
                        u32::try_from(n)
                            .map_err(|_| bad("\"recover_windows\" is out of range".to_owned()))?,
                    ),
                };
                let update = OverloadUpdate {
                    enabled,
                    high_ms: opt_u64("high_ms")?,
                    low_ms: opt_u64("low_ms")?,
                    recover_windows,
                    retry_after_ms: opt_u64("retry_after_ms")?,
                    max_inflight: opt_u64("max_inflight")?,
                };
                if update.high_ms == Some(0) || update.recover_windows == Some(0) {
                    return Err(bad(
                        "high_ms and recover_windows must be positive".to_owned()
                    ));
                }
                Ok(Request::SetOverload { id, update })
            }
            "submit" => JobSpec::from_json(v)
                .map(Request::Submit)
                .map_err(|e| bad(e.to_string())),
            other => Err(bad(format!("unknown request type {other:?}"))),
        }
    }
}

// ---------------------------------------------------------------------
// Response codec
// ---------------------------------------------------------------------

fn shard_policy_to_json(policy: &ShardPolicy) -> Json {
    Json::obj([
        ("min_tilings", Json::num_usize(policy.min_tilings)),
        (
            "chunks_per_worker",
            Json::num_usize(policy.chunks_per_worker),
        ),
        (
            "chunk_tilings",
            match policy.chunk_tilings {
                Some(n) => Json::num_usize(n),
                None => Json::Null,
            },
        ),
    ])
}

fn shard_policy_from_json(v: &Json) -> Result<ShardPolicy, ServiceError> {
    let field = |name: &str| {
        v.get(name)
            .and_then(Json::as_usize)
            .ok_or_else(|| ServiceError::protocol(format!("shard policy missing {name:?}")))
    };
    Ok(ShardPolicy {
        min_tilings: field("min_tilings")?,
        chunks_per_worker: field("chunks_per_worker")?,
        chunk_tilings: match v.get("chunk_tilings") {
            None | Some(Json::Null) => None,
            Some(n) => Some(n.as_usize().ok_or_else(|| {
                ServiceError::protocol("\"chunk_tilings\" must be an integer or null")
            })?),
        },
    })
}

fn store_stats_to_json(s: &StoreStats) -> Json {
    Json::obj([
        ("live_entries", Json::num_usize(s.live_entries)),
        ("records", Json::num_u64(s.records)),
        ("dead_records", Json::num_u64(s.dead_records)),
        ("file_bytes", Json::num_u64(s.file_bytes)),
        ("live_value_bytes", Json::num_u64(s.live_value_bytes)),
        ("dead_bytes", Json::num_u64(s.dead_bytes)),
        ("appends", Json::num_u64(s.appends)),
        ("gets", Json::num_u64(s.gets)),
        ("hits", Json::num_u64(s.hits)),
        ("compactions", Json::num_u64(s.compactions)),
        ("recovered_bytes", Json::num_u64(s.recovered_bytes)),
    ])
}

fn store_stats_from_json(v: &Json) -> Result<StoreStats, ServiceError> {
    let int = |name: &str| {
        v.get(name)
            .and_then(Json::as_u64)
            .ok_or_else(|| ServiceError::protocol(format!("store stats missing {name:?}")))
    };
    Ok(StoreStats {
        live_entries: int("live_entries")? as usize,
        records: int("records")?,
        dead_records: int("dead_records")?,
        file_bytes: int("file_bytes")?,
        live_value_bytes: int("live_value_bytes")?,
        dead_bytes: int("dead_bytes")?,
        appends: int("appends")?,
        gets: int("gets")?,
        hits: int("hits")?,
        compactions: int("compactions")?,
        recovered_bytes: int("recovered_bytes")?,
    })
}

impl StatsReport {
    /// The counter fields the legacy `{"cmd":"stats"}` response carried,
    /// in their exact historical order — the byte-compatibility
    /// contract with pre-versioning clients.
    fn legacy_fields(&self) -> Vec<(String, Json)> {
        let stats = &self.cache;
        let mut fields = vec![
            ("hits".to_owned(), Json::num_u64(stats.hits)),
            ("misses".to_owned(), Json::num_u64(stats.misses)),
            ("coalesced".to_owned(), Json::num_u64(stats.coalesced)),
            ("evictions".to_owned(), Json::num_u64(stats.evictions)),
            (
                "cost_evictions".to_owned(),
                Json::num_u64(stats.cost_evictions),
            ),
            ("entries".to_owned(), Json::num_usize(stats.entries)),
            ("bytes".to_owned(), Json::num_usize(stats.bytes)),
            ("hit_rate".to_owned(), Json::Num(stats.hit_rate())),
            ("workers".to_owned(), Json::num_usize(self.workers)),
            ("store_hits".to_owned(), Json::num_u64(stats.store_hits)),
            ("store_misses".to_owned(), Json::num_u64(stats.store_misses)),
            ("store_errors".to_owned(), Json::num_u64(stats.store_errors)),
            (
                "compute_ns_min".to_owned(),
                Json::num_u64(stats.compute_ns_min),
            ),
            (
                "compute_ns_max".to_owned(),
                Json::num_u64(stats.compute_ns_max),
            ),
            (
                "compute_ns_total".to_owned(),
                Json::num_u64(stats.compute_ns_total),
            ),
        ];
        if let Some(s) = &self.store {
            fields.push((
                "store".to_owned(),
                Json::obj([
                    ("live_entries", Json::num_usize(s.live_entries)),
                    ("records", Json::num_u64(s.records)),
                    ("dead_records", Json::num_u64(s.dead_records)),
                    ("file_bytes", Json::num_u64(s.file_bytes)),
                    ("appends", Json::num_u64(s.appends)),
                    ("gets", Json::num_u64(s.gets)),
                    ("hits", Json::num_u64(s.hits)),
                ]),
            ));
        }
        fields
    }

    /// The legacy stats object (counters only).
    pub fn to_legacy_json(&self) -> Json {
        Json::Obj(self.legacy_fields())
    }

    /// The extended (v1) stats object: the legacy counters plus the
    /// bypass/refresh counters and the **active configuration**.
    pub fn to_json(&self) -> Json {
        let mut fields = self.legacy_fields();
        // The store sub-object (when present) stays last for readers;
        // insert the extensions just before it.
        let config_at = fields
            .iter()
            .position(|(k, _)| k == "store")
            .unwrap_or(fields.len());
        let mut extensions = vec![
            ("bypasses".to_owned(), Json::num_u64(self.cache.bypasses)),
            ("refreshes".to_owned(), Json::num_u64(self.cache.refreshes)),
            ("policy".to_owned(), Json::str(self.policy.label())),
            (
                "max_entries".to_owned(),
                match self.max_entries {
                    Some(n) => Json::num_usize(n),
                    None => Json::Null,
                },
            ),
            (
                "max_bytes".to_owned(),
                match self.max_bytes {
                    Some(n) => Json::num_usize(n),
                    None => Json::Null,
                },
            ),
            ("shard".to_owned(), shard_policy_to_json(&self.shard)),
            (
                "protocol_version".to_owned(),
                Json::num_u64(PROTOCOL_VERSION),
            ),
        ];
        // `backends` only appears on router reports: single-node
        // reports stay byte-identical to the pre-cluster protocol.
        if let Some(n) = self.backends {
            extensions.push(("backends".to_owned(), Json::num_usize(n)));
        }
        // Replace the legacy partial store object with the full one.
        if let Some(s) = &self.store {
            if let Some(slot) = fields.iter_mut().find(|(k, _)| k == "store") {
                slot.1 = store_stats_to_json(s);
            }
        }
        fields.splice(config_at..config_at, extensions);
        Json::Obj(fields)
    }

    /// Parse the extended (v1) stats object.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Protocol`] for missing counters or
    /// configuration fields.
    pub fn from_json(v: &Json) -> Result<Self, ServiceError> {
        let int = |name: &str| {
            v.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| ServiceError::protocol(format!("stats missing {name:?}")))
        };
        let opt = |name: &str| match v.get(name) {
            None | Some(Json::Null) => Ok(None),
            Some(n) => n.as_usize().map(Some).ok_or_else(|| {
                ServiceError::protocol(format!("{name:?} must be an integer or null"))
            }),
        };
        let cache = CacheStats {
            hits: int("hits")?,
            misses: int("misses")?,
            coalesced: int("coalesced")?,
            bypasses: int("bypasses")?,
            refreshes: int("refreshes")?,
            evictions: int("evictions")?,
            cost_evictions: int("cost_evictions")?,
            entries: int("entries")? as usize,
            bytes: int("bytes")? as usize,
            store_hits: int("store_hits")?,
            store_misses: int("store_misses")?,
            store_errors: int("store_errors")?,
            compute_ns_min: int("compute_ns_min")?,
            compute_ns_max: int("compute_ns_max")?,
            compute_ns_total: int("compute_ns_total")?,
        };
        let label = v
            .get("policy")
            .and_then(Json::as_str)
            .ok_or_else(|| ServiceError::protocol("stats missing \"policy\""))?;
        let policy = EvictionPolicy::from_label(label)
            .ok_or_else(|| ServiceError::protocol(format!("unknown eviction policy {label:?}")))?;
        Ok(StatsReport {
            cache,
            policy,
            max_entries: opt("max_entries")?,
            max_bytes: opt("max_bytes")?,
            shard: shard_policy_from_json(
                v.get("shard")
                    .ok_or_else(|| ServiceError::protocol("stats missing \"shard\""))?,
            )?,
            workers: int("workers")? as usize,
            store: match v.get("store") {
                None | Some(Json::Null) => None,
                Some(s) => Some(store_stats_from_json(s)?),
            },
            backends: opt("backends")?,
        })
    }
}

fn opt_usize_to_json(v: Option<usize>) -> Json {
    match v {
        Some(n) => Json::num_usize(n),
        None => Json::Null,
    }
}

fn histogram_snapshot_to_json(h: &HistogramSnapshot) -> Json {
    Json::obj([
        ("count", Json::num_u64(h.count)),
        ("sum", Json::num_u64(h.sum)),
        ("min", Json::num_u64(h.min)),
        ("max", Json::num_u64(h.max)),
        // Precomputed quantiles are a reader convenience; decoders
        // ignore them and recompute from the buckets.
        ("p50", Json::num_u64(h.p50())),
        ("p95", Json::num_u64(h.p95())),
        ("p99", Json::num_u64(h.p99())),
        ("p999", Json::num_u64(h.p999())),
        (
            "buckets",
            Json::Arr(
                h.buckets
                    .iter()
                    .map(|&(index, n)| {
                        Json::Arr(vec![Json::num_u64(u64::from(index)), Json::num_u64(n)])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn histogram_snapshot_from_json(v: &Json) -> Result<HistogramSnapshot, ServiceError> {
    let int = |name: &str| {
        v.get(name)
            .and_then(Json::as_u64)
            .ok_or_else(|| ServiceError::protocol(format!("histogram missing {name:?}")))
    };
    let buckets = v
        .get("buckets")
        .and_then(Json::as_array)
        .ok_or_else(|| ServiceError::protocol("histogram missing \"buckets\""))?
        .iter()
        .map(|pair| {
            let pair = pair.as_array().filter(|p| p.len() == 2).ok_or_else(|| {
                ServiceError::protocol("histogram buckets must be [index, count] pairs")
            })?;
            let index = pair[0]
                .as_u64()
                .ok_or_else(|| ServiceError::protocol("bucket index must be an integer"))?;
            let count = pair[1]
                .as_u64()
                .ok_or_else(|| ServiceError::protocol("bucket count must be an integer"))?;
            Ok((index as u32, count))
        })
        .collect::<Result<Vec<_>, ServiceError>>()?;
    Ok(HistogramSnapshot {
        count: int("count")?,
        sum: int("sum")?,
        min: int("min")?,
        max: int("max")?,
        buckets,
    })
}

fn slow_entry_to_json(e: &SlowEntry) -> Json {
    Json::obj([
        ("trace_id", Json::num_u64(e.trace_id)),
        ("total_ns", Json::num_u64(e.total_ns)),
        (
            "stages",
            Json::Arr(
                e.stages
                    .iter()
                    .map(|(name, ns)| Json::Arr(vec![Json::str(name), Json::num_u64(*ns)]))
                    .collect(),
            ),
        ),
    ])
}

fn slow_entry_from_json(v: &Json) -> Result<SlowEntry, ServiceError> {
    let int = |name: &str| {
        v.get(name)
            .and_then(Json::as_u64)
            .ok_or_else(|| ServiceError::protocol(format!("slow entry missing {name:?}")))
    };
    let stages =
        v.get("stages")
            .and_then(Json::as_array)
            .ok_or_else(|| ServiceError::protocol("slow entry missing \"stages\""))?
            .iter()
            .map(|pair| {
                let pair = pair.as_array().filter(|p| p.len() == 2).ok_or_else(|| {
                    ServiceError::protocol("slow stages must be [name, ns] pairs")
                })?;
                let name = pair[0]
                    .as_str()
                    .ok_or_else(|| ServiceError::protocol("stage name must be a string"))?;
                let ns = pair[1]
                    .as_u64()
                    .ok_or_else(|| ServiceError::protocol("stage time must be an integer"))?;
                Ok((name.to_owned(), ns))
            })
            .collect::<Result<Vec<_>, ServiceError>>()?;
    Ok(SlowEntry {
        trace_id: int("trace_id")?,
        total_ns: int("total_ns")?,
        stages,
    })
}

fn metrics_snapshot_to_json(snapshot: &MetricsSnapshot) -> Json {
    Json::obj([
        (
            "counters",
            Json::Obj(
                snapshot
                    .counters
                    .iter()
                    .map(|(name, v)| (name.clone(), Json::num_u64(*v)))
                    .collect(),
            ),
        ),
        (
            "gauges",
            Json::Obj(
                snapshot
                    .gauges
                    .iter()
                    .map(|(name, v)| (name.clone(), Json::Num(*v as f64)))
                    .collect(),
            ),
        ),
        (
            "histograms",
            Json::Obj(
                snapshot
                    .histograms
                    .iter()
                    .map(|(name, h)| (name.clone(), histogram_snapshot_to_json(h)))
                    .collect(),
            ),
        ),
    ])
}

fn metrics_snapshot_from_json(v: &Json) -> Result<MetricsSnapshot, ServiceError> {
    let obj = |name: &str| match v.get(name) {
        Some(Json::Obj(pairs)) => Ok(pairs),
        _ => Err(ServiceError::protocol(format!(
            "metrics missing object {name:?}"
        ))),
    };
    let counters = obj("counters")?
        .iter()
        .map(|(name, val)| {
            val.as_u64().map(|n| (name.clone(), n)).ok_or_else(|| {
                ServiceError::protocol(format!("counter {name:?} must be an integer"))
            })
        })
        .collect::<Result<Vec<_>, _>>()?;
    let gauges = obj("gauges")?
        .iter()
        .map(|(name, val)| {
            val.as_f64()
                .filter(|n| n.fract() == 0.0)
                .map(|n| (name.clone(), n as i64))
                .ok_or_else(|| ServiceError::protocol(format!("gauge {name:?} must be an integer")))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let histograms = obj("histograms")?
        .iter()
        .map(|(name, val)| Ok((name.clone(), histogram_snapshot_from_json(val)?)))
        .collect::<Result<Vec<_>, ServiceError>>()?;
    Ok(MetricsSnapshot {
        counters,
        gauges,
        histograms,
    })
}

fn metrics_report_fields(report: &MetricsReport) -> Vec<(String, Json)> {
    let mut fields = match metrics_snapshot_to_json(&report.snapshot) {
        Json::Obj(pairs) => pairs,
        _ => unreachable!("metrics_snapshot_to_json builds an object"),
    };
    fields.push((
        "slow".to_owned(),
        Json::Arr(report.slow.iter().map(slow_entry_to_json).collect()),
    ));
    fields
}

fn metrics_report_from_json(v: &Json) -> Result<MetricsReport, ServiceError> {
    let slow = v
        .get("slow")
        .and_then(Json::as_array)
        .ok_or_else(|| ServiceError::protocol("metrics missing \"slow\""))?
        .iter()
        .map(slow_entry_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(MetricsReport {
        snapshot: metrics_snapshot_from_json(v)?,
        slow,
    })
}

fn snapshot_history_fields(history: &SnapshotHistory) -> Vec<(String, Json)> {
    vec![
        ("base".to_owned(), metrics_snapshot_to_json(&history.base)),
        (
            "samples".to_owned(),
            Json::Arr(
                history
                    .samples
                    .iter()
                    .map(|s| {
                        Json::obj([
                            ("uptime_ms", Json::num_u64(s.uptime_ms)),
                            ("window_ms", Json::num_u64(s.window_ms)),
                            ("delta", metrics_snapshot_to_json(&s.delta)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "cumulative".to_owned(),
            metrics_snapshot_to_json(&history.cumulative),
        ),
    ]
}

fn snapshot_history_from_json(v: &Json) -> Result<SnapshotHistory, ServiceError> {
    let samples = v
        .get("samples")
        .and_then(Json::as_array)
        .ok_or_else(|| ServiceError::protocol("history missing \"samples\""))?
        .iter()
        .map(|s| {
            let int = |name: &str| {
                s.get(name)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| ServiceError::protocol(format!("sample missing {name:?}")))
            };
            Ok(SnapshotSample {
                uptime_ms: int("uptime_ms")?,
                window_ms: int("window_ms")?,
                delta: metrics_snapshot_from_json(
                    s.get("delta")
                        .ok_or_else(|| ServiceError::protocol("sample missing \"delta\""))?,
                )?,
            })
        })
        .collect::<Result<Vec<_>, ServiceError>>()?;
    Ok(SnapshotHistory {
        base: metrics_snapshot_from_json(
            v.get("base")
                .ok_or_else(|| ServiceError::protocol("history missing \"base\""))?,
        )?,
        samples,
        cumulative: metrics_snapshot_from_json(
            v.get("cumulative")
                .ok_or_else(|| ServiceError::protocol("history missing \"cumulative\""))?,
        )?,
    })
}

fn persisted_trace_to_json(t: &PersistedSlowTrace) -> Json {
    let mut pairs = vec![
        ("seq".to_owned(), Json::num_u64(t.seq)),
        ("unix_ms".to_owned(), Json::num_u64(t.unix_ms)),
    ];
    match slow_entry_to_json(&t.entry) {
        Json::Obj(entry) => pairs.extend(entry),
        _ => unreachable!("slow_entry_to_json builds an object"),
    }
    Json::Obj(pairs)
}

fn persisted_trace_from_json(v: &Json) -> Result<PersistedSlowTrace, ServiceError> {
    let int = |name: &str| {
        v.get(name)
            .and_then(Json::as_u64)
            .ok_or_else(|| ServiceError::protocol(format!("slow trace missing {name:?}")))
    };
    Ok(PersistedSlowTrace {
        seq: int("seq")?,
        unix_ms: int("unix_ms")?,
        entry: slow_entry_from_json(v)?,
    })
}

fn overload_config_to_json(c: &OverloadConfig) -> Json {
    Json::obj([
        ("enabled", Json::Bool(c.enabled)),
        ("high_ms", Json::num_u64(c.high_ms)),
        ("low_ms", Json::num_u64(c.low_ms)),
        (
            "recover_windows",
            Json::num_u64(u64::from(c.recover_windows)),
        ),
        ("retry_after_ms", Json::num_u64(c.retry_after_ms)),
        (
            "max_inflight",
            match c.max_inflight {
                Some(n) => Json::num_u64(n),
                None => Json::Null,
            },
        ),
    ])
}

fn overload_config_from_json(v: &Json) -> Result<OverloadConfig, ServiceError> {
    let int = |name: &str| {
        v.get(name)
            .and_then(Json::as_u64)
            .ok_or_else(|| ServiceError::protocol(format!("overload config missing {name:?}")))
    };
    let enabled = match v.get("enabled") {
        Some(Json::Bool(b)) => *b,
        _ => {
            return Err(ServiceError::protocol(
                "overload config missing boolean \"enabled\"",
            ))
        }
    };
    Ok(OverloadConfig {
        enabled,
        high_ms: int("high_ms")?,
        low_ms: int("low_ms")?,
        recover_windows: u32::try_from(int("recover_windows")?)
            .map_err(|_| ServiceError::protocol("\"recover_windows\" is out of range"))?,
        retry_after_ms: int("retry_after_ms")?,
        max_inflight: match v.get("max_inflight") {
            None | Some(Json::Null) => None,
            Some(n) => Some(n.as_u64().ok_or_else(|| {
                ServiceError::protocol("\"max_inflight\" must be an integer or null")
            })?),
        },
    })
}

fn legacy_error(id: Option<u64>, message: &str) -> Json {
    let mut pairs = vec![("ok".to_owned(), Json::Bool(false))];
    if let Some(id) = id {
        pairs.push(("id".to_owned(), Json::num_u64(id)));
    }
    pairs.push(("error".to_owned(), Json::str(message)));
    Json::Obj(pairs)
}

fn typed_ok(kind: &str, id: Option<u64>, rest: Vec<(String, Json)>) -> Json {
    let mut pairs = vec![
        ("type".to_owned(), Json::str(kind)),
        ("ok".to_owned(), Json::Bool(true)),
    ];
    push_id(&mut pairs, id);
    pairs.extend(rest);
    Json::Obj(pairs)
}

impl Response {
    /// Render for the wire in the given dialect. Legacy renderings are
    /// byte-identical to the pre-versioning server's responses; typed
    /// renderings carry a `"type"` field. Admin responses have no
    /// legacy form (the old protocol had no such verbs) and render
    /// typed in both dialects.
    pub fn render(&self, dialect: Dialect) -> Json {
        match (self, dialect) {
            (Response::Pong { .. }, Dialect::Legacy) => {
                Json::obj([("ok", Json::Bool(true)), ("pong", Json::Bool(true))])
            }
            (Response::Pong { id }, Dialect::V1) => typed_ok("pong", *id, vec![]),
            (Response::Stats { report, .. }, Dialect::Legacy) => {
                Json::obj([("ok", Json::Bool(true)), ("stats", report.to_legacy_json())])
            }
            (Response::Stats { id, report }, Dialect::V1) => {
                typed_ok("stats", *id, vec![("stats".to_owned(), report.to_json())])
            }
            (Response::Shutdown { .. }, Dialect::Legacy) => {
                Json::obj([("ok", Json::Bool(true)), ("shutdown", Json::Bool(true))])
            }
            (Response::Shutdown { id }, Dialect::V1) => typed_ok(
                "shutdown",
                *id,
                vec![("shutdown".to_owned(), Json::Bool(true))],
            ),
            (Response::Job { result }, Dialect::Legacy) => Json::obj([
                ("ok", Json::Bool(true)),
                ("id", Json::num_u64(result.id)),
                ("result", result.to_json()),
            ]),
            (Response::Job { result }, Dialect::V1) => Json::obj([
                ("type", Json::str("job")),
                ("ok", Json::Bool(true)),
                ("id", Json::num_u64(result.id)),
                ("result", result.to_json()),
            ]),
            (Response::Error { id, message }, Dialect::Legacy) => legacy_error(*id, message),
            (Response::Error { id, message }, Dialect::V1) => {
                let mut pairs = vec![
                    ("type".to_owned(), Json::str("error")),
                    ("ok".to_owned(), Json::Bool(false)),
                ];
                push_id(&mut pairs, *id);
                pairs.push(("error".to_owned(), Json::str(message)));
                Json::Obj(pairs)
            }
            (
                Response::Hello {
                    version,
                    server,
                    capabilities,
                },
                _,
            ) => typed_ok(
                "hello",
                None,
                vec![
                    ("version".to_owned(), Json::num_u64(*version)),
                    ("server".to_owned(), Json::str(server)),
                    (
                        "capabilities".to_owned(),
                        Json::Arr(capabilities.iter().map(|c| Json::str(c.as_str())).collect()),
                    ),
                ],
            ),
            (
                Response::PolicySet {
                    id,
                    policy,
                    previous,
                },
                _,
            ) => typed_ok(
                "policy-set",
                *id,
                vec![
                    ("policy".to_owned(), Json::str(policy.label())),
                    ("previous".to_owned(), Json::str(previous.label())),
                ],
            ),
            (
                Response::ShardPolicySet {
                    id,
                    policy,
                    previous,
                },
                _,
            ) => typed_ok(
                "shard-policy-set",
                *id,
                vec![
                    ("policy".to_owned(), shard_policy_to_json(policy)),
                    ("previous".to_owned(), shard_policy_to_json(previous)),
                ],
            ),
            (Response::CacheCleared { id }, _) => typed_ok("cache-cleared", *id, vec![]),
            (Response::CacheWarmed { id, loaded }, _) => typed_ok(
                "cache-warmed",
                *id,
                vec![("loaded".to_owned(), Json::num_usize(*loaded))],
            ),
            (Response::StoreCompacted { id, report }, _) => typed_ok(
                "store-compacted",
                *id,
                vec![
                    (
                        "live_records".to_owned(),
                        Json::num_u64(report.live_records),
                    ),
                    (
                        "dropped_records".to_owned(),
                        Json::num_u64(report.dropped_records),
                    ),
                    (
                        "bytes_before".to_owned(),
                        Json::num_u64(report.bytes_before),
                    ),
                    ("bytes_after".to_owned(), Json::num_u64(report.bytes_after)),
                ],
            ),
            (Response::Metrics { id, report }, _) => {
                typed_ok("metrics", *id, metrics_report_fields(report))
            }
            (Response::MetricsHistory { id, history }, _) => {
                typed_ok("metrics-history", *id, snapshot_history_fields(history))
            }
            (Response::SlowTraces { id, traces }, _) => typed_ok(
                "slow-traces",
                *id,
                vec![(
                    "traces".to_owned(),
                    Json::Arr(traces.iter().map(persisted_trace_to_json).collect()),
                )],
            ),
            (
                Response::SlowLogSet {
                    id,
                    slow_ms,
                    cap,
                    previous_ms,
                    previous_cap,
                },
                _,
            ) => typed_ok(
                "slow-log-set",
                *id,
                vec![
                    (
                        "slow_ms".to_owned(),
                        match slow_ms {
                            Some(ms) => Json::num_u64(*ms),
                            None => Json::Null,
                        },
                    ),
                    ("cap".to_owned(), Json::num_usize(*cap)),
                    (
                        "previous_ms".to_owned(),
                        match previous_ms {
                            Some(ms) => Json::num_u64(*ms),
                            None => Json::Null,
                        },
                    ),
                    ("previous_cap".to_owned(), Json::num_usize(*previous_cap)),
                ],
            ),
            (Response::FaultsSet { id, spec }, _) => typed_ok(
                "faults-set",
                *id,
                vec![(
                    "spec".to_owned(),
                    match spec {
                        Some(s) => Json::str(s),
                        None => Json::Null,
                    },
                )],
            ),
            (
                Response::OverloadSet {
                    id,
                    config,
                    previous,
                },
                _,
            ) => typed_ok(
                "overload-set",
                *id,
                vec![
                    ("config".to_owned(), overload_config_to_json(config)),
                    ("previous".to_owned(), overload_config_to_json(previous)),
                ],
            ),
            (Response::Overloaded { id, retry_after_ms }, Dialect::Legacy) => legacy_error(
                *id,
                &ServiceError::Overloaded {
                    retry_after_ms: *retry_after_ms,
                }
                .to_string(),
            ),
            (Response::Overloaded { id, retry_after_ms }, Dialect::V1) => {
                let mut pairs = vec![
                    ("type".to_owned(), Json::str("overloaded")),
                    ("ok".to_owned(), Json::Bool(false)),
                ];
                push_id(&mut pairs, *id);
                pairs.push(("retry_after_ms".to_owned(), Json::num_u64(*retry_after_ms)));
                pairs.push((
                    "error".to_owned(),
                    Json::str(
                        ServiceError::Overloaded {
                            retry_after_ms: *retry_after_ms,
                        }
                        .to_string(),
                    ),
                ));
                Json::Obj(pairs)
            }
            (Response::DeadlineExceeded { id, deadline_ms }, Dialect::Legacy) => legacy_error(
                *id,
                &ServiceError::DeadlineExceeded {
                    deadline_ms: *deadline_ms,
                }
                .to_string(),
            ),
            (Response::DeadlineExceeded { id, deadline_ms }, Dialect::V1) => {
                let mut pairs = vec![
                    ("type".to_owned(), Json::str("deadline_exceeded")),
                    ("ok".to_owned(), Json::Bool(false)),
                ];
                push_id(&mut pairs, *id);
                pairs.push(("deadline_ms".to_owned(), Json::num_u64(*deadline_ms)));
                pairs.push((
                    "error".to_owned(),
                    Json::str(
                        ServiceError::DeadlineExceeded {
                            deadline_ms: *deadline_ms,
                        }
                        .to_string(),
                    ),
                ));
                Json::Obj(pairs)
            }
            (
                Response::BoundsSet {
                    id,
                    max_entries,
                    max_bytes,
                    previous_entries,
                    previous_bytes,
                    evicted,
                },
                _,
            ) => typed_ok(
                "bounds-set",
                *id,
                vec![
                    ("max_entries".to_owned(), opt_usize_to_json(*max_entries)),
                    ("max_bytes".to_owned(), opt_usize_to_json(*max_bytes)),
                    (
                        "previous_entries".to_owned(),
                        opt_usize_to_json(*previous_entries),
                    ),
                    (
                        "previous_bytes".to_owned(),
                        opt_usize_to_json(*previous_bytes),
                    ),
                    ("evicted".to_owned(), Json::num_u64(*evicted)),
                ],
            ),
        }
    }

    /// Decode a typed (v1) response. Legacy responses have no `"type"`
    /// field and are parsed by their own pre-versioning readers.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Protocol`] for unknown types or missing
    /// fields.
    pub fn decode(v: &Json) -> Result<Response, ServiceError> {
        let kind = v
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| ServiceError::protocol("response carries no \"type\""))?;
        let id = v.get("id").and_then(Json::as_u64);
        let policy_field = |name: &str| {
            let label = v
                .get(name)
                .and_then(Json::as_str)
                .ok_or_else(|| ServiceError::protocol(format!("response missing {name:?}")))?;
            EvictionPolicy::from_label(label)
                .ok_or_else(|| ServiceError::protocol(format!("unknown eviction policy {label:?}")))
        };
        let int = |name: &str| {
            v.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| ServiceError::protocol(format!("response missing {name:?}")))
        };
        match kind {
            "hello" => Ok(Response::Hello {
                version: int("version")?,
                server: v
                    .get("server")
                    .and_then(Json::as_str)
                    .ok_or_else(|| ServiceError::protocol("hello missing \"server\""))?
                    .to_owned(),
                capabilities: v
                    .get("capabilities")
                    .and_then(Json::as_array)
                    .ok_or_else(|| ServiceError::protocol("hello missing \"capabilities\""))?
                    .iter()
                    .map(|c| {
                        c.as_str()
                            .map(str::to_owned)
                            .ok_or_else(|| ServiceError::protocol("capabilities must be strings"))
                    })
                    .collect::<Result<Vec<_>, _>>()?,
            }),
            "pong" => Ok(Response::Pong { id }),
            "stats" => Ok(Response::Stats {
                id,
                report: StatsReport::from_json(
                    v.get("stats")
                        .ok_or_else(|| ServiceError::protocol("response missing \"stats\""))?,
                )?,
            }),
            "shutdown" => Ok(Response::Shutdown { id }),
            "policy-set" => Ok(Response::PolicySet {
                id,
                policy: policy_field("policy")?,
                previous: policy_field("previous")?,
            }),
            "shard-policy-set" => Ok(Response::ShardPolicySet {
                id,
                policy: shard_policy_from_json(
                    v.get("policy")
                        .ok_or_else(|| ServiceError::protocol("response missing \"policy\""))?,
                )?,
                previous: shard_policy_from_json(
                    v.get("previous")
                        .ok_or_else(|| ServiceError::protocol("response missing \"previous\""))?,
                )?,
            }),
            "cache-cleared" => Ok(Response::CacheCleared { id }),
            "cache-warmed" => Ok(Response::CacheWarmed {
                id,
                loaded: int("loaded")? as usize,
            }),
            "store-compacted" => Ok(Response::StoreCompacted {
                id,
                report: CompactReport {
                    live_records: int("live_records")?,
                    dropped_records: int("dropped_records")?,
                    bytes_before: int("bytes_before")?,
                    bytes_after: int("bytes_after")?,
                },
            }),
            "metrics" => Ok(Response::Metrics {
                id,
                report: metrics_report_from_json(v)?,
            }),
            "metrics-history" => Ok(Response::MetricsHistory {
                id,
                history: snapshot_history_from_json(v)?,
            }),
            "slow-traces" => Ok(Response::SlowTraces {
                id,
                traces: v
                    .get("traces")
                    .and_then(Json::as_array)
                    .ok_or_else(|| ServiceError::protocol("response missing \"traces\""))?
                    .iter()
                    .map(persisted_trace_from_json)
                    .collect::<Result<Vec<_>, _>>()?,
            }),
            "slow-log-set" => {
                let opt_ms = |name: &str| match v.get(name) {
                    None | Some(Json::Null) => Ok(None),
                    Some(n) => n.as_u64().map(Some).ok_or_else(|| {
                        ServiceError::protocol(format!("{name:?} must be an integer or null"))
                    }),
                };
                Ok(Response::SlowLogSet {
                    id,
                    slow_ms: opt_ms("slow_ms")?,
                    cap: int("cap")? as usize,
                    previous_ms: opt_ms("previous_ms")?,
                    previous_cap: int("previous_cap")? as usize,
                })
            }
            "bounds-set" => {
                let opt = |name: &str| match v.get(name) {
                    None | Some(Json::Null) => Ok(None),
                    Some(n) => n.as_usize().map(Some).ok_or_else(|| {
                        ServiceError::protocol(format!("{name:?} must be an integer or null"))
                    }),
                };
                Ok(Response::BoundsSet {
                    id,
                    max_entries: opt("max_entries")?,
                    max_bytes: opt("max_bytes")?,
                    previous_entries: opt("previous_entries")?,
                    previous_bytes: opt("previous_bytes")?,
                    evicted: int("evicted")?,
                })
            }
            "faults-set" => Ok(Response::FaultsSet {
                id,
                spec: match v.get("spec") {
                    None | Some(Json::Null) => None,
                    Some(s) => Some(
                        s.as_str()
                            .ok_or_else(|| {
                                ServiceError::protocol("\"spec\" must be a string or null")
                            })?
                            .to_owned(),
                    ),
                },
            }),
            "overload-set" => Ok(Response::OverloadSet {
                id,
                config: overload_config_from_json(
                    v.get("config")
                        .ok_or_else(|| ServiceError::protocol("response missing \"config\""))?,
                )?,
                previous: overload_config_from_json(
                    v.get("previous")
                        .ok_or_else(|| ServiceError::protocol("response missing \"previous\""))?,
                )?,
            }),
            "overloaded" => Ok(Response::Overloaded {
                id,
                retry_after_ms: int("retry_after_ms")?,
            }),
            "deadline_exceeded" => Ok(Response::DeadlineExceeded {
                id,
                deadline_ms: int("deadline_ms")?,
            }),
            "job" => Ok(Response::Job {
                result: JobResult::from_json(
                    v.get("result")
                        .ok_or_else(|| ServiceError::protocol("response missing \"result\""))?,
                )?,
            }),
            "error" => Ok(Response::Error {
                id,
                message: v
                    .get("error")
                    .and_then(Json::as_str)
                    .ok_or_else(|| ServiceError::protocol("error response missing \"error\""))?
                    .to_owned(),
            }),
            other => Err(ServiceError::protocol(format!(
                "unknown response type {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::EngineSpec;
    use drmap_cnn::network::Network;
    use drmap_telemetry::MetricsRegistry;

    #[test]
    fn typed_requests_round_trip() {
        let requests = vec![
            Request::Hello {
                version: 1,
                client: Some("test/1".into()),
            },
            Request::Ping { id: Some(7) },
            Request::Stats { id: None },
            Request::Shutdown { id: Some(0) },
            Request::SetPolicy {
                id: Some(3),
                policy: EvictionPolicy::Cost,
            },
            Request::SetShardPolicy {
                id: None,
                update: ShardPolicyUpdate {
                    min_tilings: Some(32),
                    chunks_per_worker: None,
                    chunk_tilings: Some(0),
                },
            },
            Request::CacheClear { id: Some(9) },
            Request::CacheWarm {
                id: None,
                limit: Some(100),
            },
            Request::StoreCompact {
                id: Some(2),
                auto_ratio: None,
            },
            Request::StoreCompact {
                id: None,
                auto_ratio: Some(0.25),
            },
            Request::Metrics { id: Some(11) },
            Request::SetBounds {
                id: Some(12),
                update: BoundsUpdate {
                    max_entries: Some(64),
                    max_bytes: Some(0),
                },
            },
            Request::MetricsHistory { id: Some(13) },
            Request::SlowTraces {
                id: Some(14),
                limit: Some(5),
            },
            Request::SlowTraces {
                id: None,
                limit: None,
            },
            Request::SetSlowLog {
                id: Some(15),
                slow_ms: Some(0),
                cap: Some(64),
            },
            Request::SetSlowLog {
                id: None,
                slow_ms: None,
                cap: Some(8),
            },
            Request::SetFaults {
                id: Some(16),
                spec: Some("seed=7,store-fail=0.1".into()),
            },
            Request::SetFaults {
                id: None,
                spec: None,
            },
            Request::SetOverload {
                id: Some(17),
                update: OverloadUpdate {
                    enabled: Some(true),
                    high_ms: Some(800),
                    low_ms: None,
                    recover_windows: Some(4),
                    retry_after_ms: None,
                    max_inflight: Some(0),
                },
            },
            Request::Submit(JobSpec::network(5, EngineSpec::default(), Network::tiny())),
        ];
        for request in requests {
            let rendered = request.to_json().render();
            let (decoded, dialect) = Request::decode(&Json::parse(&rendered).unwrap())
                .unwrap_or_else(|e| {
                    panic!("failed to decode {rendered}: {e:?}");
                });
            assert_eq!(dialect, Dialect::V1, "{rendered}");
            assert_eq!(decoded, request, "{rendered}");
        }
    }

    #[test]
    fn legacy_requests_decode_through_the_shim() {
        let (req, dialect) = Request::decode(&Json::parse(r#"{"cmd":"ping"}"#).unwrap()).unwrap();
        assert_eq!(req, Request::Ping { id: None });
        assert_eq!(dialect, Dialect::Legacy);

        let (req, dialect) =
            Request::decode(&Json::parse(r#"{"id":4,"network":{"model":"tiny"}}"#).unwrap())
                .unwrap();
        assert!(matches!(req, Request::Submit(spec) if spec.id == 4));
        assert_eq!(dialect, Dialect::Legacy);

        let err = Request::decode(&Json::parse(r#"{"cmd":"reboot","id":6}"#).unwrap()).unwrap_err();
        assert_eq!(err.dialect, Dialect::Legacy);
        assert_eq!(err.id, Some(6));
        assert_eq!(err.message, "unknown command \"reboot\"");
    }

    #[test]
    fn shard_policy_updates_merge_field_by_field() {
        let current = ShardPolicy {
            min_tilings: 64,
            chunks_per_worker: 3,
            chunk_tilings: Some(16),
        };
        let keep_all = ShardPolicyUpdate::default();
        assert_eq!(keep_all.apply(current), current);
        let retune = ShardPolicyUpdate {
            min_tilings: Some(128),
            chunks_per_worker: None,
            chunk_tilings: Some(0), // clears the override
        };
        assert_eq!(
            retune.apply(current),
            ShardPolicy {
                min_tilings: 128,
                chunks_per_worker: 3,
                chunk_tilings: None,
            }
        );
    }

    #[test]
    fn legacy_renderings_match_the_pre_versioning_bytes() {
        assert_eq!(
            Response::Pong { id: Some(3) }
                .render(Dialect::Legacy)
                .render(),
            r#"{"ok":true,"pong":true}"#
        );
        assert_eq!(
            Response::Shutdown { id: None }
                .render(Dialect::Legacy)
                .render(),
            r#"{"ok":true,"shutdown":true}"#
        );
        assert_eq!(
            Response::Error {
                id: Some(6),
                message: "unknown command \"reboot\"".into()
            }
            .render(Dialect::Legacy)
            .render(),
            r#"{"ok":false,"id":6,"error":"unknown command \"reboot\""}"#
        );
        // A fresh report renders the exact legacy stats field set.
        let report = StatsReport {
            cache: CacheStats::default(),
            policy: EvictionPolicy::Lru,
            max_entries: None,
            max_bytes: None,
            shard: ShardPolicy::default(),
            workers: 2,
            store: None,
            backends: None,
        };
        assert_eq!(
            Response::Stats { id: None, report }
                .render(Dialect::Legacy)
                .render(),
            "{\"ok\":true,\"stats\":{\"hits\":0,\"misses\":0,\"coalesced\":0,\
             \"evictions\":0,\"cost_evictions\":0,\"entries\":0,\"bytes\":0,\
             \"hit_rate\":0,\"workers\":2,\"store_hits\":0,\"store_misses\":0,\
             \"store_errors\":0,\"compute_ns_min\":0,\"compute_ns_max\":0,\
             \"compute_ns_total\":0}}"
        );
    }

    #[test]
    fn typed_responses_round_trip() {
        let report = StatsReport {
            cache: CacheStats {
                hits: 10,
                misses: 4,
                coalesced: 2,
                bypasses: 1,
                refreshes: 1,
                evictions: 3,
                cost_evictions: 2,
                entries: 5,
                bytes: 4096,
                store_hits: 1,
                store_misses: 3,
                store_errors: 0,
                compute_ns_min: 1_000,
                compute_ns_max: 9_000,
                compute_ns_total: 20_000,
            },
            policy: EvictionPolicy::Cost,
            max_entries: Some(512),
            max_bytes: None,
            shard: ShardPolicy {
                min_tilings: 32,
                chunks_per_worker: 4,
                chunk_tilings: Some(8),
            },
            workers: 8,
            store: Some(StoreStats {
                live_entries: 5,
                records: 9,
                dead_records: 4,
                file_bytes: 8192,
                live_value_bytes: 4000,
                dead_bytes: 2000,
                appends: 9,
                gets: 12,
                hits: 7,
                compactions: 1,
                recovered_bytes: 0,
            }),
            backends: Some(3),
        };
        let responses = vec![
            Response::Hello {
                version: PROTOCOL_VERSION,
                server: "drmap-service/test".into(),
                capabilities: capabilities(true),
            },
            Response::Pong { id: Some(1) },
            Response::Stats {
                id: Some(2),
                report,
            },
            Response::Shutdown { id: None },
            Response::PolicySet {
                id: Some(4),
                policy: EvictionPolicy::Cost,
                previous: EvictionPolicy::Lru,
            },
            Response::ShardPolicySet {
                id: None,
                policy: ShardPolicy::default(),
                previous: ShardPolicy {
                    chunk_tilings: Some(4),
                    ..ShardPolicy::default()
                },
            },
            Response::CacheCleared { id: Some(5) },
            Response::CacheWarmed {
                id: None,
                loaded: 42,
            },
            Response::StoreCompacted {
                id: Some(6),
                report: CompactReport {
                    live_records: 5,
                    dropped_records: 4,
                    bytes_before: 8192,
                    bytes_after: 4501,
                },
            },
            Response::Metrics {
                id: Some(8),
                report: {
                    let registry = MetricsRegistry::new();
                    registry.counter("jobs_total").add(3);
                    registry.gauge("connections_open").set(2);
                    let h = registry.histogram("request_ns");
                    h.record(1_000);
                    h.record(2_000_000);
                    MetricsReport {
                        snapshot: registry.snapshot(),
                        slow: vec![SlowEntry {
                            trace_id: 9,
                            total_ns: 2_000_000,
                            stages: vec![("explore".to_owned(), 1_500_000)],
                        }],
                    }
                },
            },
            Response::BoundsSet {
                id: Some(9),
                max_entries: Some(64),
                max_bytes: None,
                previous_entries: Some(128),
                previous_bytes: Some(1 << 20),
                evicted: 17,
            },
            Response::MetricsHistory {
                id: Some(10),
                history: {
                    let registry = MetricsRegistry::new();
                    let ring = drmap_telemetry::SnapshotRing::new(2);
                    let c = registry.counter("jobs_total");
                    for step in 1..=3u64 {
                        c.add(step);
                        registry.histogram("request_ns").record(step * 1_000);
                        ring.record(registry.snapshot(), registry.uptime_ms());
                    }
                    ring.history()
                },
            },
            Response::SlowTraces {
                id: Some(11),
                traces: vec![PersistedSlowTrace {
                    seq: 3,
                    unix_ms: 1_700_000_000_000,
                    entry: SlowEntry {
                        trace_id: 42,
                        total_ns: 7_000_000,
                        stages: vec![("explore".to_owned(), 6_000_000)],
                    },
                }],
            },
            Response::SlowTraces {
                id: None,
                traces: vec![],
            },
            Response::SlowLogSet {
                id: Some(12),
                slow_ms: Some(25),
                cap: 64,
                previous_ms: None,
                previous_cap: 32,
            },
            Response::FaultsSet {
                id: Some(13),
                spec: Some("seed=7,store-fail=0.1".into()),
            },
            Response::FaultsSet {
                id: None,
                spec: None,
            },
            Response::OverloadSet {
                id: Some(14),
                config: crate::overload::OverloadConfig {
                    enabled: true,
                    high_ms: 800,
                    low_ms: 400,
                    recover_windows: 4,
                    retry_after_ms: 250,
                    max_inflight: Some(32),
                },
                previous: crate::overload::OverloadConfig::default(),
            },
            Response::Overloaded {
                id: Some(15),
                retry_after_ms: 1_000,
            },
            Response::DeadlineExceeded {
                id: Some(16),
                deadline_ms: 250,
            },
            Response::Error {
                id: Some(7),
                message: "no store attached".into(),
            },
        ];
        for response in responses {
            let rendered = response.render(Dialect::V1).render();
            let decoded = Response::decode(&Json::parse(&rendered).unwrap())
                .unwrap_or_else(|e| panic!("failed to decode {rendered}: {e}"));
            assert_eq!(decoded, response, "{rendered}");
        }
    }

    #[test]
    fn capability_list_reflects_the_store() {
        assert!(!capabilities(false).contains(&"store".to_owned()));
        assert!(capabilities(true).contains(&"store".to_owned()));
        assert!(capabilities(false).contains(&"admin".to_owned()));
        assert!(capabilities(false).contains(&"metrics".to_owned()));
        assert!(capabilities(false).contains(&"set-bounds".to_owned()));
        assert!(capabilities(false).contains(&"metrics-history".to_owned()));
        // Persisted post-mortems need a store to live in.
        assert!(!capabilities(false).contains(&"slow-traces".to_owned()));
        assert!(capabilities(true).contains(&"slow-traces".to_owned()));
    }

    #[test]
    fn overload_updates_merge_and_sanitize_field_by_field() {
        let current = crate::overload::OverloadConfig::default();
        assert!(OverloadUpdate::default().is_empty());
        assert_eq!(OverloadUpdate::default().apply(current), current);
        let update = OverloadUpdate {
            enabled: Some(true),
            high_ms: Some(200),
            low_ms: None,
            recover_windows: None,
            retry_after_ms: Some(100),
            max_inflight: Some(16),
        };
        assert!(!update.is_empty());
        let applied = update.apply(current);
        assert!(applied.enabled);
        assert_eq!(applied.high_ms, 200);
        // low_ms kept its default 500 but sanitization clamps it down
        // to the new high watermark.
        assert_eq!(applied.low_ms, 200);
        assert_eq!(applied.recover_windows, current.recover_windows);
        assert_eq!(applied.retry_after_ms, 100);
        assert_eq!(applied.max_inflight, Some(16));
        // 0 clears the cap.
        let cleared = OverloadUpdate {
            max_inflight: Some(0),
            ..OverloadUpdate::default()
        }
        .apply(applied);
        assert_eq!(cleared.max_inflight, None);
        // Shed responses carry the typed payloads in the legacy
        // dialect too, rendered as ordinary legacy errors.
        assert_eq!(
            Response::Overloaded {
                id: Some(3),
                retry_after_ms: 250
            }
            .render(Dialect::Legacy)
            .render(),
            r#"{"ok":false,"id":3,"error":"server overloaded; retry after 250 ms"}"#
        );
        assert_eq!(
            Response::DeadlineExceeded {
                id: None,
                deadline_ms: 40
            }
            .render(Dialect::Legacy)
            .render(),
            r#"{"ok":false,"error":"deadline exceeded after 40 ms"}"#
        );
        // This build runs tests with debug assertions, so fault
        // injection is compiled in and advertised.
        assert!(capabilities(false).contains(&"faults".to_owned()));
        assert!(capabilities(false).contains(&"overload-control".to_owned()));
        assert!(capabilities(false).contains(&"deadlines".to_owned()));
    }

    #[test]
    fn bounds_updates_translate_to_cache_actions() {
        let update = BoundsUpdate::default();
        assert!(update.is_empty());
        assert_eq!(update.entries_action(), None);
        assert_eq!(update.bytes_action(), None);
        let update = BoundsUpdate {
            max_entries: Some(0),
            max_bytes: Some(4096),
        };
        assert!(!update.is_empty());
        assert_eq!(update.entries_action(), Some(None)); // cleared
        assert_eq!(update.bytes_action(), Some(Some(4096)));
    }
}
