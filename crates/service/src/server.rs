//! The pipelined JSON-over-TCP front-end.
//!
//! Each accepted connection gets its own handler; job execution itself
//! happens on the shared [`DsePool`], so many light connections share
//! the same workers and memo cache. The protocol is **pipelined**: a
//! client may submit many requests without waiting, and job responses
//! are delivered **as jobs complete — possibly out of submission
//! order** — matched back to requests by their client-chosen `id`.
//!
//! ## Protocol
//!
//! Messages travel in either of the two encodings of [`crate::wire`]
//! (newline-delimited JSON text, or `0x00`-marked length-prefixed
//! binary frames for large inline networks); a response always uses
//! the encoding of its request.
//!
//! Job request — a [`JobSpec`](crate::spec::JobSpec) object:
//!
//! ```text
//! {"id": 1, "engine": {"arch": "SALP-2", "objective": "edp"}, "network": {"model": "alexnet"}}
//! ```
//!
//! → `{"ok": true, "id": 1, "result": {<JobResult>}}`
//!
//! The `id` is the correlation key: responses to concurrently submitted
//! jobs arrive in completion order, each echoing its job's `id` at the
//! top level. Clients that pipeline must use distinct ids per
//! connection; blocking one-at-a-time clients may ignore ordering
//! entirely.
//!
//! Control requests (answered in arrival order, but they may overtake
//! or be overtaken by in-flight *job* responses):
//!
//! ```text
//! {"cmd": "ping"}      -> {"ok": true, "pong": true}
//! {"cmd": "stats"}     -> {"ok": true, "stats": {"hits": …, "misses": …, "coalesced": …,
//!                          "evictions": …, "cost_evictions": …, "entries": …, "bytes": …,
//!                          "hit_rate": …, "workers": …,
//!                          "store_hits": …, "store_misses": …, "store_errors": …,
//!                          "compute_ns_min": …, "compute_ns_max": …, "compute_ns_total": …,
//!                          "store": {…}?}}   ("store" present iff a persistent tier is attached)
//! {"cmd": "shutdown"}  -> {"ok": true, "shutdown": true}   (server stops accepting)
//! ```
//!
//! Any failure → `{"ok": false, "id": <echoed if known>, "error": "…"}`.

use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex};

use crate::error::ServiceError;
use crate::json::Json;
use crate::pool::DsePool;
use crate::spec::JobSpec;
use crate::wire;

/// Default cap on in-flight requests per connection (see
/// [`ServerConfig::max_inflight`]).
pub const DEFAULT_MAX_INFLIGHT: usize = 128;

/// Tunable limits of a [`JobServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Cap on in-flight requests per connection, counting a request
    /// from the moment it is accepted until its response has been
    /// written to the socket. Submissions beyond the cap block the
    /// connection's reader until a slot frees — back-pressure, not an
    /// error — so one client can neither spawn unbounded waiter
    /// threads nor, by refusing to read responses, queue unbounded
    /// response memory server-side.
    pub max_inflight: usize,
    /// Additional cap on in-flight requests summed over *all*
    /// connections, so many clients cannot jointly oversubscribe the
    /// pool queue the way one client alone cannot. A global slot is
    /// held from request acceptance until the response is *queued*
    /// (not written): a client that is slow to read its own socket
    /// back-pressures only itself, never other connections. `None`
    /// (the default) leaves only the per-connection cap.
    pub max_inflight_global: Option<usize>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_inflight: DEFAULT_MAX_INFLIGHT,
            max_inflight_global: None,
        }
    }
}

/// A running job server bound to a TCP address.
#[derive(Debug)]
pub struct JobServer {
    listener: TcpListener,
    pool: Arc<DsePool>,
    config: ServerConfig,
    global_gate: Option<Arc<InflightGate>>,
    shutdown: Arc<AtomicBool>,
}

impl JobServer {
    /// Bind to `addr` (use port 0 for an ephemeral port) with a fresh
    /// pool of `workers` workers.
    ///
    /// # Errors
    ///
    /// Propagates bind and engine-construction failures.
    pub fn bind(addr: impl ToSocketAddrs, workers: usize) -> Result<Self, ServiceError> {
        let state = crate::engine::ServiceState::new()?;
        let pool = Arc::new(DsePool::new(state, workers));
        Self::with_pool(addr, pool)
    }

    /// Bind to `addr`, serving jobs on an existing pool with default
    /// limits.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn with_pool(addr: impl ToSocketAddrs, pool: Arc<DsePool>) -> Result<Self, ServiceError> {
        Self::with_config(addr, pool, ServerConfig::default())
    }

    /// Bind to `addr`, serving jobs on an existing pool with the given
    /// limits.
    ///
    /// # Errors
    ///
    /// Propagates bind failures; rejects a zero in-flight cap.
    pub fn with_config(
        addr: impl ToSocketAddrs,
        pool: Arc<DsePool>,
        config: ServerConfig,
    ) -> Result<Self, ServiceError> {
        if config.max_inflight == 0 || config.max_inflight_global == Some(0) {
            return Err(ServiceError::protocol(
                "in-flight caps must be at least 1 (a zero cap would deadlock every request)",
            ));
        }
        Ok(JobServer {
            listener: TcpListener::bind(addr)?,
            pool,
            config,
            global_gate: config.max_inflight_global.map(InflightGate::new),
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The server's configured limits.
    pub fn config(&self) -> ServerConfig {
        self.config
    }

    /// The bound address (resolves ephemeral ports).
    ///
    /// # Errors
    ///
    /// Propagates the OS query failure.
    pub fn local_addr(&self) -> Result<SocketAddr, ServiceError> {
        Ok(self.listener.local_addr()?)
    }

    /// The pool serving this server's jobs.
    pub fn pool(&self) -> &Arc<DsePool> {
        &self.pool
    }

    /// Accept and serve connections until a `shutdown` request arrives.
    /// Each connection is handled on its own detached thread: an idle
    /// client that never disconnects must not be able to stall shutdown,
    /// so `run` returns as soon as the accept loop stops; in-flight
    /// handlers finish (or die with the process) in the background.
    ///
    /// # Errors
    ///
    /// Propagates accept failures (per-connection I/O errors only end
    /// that connection).
    pub fn run(self) -> Result<(), ServiceError> {
        let local_addr = self.local_addr()?;
        for stream in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = stream?;
            let pool = Arc::clone(&self.pool);
            let slots = InflightSlots {
                local: InflightGate::new(self.config.max_inflight),
                global: self.global_gate.clone(),
            };
            let shutdown = Arc::new(ConnectionShutdown {
                flag: Arc::clone(&self.shutdown),
                addr: local_addr,
            });
            std::thread::spawn(move || {
                // Connection errors (client hung up mid-line) are not
                // server errors.
                let _ = serve_connection(stream, &pool, slots, &shutdown);
            });
        }
        Ok(())
    }
}

/// Lets a connection handler stop the accept loop: sets the flag, then
/// pokes the listener with a throwaway connection to unblock `accept`.
#[derive(Debug)]
struct ConnectionShutdown {
    flag: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ConnectionShutdown {
    fn trigger(&self) {
        self.flag.store(true, Ordering::SeqCst);
        // A wildcard bind address (0.0.0.0 / ::) is not connectable on
        // every platform; poke the listener via loopback instead.
        let mut addr = self.addr;
        if addr.ip().is_unspecified() {
            let loopback: std::net::IpAddr = if addr.is_ipv4() {
                std::net::Ipv4Addr::LOCALHOST.into()
            } else {
                std::net::Ipv6Addr::LOCALHOST.into()
            };
            addr.set_ip(loopback);
        }
        let _ = TcpStream::connect(addr);
    }
}

/// A counting semaphore bounding in-flight jobs (per connection, and
/// optionally shared across all of them).
#[derive(Debug)]
struct InflightGate {
    limit: usize,
    count: Mutex<usize>,
    cv: Condvar,
}

impl InflightGate {
    fn new(limit: usize) -> Arc<Self> {
        Arc::new(InflightGate {
            limit,
            count: Mutex::new(0),
            cv: Condvar::new(),
        })
    }

    /// Block until an in-flight slot is free, then take it.
    fn acquire(&self) {
        let mut count = crate::sync::lock_recovered(&self.count);
        while *count >= self.limit {
            count = self.cv.wait(count).unwrap_or_else(|e| e.into_inner());
        }
        *count += 1;
    }

    fn release(&self) {
        let mut count = crate::sync::lock_recovered(&self.count);
        *count -= 1;
        self.cv.notify_one();
    }
}

/// One connection's pair of in-flight bounds: its private gate plus the
/// server-wide gate (when configured). Both are taken before a request
/// is accepted; acquisition order is always local-then-global, so
/// connections cannot deadlock against each other. They are released
/// at different moments, on purpose:
///
/// * the **global** slot frees as soon as the response is *queued* —
///   it bounds work the pool can be asked to do, and must not stay
///   pinned by a client that is slow to read its socket (that would
///   let one stalled connection starve every other one);
/// * the **local** slot frees only once the response is *written*, so
///   a client that refuses to read still cannot queue unbounded
///   response memory on the server (back-pressure on its own reader).
#[derive(Debug, Clone)]
struct InflightSlots {
    local: Arc<InflightGate>,
    global: Option<Arc<InflightGate>>,
}

impl InflightSlots {
    fn acquire(&self) {
        self.local.acquire();
        if let Some(global) = &self.global {
            global.acquire();
        }
    }

    /// Release the cross-connection slot (response queued).
    fn release_global(&self) {
        if let Some(global) = &self.global {
            global.release();
        }
    }

    /// Release the per-connection slot (response written).
    fn release_local(&self) {
        self.local.release();
    }
}

/// One connection: a reader loop that dispatches requests, one writer
/// thread that serializes all responses onto the socket, and a detached
/// waiter thread per in-flight job. Job responses reach the writer in
/// completion order, giving out-of-order pipelining; the per-connection
/// [`InflightGate`] bounds the waiter threads.
fn serve_connection(
    stream: TcpStream,
    pool: &Arc<DsePool>,
    slots: InflightSlots,
    shutdown: &ConnectionShutdown,
) -> Result<(), ServiceError> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let (tx, rx) = channel::<(Json, bool)>();
    let writer = {
        let slots = slots.clone();
        std::thread::spawn(move || {
            let mut out = BufWriter::new(stream);
            // A write failure means the client is gone: stop writing,
            // but keep draining the channel and releasing gate slots so
            // the reader (possibly blocked in `acquire`) can run its
            // loop to the connection error and exit.
            let mut dead = false;
            while let Ok((response, binary)) = rx.recv() {
                if !dead && wire::write_message(&mut out, &response.render(), binary).is_err() {
                    dead = true;
                }
                slots.release_local();
            }
        })
    };
    let mut stop = false;
    let result = loop {
        match wire::read_message(&mut reader) {
            Ok(Some((payload, binary))) => {
                if dispatch_message(pool, &payload, binary, &tx, &slots) {
                    stop = true;
                    break Ok(());
                }
            }
            Ok(None) => break Ok(()),
            Err(e) => break Err(e),
        }
    };

    // Close our sender so the writer exits once every in-flight job has
    // responded, then stop the accept loop if asked. In-flight jobs
    // submitted before a shutdown command still get their responses.
    drop(tx);
    let _ = writer.join();
    if stop {
        shutdown.trigger();
    }
    result
}

/// Dispatch one request: control commands answer inline, job requests
/// are submitted to the pool and answered from a waiter thread when
/// they complete. Every response path takes both gate slots *before*
/// queueing; the global slot frees when the response is queued, the
/// local slot only after the writer thread has put it on the socket
/// (see [`InflightSlots`]). Returns `true` if the server should shut
/// down.
fn dispatch_message(
    pool: &Arc<DsePool>,
    payload: &str,
    binary: bool,
    tx: &Sender<(Json, bool)>,
    slots: &InflightSlots,
) -> bool {
    let parsed = match Json::parse(payload) {
        Ok(v) => v,
        Err(e) => {
            slots.acquire();
            let _ = tx.send((error_response(None, e.to_string()), binary));
            slots.release_global();
            return false;
        }
    };
    let id = parsed.get("id").and_then(Json::as_u64);
    if let Some(cmd) = parsed.get("cmd").and_then(Json::as_str) {
        let (response, stop) = control_response(pool, cmd, id);
        slots.acquire();
        let _ = tx.send((response, binary));
        slots.release_global();
        return stop;
    }
    let job = match JobSpec::from_json(&parsed) {
        Ok(job) => job,
        Err(e) => {
            slots.acquire();
            let _ = tx.send((error_response(id, e.to_string()), binary));
            slots.release_global();
            return false;
        }
    };
    slots.acquire();
    let pending = pool.submit(&job);
    let tx = tx.clone();
    let job_id = job.id;
    let slots = slots.clone();
    std::thread::spawn(move || {
        let response = match pending.wait() {
            Ok(result) => Json::obj([
                ("ok", Json::Bool(true)),
                ("id", Json::num_u64(result.id)),
                ("result", result.to_json()),
            ]),
            Err(e) => error_response(Some(job_id), e.to_string()),
        };
        let _ = tx.send((response, binary));
        slots.release_global();
    });
    false
}

fn error_response(id: Option<u64>, message: String) -> Json {
    let mut pairs = vec![("ok".to_owned(), Json::Bool(false))];
    if let Some(id) = id {
        pairs.push(("id".to_owned(), Json::num_u64(id)));
    }
    pairs.push(("error".to_owned(), Json::Str(message)));
    Json::Obj(pairs)
}

/// Answer one control command. The boolean asks the caller to shut the
/// server down after responding.
fn control_response(pool: &DsePool, cmd: &str, id: Option<u64>) -> (Json, bool) {
    match cmd {
        "ping" => (
            Json::obj([("ok", Json::Bool(true)), ("pong", Json::Bool(true))]),
            false,
        ),
        "stats" => {
            let cache = pool.state().cache();
            let stats = cache.stats();
            let mut fields = vec![
                ("hits".to_owned(), Json::num_u64(stats.hits)),
                ("misses".to_owned(), Json::num_u64(stats.misses)),
                ("coalesced".to_owned(), Json::num_u64(stats.coalesced)),
                ("evictions".to_owned(), Json::num_u64(stats.evictions)),
                (
                    "cost_evictions".to_owned(),
                    Json::num_u64(stats.cost_evictions),
                ),
                ("entries".to_owned(), Json::num_usize(stats.entries)),
                ("bytes".to_owned(), Json::num_usize(stats.bytes)),
                ("hit_rate".to_owned(), Json::Num(stats.hit_rate())),
                ("workers".to_owned(), Json::num_usize(pool.workers())),
                ("store_hits".to_owned(), Json::num_u64(stats.store_hits)),
                ("store_misses".to_owned(), Json::num_u64(stats.store_misses)),
                ("store_errors".to_owned(), Json::num_u64(stats.store_errors)),
                (
                    "compute_ns_min".to_owned(),
                    Json::num_u64(stats.compute_ns_min),
                ),
                (
                    "compute_ns_max".to_owned(),
                    Json::num_u64(stats.compute_ns_max),
                ),
                (
                    "compute_ns_total".to_owned(),
                    Json::num_u64(stats.compute_ns_total),
                ),
            ];
            if let Some(store) = cache.store() {
                let s = store.stats();
                fields.push((
                    "store".to_owned(),
                    Json::obj([
                        ("live_entries", Json::num_usize(s.live_entries)),
                        ("records", Json::num_u64(s.records)),
                        ("dead_records", Json::num_u64(s.dead_records)),
                        ("file_bytes", Json::num_u64(s.file_bytes)),
                        ("appends", Json::num_u64(s.appends)),
                        ("gets", Json::num_u64(s.gets)),
                        ("hits", Json::num_u64(s.hits)),
                    ]),
                ));
            }
            (
                Json::obj([("ok", Json::Bool(true)), ("stats", Json::Obj(fields))]),
                false,
            )
        }
        "shutdown" => (
            Json::obj([("ok", Json::Bool(true)), ("shutdown", Json::Bool(true))]),
            true,
        ),
        other => (
            error_response(id, format!("unknown command {other:?}")),
            false,
        ),
    }
}

/// Dispatch one request line to a response, blocking until the job (if
/// any) completes. The boolean asks the caller to shut the server down
/// after responding. This is the sequential building block the
/// pipelined connection handler decomposes; it is exposed for direct
/// testing and embedding.
pub fn handle_request(pool: &DsePool, line: &str) -> (Json, bool) {
    let parsed = match Json::parse(line) {
        Ok(v) => v,
        Err(e) => return (error_response(None, e.to_string()), false),
    };
    let id = parsed.get("id").and_then(Json::as_u64);
    if let Some(cmd) = parsed.get("cmd").and_then(Json::as_str) {
        return control_response(pool, cmd, id);
    }
    let job = match JobSpec::from_json(&parsed) {
        Ok(job) => job,
        Err(e) => return (error_response(id, e.to_string()), false),
    };
    match pool.submit(&job).wait() {
        Ok(result) => (
            Json::obj([
                ("ok", Json::Bool(true)),
                ("id", Json::num_u64(result.id)),
                ("result", result.to_json()),
            ]),
            false,
        ),
        Err(e) => (error_response(Some(job.id), e.to_string()), false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ServiceState;

    fn test_pool() -> Arc<DsePool> {
        Arc::new(DsePool::new(ServiceState::new().unwrap(), 2))
    }

    #[test]
    fn dispatches_control_commands() {
        let pool = test_pool();
        let (pong, stop) = handle_request(&pool, r#"{"cmd": "ping"}"#);
        assert_eq!(pong.get("pong"), Some(&Json::Bool(true)));
        assert!(!stop);

        let (stats, _) = handle_request(&pool, r#"{"cmd": "stats"}"#);
        let stats = stats.get("stats").unwrap();
        assert_eq!(stats.get("workers").unwrap().as_usize(), Some(2));
        for counter in [
            "hits",
            "misses",
            "coalesced",
            "evictions",
            "cost_evictions",
            "bytes",
        ] {
            assert!(stats.get(counter).is_some(), "stats missing {counter}");
        }

        let (down, stop) = handle_request(&pool, r#"{"cmd": "shutdown"}"#);
        assert_eq!(down.get("ok"), Some(&Json::Bool(true)));
        assert!(stop);

        let (unknown, stop) = handle_request(&pool, r#"{"cmd": "reboot"}"#);
        assert_eq!(unknown.get("ok"), Some(&Json::Bool(false)));
        assert!(!stop);
    }

    #[test]
    fn runs_jobs_and_reports_errors() {
        let pool = test_pool();
        let (response, _) = handle_request(&pool, r#"{"id": 5, "network": {"model": "tiny"}}"#);
        assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
        // The job id is echoed at the top level (the pipelining
        // correlation key) as well as inside the result.
        assert_eq!(response.get("id").and_then(Json::as_u64), Some(5));
        let result = response.get("result").unwrap();
        assert_eq!(result.get("id").and_then(Json::as_u64), Some(5));
        assert_eq!(result.get("layers").unwrap().as_array().unwrap().len(), 3);

        let (bad_json, _) = handle_request(&pool, "{nope");
        assert_eq!(bad_json.get("ok"), Some(&Json::Bool(false)));

        let (bad_model, _) = handle_request(&pool, r#"{"id": 6, "network": {"model": "no-such"}}"#);
        assert_eq!(bad_model.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(bad_model.get("id").and_then(Json::as_u64), Some(6));
        assert!(bad_model
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("no-such"));
    }
}
