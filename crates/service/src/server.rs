//! The newline-delimited-JSON-over-TCP front-end.
//!
//! One request per line, one response per line, std-only. Each accepted
//! connection gets its own handler thread; job execution itself happens
//! on the shared [`DsePool`], so many light connections share the same
//! workers and memo cache.
//!
//! ## Protocol
//!
//! Job request — a [`JobSpec`](crate::spec::JobSpec) object:
//!
//! ```text
//! {"id": 1, "engine": {"arch": "SALP-2", "objective": "edp"}, "network": {"model": "alexnet"}}
//! ```
//!
//! → `{"ok": true, "result": {<JobResult>}}`
//!
//! Control requests:
//!
//! ```text
//! {"cmd": "ping"}      -> {"ok": true, "pong": true}
//! {"cmd": "stats"}     -> {"ok": true, "stats": {"hits": …, "misses": …, "entries": …, "hit_rate": …, "workers": …}}
//! {"cmd": "shutdown"}  -> {"ok": true, "shutdown": true}   (server stops accepting)
//! ```
//!
//! Any failure → `{"ok": false, "id": <echoed if present>, "error": "…"}`.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::error::ServiceError;
use crate::json::Json;
use crate::pool::DsePool;
use crate::spec::JobSpec;

/// A running job server bound to a TCP address.
#[derive(Debug)]
pub struct JobServer {
    listener: TcpListener,
    pool: Arc<DsePool>,
    shutdown: Arc<AtomicBool>,
}

impl JobServer {
    /// Bind to `addr` (use port 0 for an ephemeral port) with a fresh
    /// pool of `workers` workers.
    ///
    /// # Errors
    ///
    /// Propagates bind and engine-construction failures.
    pub fn bind(addr: impl ToSocketAddrs, workers: usize) -> Result<Self, ServiceError> {
        let state = crate::engine::ServiceState::new()?;
        let pool = Arc::new(DsePool::new(state, workers));
        Self::with_pool(addr, pool)
    }

    /// Bind to `addr`, serving jobs on an existing pool.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn with_pool(addr: impl ToSocketAddrs, pool: Arc<DsePool>) -> Result<Self, ServiceError> {
        Ok(JobServer {
            listener: TcpListener::bind(addr)?,
            pool,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (resolves ephemeral ports).
    ///
    /// # Errors
    ///
    /// Propagates the OS query failure.
    pub fn local_addr(&self) -> Result<SocketAddr, ServiceError> {
        Ok(self.listener.local_addr()?)
    }

    /// The pool serving this server's jobs.
    pub fn pool(&self) -> &Arc<DsePool> {
        &self.pool
    }

    /// Accept and serve connections until a `shutdown` request arrives.
    /// Each connection is handled on its own detached thread: an idle
    /// client that never disconnects must not be able to stall shutdown,
    /// so `run` returns as soon as the accept loop stops; in-flight
    /// handlers finish (or die with the process) in the background.
    ///
    /// # Errors
    ///
    /// Propagates accept failures (per-connection I/O errors only end
    /// that connection).
    pub fn run(self) -> Result<(), ServiceError> {
        let local_addr = self.local_addr()?;
        for stream in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = stream?;
            let pool = Arc::clone(&self.pool);
            let shutdown = Arc::new(ConnectionShutdown {
                flag: Arc::clone(&self.shutdown),
                addr: local_addr,
            });
            std::thread::spawn(move || {
                // Connection errors (client hung up mid-line) are not
                // server errors.
                let _ = serve_connection(stream, &pool, &shutdown);
            });
        }
        Ok(())
    }
}

/// Lets a connection handler stop the accept loop: sets the flag, then
/// pokes the listener with a throwaway connection to unblock `accept`.
#[derive(Debug)]
struct ConnectionShutdown {
    flag: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ConnectionShutdown {
    fn trigger(&self) {
        self.flag.store(true, Ordering::SeqCst);
        // A wildcard bind address (0.0.0.0 / ::) is not connectable on
        // every platform; poke the listener via loopback instead.
        let mut addr = self.addr;
        if addr.ip().is_unspecified() {
            let loopback: std::net::IpAddr = if addr.is_ipv4() {
                std::net::Ipv4Addr::LOCALHOST.into()
            } else {
                std::net::Ipv6Addr::LOCALHOST.into()
            };
            addr.set_ip(loopback);
        }
        let _ = TcpStream::connect(addr);
    }
}

fn serve_connection(
    stream: TcpStream,
    pool: &DsePool,
    shutdown: &ConnectionShutdown,
) -> Result<(), ServiceError> {
    let reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let (response, stop) = handle_request(pool, &line);
        writer.write_all(response.render().as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        if stop {
            shutdown.trigger();
            break;
        }
    }
    Ok(())
}

fn error_response(id: Option<u64>, message: String) -> Json {
    let mut pairs = vec![("ok".to_owned(), Json::Bool(false))];
    if let Some(id) = id {
        pairs.push(("id".to_owned(), Json::num_u64(id)));
    }
    pairs.push(("error".to_owned(), Json::Str(message)));
    Json::Obj(pairs)
}

/// Dispatch one request line to a response. The boolean asks the caller
/// to shut the server down after responding. Exposed for direct testing
/// and reused by both front-ends.
pub fn handle_request(pool: &DsePool, line: &str) -> (Json, bool) {
    let parsed = match Json::parse(line) {
        Ok(v) => v,
        Err(e) => return (error_response(None, e.to_string()), false),
    };
    let id = parsed.get("id").and_then(Json::as_u64);
    if let Some(cmd) = parsed.get("cmd").and_then(Json::as_str) {
        return match cmd {
            "ping" => (
                Json::obj([("ok", Json::Bool(true)), ("pong", Json::Bool(true))]),
                false,
            ),
            "stats" => {
                let stats = pool.state().cache().stats();
                (
                    Json::obj([
                        ("ok", Json::Bool(true)),
                        (
                            "stats",
                            Json::obj([
                                ("hits", Json::num_u64(stats.hits)),
                                ("misses", Json::num_u64(stats.misses)),
                                ("entries", Json::num_usize(stats.entries)),
                                ("hit_rate", Json::Num(stats.hit_rate())),
                                ("workers", Json::num_usize(pool.workers())),
                            ]),
                        ),
                    ]),
                    false,
                )
            }
            "shutdown" => (
                Json::obj([("ok", Json::Bool(true)), ("shutdown", Json::Bool(true))]),
                true,
            ),
            other => (
                error_response(id, format!("unknown command {other:?}")),
                false,
            ),
        };
    }
    let job = match JobSpec::from_json(&parsed) {
        Ok(job) => job,
        Err(e) => return (error_response(id, e.to_string()), false),
    };
    match pool.submit(&job).wait() {
        Ok(result) => (
            Json::obj([("ok", Json::Bool(true)), ("result", result.to_json())]),
            false,
        ),
        Err(e) => (error_response(Some(job.id), e.to_string()), false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ServiceState;

    fn test_pool() -> Arc<DsePool> {
        Arc::new(DsePool::new(ServiceState::new().unwrap(), 2))
    }

    #[test]
    fn dispatches_control_commands() {
        let pool = test_pool();
        let (pong, stop) = handle_request(&pool, r#"{"cmd": "ping"}"#);
        assert_eq!(pong.get("pong"), Some(&Json::Bool(true)));
        assert!(!stop);

        let (stats, _) = handle_request(&pool, r#"{"cmd": "stats"}"#);
        let workers = stats.get("stats").unwrap().get("workers").unwrap();
        assert_eq!(workers.as_usize(), Some(2));

        let (down, stop) = handle_request(&pool, r#"{"cmd": "shutdown"}"#);
        assert_eq!(down.get("ok"), Some(&Json::Bool(true)));
        assert!(stop);

        let (unknown, stop) = handle_request(&pool, r#"{"cmd": "reboot"}"#);
        assert_eq!(unknown.get("ok"), Some(&Json::Bool(false)));
        assert!(!stop);
    }

    #[test]
    fn runs_jobs_and_reports_errors() {
        let pool = test_pool();
        let (response, _) = handle_request(&pool, r#"{"id": 5, "network": {"model": "tiny"}}"#);
        assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
        let result = response.get("result").unwrap();
        assert_eq!(result.get("id").and_then(Json::as_u64), Some(5));
        assert_eq!(result.get("layers").unwrap().as_array().unwrap().len(), 3);

        let (bad_json, _) = handle_request(&pool, "{nope");
        assert_eq!(bad_json.get("ok"), Some(&Json::Bool(false)));

        let (bad_model, _) = handle_request(&pool, r#"{"id": 6, "network": {"model": "no-such"}}"#);
        assert_eq!(bad_model.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(bad_model.get("id").and_then(Json::as_u64), Some(6));
        assert!(bad_model
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("no-such"));
    }
}
