//! The pipelined TCP front-end, dispatching the typed protocol of
//! [`crate::proto`].
//!
//! Each accepted connection gets its own handler; job execution itself
//! happens on the shared [`DsePool`], so many light connections share
//! the same workers and memo cache. The protocol is **pipelined**: a
//! client may submit many requests without waiting, and job responses
//! are delivered **as jobs complete — possibly out of submission
//! order** — matched back to requests by their client-chosen `id`.
//!
//! Requests arrive in either dialect (typed `{"type": …}` messages, or
//! the legacy shim: bare job objects and `{"cmd": …}` verbs) and either
//! encoding of [`crate::wire`]; a response always uses the dialect and
//! encoding of its request. Dispatch is an exhaustive `match` over
//! [`Request`] — adding a verb without handling it does not compile.
//!
//! Control and admin requests (`hello`, `ping`, `stats`, `set-policy`,
//! `set-shard-policy`, `set-bounds`, `set-slow-log`, `cache-clear`,
//! `cache-warm`, `store-compact`, `metrics`, `metrics-history`,
//! `slow-traces`, `shutdown`) answer inline in arrival
//! order, but they may overtake or be overtaken by in-flight *job*
//! responses. See `docs/PROTOCOL.md` for every verb with example
//! request/response pairs.
//!
//! Every layer of the request path is instrumented through the pool's
//! [`drmap_telemetry::MetricsRegistry`]: frame decode/encode, cache
//! lookup, explore, shard chunks, merge, and total request time all
//! feed latency histograms, and each job carries a per-request trace
//! (keyed by its wire `id`) whose stage breakdown lands in the
//! slow-request log when the job crosses the configured threshold
//! ([`ServerConfig::slow_ms`]). The `metrics` verb dumps all of it;
//! see `docs/OBSERVABILITY.md`.

use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use drmap_telemetry::{Span, Trace};

use crate::error::ServiceError;
use crate::faults::{FaultAction, FaultPlan};
use crate::json::Json;
use crate::pool::DsePool;
use crate::proto::{
    capabilities, Dialect, MetricsReport, PersistedSlowTrace, Request, Response, StatsReport,
    PROTOCOL_VERSION,
};
use crate::wire::{self, Encoding};

fn elapsed_ns(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Default cap on in-flight requests per connection (see
/// [`ServerConfig::max_inflight`]).
pub const DEFAULT_MAX_INFLIGHT: usize = 128;

/// Tunable limits of a [`JobServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Cap on in-flight requests per connection, counting a request
    /// from the moment it is accepted until its response has been
    /// written to the socket. Submissions beyond the cap block the
    /// connection's reader until a slot frees — back-pressure, not an
    /// error — so one client can neither spawn unbounded waiter
    /// threads nor, by refusing to read responses, queue unbounded
    /// response memory server-side.
    pub max_inflight: usize,
    /// Additional cap on in-flight requests summed over *all*
    /// connections, so many clients cannot jointly oversubscribe the
    /// pool queue the way one client alone cannot. A global slot is
    /// held from request acceptance until the response is *queued*
    /// (not written): a client that is slow to read its own socket
    /// back-pressures only itself, never other connections. `None`
    /// (the default) leaves only the per-connection cap.
    pub max_inflight_global: Option<usize>,
    /// Slow-request threshold in milliseconds: any job whose total
    /// request time reaches it is captured — with its per-stage span
    /// breakdown — in the slow-request ring buffer the `metrics` verb
    /// dumps, and (when a store is attached) persisted through the WAL
    /// for the `slow-traces` verb. `Some(0)` logs every job; `None`
    /// (the default) disables the log.
    pub slow_ms: Option<u64>,
    /// Cadence of the background metrics sampler: every interval, one
    /// cumulative snapshot is folded into the [`SnapshotRing`]
    /// (drmap_telemetry::SnapshotRing) as a windowed delta, feeding
    /// the `metrics-history` verb. `None` (the default) disables the
    /// sampler thread entirely.
    pub sample_interval: Option<Duration>,
    /// Bound on the graceful-shutdown drain: after the accept loop
    /// stops, [`JobServer::run`] waits up to this long for in-flight
    /// jobs to finish and their responses to be queued before syncing
    /// the store and returning. Jobs still running at the bound are
    /// abandoned (their connections die with the process).
    pub drain_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_inflight: DEFAULT_MAX_INFLIGHT,
            max_inflight_global: None,
            slow_ms: None,
            sample_interval: None,
            drain_timeout: Duration::from_secs(5),
        }
    }
}

/// A running job server bound to a TCP address.
#[derive(Debug)]
pub struct JobServer {
    listener: TcpListener,
    pool: Arc<DsePool>,
    config: ServerConfig,
    global_gate: Option<Arc<InflightGate>>,
    shutdown: Arc<AtomicBool>,
}

impl JobServer {
    /// Bind to `addr` (use port 0 for an ephemeral port) with a fresh
    /// pool of `workers` workers.
    ///
    /// # Errors
    ///
    /// Propagates bind and engine-construction failures.
    pub fn bind(addr: impl ToSocketAddrs, workers: usize) -> Result<Self, ServiceError> {
        let state = crate::engine::ServiceState::new()?;
        let pool = Arc::new(DsePool::new(state, workers));
        Self::with_pool(addr, pool)
    }

    /// Bind to `addr`, serving jobs on an existing pool with default
    /// limits.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn with_pool(addr: impl ToSocketAddrs, pool: Arc<DsePool>) -> Result<Self, ServiceError> {
        Self::with_config(addr, pool, ServerConfig::default())
    }

    /// Bind to `addr`, serving jobs on an existing pool with the given
    /// limits.
    ///
    /// # Errors
    ///
    /// Propagates bind failures; rejects a zero in-flight cap.
    pub fn with_config(
        addr: impl ToSocketAddrs,
        pool: Arc<DsePool>,
        config: ServerConfig,
    ) -> Result<Self, ServiceError> {
        if config.max_inflight == 0 || config.max_inflight_global == Some(0) {
            return Err(ServiceError::protocol(
                "in-flight caps must be at least 1 (a zero cap would deadlock every request)",
            ));
        }
        if config.sample_interval == Some(Duration::ZERO) {
            return Err(ServiceError::protocol(
                "the metrics sample interval must be nonzero (use None to disable sampling)",
            ));
        }
        if let Some(ms) = config.slow_ms {
            pool.state().slow_log().set_threshold_ms(ms);
        }
        Ok(JobServer {
            listener: TcpListener::bind(addr)?,
            pool,
            config,
            global_gate: config.max_inflight_global.map(InflightGate::new),
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The server's configured limits.
    pub fn config(&self) -> ServerConfig {
        self.config
    }

    /// The bound address (resolves ephemeral ports).
    ///
    /// # Errors
    ///
    /// Propagates the OS query failure.
    pub fn local_addr(&self) -> Result<SocketAddr, ServiceError> {
        Ok(self.listener.local_addr()?)
    }

    /// The pool serving this server's jobs.
    pub fn pool(&self) -> &Arc<DsePool> {
        &self.pool
    }

    /// Accept and serve connections until a `shutdown` request arrives.
    /// Each connection is handled on its own detached thread: an idle
    /// client that never disconnects must not be able to stall shutdown,
    /// so `run` returns as soon as the accept loop stops; in-flight
    /// handlers finish (or die with the process) in the background.
    ///
    /// # Errors
    ///
    /// Propagates accept failures (per-connection I/O errors only end
    /// that connection).
    pub fn run(self) -> Result<(), ServiceError> {
        let local_addr = self.local_addr()?;
        if let Some(interval) = self.config.sample_interval {
            let state = Arc::clone(self.pool.state());
            let shutdown = Arc::clone(&self.shutdown);
            std::thread::spawn(move || loop {
                std::thread::sleep(interval);
                // ordering: Acquire pairs with the Release store in
                // `ConnectionShutdown::trigger`, exactly as in the
                // accept loop; the flag guards no other data.
                if shutdown.load(Ordering::Acquire) {
                    break;
                }
                state.sample_metrics();
                // Store hygiene rides the sampler cadence: cheap
                // (one stats read) when disarmed or under threshold.
                state.maybe_auto_compact();
            });
        }
        let metrics = self.pool.state().metrics();
        let connections_total = metrics.counter("connections_total");
        let connections_open = metrics.gauge("connections_open");
        for stream in self.listener.incoming() {
            // ordering: Acquire pairs with the Release store in
            // `ConnectionShutdown::trigger`; the flag guards no other
            // data, and the loopback poke that follows the store already
            // forces this iteration, so Acquire/Release suffices —
            // SeqCst bought nothing here.
            if self.shutdown.load(Ordering::Acquire) {
                break;
            }
            let stream = stream?;
            let pool = Arc::clone(&self.pool);
            let slots = InflightSlots {
                local: InflightGate::new(self.config.max_inflight),
                global: self.global_gate.clone(),
            };
            let shutdown = Arc::new(ConnectionShutdown {
                flag: Arc::clone(&self.shutdown),
                addr: local_addr,
            });
            connections_total.inc();
            connections_open.inc();
            let open = Arc::clone(&connections_open);
            std::thread::spawn(move || {
                // Connection errors (client hung up mid-line) are not
                // server errors.
                let _ = serve_connection(stream, &pool, slots, &shutdown);
                open.dec();
            });
        }
        // Graceful drain: the accept loop has stopped, so no new work
        // arrives; wait (bounded) for every in-flight job to answer,
        // give the per-connection writer threads a moment to flush
        // those queued responses onto their sockets, then make the
        // store durable before the process goes away.
        let state = self.pool.state();
        let drain_deadline = Instant::now() + self.config.drain_timeout;
        while state.stages().jobs_inflight.get() > 0 && Instant::now() < drain_deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        std::thread::sleep(Duration::from_millis(20));
        if let Some(store) = state.cache().store() {
            // Sync failures must not mask a clean drain; the WAL
            // replays unsynced tails on the next open anyway.
            let _ = store.sync();
        }
        Ok(())
    }
}

/// Lets a connection handler stop the accept loop: sets the flag, then
/// pokes the listener with a throwaway connection to unblock `accept`.
#[derive(Debug)]
struct ConnectionShutdown {
    flag: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ConnectionShutdown {
    fn trigger(&self) {
        // ordering: Release pairs with the Acquire load in the accept
        // loop; nothing is published besides the flag itself.
        self.flag.store(true, Ordering::Release);
        // A wildcard bind address (0.0.0.0 / ::) is not connectable on
        // every platform; poke the listener via loopback instead.
        let mut addr = self.addr;
        if addr.ip().is_unspecified() {
            let loopback: std::net::IpAddr = if addr.is_ipv4() {
                std::net::Ipv4Addr::LOCALHOST.into()
            } else {
                std::net::Ipv6Addr::LOCALHOST.into()
            };
            addr.set_ip(loopback);
        }
        let _ = TcpStream::connect(addr);
    }
}

/// A counting semaphore bounding in-flight jobs (per connection, and
/// optionally shared across all of them).
#[derive(Debug)]
struct InflightGate {
    limit: usize,
    count: Mutex<usize>,
    cv: Condvar,
}

impl InflightGate {
    fn new(limit: usize) -> Arc<Self> {
        Arc::new(InflightGate {
            limit,
            count: Mutex::new(0),
            cv: Condvar::new(),
        })
    }

    /// Block until an in-flight slot is free, then take it.
    fn acquire(&self) {
        let mut count = crate::sync::lock_recovered(&self.count);
        while *count >= self.limit {
            count = self.cv.wait(count).unwrap_or_else(|e| e.into_inner());
        }
        *count += 1;
    }

    fn release(&self) {
        let mut count = crate::sync::lock_recovered(&self.count);
        *count -= 1;
        self.cv.notify_one();
    }
}

/// One connection's pair of in-flight bounds: its private gate plus the
/// server-wide gate (when configured). Both are taken before a request
/// is accepted; acquisition order is always local-then-global, so
/// connections cannot deadlock against each other. They are released
/// at different moments, on purpose:
///
/// * the **global** slot frees as soon as the response is *queued* —
///   it bounds work the pool can be asked to do, and must not stay
///   pinned by a client that is slow to read its socket (that would
///   let one stalled connection starve every other one);
/// * the **local** slot frees only once the response is *written*, so
///   a client that refuses to read still cannot queue unbounded
///   response memory on the server (back-pressure on its own reader).
#[derive(Debug, Clone)]
struct InflightSlots {
    local: Arc<InflightGate>,
    global: Option<Arc<InflightGate>>,
}

impl InflightSlots {
    fn acquire(&self) {
        self.local.acquire();
        if let Some(global) = &self.global {
            global.acquire();
        }
    }

    /// Release the cross-connection slot (response queued).
    fn release_global(&self) {
        if let Some(global) = &self.global {
            global.release();
        }
    }

    /// Release the per-connection slot (response written).
    fn release_local(&self) {
        self.local.release();
    }
}

/// One connection: a reader loop that dispatches requests, one writer
/// thread that serializes all responses onto the socket, and a detached
/// waiter thread per in-flight job. Job responses reach the writer in
/// completion order, giving out-of-order pipelining; the per-connection
/// [`InflightGate`] bounds the waiter threads.
fn serve_connection(
    stream: TcpStream,
    pool: &Arc<DsePool>,
    slots: InflightSlots,
    shutdown: &ConnectionShutdown,
) -> Result<(), ServiceError> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let (tx, rx) = channel::<(Json, Encoding)>();
    let metrics = pool.state().metrics();
    // Literal metric names (not `format!` over `Encoding::label`) so the
    // `metrics-doc-drift` lint can see every registered name statically.
    let frames_in = [
        metrics.counter("frames_text_total"),
        metrics.counter("frames_binary_total"),
    ];
    let writer = {
        let slots = slots.clone();
        let state = Arc::clone(pool.state());
        let frame_encode_ns = Arc::clone(&state.stages().frame_encode_ns);
        std::thread::spawn(move || {
            let mut out = BufWriter::new(stream);
            // A write failure means the client is gone: stop writing,
            // but keep draining the channel and releasing gate slots so
            // the reader (possibly blocked in `acquire`) can run its
            // loop to the connection error and exit.
            let mut dead = false;
            while let Ok((response, encoding)) = rx.recv() {
                if !dead {
                    // Wire-layer fault injection: an armed plan may
                    // drop this frame outright (the client sees a
                    // stall, then a timeout) or delay it by the plan's
                    // jitter before writing.
                    let action = state.faults().wire_action();
                    if let Some(action) = &action {
                        state.stages().fault_wire_total.inc();
                        if let FaultAction::Delay(stall) = action {
                            std::thread::sleep(*stall);
                        }
                    }
                    if matches!(action, Some(FaultAction::Fail)) {
                        // Dropped frame: skip the write, keep the
                        // connection; the response is simply lost.
                    } else {
                        let _encode = Span::enter("frame_encode", &frame_encode_ns);
                        if wire::write_message(&mut out, &response.render(), encoding).is_err() {
                            dead = true;
                        }
                    }
                }
                slots.release_local();
            }
        })
    };
    let mut stop = false;
    let result = loop {
        match wire::read_message(&mut reader) {
            Ok(Some((payload, encoding))) => {
                frames_in[match encoding {
                    Encoding::Text => 0,
                    Encoding::Binary => 1,
                }]
                .inc();
                if dispatch_message(pool, &payload, encoding, &tx, &slots) {
                    stop = true;
                    break Ok(());
                }
            }
            Ok(None) => break Ok(()),
            Err(e) => break Err(e),
        }
    };

    // Close our sender so the writer exits once every in-flight job has
    // responded, then stop the accept loop if asked. In-flight jobs
    // submitted before a shutdown command still get their responses.
    drop(tx);
    let _ = writer.join();
    if stop {
        shutdown.trigger();
    }
    result
}

/// Dispatch one request: control and admin verbs answer inline, job
/// submissions are handed to the pool and answered from a waiter thread
/// when they complete. Every response path takes both gate slots
/// *before* queueing; the global slot frees when the response is
/// queued, the local slot only after the writer thread has put it on
/// the socket (see [`InflightSlots`]). Returns `true` if the server
/// should shut down.
fn dispatch_message(
    pool: &Arc<DsePool>,
    payload: &str,
    encoding: Encoding,
    tx: &Sender<(Json, Encoding)>,
    slots: &InflightSlots,
) -> bool {
    let decode_start = Instant::now();
    let parsed = match Json::parse(payload) {
        Ok(v) => v,
        Err(e) => {
            pool.state()
                .metrics()
                .counter("protocol_errors_total")
                .inc();
            let response = Response::Error {
                id: None,
                message: e.to_string(),
            };
            slots.acquire();
            let _ = tx.send((response.render(Dialect::Legacy), encoding));
            slots.release_global();
            return false;
        }
    };
    let (request, dialect) = match Request::decode(&parsed) {
        Ok(decoded) => decoded,
        Err(e) => {
            pool.state()
                .metrics()
                .counter("protocol_errors_total")
                .inc();
            let response = Response::Error {
                id: e.id,
                message: e.message,
            };
            slots.acquire();
            let _ = tx.send((response.render(e.dialect), encoding));
            slots.release_global();
            return false;
        }
    };
    let decode_ns = elapsed_ns(decode_start);
    pool.state().stages().frame_decode_ns.record(decode_ns);
    // Job submissions get a waiter thread; everything else answers
    // inline through the exhaustive control match. Admin verbs skip
    // the admission check on purpose: an operator must always be able
    // to reach (and retune) a shedding server.
    if let Request::Submit(job) = request {
        let state = pool.state();
        let inflight = state.stages().jobs_inflight.get().max(0) as u64;
        if let Some(retry_after_ms) = state.overload().admission(inflight) {
            state.stages().shed_total.inc();
            let response = Response::Overloaded {
                id: Some(job.id),
                retry_after_ms,
            };
            slots.acquire();
            let _ = tx.send((response.render(dialect), encoding));
            slots.release_global();
            return false;
        }
        slots.acquire();
        state.stages().jobs_inflight.inc();
        let trace = Trace::new(job.id);
        trace.add("frame_decode", decode_ns);
        let pending = pool.submit_traced(&job, Some(Arc::clone(&trace)));
        let tx = tx.clone();
        let job_id = job.id;
        let slots = slots.clone();
        let pool = Arc::clone(pool);
        std::thread::spawn(move || {
            let response = job_response(job_id, pending.wait());
            let state = pool.state();
            let total_ns = state.slow_log().observe(&trace);
            state.stages().request_ns.record(total_ns);
            if let Some(entry) = state.slow_log().capture(&trace, total_ns) {
                state.persist_slow_trace(&entry);
            }
            let _ = tx.send((response.render(dialect), encoding));
            state.stages().jobs_inflight.dec();
            slots.release_global();
        });
        return false;
    }
    let (response, stop) = control_response(pool, &request);
    slots.acquire();
    let _ = tx.send((response.render(dialect), encoding));
    slots.release_global();
    stop
}

/// A [`SlowLog`](drmap_telemetry::SlowLog) threshold in wire form:
/// nanoseconds → whole milliseconds, `u64::MAX` (disabled) → `None`.
fn threshold_ms(threshold_ns: u64) -> Option<u64> {
    (threshold_ns != u64::MAX).then_some(threshold_ns / 1_000_000)
}

/// The wire response for one finished job: results and typed failures
/// (`deadline_exceeded`, `overloaded`) map to their structured
/// responses, everything else to a generic error.
fn job_response(job_id: u64, outcome: Result<crate::spec::JobResult, ServiceError>) -> Response {
    match outcome {
        Ok(result) => Response::Job { result },
        Err(ServiceError::DeadlineExceeded { deadline_ms }) => Response::DeadlineExceeded {
            id: Some(job_id),
            deadline_ms,
        },
        Err(ServiceError::Overloaded { retry_after_ms }) => Response::Overloaded {
            id: Some(job_id),
            retry_after_ms,
        },
        Err(e) => Response::Error {
            id: Some(job_id),
            message: e.to_string(),
        },
    }
}

/// A consistent snapshot of the server's counters and **active**
/// configuration (live eviction policy, cache bounds, shard policy),
/// as carried by the typed `stats` response.
pub fn stats_report(pool: &DsePool) -> StatsReport {
    let cache = pool.state().cache();
    let (max_entries, max_bytes) = cache.bounds();
    StatsReport {
        cache: cache.stats(),
        policy: cache.policy(),
        max_entries,
        max_bytes,
        shard: pool.shard_policy(),
        workers: pool.workers(),
        store: cache.store().map(|s| s.stats()),
        backends: None,
    }
}

/// Answer one non-job request — an **exhaustive** match over
/// [`Request`], so a verb added to the protocol without a handler here
/// is a compile error. The boolean asks the caller to shut the server
/// down after responding.
fn control_response(pool: &DsePool, request: &Request) -> (Response, bool) {
    let response = match request {
        Request::Hello { version, client: _ } => {
            if *version == PROTOCOL_VERSION {
                Response::Hello {
                    version: PROTOCOL_VERSION,
                    server: concat!("drmap-service/", env!("CARGO_PKG_VERSION")).to_owned(),
                    capabilities: capabilities(pool.state().cache().store().is_some()),
                }
            } else {
                // Graceful reject: name the version we do speak and
                // keep the connection open so the client can downgrade.
                Response::Error {
                    id: None,
                    message: format!(
                        "unsupported protocol version {version} (server speaks {PROTOCOL_VERSION})"
                    ),
                }
            }
        }
        Request::Ping { id } => Response::Pong { id: *id },
        Request::Stats { id } => Response::Stats {
            id: *id,
            report: stats_report(pool),
        },
        Request::Shutdown { id } => return (Response::Shutdown { id: *id }, true),
        Request::SetPolicy { id, policy } => {
            let previous = pool.state().cache().set_policy(*policy);
            Response::PolicySet {
                id: *id,
                policy: *policy,
                previous,
            }
        }
        Request::SetShardPolicy { id, update } => {
            let merged = update.apply(pool.shard_policy());
            let previous = pool.set_shard_policy(merged);
            Response::ShardPolicySet {
                id: *id,
                policy: merged,
                previous,
            }
        }
        Request::CacheClear { id } => {
            pool.state().cache().clear();
            Response::CacheCleared { id: *id }
        }
        Request::CacheWarm { id, limit } => match pool.state().cache().store() {
            Some(_) => Response::CacheWarmed {
                id: *id,
                loaded: pool.state().cache().warm_from_store(*limit),
            },
            None => Response::Error {
                id: *id,
                message: "cache-warm needs a persistent store (start with --store)".to_owned(),
            },
        },
        Request::StoreCompact { id, auto_ratio } => match pool.state().cache().store() {
            Some(store) => match auto_ratio {
                // Retune the background check; compact now only if the
                // store is already past the (non-zero) threshold.
                Some(ratio) => {
                    let state = pool.state();
                    state.set_auto_compact_ratio(Some(*ratio).filter(|r| *r > 0.0));
                    let before = store.stats();
                    let compacted = state.maybe_auto_compact();
                    let after = store.stats();
                    Response::StoreCompacted {
                        id: *id,
                        report: drmap_store::store::CompactReport {
                            live_records: after.records,
                            dropped_records: if compacted { before.dead_records } else { 0 },
                            bytes_before: before.file_bytes,
                            bytes_after: after.file_bytes,
                        },
                    }
                }
                None => match store.compact() {
                    Ok(report) => Response::StoreCompacted { id: *id, report },
                    Err(e) => Response::Error {
                        id: *id,
                        message: format!("compaction failed: {e}"),
                    },
                },
            },
            None => Response::Error {
                id: *id,
                message: "store-compact needs a persistent store (start with --store)".to_owned(),
            },
        },
        Request::Metrics { id } => {
            let state = pool.state();
            Response::Metrics {
                id: *id,
                report: MetricsReport {
                    snapshot: state.metrics().snapshot(),
                    slow: state.slow_log().entries(),
                },
            }
        }
        Request::MetricsHistory { id } => Response::MetricsHistory {
            id: *id,
            history: pool.state().history().history(),
        },
        Request::SlowTraces { id, limit } => match pool.state().cache().store() {
            Some(_) => Response::SlowTraces {
                id: *id,
                traces: pool
                    .state()
                    .persisted_slow_traces(*limit)
                    .into_iter()
                    .map(|(seq, unix_ms, entry)| PersistedSlowTrace {
                        seq,
                        unix_ms,
                        entry,
                    })
                    .collect(),
            },
            None => Response::Error {
                id: *id,
                message: "slow-traces needs a persistent store (start with --store)".to_owned(),
            },
        },
        Request::SetSlowLog { id, slow_ms, cap } => {
            if slow_ms.is_none() && cap.is_none() {
                Response::Error {
                    id: *id,
                    message: "set-slow-log needs at least one of slow_ms or cap".to_owned(),
                }
            } else {
                let log = pool.state().slow_log();
                let previous_ms = threshold_ms(log.threshold_ns());
                let previous_cap = log.capacity();
                if let Some(ms) = slow_ms {
                    log.set_threshold_ms(*ms);
                }
                if let Some(cap) = cap {
                    log.set_capacity(*cap);
                }
                Response::SlowLogSet {
                    id: *id,
                    slow_ms: threshold_ms(log.threshold_ns()),
                    cap: log.capacity(),
                    previous_ms,
                    previous_cap,
                }
            }
        }
        Request::SetBounds { id, update } => {
            if update.is_empty() {
                Response::Error {
                    id: *id,
                    message: "set-bounds needs at least one of max_entries or max_bytes".to_owned(),
                }
            } else {
                let cache = pool.state().cache();
                let ((previous_entries, previous_bytes), evicted) =
                    cache.set_bounds(update.entries_action(), update.bytes_action());
                let (max_entries, max_bytes) = cache.bounds();
                Response::BoundsSet {
                    id: *id,
                    max_entries,
                    max_bytes,
                    previous_entries,
                    previous_bytes,
                    evicted,
                }
            }
        }
        Request::SetFaults { id, spec } => {
            let parsed = match spec {
                None => Ok(None),
                Some(spec) => FaultPlan::parse(spec).map(Some),
            };
            match parsed.and_then(|plan| {
                pool.state().faults().set_plan(plan)?;
                Ok(plan)
            }) {
                Ok(plan) => Response::FaultsSet {
                    id: *id,
                    spec: plan.map(|p| p.render()),
                },
                Err(e) => Response::Error {
                    id: *id,
                    message: e.to_string(),
                },
            }
        }
        Request::SetOverload { id, update } => {
            if update.is_empty() {
                Response::Error {
                    id: *id,
                    message: "set-overload needs at least one field to change".to_owned(),
                }
            } else {
                let overload = pool.state().overload();
                let merged = update.apply(overload.config());
                let previous = overload.set_config(merged);
                Response::OverloadSet {
                    id: *id,
                    config: merged,
                    previous,
                }
            }
        }
        Request::Submit(_) => unreachable!("job submissions are dispatched before control verbs"),
    };
    (response, false)
}

/// Dispatch one request line to a response, blocking until the job (if
/// any) completes. The boolean asks the caller to shut the server down
/// after responding. This is the sequential building block the
/// pipelined connection handler decomposes; it is exposed for direct
/// testing and embedding, and accepts both dialects (answering in
/// kind) exactly like a live connection.
pub fn handle_request(pool: &DsePool, line: &str) -> (Json, bool) {
    let parsed = match Json::parse(line) {
        Ok(v) => v,
        Err(e) => {
            let response = Response::Error {
                id: None,
                message: e.to_string(),
            };
            return (response.render(Dialect::Legacy), false);
        }
    };
    let (request, dialect) = match Request::decode(&parsed) {
        Ok(decoded) => decoded,
        Err(e) => {
            let response = Response::Error {
                id: e.id,
                message: e.message,
            };
            return (response.render(e.dialect), false);
        }
    };
    if let Request::Submit(job) = request {
        let state = pool.state();
        let inflight = state.stages().jobs_inflight.get().max(0) as u64;
        if let Some(retry_after_ms) = state.overload().admission(inflight) {
            state.stages().shed_total.inc();
            let response = Response::Overloaded {
                id: Some(job.id),
                retry_after_ms,
            };
            return (response.render(dialect), false);
        }
        let trace = Trace::new(job.id);
        state.stages().jobs_inflight.inc();
        let response = job_response(
            job.id,
            pool.submit_traced(&job, Some(Arc::clone(&trace))).wait(),
        );
        state.stages().jobs_inflight.dec();
        let total_ns = state.slow_log().observe(&trace);
        state.stages().request_ns.record(total_ns);
        if let Some(entry) = state.slow_log().capture(&trace, total_ns) {
            state.persist_slow_trace(&entry);
        }
        return (response.render(dialect), false);
    }
    let (response, stop) = control_response(pool, &request);
    (response.render(dialect), stop)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ServiceState;

    fn test_pool() -> Arc<DsePool> {
        Arc::new(DsePool::new(ServiceState::new().unwrap(), 2))
    }

    #[test]
    fn dispatches_control_commands() {
        let pool = test_pool();
        let (pong, stop) = handle_request(&pool, r#"{"cmd": "ping"}"#);
        assert_eq!(pong.get("pong"), Some(&Json::Bool(true)));
        assert!(!stop);

        let (stats, _) = handle_request(&pool, r#"{"cmd": "stats"}"#);
        let stats = stats.get("stats").unwrap();
        assert_eq!(stats.get("workers").unwrap().as_usize(), Some(2));
        for counter in [
            "hits",
            "misses",
            "coalesced",
            "evictions",
            "cost_evictions",
            "bytes",
        ] {
            assert!(stats.get(counter).is_some(), "stats missing {counter}");
        }

        let (down, stop) = handle_request(&pool, r#"{"cmd": "shutdown"}"#);
        assert_eq!(down.get("ok"), Some(&Json::Bool(true)));
        assert!(stop);

        let (unknown, stop) = handle_request(&pool, r#"{"cmd": "reboot"}"#);
        assert_eq!(unknown.get("ok"), Some(&Json::Bool(false)));
        assert!(!stop);
    }

    #[test]
    fn metrics_and_bounds_verbs_answer_inline() {
        let pool = test_pool();
        pool.state().slow_log().set_threshold_ms(0); // log everything
        let (job, _) = handle_request(&pool, r#"{"id": 1, "network": {"model": "tiny"}}"#);
        assert_eq!(job.get("ok"), Some(&Json::Bool(true)));

        let (metrics, stop) = handle_request(&pool, r#"{"type":"metrics","id":2}"#);
        assert!(!stop);
        assert_eq!(metrics.get("ok"), Some(&Json::Bool(true)));
        let counters = metrics.get("counters").unwrap();
        assert_eq!(counters.get("jobs_total").and_then(Json::as_u64), Some(1));
        let request_ns = metrics
            .get("histograms")
            .unwrap()
            .get("request_ns")
            .unwrap();
        assert_eq!(request_ns.get("count").and_then(Json::as_u64), Some(1));
        let slow = metrics.get("slow").unwrap().as_array().unwrap();
        assert_eq!(slow.len(), 1, "threshold 0 logs every job");
        assert_eq!(slow[0].get("trace_id").and_then(Json::as_u64), Some(1));

        let (bounds, _) = handle_request(&pool, r#"{"type":"set-bounds","max_entries":8}"#);
        assert_eq!(bounds.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(bounds.get("max_entries").and_then(Json::as_u64), Some(8));
        // The live bound shows up in stats (not the boot-time config).
        let (stats, _) = handle_request(&pool, r#"{"type":"stats"}"#);
        let stats = stats.get("stats").unwrap();
        assert_eq!(stats.get("max_entries").and_then(Json::as_u64), Some(8));
        // An empty update is a usage error, not a silent no-op.
        let (err, _) = handle_request(&pool, r#"{"type":"set-bounds"}"#);
        assert_eq!(err.get("ok"), Some(&Json::Bool(false)));
    }

    #[test]
    fn runs_jobs_and_reports_errors() {
        let pool = test_pool();
        let (response, _) = handle_request(&pool, r#"{"id": 5, "network": {"model": "tiny"}}"#);
        assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
        // The job id is echoed at the top level (the pipelining
        // correlation key) as well as inside the result.
        assert_eq!(response.get("id").and_then(Json::as_u64), Some(5));
        let result = response.get("result").unwrap();
        assert_eq!(result.get("id").and_then(Json::as_u64), Some(5));
        assert_eq!(result.get("layers").unwrap().as_array().unwrap().len(), 3);

        let (bad_json, _) = handle_request(&pool, "{nope");
        assert_eq!(bad_json.get("ok"), Some(&Json::Bool(false)));

        let (bad_model, _) = handle_request(&pool, r#"{"id": 6, "network": {"model": "no-such"}}"#);
        assert_eq!(bad_model.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(bad_model.get("id").and_then(Json::as_u64), Some(6));
        assert!(bad_model
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("no-such"));
    }
}
