//! Poison-recovering lock helpers shared across the service.
//!
//! Every mutex in this crate guards state that each code path leaves
//! structurally valid (memo caches, counters, channel receivers,
//! semaphore counts), so a panic on some other thread must not cascade
//! into an abort of every thread that touches the lock. All lock sites
//! therefore recover from poisoning instead of propagating it — via
//! this one helper, so the policy lives in exactly one place.

use std::sync::{Mutex, MutexGuard};

/// Lock `mutex`, recovering the guard if a panicking thread poisoned it.
pub(crate) fn lock_recovered<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}
