//! The wire codec shared by the server and client: one serializer for
//! the typed protocol of [`crate::proto`], writing either
//! newline-delimited JSON text or length-prefixed binary frames.
//!
//! Every protocol message is a JSON document moving over TCP in one of
//! two [`Encoding`]s, distinguishable by the first byte:
//!
//! * [`Encoding::Text`]: the document on one line, terminated by `\n`
//!   — easy to drive from `nc`. A JSON document can never start with
//!   byte `0x00`, so text messages never collide with the frame marker.
//! * [`Encoding::Binary`]: marker byte `0x00`, a big-endian `u32`
//!   payload length, then exactly that many bytes of JSON. Frames carry
//!   large inline networks without line-scanning overhead and are
//!   capped at [`MAX_FRAME_BYTES`] so an untrusted length header cannot
//!   force an unbounded allocation.
//!
//! Either side may switch encodings per message; a response uses the
//! encoding of the request it answers. The typed layer sits directly on
//! top: [`write_request`]/[`read_request`] and
//! [`write_response`]/[`read_response`] move [`Request`]s and
//! [`Response`]s through **one codec** — the payload bytes are
//! identical in both encodings, only the framing differs.

use std::io::{BufRead, Write};

use crate::error::ServiceError;
use crate::json::Json;
use crate::proto::{DecodeError, Dialect, Request, Response};

/// How a message is framed on the wire. The JSON payload is the same in
/// both; auto-detected per message on read from the first byte.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Encoding {
    /// Newline-delimited JSON text (the default).
    #[default]
    Text,
    /// `0x00`-marked, length-prefixed binary frames.
    Binary,
}

impl Encoding {
    /// A stable lowercase name, used to label per-encoding metrics
    /// (e.g. the server's `frames_text_total` / `frames_binary_total`
    /// counters).
    pub fn label(&self) -> &'static str {
        match self {
            Encoding::Text => "text",
            Encoding::Binary => "binary",
        }
    }
}

/// First byte of a binary frame. `0x00` can never begin a JSON text
/// message.
pub const FRAME_MARKER: u8 = 0x00;

/// Lift socket-deadline failures into the typed
/// [`ServiceError::Timeout`], so retry policies can tell a stalled
/// peer from a dead one without string-matching. With
/// `SO_RCVTIMEO`/`SO_SNDTIMEO` armed, the OS reports an expired
/// deadline as `WouldBlock` (Unix) or `TimedOut` (Windows) — either
/// may surface mid-message, including after a partial write that
/// `write_all` had already begun.
fn timeout_aware(e: std::io::Error, context: &'static str) -> ServiceError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
            ServiceError::timeout(format!("socket {context} exceeded its configured timeout"))
        }
        _ => ServiceError::Io(e),
    }
}

/// Upper bound on a binary frame's payload, defending against hostile
/// length headers.
pub const MAX_FRAME_BYTES: usize = 64 * 1024 * 1024;

/// Write one message in the chosen encoding and flush.
///
/// # Errors
///
/// Propagates I/O failures; rejects payloads beyond [`MAX_FRAME_BYTES`]
/// in binary mode.
pub fn write_message(
    writer: &mut impl Write,
    payload: &str,
    encoding: Encoding,
) -> Result<(), ServiceError> {
    let write = |writer: &mut dyn Write, bytes: &[u8]| {
        writer
            .write_all(bytes)
            .map_err(|e| timeout_aware(e, "write"))
    };
    match encoding {
        Encoding::Binary => {
            if payload.len() > MAX_FRAME_BYTES {
                return Err(ServiceError::protocol(format!(
                    "frame payload of {} bytes exceeds the {MAX_FRAME_BYTES}-byte cap",
                    payload.len()
                )));
            }
            write(writer, &[FRAME_MARKER])?;
            write(writer, &(payload.len() as u32).to_be_bytes())?;
            write(writer, payload.as_bytes())?;
        }
        Encoding::Text => {
            write(writer, payload.as_bytes())?;
            write(writer, b"\n")?;
        }
    }
    writer.flush().map_err(|e| timeout_aware(e, "write"))?;
    Ok(())
}

/// Read one message, auto-detecting its encoding from the first byte.
/// Returns `None` on a clean end-of-stream; blank lines are skipped.
/// The returned [`Encoding`] lets the caller answer in kind.
///
/// # Errors
///
/// Propagates I/O failures; rejects oversized frames and non-UTF-8
/// frame payloads.
pub fn read_message(reader: &mut impl BufRead) -> Result<Option<(String, Encoding)>, ServiceError> {
    loop {
        let first = {
            let buf = reader.fill_buf().map_err(|e| timeout_aware(e, "read"))?;
            match buf.first() {
                Some(&b) => b,
                None => return Ok(None), // clean EOF between messages
            }
        };
        match first {
            FRAME_MARKER => {
                reader.consume(1);
                let mut len_bytes = [0u8; 4];
                reader
                    .read_exact(&mut len_bytes)
                    .map_err(|e| timeout_aware(e, "read"))?;
                let len = u32::from_be_bytes(len_bytes) as usize;
                if len > MAX_FRAME_BYTES {
                    return Err(ServiceError::protocol(format!(
                        "frame header claims {len} bytes, above the {MAX_FRAME_BYTES}-byte cap"
                    )));
                }
                let mut payload = vec![0u8; len];
                reader
                    .read_exact(&mut payload)
                    .map_err(|e| timeout_aware(e, "read"))?;
                let text = String::from_utf8(payload)
                    .map_err(|_| ServiceError::protocol("frame payload is not UTF-8"))?;
                return Ok(Some((text, Encoding::Binary)));
            }
            b'\n' | b'\r' => {
                reader.consume(1);
            }
            _ => {
                // Accumulate one text line with the same size cap as
                // binary frames: without it, a newline-free stream
                // would grow the buffer without bound.
                let mut line: Vec<u8> = Vec::new();
                loop {
                    let buf = reader.fill_buf().map_err(|e| timeout_aware(e, "read"))?;
                    if buf.is_empty() {
                        break; // EOF terminates the final line
                    }
                    match buf.iter().position(|&b| b == b'\n') {
                        Some(pos) => {
                            line.extend_from_slice(&buf[..pos]);
                            reader.consume(pos + 1);
                            break;
                        }
                        None => {
                            line.extend_from_slice(buf);
                            let n = buf.len();
                            reader.consume(n);
                        }
                    }
                    if line.len() > MAX_FRAME_BYTES {
                        return Err(ServiceError::protocol(format!(
                            "text message exceeds the {MAX_FRAME_BYTES}-byte cap"
                        )));
                    }
                }
                if line.len() > MAX_FRAME_BYTES {
                    return Err(ServiceError::protocol(format!(
                        "text message exceeds the {MAX_FRAME_BYTES}-byte cap"
                    )));
                }
                let text = String::from_utf8(line)
                    .map_err(|_| ServiceError::protocol("text message is not UTF-8"))?;
                let trimmed = text.trim();
                if !trimmed.is_empty() {
                    return Ok(Some((trimmed.to_owned(), Encoding::Text)));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Typed layer: proto messages through the one codec
// ---------------------------------------------------------------------

/// Write one typed [`Request`] in the chosen encoding.
///
/// # Errors
///
/// Propagates I/O failures and the binary-frame size cap.
pub fn write_request(
    writer: &mut impl Write,
    request: &Request,
    encoding: Encoding,
) -> Result<(), ServiceError> {
    write_message(writer, &request.to_json().render(), encoding)
}

/// Read and decode one request in either dialect. Returns `None` on a
/// clean end-of-stream. Decode failures come back as `Some(Err(…))`
/// inside a successful read, so a server can answer them in the right
/// dialect with the right id instead of dropping the connection.
///
/// # Errors
///
/// The outer `Err` is transport-level only (I/O, framing, non-UTF-8).
#[allow(clippy::type_complexity)]
pub fn read_request(
    reader: &mut impl BufRead,
) -> Result<Option<(Result<(Request, Dialect), DecodeError>, Encoding)>, ServiceError> {
    let Some((payload, encoding)) = read_message(reader)? else {
        return Ok(None);
    };
    let decoded = match Json::parse(&payload) {
        Ok(v) => Request::decode(&v),
        Err(e) => Err(DecodeError {
            id: None,
            dialect: Dialect::Legacy,
            message: e.to_string(),
        }),
    };
    Ok(Some((decoded, encoding)))
}

/// Write one [`Response`] in the given dialect and encoding.
///
/// # Errors
///
/// Propagates I/O failures and the binary-frame size cap.
pub fn write_response(
    writer: &mut impl Write,
    response: &Response,
    dialect: Dialect,
    encoding: Encoding,
) -> Result<(), ServiceError> {
    write_message(writer, &response.render(dialect).render(), encoding)
}

/// Read and decode one typed (v1) response. Returns `None` on a clean
/// end-of-stream.
///
/// # Errors
///
/// Fails on I/O errors, framing errors, or responses that do not parse
/// as the typed protocol.
pub fn read_response(
    reader: &mut impl BufRead,
) -> Result<Option<(Response, Encoding)>, ServiceError> {
    match read_message(reader)? {
        Some((payload, encoding)) => {
            Ok(Some((Response::decode(&Json::parse(&payload)?)?, encoding)))
        }
        None => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn text_messages_round_trip_and_skip_blank_lines() {
        let mut out = Vec::new();
        write_message(&mut out, r#"{"id":1}"#, Encoding::Text).unwrap();
        out.extend_from_slice(b"\r\n\n");
        write_message(&mut out, r#"{"id":2}"#, Encoding::Text).unwrap();
        let mut reader = BufReader::new(&out[..]);
        assert_eq!(
            read_message(&mut reader).unwrap(),
            Some((r#"{"id":1}"#.to_owned(), Encoding::Text))
        );
        assert_eq!(
            read_message(&mut reader).unwrap(),
            Some((r#"{"id":2}"#.to_owned(), Encoding::Text))
        );
        assert_eq!(read_message(&mut reader).unwrap(), None);
    }

    #[test]
    fn binary_frames_round_trip_and_interleave_with_text() {
        let mut out = Vec::new();
        write_message(&mut out, r#"{"id":1}"#, Encoding::Binary).unwrap();
        write_message(&mut out, r#"{"id":2}"#, Encoding::Text).unwrap();
        write_message(&mut out, "{\"s\":\"line\\nbreak\"}", Encoding::Binary).unwrap();
        let mut reader = BufReader::new(&out[..]);
        assert_eq!(
            read_message(&mut reader).unwrap(),
            Some((r#"{"id":1}"#.to_owned(), Encoding::Binary))
        );
        assert_eq!(
            read_message(&mut reader).unwrap(),
            Some((r#"{"id":2}"#.to_owned(), Encoding::Text))
        );
        assert_eq!(
            read_message(&mut reader).unwrap(),
            Some(("{\"s\":\"line\\nbreak\"}".to_owned(), Encoding::Binary))
        );
        assert_eq!(read_message(&mut reader).unwrap(), None);
    }

    #[test]
    fn hostile_frame_lengths_are_rejected_without_allocation() {
        let mut out = vec![FRAME_MARKER];
        out.extend_from_slice(&u32::MAX.to_be_bytes());
        let err = read_message(&mut BufReader::new(&out[..])).unwrap_err();
        assert!(err.to_string().contains("cap"), "{err}");
    }

    #[test]
    fn truncated_frames_are_io_errors_not_hangs() {
        let mut out = vec![FRAME_MARKER];
        out.extend_from_slice(&8u32.to_be_bytes());
        out.extend_from_slice(b"only4");
        assert!(read_message(&mut BufReader::new(&out[..])).is_err());
    }

    #[test]
    fn endless_unterminated_text_lines_are_rejected_not_accumulated() {
        // A newline-free stream longer than the cap must error instead
        // of growing the line buffer without bound.
        struct EndlessAs;
        impl std::io::Read for EndlessAs {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                buf.fill(b'a');
                Ok(buf.len())
            }
        }
        let mut reader = BufReader::new(EndlessAs);
        let err = read_message(&mut reader).unwrap_err();
        assert!(err.to_string().contains("cap"), "{err}");
    }

    #[test]
    fn socket_deadline_errors_surface_as_typed_timeouts() {
        // A reader whose deadline expires (SO_RCVTIMEO → WouldBlock)
        // must yield the typed Timeout, not an opaque Io error.
        struct Stalled;
        impl std::io::Read for Stalled {
            fn read(&mut self, _buf: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::from(std::io::ErrorKind::WouldBlock))
            }
        }
        let err = read_message(&mut BufReader::new(Stalled)).unwrap_err();
        assert!(matches!(err, ServiceError::Timeout(_)), "{err}");
        assert!(err.is_retryable());

        // Same for a writer that times out after a partial write.
        struct PartialThenStall {
            accepted: usize,
        }
        impl Write for PartialThenStall {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                if self.accepted == 0 {
                    return Err(std::io::Error::from(std::io::ErrorKind::TimedOut));
                }
                let n = buf.len().min(self.accepted);
                self.accepted -= n;
                Ok(n)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut w = PartialThenStall { accepted: 3 };
        let err = write_message(&mut w, r#"{"id":12345}"#, Encoding::Text).unwrap_err();
        assert!(matches!(err, ServiceError::Timeout(_)), "{err}");
    }

    #[test]
    fn non_utf8_frame_payloads_are_rejected() {
        let mut out = vec![FRAME_MARKER];
        out.extend_from_slice(&2u32.to_be_bytes());
        out.extend_from_slice(&[0xff, 0xfe]);
        let err = read_message(&mut BufReader::new(&out[..])).unwrap_err();
        assert!(err.to_string().contains("UTF-8"), "{err}");
    }
}
