//! Message transport shared by the server and client: newline-delimited
//! JSON text with an optional length-prefixed binary frame mode.
//!
//! Every protocol message is a JSON document moving over TCP in one of
//! two encodings, distinguishable by the first byte:
//!
//! * **Text**: the document on one line, terminated by `\n` — easy to
//!   drive from `nc`. A JSON document can never start with byte `0x00`,
//!   so text messages never collide with the frame marker.
//! * **Binary frame**: marker byte `0x00`, a big-endian `u32` payload
//!   length, then exactly that many bytes of JSON. Frames carry large
//!   inline networks without line-scanning overhead and are capped at
//!   [`MAX_FRAME_BYTES`] so an untrusted length header cannot force an
//!   unbounded allocation.
//!
//! Either side may switch encodings per message; a response uses the
//! encoding of the request it answers.

use std::io::{BufRead, Write};

use crate::error::ServiceError;

/// First byte of a binary frame. `0x00` can never begin a JSON text
/// message.
pub const FRAME_MARKER: u8 = 0x00;

/// Upper bound on a binary frame's payload, defending against hostile
/// length headers.
pub const MAX_FRAME_BYTES: usize = 64 * 1024 * 1024;

/// Write one message in the chosen encoding and flush.
///
/// # Errors
///
/// Propagates I/O failures; rejects payloads beyond [`MAX_FRAME_BYTES`]
/// in binary mode.
pub fn write_message(
    writer: &mut impl Write,
    payload: &str,
    binary: bool,
) -> Result<(), ServiceError> {
    if binary {
        if payload.len() > MAX_FRAME_BYTES {
            return Err(ServiceError::protocol(format!(
                "frame payload of {} bytes exceeds the {MAX_FRAME_BYTES}-byte cap",
                payload.len()
            )));
        }
        writer.write_all(&[FRAME_MARKER])?;
        writer.write_all(&(payload.len() as u32).to_be_bytes())?;
        writer.write_all(payload.as_bytes())?;
    } else {
        writer.write_all(payload.as_bytes())?;
        writer.write_all(b"\n")?;
    }
    writer.flush()?;
    Ok(())
}

/// Read one message, auto-detecting its encoding from the first byte.
/// Returns `None` on a clean end-of-stream; blank lines are skipped.
/// The returned flag is `true` for a binary frame, so the caller can
/// answer in kind.
///
/// # Errors
///
/// Propagates I/O failures; rejects oversized frames and non-UTF-8
/// frame payloads.
pub fn read_message(reader: &mut impl BufRead) -> Result<Option<(String, bool)>, ServiceError> {
    loop {
        let first = {
            let buf = reader.fill_buf()?;
            match buf.first() {
                Some(&b) => b,
                None => return Ok(None), // clean EOF between messages
            }
        };
        match first {
            FRAME_MARKER => {
                reader.consume(1);
                let mut len_bytes = [0u8; 4];
                reader.read_exact(&mut len_bytes)?;
                let len = u32::from_be_bytes(len_bytes) as usize;
                if len > MAX_FRAME_BYTES {
                    return Err(ServiceError::protocol(format!(
                        "frame header claims {len} bytes, above the {MAX_FRAME_BYTES}-byte cap"
                    )));
                }
                let mut payload = vec![0u8; len];
                reader.read_exact(&mut payload)?;
                let text = String::from_utf8(payload)
                    .map_err(|_| ServiceError::protocol("frame payload is not UTF-8"))?;
                return Ok(Some((text, true)));
            }
            b'\n' | b'\r' => {
                reader.consume(1);
            }
            _ => {
                // Accumulate one text line with the same size cap as
                // binary frames: without it, a newline-free stream
                // would grow the buffer without bound.
                let mut line: Vec<u8> = Vec::new();
                loop {
                    let buf = reader.fill_buf()?;
                    if buf.is_empty() {
                        break; // EOF terminates the final line
                    }
                    match buf.iter().position(|&b| b == b'\n') {
                        Some(pos) => {
                            line.extend_from_slice(&buf[..pos]);
                            reader.consume(pos + 1);
                            break;
                        }
                        None => {
                            line.extend_from_slice(buf);
                            let n = buf.len();
                            reader.consume(n);
                        }
                    }
                    if line.len() > MAX_FRAME_BYTES {
                        return Err(ServiceError::protocol(format!(
                            "text message exceeds the {MAX_FRAME_BYTES}-byte cap"
                        )));
                    }
                }
                if line.len() > MAX_FRAME_BYTES {
                    return Err(ServiceError::protocol(format!(
                        "text message exceeds the {MAX_FRAME_BYTES}-byte cap"
                    )));
                }
                let text = String::from_utf8(line)
                    .map_err(|_| ServiceError::protocol("text message is not UTF-8"))?;
                let trimmed = text.trim();
                if !trimmed.is_empty() {
                    return Ok(Some((trimmed.to_owned(), false)));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn text_messages_round_trip_and_skip_blank_lines() {
        let mut out = Vec::new();
        write_message(&mut out, r#"{"id":1}"#, false).unwrap();
        out.extend_from_slice(b"\r\n\n");
        write_message(&mut out, r#"{"id":2}"#, false).unwrap();
        let mut reader = BufReader::new(&out[..]);
        assert_eq!(
            read_message(&mut reader).unwrap(),
            Some((r#"{"id":1}"#.to_owned(), false))
        );
        assert_eq!(
            read_message(&mut reader).unwrap(),
            Some((r#"{"id":2}"#.to_owned(), false))
        );
        assert_eq!(read_message(&mut reader).unwrap(), None);
    }

    #[test]
    fn binary_frames_round_trip_and_interleave_with_text() {
        let mut out = Vec::new();
        write_message(&mut out, r#"{"id":1}"#, true).unwrap();
        write_message(&mut out, r#"{"id":2}"#, false).unwrap();
        write_message(&mut out, "{\"s\":\"line\\nbreak\"}", true).unwrap();
        let mut reader = BufReader::new(&out[..]);
        assert_eq!(
            read_message(&mut reader).unwrap(),
            Some((r#"{"id":1}"#.to_owned(), true))
        );
        assert_eq!(
            read_message(&mut reader).unwrap(),
            Some((r#"{"id":2}"#.to_owned(), false))
        );
        assert_eq!(
            read_message(&mut reader).unwrap(),
            Some(("{\"s\":\"line\\nbreak\"}".to_owned(), true))
        );
        assert_eq!(read_message(&mut reader).unwrap(), None);
    }

    #[test]
    fn hostile_frame_lengths_are_rejected_without_allocation() {
        let mut out = vec![FRAME_MARKER];
        out.extend_from_slice(&u32::MAX.to_be_bytes());
        let err = read_message(&mut BufReader::new(&out[..])).unwrap_err();
        assert!(err.to_string().contains("cap"), "{err}");
    }

    #[test]
    fn truncated_frames_are_io_errors_not_hangs() {
        let mut out = vec![FRAME_MARKER];
        out.extend_from_slice(&8u32.to_be_bytes());
        out.extend_from_slice(b"only4");
        assert!(read_message(&mut BufReader::new(&out[..])).is_err());
    }

    #[test]
    fn endless_unterminated_text_lines_are_rejected_not_accumulated() {
        // A newline-free stream longer than the cap must error instead
        // of growing the line buffer without bound.
        struct EndlessAs;
        impl std::io::Read for EndlessAs {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                buf.fill(b'a');
                Ok(buf.len())
            }
        }
        let mut reader = BufReader::new(EndlessAs);
        let err = read_message(&mut reader).unwrap_err();
        assert!(err.to_string().contains("cap"), "{err}");
    }

    #[test]
    fn non_utf8_frame_payloads_are_rejected() {
        let mut out = vec![FRAME_MARKER];
        out.extend_from_slice(&2u32.to_be_bytes());
        out.extend_from_slice(&[0xff, 0xfe]);
        let err = read_message(&mut BufReader::new(&out[..])).unwrap_err();
        assert!(err.to_string().contains("UTF-8"), "{err}");
    }
}
