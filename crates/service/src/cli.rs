//! Small argument-parsing helpers shared by the `drmap-serve` and
//! `drmap-batch` binaries: flag values, shard-policy flags, and the
//! `drmap-batch --admin` command language.

use crate::cache::EvictionPolicy;
use crate::faults::FaultPlan;
use crate::pool::ShardPolicy;
use crate::proto::{BoundsUpdate, OverloadUpdate, ShardPolicyUpdate};

/// Parse a `--cache-policy` value: `lru` or `cost`.
///
/// # Errors
///
/// Returns `"invalid <flag> value <value> …"` for anything else.
pub fn parse_cache_policy(flag: &str, value: &str) -> Result<EvictionPolicy, String> {
    EvictionPolicy::from_label(value)
        .ok_or_else(|| format!("invalid {flag} value {value:?} (expected \"lru\" or \"cost\")"))
}

/// Parse a flag value as a positive integer, rejecting zero, negatives,
/// and garbage with a uniform error message.
///
/// # Errors
///
/// Returns `"invalid <flag> value <value>"` when the value is not a
/// positive integer.
pub fn parse_positive(flag: &str, value: &str) -> Result<usize, String> {
    value
        .parse()
        .ok()
        .filter(|&n: &usize| n > 0)
        .ok_or_else(|| format!("invalid {flag} value {value:?}"))
}

/// Apply one shard-policy flag (`--shard-min-tilings N` or
/// `--shard-chunk N`) to a [`ShardPolicy`] — the same struct the
/// `set-shard-policy` admin verb retunes at runtime, so boot flags and
/// live updates cannot drift apart.
///
/// # Errors
///
/// Returns `"invalid <flag> value …"` for non-positive values, and
/// `Err(None)`-style pass-through is not used: unknown flags are the
/// caller's business (it returns `Ok(false)` for them).
pub fn apply_shard_flag(policy: &mut ShardPolicy, flag: &str, value: &str) -> Result<bool, String> {
    match flag {
        "--shard-min-tilings" => {
            policy.min_tilings = parse_positive(flag, value)?;
            Ok(true)
        }
        "--shard-chunk" => {
            policy.chunk_tilings = Some(parse_positive(flag, value)?);
            Ok(true)
        }
        _ => Ok(false),
    }
}

/// One `drmap-batch --admin` command, parsed from its token form.
/// (`PartialEq` only: [`FaultPlan`] carries probability floats.)
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdminCmd {
    /// `hello` — handshake; print version + capabilities.
    Hello,
    /// `ping` — liveness.
    Ping,
    /// `stats` — extended stats with the active configuration.
    Stats,
    /// `set-policy=lru|cost` — swap the eviction policy.
    SetPolicy(EvictionPolicy),
    /// `set-shard-policy=key:value[,key:value…]` — retune sharding
    /// (keys: `min_tilings`, `chunks_per_worker`, `chunk_tilings`;
    /// `chunk_tilings:0` clears the explicit chunk size).
    SetShardPolicy(ShardPolicyUpdate),
    /// `set-bounds=entries:N|bytes:N[,…]` — retune the cache bounds
    /// (`0` clears a bound to unbounded).
    SetBounds(BoundsUpdate),
    /// `metrics` — dump the telemetry snapshot and slow-request log
    /// (`--text` renders Prometheus-style exposition instead).
    Metrics,
    /// `metrics-history` — dump the windowed metrics history ring
    /// (base snapshot, per-window deltas, cumulative snapshot).
    MetricsHistory,
    /// `slow-traces[=N]` — list up to N persisted slow-request traces,
    /// newest first (requires a server-side store).
    SlowTraces(Option<usize>),
    /// `set-slow-log=slow_ms:N|cap:N[,…]` — retune the slow-request
    /// log threshold (`slow_ms:0` logs every job) and/or ring capacity.
    SetSlowLog {
        /// New threshold in milliseconds, when given.
        slow_ms: Option<u64>,
        /// New ring capacity, when given.
        cap: Option<usize>,
    },
    /// `set-faults=SPEC|off` — arm a deterministic fault plan (spec
    /// grammar in `docs/RELIABILITY.md`, e.g.
    /// `set-faults=seed=42,store-fail=0.1`) or disarm with `off`.
    SetFaults(Option<FaultPlan>),
    /// `set-overload=key:value[,…]` — retune the admission controller
    /// (keys: `enabled:on|off`, `high_ms`, `low_ms`, `recover_windows`,
    /// `retry_after_ms`, `max_inflight`; `max_inflight:0` clears the
    /// in-flight cap).
    SetOverload(OverloadUpdate),
    /// `cache-clear` — drop the resident cache tier.
    CacheClear,
    /// `cache-warm[=N]` — promote stored results into the cache.
    CacheWarm(Option<usize>),
    /// `store-compact[=auto:RATIO]` — rewrite the store log now, or
    /// arm the background auto-compaction check at the given
    /// dead-bytes ratio (`auto:0` disarms).
    StoreCompact(Option<f64>),
    /// `shutdown` — stop the server accepting connections.
    Shutdown,
}

/// Parse a `set-overload` / `--overload` spec:
/// `key:value[,key:value…]` with keys `enabled` (`on`/`off`/`true`/
/// `false`), `high_ms`, `low_ms`, `recover_windows`, `retry_after_ms`,
/// and `max_inflight` (`0` clears the cap). Shared by the admin verb
/// and the `drmap-serve --overload` boot flag so the two spec languages
/// cannot drift apart.
///
/// # Errors
///
/// Returns a usage message for unknown keys, malformed values, or a
/// spec that changes nothing.
pub fn parse_overload_spec(value: &str) -> Result<OverloadUpdate, String> {
    let mut update = OverloadUpdate::default();
    for pair in value.split(',') {
        let (key, v) = pair
            .split_once(':')
            .ok_or_else(|| format!("set-overload field {pair:?} is not key:value"))?;
        let ms = |v: &str| -> Result<u64, String> {
            v.parse()
                .ok()
                .filter(|&n| n > 0)
                .ok_or_else(|| format!("invalid {key} value {v:?} (positive milliseconds)"))
        };
        match key {
            "enabled" => {
                update.enabled = Some(match v {
                    "on" | "true" => true,
                    "off" | "false" => false,
                    other => {
                        return Err(format!("invalid enabled value {other:?} (expected on|off)"))
                    }
                });
            }
            "high_ms" => update.high_ms = Some(ms(v)?),
            "low_ms" => update.low_ms = Some(ms(v)?),
            "retry_after_ms" => update.retry_after_ms = Some(ms(v)?),
            "recover_windows" => {
                update.recover_windows = Some(
                    v.parse()
                        .ok()
                        .filter(|&n: &u32| n > 0)
                        .ok_or_else(|| format!("invalid recover_windows value {v:?}"))?,
                );
            }
            // 0 is meaningful here: it clears the in-flight cap.
            "max_inflight" => {
                update.max_inflight = Some(v.parse().map_err(|_| {
                    format!("invalid max_inflight value {v:?} (integer, 0 clears)")
                })?);
            }
            other => {
                return Err(format!(
                    "unknown set-overload field {other:?} (expected enabled, high_ms, \
                     low_ms, recover_windows, retry_after_ms, or max_inflight)"
                ))
            }
        }
    }
    if update.is_empty() {
        return Err("set-overload changed nothing".to_owned());
    }
    Ok(update)
}

/// Parse one `--admin` command token (see [`AdminCmd`] for the
/// language).
///
/// # Errors
///
/// Returns a usage message for unknown commands or malformed values.
pub fn parse_admin_command(token: &str) -> Result<AdminCmd, String> {
    let (name, value) = match token.split_once('=') {
        Some((name, value)) => (name, Some(value)),
        None => (token, None),
    };
    let no_value = |cmd: AdminCmd| match value {
        None => Ok(cmd),
        Some(_) => Err(format!("admin command {name:?} takes no value")),
    };
    match name {
        "hello" => no_value(AdminCmd::Hello),
        "ping" => no_value(AdminCmd::Ping),
        "stats" => no_value(AdminCmd::Stats),
        "metrics" => no_value(AdminCmd::Metrics),
        "metrics-history" => no_value(AdminCmd::MetricsHistory),
        "slow-traces" => match value {
            None => Ok(AdminCmd::SlowTraces(None)),
            Some(v) => Ok(AdminCmd::SlowTraces(Some(parse_positive(
                "slow-traces",
                v,
            )?))),
        },
        "set-slow-log" => {
            let value = value.ok_or(
                "set-slow-log needs a value, e.g. set-slow-log=slow_ms:250,cap:64 \
                 (slow_ms:0 logs every job)",
            )?;
            let mut slow_ms = None;
            let mut cap = None;
            for pair in value.split(',') {
                let (key, n) = pair
                    .split_once(':')
                    .ok_or_else(|| format!("set-slow-log field {pair:?} is not key:value"))?;
                match key {
                    // 0 is meaningful here: it logs every job.
                    "slow_ms" => {
                        slow_ms = Some(n.parse().map_err(|_| {
                            format!("invalid slow_ms value {n:?} (milliseconds, 0 logs all)")
                        })?);
                    }
                    "cap" => cap = Some(parse_positive(key, n)?),
                    other => {
                        return Err(format!(
                            "unknown set-slow-log field {other:?} (expected slow_ms or cap)"
                        ))
                    }
                }
            }
            if slow_ms.is_none() && cap.is_none() {
                return Err("set-slow-log changed nothing".to_owned());
            }
            Ok(AdminCmd::SetSlowLog { slow_ms, cap })
        }
        "set-faults" => {
            let value = value.ok_or(
                "set-faults needs a value: a fault-plan spec \
                 (e.g. set-faults=seed=42,store-fail=0.1) or \"off\" to disarm",
            )?;
            if value == "off" {
                return Ok(AdminCmd::SetFaults(None));
            }
            let plan = FaultPlan::parse(value).map_err(|e| e.to_string())?;
            Ok(AdminCmd::SetFaults(Some(plan)))
        }
        "set-overload" => {
            let value = value.ok_or(
                "set-overload needs a value, e.g. \
                 set-overload=enabled:on,high_ms:500,low_ms:250",
            )?;
            Ok(AdminCmd::SetOverload(parse_overload_spec(value)?))
        }
        "cache-clear" => no_value(AdminCmd::CacheClear),
        "store-compact" => match value {
            None => Ok(AdminCmd::StoreCompact(None)),
            Some(v) => {
                let ratio = v
                    .strip_prefix("auto:")
                    .and_then(|r| r.parse::<f64>().ok())
                    .filter(|r| (0.0..=1.0).contains(r))
                    .ok_or_else(|| {
                        format!(
                            "invalid store-compact value {v:?} \
                             (expected auto:RATIO with RATIO in [0, 1]; 0 disarms)"
                        )
                    })?;
                Ok(AdminCmd::StoreCompact(Some(ratio)))
            }
        },
        "shutdown" => no_value(AdminCmd::Shutdown),
        "cache-warm" => match value {
            None => Ok(AdminCmd::CacheWarm(None)),
            Some(v) => Ok(AdminCmd::CacheWarm(Some(parse_positive("cache-warm", v)?))),
        },
        "set-policy" => {
            let value = value.ok_or("set-policy needs a value (set-policy=lru|cost)")?;
            Ok(AdminCmd::SetPolicy(parse_cache_policy(
                "set-policy",
                value,
            )?))
        }
        "set-shard-policy" => {
            let value = value.ok_or(
                "set-shard-policy needs a value, e.g. \
                 set-shard-policy=min_tilings:64,chunks_per_worker:3",
            )?;
            let mut update = ShardPolicyUpdate::default();
            for pair in value.split(',') {
                let (key, n) = pair
                    .split_once(':')
                    .ok_or_else(|| format!("set-shard-policy field {pair:?} is not key:value"))?;
                match key {
                    "min_tilings" => update.min_tilings = Some(parse_positive(key, n)?),
                    "chunks_per_worker" => {
                        update.chunks_per_worker = Some(parse_positive(key, n)?);
                    }
                    // 0 is meaningful here: it clears the explicit
                    // chunk-size override.
                    "chunk_tilings" => {
                        update.chunk_tilings = Some(n.parse().map_err(|_| {
                            format!("invalid chunk_tilings value {n:?} (integer, 0 clears)")
                        })?);
                    }
                    other => {
                        return Err(format!(
                            "unknown set-shard-policy field {other:?} (expected min_tilings, \
                             chunks_per_worker, or chunk_tilings)"
                        ))
                    }
                }
            }
            if update == ShardPolicyUpdate::default() {
                return Err("set-shard-policy changed nothing".to_owned());
            }
            Ok(AdminCmd::SetShardPolicy(update))
        }
        "set-bounds" => {
            let value = value.ok_or(
                "set-bounds needs a value, e.g. set-bounds=entries:512,bytes:1048576 \
                 (0 clears a bound)",
            )?;
            let mut update = BoundsUpdate::default();
            for pair in value.split(',') {
                let (key, n) = pair
                    .split_once(':')
                    .ok_or_else(|| format!("set-bounds field {pair:?} is not key:value"))?;
                // 0 is meaningful for both: it clears the bound to
                // unbounded.
                let n: usize = n
                    .parse()
                    .map_err(|_| format!("invalid {key} value {n:?} (integer, 0 clears)"))?;
                match key {
                    "entries" => update.max_entries = Some(n),
                    "bytes" => update.max_bytes = Some(n),
                    other => {
                        return Err(format!(
                            "unknown set-bounds field {other:?} (expected entries or bytes)"
                        ))
                    }
                }
            }
            if update.is_empty() {
                return Err("set-bounds changed nothing".to_owned());
            }
            Ok(AdminCmd::SetBounds(update))
        }
        other => Err(format!(
            "unknown admin command {other:?} (expected hello, ping, stats, set-policy, \
             set-shard-policy, set-bounds, set-slow-log, set-faults, set-overload, \
             cache-clear, cache-warm, store-compact, metrics, metrics-history, \
             slow-traces, or shutdown)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_flags_update_the_same_struct_the_admin_verb_uses() {
        let mut policy = ShardPolicy::default();
        assert_eq!(
            apply_shard_flag(&mut policy, "--shard-min-tilings", "128"),
            Ok(true)
        );
        assert_eq!(
            apply_shard_flag(&mut policy, "--shard-chunk", "16"),
            Ok(true)
        );
        assert_eq!(policy.min_tilings, 128);
        assert_eq!(policy.chunk_tilings, Some(16));
        assert_eq!(apply_shard_flag(&mut policy, "--workers", "4"), Ok(false));
        assert!(apply_shard_flag(&mut policy, "--shard-chunk", "0").is_err());
    }

    #[test]
    fn admin_commands_parse_and_reject_garbage() {
        assert_eq!(parse_admin_command("hello"), Ok(AdminCmd::Hello));
        assert_eq!(
            parse_admin_command("cache-warm"),
            Ok(AdminCmd::CacheWarm(None))
        );
        assert_eq!(
            parse_admin_command("cache-warm=50"),
            Ok(AdminCmd::CacheWarm(Some(50)))
        );
        assert_eq!(
            parse_admin_command("set-policy=cost"),
            Ok(AdminCmd::SetPolicy(EvictionPolicy::Cost))
        );
        assert_eq!(
            parse_admin_command("store-compact"),
            Ok(AdminCmd::StoreCompact(None))
        );
        assert_eq!(
            parse_admin_command("store-compact=auto:0.4"),
            Ok(AdminCmd::StoreCompact(Some(0.4)))
        );
        assert_eq!(
            parse_admin_command("set-shard-policy=min_tilings:32,chunk_tilings:0"),
            Ok(AdminCmd::SetShardPolicy(ShardPolicyUpdate {
                min_tilings: Some(32),
                chunks_per_worker: None,
                chunk_tilings: Some(0),
            }))
        );
        assert_eq!(parse_admin_command("metrics"), Ok(AdminCmd::Metrics));
        assert_eq!(
            parse_admin_command("metrics-history"),
            Ok(AdminCmd::MetricsHistory)
        );
        assert_eq!(
            parse_admin_command("slow-traces"),
            Ok(AdminCmd::SlowTraces(None))
        );
        assert_eq!(
            parse_admin_command("slow-traces=5"),
            Ok(AdminCmd::SlowTraces(Some(5)))
        );
        assert_eq!(
            parse_admin_command("set-slow-log=slow_ms:0,cap:64"),
            Ok(AdminCmd::SetSlowLog {
                slow_ms: Some(0),
                cap: Some(64),
            })
        );
        assert_eq!(
            parse_admin_command("set-slow-log=cap:8"),
            Ok(AdminCmd::SetSlowLog {
                slow_ms: None,
                cap: Some(8),
            })
        );
        assert_eq!(
            parse_admin_command("set-bounds=entries:64,bytes:0"),
            Ok(AdminCmd::SetBounds(BoundsUpdate {
                max_entries: Some(64),
                max_bytes: Some(0),
            }))
        );
        assert_eq!(
            parse_admin_command("set-faults=off"),
            Ok(AdminCmd::SetFaults(None))
        );
        match parse_admin_command("set-faults=seed=42,store-fail=0.1") {
            Ok(AdminCmd::SetFaults(Some(plan))) => {
                assert_eq!(plan.seed, 42);
                assert!((plan.store_fail - 0.1).abs() < 1e-12);
            }
            other => panic!("unexpected parse: {other:?}"),
        }
        assert_eq!(
            parse_admin_command("set-overload=enabled:on,high_ms:500,max_inflight:0"),
            Ok(AdminCmd::SetOverload(OverloadUpdate {
                enabled: Some(true),
                high_ms: Some(500),
                max_inflight: Some(0),
                ..OverloadUpdate::default()
            }))
        );
        for bad in [
            "reboot",
            "set-policy",
            "set-policy=mru",
            "set-shard-policy=min_tilings",
            "set-shard-policy=min_tilings:0",
            "set-shard-policy=chunk:4",
            "set-shard-policy=",
            "ping=1",
            "cache-warm=zero",
            "metrics=all",
            "set-bounds",
            "set-bounds=",
            "set-bounds=rows:4",
            "set-bounds=entries:x",
            "metrics-history=1",
            "slow-traces=0",
            "slow-traces=many",
            "set-slow-log",
            "set-slow-log=",
            "set-slow-log=cap:0",
            "set-slow-log=slow_ms:fast",
            "set-slow-log=threshold:4",
            "set-faults",
            "set-faults=seed=nope",
            "set-faults=store-fail=2.0",
            "set-overload",
            "set-overload=",
            "set-overload=enabled:maybe",
            "set-overload=high_ms:0",
            "set-overload=shed:yes",
            "store-compact=0.4",
            "store-compact=auto:1.5",
            "store-compact=auto:now",
        ] {
            assert!(parse_admin_command(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn cache_policy_parses_both_labels() {
        assert_eq!(
            parse_cache_policy("--cache-policy", "lru"),
            Ok(EvictionPolicy::Lru)
        );
        assert_eq!(
            parse_cache_policy("--cache-policy", "cost"),
            Ok(EvictionPolicy::Cost)
        );
        let err = parse_cache_policy("--cache-policy", "mru").unwrap_err();
        assert!(err.contains("--cache-policy"), "{err}");
    }

    #[test]
    fn accepts_positive_rejects_the_rest() {
        assert_eq!(parse_positive("--workers", "4"), Ok(4));
        for bad in ["0", "-1", "four", "", "1.5"] {
            let err = parse_positive("--workers", bad).unwrap_err();
            assert!(err.contains("--workers"), "{err}");
        }
    }
}
