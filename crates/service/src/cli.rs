//! Small argument-parsing helpers shared by the `drmap-serve` and
//! `drmap-batch` binaries.

use crate::cache::EvictionPolicy;

/// Parse a `--cache-policy` value: `lru` or `cost`.
///
/// # Errors
///
/// Returns `"invalid <flag> value <value> …"` for anything else.
pub fn parse_cache_policy(flag: &str, value: &str) -> Result<EvictionPolicy, String> {
    EvictionPolicy::from_label(value)
        .ok_or_else(|| format!("invalid {flag} value {value:?} (expected \"lru\" or \"cost\")"))
}

/// Parse a flag value as a positive integer, rejecting zero, negatives,
/// and garbage with a uniform error message.
///
/// # Errors
///
/// Returns `"invalid <flag> value <value>"` when the value is not a
/// positive integer.
pub fn parse_positive(flag: &str, value: &str) -> Result<usize, String> {
    value
        .parse()
        .ok()
        .filter(|&n: &usize| n > 0)
        .ok_or_else(|| format!("invalid {flag} value {value:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_policy_parses_both_labels() {
        assert_eq!(
            parse_cache_policy("--cache-policy", "lru"),
            Ok(EvictionPolicy::Lru)
        );
        assert_eq!(
            parse_cache_policy("--cache-policy", "cost"),
            Ok(EvictionPolicy::Cost)
        );
        let err = parse_cache_policy("--cache-policy", "mru").unwrap_err();
        assert!(err.contains("--cache-policy"), "{err}");
    }

    #[test]
    fn accepts_positive_rejects_the_rest() {
        assert_eq!(parse_positive("--workers", "4"), Ok(4));
        for bad in ["0", "-1", "four", "", "1.5"] {
            let err = parse_positive("--workers", bad).unwrap_err();
            assert!(err.contains("--workers"), "{err}");
        }
    }
}
