//! Seeded, deterministic fault injection.
//!
//! A [`FaultPlan`] describes *where* and *how often* the service should
//! misbehave on purpose: store operations that fail or stall, response
//! frames that are dropped or delayed on the wire, and a worker panic
//! at a chosen job ordinal. Every decision is drawn from a
//! [`SplitMix64`] stream keyed by `(seed, site, ordinal)` — the same
//! generator the load generator uses — so a given seed produces the
//! same fault sequence at each site on every run: chaos tests are
//! reproducible, not flaky.
//!
//! Plans are armed at boot (`drmap-serve --fault-plan SPEC`) or live
//! (the `set-faults` admin verb) and live in the [`FaultState`] hanging
//! off [`ServiceState`](crate::engine::ServiceState). Injection sites
//! consult the state on their hot paths; with no plan armed the check
//! is one relaxed atomic-free `Mutex` lock of an `Option` clone — and
//! in release builds without the `faults` cargo feature, arming a plan
//! is refused outright ([`FAULTS_COMPILED_IN`]), so production binaries
//! cannot be talked into sabotaging themselves.
//!
//! Every injected fault is counted (`fault_store_total`,
//! `fault_wire_total`, `fault_pool_total` — exposed with the `drmap_`
//! prefix); see `docs/RELIABILITY.md` for the spec grammar and
//! `docs/OBSERVABILITY.md` for the metric taxonomy.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::error::ServiceError;
use crate::loadgen::SplitMix64;
use crate::sync::lock_recovered;

/// Whether this build can arm fault plans at all: always in debug
/// builds, and in release builds only with the `faults` cargo feature.
/// A release binary built without the feature refuses `--fault-plan`
/// and the `set-faults` verb, and does not advertise the `faults`
/// capability.
pub const FAULTS_COMPILED_IN: bool = cfg!(any(debug_assertions, feature = "faults"));

/// Distinct draw streams per injection site, salted into the seed so
/// the store's fault sequence is independent of the wire's.
const SITE_STORE: u64 = 0x51;
const SITE_WIRE: u64 = 0x52;

/// What a fault plan injects, where, and how often. All probabilities
/// are `0.0..=1.0` fractions of operations at that site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed of every decision stream; the whole plan is a deterministic
    /// function of it.
    pub seed: u64,
    /// Fraction of store `get`/`put`/`compact` calls that fail with an
    /// injected error.
    pub store_fail: f64,
    /// Fraction of store calls delayed by jitter sampled in
    /// `0..store_delay_ms`.
    pub store_delay: f64,
    /// Upper bound of the sampled store delay, in milliseconds.
    pub store_delay_ms: u64,
    /// Fraction of response frames dropped on the wire (never written;
    /// the client sees a stall, then its read timeout).
    pub wire_drop: f64,
    /// Fraction of response frames stalled by jitter sampled in
    /// `0..wire_stall_ms` before being written.
    pub wire_stall: f64,
    /// Upper bound of the sampled wire stall, in milliseconds.
    pub wire_stall_ms: u64,
    /// Panic a worker while it computes the Nth submitted job
    /// (1-based), exactly once per armed plan.
    pub panic_job: Option<u64>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            store_fail: 0.0,
            store_delay: 0.0,
            store_delay_ms: 5,
            wire_drop: 0.0,
            wire_stall: 0.0,
            wire_stall_ms: 20,
            panic_job: None,
        }
    }
}

fn parse_fraction(key: &str, value: &str) -> Result<f64, ServiceError> {
    let p: f64 = value.parse().map_err(|_| {
        ServiceError::protocol(format!("fault plan: {key} needs a number, got {value:?}"))
    })?;
    if !(0.0..=1.0).contains(&p) {
        return Err(ServiceError::protocol(format!(
            "fault plan: {key} must be in 0..=1, got {value}"
        )));
    }
    Ok(p)
}

fn parse_u64(key: &str, value: &str) -> Result<u64, ServiceError> {
    value.parse().map_err(|_| {
        ServiceError::protocol(format!(
            "fault plan: {key} needs a non-negative integer, got {value:?}"
        ))
    })
}

impl FaultPlan {
    /// Parse a `key=value,key=value` spec. Keys: `seed`, `store-fail`,
    /// `store-delay`, `store-delay-ms`, `wire-drop`, `wire-stall`,
    /// `wire-stall-ms`, `panic-job`. Probabilities are `0..=1`
    /// fractions; omitted keys keep [`FaultPlan::default`] values.
    ///
    /// # Errors
    ///
    /// Rejects unknown keys, malformed numbers, out-of-range
    /// probabilities, and plans that inject nothing.
    pub fn parse(spec: &str) -> Result<Self, ServiceError> {
        let mut plan = FaultPlan::default();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part.split_once('=').ok_or_else(|| {
                ServiceError::protocol(format!("fault plan: expected key=value, got {part:?}"))
            })?;
            let (key, value) = (key.trim(), value.trim());
            match key {
                "seed" => plan.seed = parse_u64(key, value)?,
                "store-fail" => plan.store_fail = parse_fraction(key, value)?,
                "store-delay" => plan.store_delay = parse_fraction(key, value)?,
                "store-delay-ms" => plan.store_delay_ms = parse_u64(key, value)?,
                "wire-drop" => plan.wire_drop = parse_fraction(key, value)?,
                "wire-stall" => plan.wire_stall = parse_fraction(key, value)?,
                "wire-stall-ms" => plan.wire_stall_ms = parse_u64(key, value)?,
                "panic-job" => {
                    let n = parse_u64(key, value)?;
                    if n == 0 {
                        return Err(ServiceError::protocol(
                            "fault plan: panic-job is 1-based (use panic-job=1 for the first job)",
                        ));
                    }
                    plan.panic_job = Some(n);
                }
                other => {
                    return Err(ServiceError::protocol(format!(
                        "fault plan: unknown key {other:?} (known: seed, store-fail, store-delay, \
                         store-delay-ms, wire-drop, wire-stall, wire-stall-ms, panic-job)"
                    )))
                }
            }
        }
        if plan.injects_nothing() {
            return Err(ServiceError::protocol(
                "fault plan injects nothing (set at least one of store-fail/store-delay/\
                 wire-drop/wire-stall/panic-job)",
            ));
        }
        Ok(plan)
    }

    fn injects_nothing(&self) -> bool {
        self.store_fail == 0.0
            && self.store_delay == 0.0
            && self.wire_drop == 0.0
            && self.wire_stall == 0.0
            && self.panic_job.is_none()
    }

    /// The canonical spec string this plan re-parses from (non-default
    /// fields only, seed always included).
    pub fn render(&self) -> String {
        let mut parts = vec![format!("seed={}", self.seed)];
        let defaults = FaultPlan::default();
        if self.store_fail != 0.0 {
            parts.push(format!("store-fail={}", self.store_fail));
        }
        if self.store_delay != 0.0 {
            parts.push(format!("store-delay={}", self.store_delay));
            if self.store_delay_ms != defaults.store_delay_ms {
                parts.push(format!("store-delay-ms={}", self.store_delay_ms));
            }
        }
        if self.wire_drop != 0.0 {
            parts.push(format!("wire-drop={}", self.wire_drop));
        }
        if self.wire_stall != 0.0 {
            parts.push(format!("wire-stall={}", self.wire_stall));
            if self.wire_stall_ms != defaults.wire_stall_ms {
                parts.push(format!("wire-stall-ms={}", self.wire_stall_ms));
            }
        }
        if let Some(n) = self.panic_job {
            parts.push(format!("panic-job={n}"));
        }
        parts.join(",")
    }
}

/// What an injection site should do to the operation it guards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Fail the operation with an injected error.
    Fail,
    /// Delay the operation by the sampled jitter, then proceed.
    Delay(Duration),
}

/// The `(seed, site, ordinal)`-keyed decision draw: a fresh
/// [`SplitMix64`] per decision, so every site's Nth decision is a pure
/// function of the plan seed — O(1), stateless, and independent of
/// thread interleaving at *other* sites.
fn draw(seed: u64, site: u64, ordinal: u64) -> (f64, u64) {
    let mut rng = SplitMix64::new(
        seed.wrapping_add(ordinal.wrapping_mul(0x9e37_79b9_7f4a_7c15))
            ^ site.wrapping_mul(0xbf58_476d_1ce4_e5b9),
    );
    let p = rng.next_f64();
    (p, rng.next_u64())
}

/// One armed plan plus its per-site decision ordinals.
#[derive(Debug)]
struct ActivePlan {
    plan: FaultPlan,
    store_ordinal: AtomicU64,
    wire_ordinal: AtomicU64,
    /// Set once the chosen job ordinal's panic has fired, so one plan
    /// injects at most one panic however many layers the job has.
    panic_fired: AtomicU64,
}

/// Live fault-injection state shared by every injection site. With no
/// plan armed (the default), every query answers `None`.
#[derive(Debug, Default)]
pub struct FaultState {
    active: Mutex<Option<Arc<ActivePlan>>>,
}

impl FaultState {
    /// Arm `plan` (or disarm with `None`), returning the previously
    /// armed plan. Arming also resets the job-ordinal bookkeeping, so
    /// re-arming the same plan re-injects its worker panic.
    ///
    /// # Errors
    ///
    /// Refuses to arm in builds where [`FAULTS_COMPILED_IN`] is false
    /// (release without the `faults` feature). Disarming always works.
    pub fn set_plan(&self, plan: Option<FaultPlan>) -> Result<Option<FaultPlan>, ServiceError> {
        if plan.is_some() && !FAULTS_COMPILED_IN {
            return Err(ServiceError::protocol(
                "fault injection is not compiled into this build \
                 (rebuild with the `faults` feature or a debug profile)",
            ));
        }
        let active = plan.map(|plan| {
            Arc::new(ActivePlan {
                plan,
                store_ordinal: AtomicU64::new(0),
                wire_ordinal: AtomicU64::new(0),
                panic_fired: AtomicU64::new(0),
            })
        });
        let previous = std::mem::replace(&mut *lock_recovered(&self.active), active);
        Ok(previous.map(|p| p.plan))
    }

    /// The currently armed plan, if any.
    pub fn plan(&self) -> Option<FaultPlan> {
        lock_recovered(&self.active).as_ref().map(|p| p.plan)
    }

    fn active(&self) -> Option<Arc<ActivePlan>> {
        lock_recovered(&self.active).clone()
    }

    /// Decide the fate of one store operation. Probability mass is
    /// split: a draw under `store_fail` fails, one under
    /// `store_fail + store_delay` stalls by sampled jitter.
    pub fn store_action(&self) -> Option<FaultAction> {
        let active = self.active()?;
        let plan = &active.plan;
        if plan.store_fail == 0.0 && plan.store_delay == 0.0 {
            return None;
        }
        // ordering: Relaxed — the ordinal is a pure draw ticket; no
        // other data is published through it.
        let n = active.store_ordinal.fetch_add(1, Ordering::Relaxed);
        let (p, jitter) = draw(plan.seed, SITE_STORE, n);
        if p < plan.store_fail {
            Some(FaultAction::Fail)
        } else if p < plan.store_fail + plan.store_delay {
            Some(FaultAction::Delay(Duration::from_millis(
                jitter % plan.store_delay_ms.max(1),
            )))
        } else {
            None
        }
    }

    /// Decide the fate of one outgoing response frame: `Fail` means
    /// drop it (never write), `Delay` means stall before writing.
    pub fn wire_action(&self) -> Option<FaultAction> {
        let active = self.active()?;
        let plan = &active.plan;
        if plan.wire_drop == 0.0 && plan.wire_stall == 0.0 {
            return None;
        }
        // ordering: Relaxed — pure draw ticket, as above.
        let n = active.wire_ordinal.fetch_add(1, Ordering::Relaxed);
        let (p, jitter) = draw(plan.seed, SITE_WIRE, n);
        if p < plan.wire_drop {
            Some(FaultAction::Fail)
        } else if p < plan.wire_drop + plan.wire_stall {
            Some(FaultAction::Delay(Duration::from_millis(
                jitter % plan.wire_stall_ms.max(1),
            )))
        } else {
            None
        }
    }

    /// Whether the worker computing the job with this submission
    /// ordinal (1-based, as counted by the pool) should panic. Fires at
    /// most once per armed plan.
    pub fn job_panics(&self, job_ordinal: u64) -> bool {
        let Some(active) = self.active() else {
            return false;
        };
        if active.plan.panic_job != Some(job_ordinal) {
            return false;
        }
        // ordering: Relaxed — the swap's atomicity alone guarantees the
        // single firing; no other data rides on it.
        active.panic_fired.swap(1, Ordering::Relaxed) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_parse_and_render_round_trip() {
        let plan = FaultPlan::parse(
            "seed=42, store-fail=0.1, store-delay=0.05, store-delay-ms=7, \
             wire-drop=0.02, wire-stall=0.02, wire-stall-ms=30, panic-job=3",
        )
        .unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.store_fail, 0.1);
        assert_eq!(plan.store_delay_ms, 7);
        assert_eq!(plan.panic_job, Some(3));
        assert_eq!(FaultPlan::parse(&plan.render()).unwrap(), plan);
    }

    #[test]
    fn malformed_specs_are_rejected() {
        for bad in [
            "store-fail=1.5",
            "store-fail=yes",
            "frobnicate=1",
            "seed",
            "seed=42",     // injects nothing
            "panic-job=0", // 1-based
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn decisions_are_deterministic_per_seed_and_site() {
        let state = FaultState::default();
        let plan = FaultPlan::parse("seed=7,store-fail=0.3,wire-stall=0.3").unwrap();
        state.set_plan(Some(plan)).unwrap();
        let first: Vec<_> = (0..64).map(|_| state.store_action()).collect();
        let wire_first: Vec<_> = (0..64).map(|_| state.wire_action()).collect();
        // Re-arming resets the ordinals: the sequence replays exactly.
        state.set_plan(Some(plan)).unwrap();
        let second: Vec<_> = (0..64).map(|_| state.store_action()).collect();
        let wire_second: Vec<_> = (0..64).map(|_| state.wire_action()).collect();
        assert_eq!(first, second);
        assert_eq!(wire_first, wire_second);
        assert!(
            first.iter().any(Option::is_some) && first.iter().any(Option::is_none),
            "a 30% rate should both fire and not fire across 64 draws"
        );
        // Store and wire streams are salted apart.
        assert_ne!(first, wire_first);
    }

    #[test]
    fn injection_rate_tracks_the_configured_probability() {
        let state = FaultState::default();
        state
            .set_plan(Some(FaultPlan::parse("seed=11,store-fail=0.1").unwrap()))
            .unwrap();
        let fired = (0..2000).filter(|_| state.store_action().is_some()).count();
        assert!(
            (100..=320).contains(&fired),
            "10% of 2000 draws fired {fired} times"
        );
    }

    #[test]
    fn worker_panic_fires_exactly_once_at_its_ordinal() {
        let state = FaultState::default();
        state
            .set_plan(Some(FaultPlan::parse("seed=1,panic-job=2").unwrap()))
            .unwrap();
        assert!(!state.job_panics(1));
        assert!(state.job_panics(2), "fires at the chosen ordinal");
        assert!(!state.job_panics(2), "but only once");
        assert!(!state.job_panics(3));
    }

    #[test]
    fn disarming_returns_the_previous_plan() {
        let state = FaultState::default();
        assert_eq!(state.plan(), None);
        assert!(state.store_action().is_none());
        assert!(state.wire_action().is_none());
        let plan = FaultPlan::parse("seed=5,store-fail=1").unwrap();
        state.set_plan(Some(plan)).unwrap();
        assert_eq!(state.store_action(), Some(FaultAction::Fail));
        assert_eq!(state.set_plan(None).unwrap(), Some(plan));
        assert_eq!(state.plan(), None);
    }
}
