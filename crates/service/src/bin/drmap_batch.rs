//! `drmap-batch` — run a batch of DSE jobs and print a throughput and
//! cache report.
//!
//! ```text
//! drmap-batch [SPEC_FILE] [--models a,b,c] [--arch ARCH] [--objective OBJ]
//!             [--workers N] [--repeat R] [--compare]
//! ```
//!
//! `SPEC_FILE` holds one JSON job per line (the server's request
//! format; blank lines and `#` comments ignored). Without a file,
//! `--models` (default `alexnet,squeezenet,tiny`) builds one job per
//! zoo network. `--repeat R` submits the whole batch `R` times —
//! repeats hit the memo cache. `--compare` also times the same batch on
//! a fresh single-worker pool and reports the multi-worker speedup.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use drmap_service::engine::{default_workers, ServiceState};
use drmap_service::error::ServiceError;
use drmap_service::json::Json;
use drmap_service::pool::DsePool;
use drmap_service::prelude::Network;
use drmap_service::spec::{EngineSpec, JobResult, JobSpec};

struct Args {
    spec_file: Option<String>,
    models: Vec<String>,
    engine: EngineSpec,
    workers: usize,
    repeat: usize,
    compare: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        spec_file: None,
        models: vec!["alexnet".into(), "squeezenet".into(), "tiny".into()],
        engine: EngineSpec::default(),
        workers: default_workers(),
        repeat: 1,
        compare: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--models" => {
                args.models = value("--models")?
                    .split(',')
                    .map(|s| s.trim().to_owned())
                    .filter(|s| !s.is_empty())
                    .collect();
            }
            "--arch" => {
                let label = value("--arch")?;
                let engine_json = Json::obj([("arch", Json::str(label))]);
                args.engine.arch = EngineSpec::from_json(&engine_json)
                    .map_err(|e| e.to_string())?
                    .arch;
            }
            "--objective" => {
                let label = value("--objective")?;
                let engine_json = Json::obj([("objective", Json::str(label))]);
                args.engine.objective = EngineSpec::from_json(&engine_json)
                    .map_err(|e| e.to_string())?
                    .objective;
            }
            "--workers" => {
                let v = value("--workers")?;
                args.workers = v
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n > 0)
                    .ok_or_else(|| format!("invalid worker count {v:?}"))?;
            }
            "--repeat" => {
                let v = value("--repeat")?;
                args.repeat = v
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n > 0)
                    .ok_or_else(|| format!("invalid repeat count {v:?}"))?;
            }
            "--compare" => args.compare = true,
            "--help" | "-h" => {
                println!(
                    "usage: drmap-batch [SPEC_FILE] [--models a,b,c] [--arch ARCH] \
                     [--objective OBJ] [--workers N] [--repeat R] [--compare]"
                );
                std::process::exit(0);
            }
            other if !other.starts_with('-') && args.spec_file.is_none() => {
                args.spec_file = Some(other.to_owned());
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    Ok(args)
}

fn load_specs(args: &Args) -> Result<Vec<JobSpec>, String> {
    if let Some(path) = &args.spec_file {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
        let mut specs = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let parsed = Json::parse(line).map_err(|e| format!("{path}:{}: {e}", i + 1))?;
            specs.push(JobSpec::from_json(&parsed).map_err(|e| format!("{path}:{}: {e}", i + 1))?);
        }
        if specs.is_empty() {
            return Err(format!("{path:?} contains no job specs"));
        }
        return Ok(specs);
    }
    args.models
        .iter()
        .enumerate()
        .map(|(i, name)| {
            Network::by_name(name)
                .map(|net| JobSpec::network(i as u64 + 1, args.engine, net))
                .ok_or_else(|| format!("unknown model {name:?}"))
        })
        .collect()
}

/// The full batch: every spec, `repeat` times over.
fn batch_of(specs: &[JobSpec], repeat: usize) -> Vec<JobSpec> {
    let mut batch = Vec::with_capacity(specs.len() * repeat);
    for round in 0..repeat {
        for spec in specs {
            let mut spec = spec.clone();
            spec.id += (round * specs.len()) as u64;
            batch.push(spec);
        }
    }
    batch
}

fn run_timed(
    workers: usize,
    batch: &[JobSpec],
) -> Result<(Vec<JobResult>, Duration, Arc<ServiceState>), ServiceError> {
    let state = ServiceState::new()?;
    let pool = DsePool::new(Arc::clone(&state), workers);
    let start = Instant::now();
    let results = pool
        .run_batch(batch)
        .into_iter()
        .collect::<Result<Vec<_>, _>>()?;
    Ok((results, start.elapsed(), state))
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("drmap-batch: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let specs = load_specs(&args)?;
    let batch = batch_of(&specs, args.repeat);
    let (results, elapsed, state) = run_timed(args.workers, &batch).map_err(|e| e.to_string())?;

    println!("job  workload            layers  cached  total-EDP (J*s)");
    for result in &results {
        println!(
            "{:<4} {:<20} {:>5} {:>7}  {:.4e}",
            result.id,
            result.workload,
            result.layers.len(),
            result.cache_hits(),
            result.total.edp(),
        );
    }

    let layers: usize = results.iter().map(|r| r.layers.len()).sum();
    let secs = elapsed.as_secs_f64().max(1e-9);
    let stats = state.cache().stats();
    println!();
    println!(
        "{} jobs ({} layers) on {} workers in {:.3}s  ->  {:.2} jobs/s, {:.1} layers/s",
        results.len(),
        layers,
        args.workers,
        secs,
        results.len() as f64 / secs,
        layers as f64 / secs,
    );
    println!(
        "cache: {} hits / {} misses ({:.1}% hit rate), {} entries",
        stats.hits,
        stats.misses,
        stats.hit_rate() * 100.0,
        stats.entries,
    );

    if args.compare {
        let (_, sequential, _) = run_timed(1, &batch).map_err(|e| e.to_string())?;
        let seq_secs = sequential.as_secs_f64().max(1e-9);
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        println!(
            "compare: 1 worker {:.3}s vs {} workers {:.3}s  ->  {:.2}x speedup \
             ({} cores available{})",
            seq_secs,
            args.workers,
            secs,
            seq_secs / secs,
            cores,
            if cores == 1 {
                "; multi-worker speedup needs >1 core"
            } else {
                ""
            },
        );

        // Cache effect, independent of core count: resubmit the whole
        // batch on the already-warm pool state.
        let warm_pool = DsePool::new(Arc::clone(&state), args.workers);
        let start = Instant::now();
        let warm: Result<Vec<_>, _> = warm_pool.run_batch(&batch).into_iter().collect();
        let warm = warm.map_err(|e| e.to_string())?;
        let warm_secs = start.elapsed().as_secs_f64().max(1e-9);
        let warm_hits: usize = warm.iter().map(JobResult::cache_hits).sum();
        println!(
            "warm resubmission: {:.3}s ({:.1} layers/s, {warm_hits}/{layers} layers cached) \
             ->  {:.2}x vs cold",
            warm_secs,
            layers as f64 / warm_secs,
            secs / warm_secs,
        );
    }
    Ok(())
}
