//! `drmap-batch` — run a batch of DSE jobs and print a throughput and
//! cache report.
//!
//! ```text
//! drmap-batch [SPEC_FILE] [--models a,b,c] [--arch ARCH] [--objective OBJ]
//!             [--workers N] [--repeat R] [--compare]
//!             [--cache-entries N] [--cache-bytes BYTES] [--cache-policy lru|cost]
//!             [--shard-min-tilings N] [--shard-chunk N]
//!             [--store PATH]
//!             [--connect HOST:PORT] [--binary]
//!             [--connect HOST:PORT --admin CMD [CMD…] [--text]]
//! ```
//!
//! `SPEC_FILE` holds one JSON job per line (the server's request
//! format; blank lines and `#` comments ignored). Without a file,
//! `--models` (default `alexnet,squeezenet,tiny`) builds one job per
//! zoo network. `--repeat R` submits the whole batch `R` times —
//! repeats hit the memo cache (and concurrent duplicates coalesce onto
//! one in-flight computation). `--compare` also times the same batch on
//! a fresh single-worker pool and reports the multi-worker speedup.
//!
//! By default jobs run on an in-process pool; `--cache-entries` /
//! `--cache-bytes` bound its memo cache (`--cache-policy cost` evicts
//! cheapest-to-recompute first instead of LRU),
//! `--shard-min-tilings`/`--shard-chunk` tune its intra-layer sharding,
//! and `--store PATH`
//! backs it with a persistent result log — rerunning the same batch
//! later serves every layer from disk without recomputation. With
//! `--connect` the
//! batch is instead **pipelined over TCP** to a running `drmap-serve`:
//! every job goes on the wire up front, responses return out of order
//! as they complete, and `--binary` ships requests as length-prefixed
//! binary frames (useful for large inline networks).
//!
//! `--admin` (with `--connect`) switches to **control-plane mode**: the
//! remaining arguments are admin commands driven over the typed
//! protocol, in order, failing on the first non-ok response:
//!
//! ```text
//! drmap-batch --connect 127.0.0.1:7878 --admin hello set-policy=cost \
//!     set-shard-policy=min_tilings:32,chunks_per_worker:4 \
//!     set-bounds=entries:512 cache-warm store-compact stats
//! ```
//!
//! The `metrics` admin command dumps the server's telemetry — request
//! counters, latency histogram quantiles, and the slow-request log;
//! with `--text` it prints Prometheus-style text exposition instead
//! (see `docs/OBSERVABILITY.md`):
//!
//! ```text
//! drmap-batch --connect 127.0.0.1:7878 --admin metrics --text
//! ```
//!
//! The time-series plane rides the same switch: `metrics-history`
//! prints the server's windowed metrics samples (rates and windowed
//! percentiles, not since-boot aggregates), `slow-traces[=N]` lists
//! the slow-request post-mortems persisted through the store tier, and
//! `set-slow-log=slow_ms:N,cap:N` retunes the slow log live:
//!
//! ```text
//! drmap-batch --connect 127.0.0.1:7878 --admin metrics-history \
//!     slow-traces=10 set-slow-log=slow_ms:250,cap:64
//! ```
//!
//! The reliability plane too: `set-faults=SPEC|off` arms or disarms a
//! deterministic fault-injection plan (builds with faults compiled in
//! only) and `set-overload=key:value[,…]` retunes the adaptive
//! admission controller live (see `docs/RELIABILITY.md`):
//!
//! ```text
//! drmap-batch --connect 127.0.0.1:7878 --admin \
//!     set-overload=enabled:on,high_ms:500,low_ms:250 \
//!     set-faults=seed=42,store-fail=0.1 set-faults=off
//! ```

use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use drmap_service::cache::CacheConfig;
use drmap_service::cli::{
    apply_shard_flag, parse_admin_command, parse_cache_policy, parse_positive as positive, AdminCmd,
};
use drmap_service::client::Client;
use drmap_service::engine::{default_workers, ServiceState};
use drmap_service::error::ServiceError;
use drmap_service::json::Json;
use drmap_service::pool::{DsePool, ShardPolicy};
use drmap_service::prelude::Network;
use drmap_service::spec::{EngineSpec, JobResult, JobSpec};

struct Args {
    spec_file: Option<String>,
    models: Vec<String>,
    engine: EngineSpec,
    workers: usize,
    repeat: usize,
    compare: bool,
    cache: CacheConfig,
    shard: ShardPolicy,
    store: Option<String>,
    connect: Option<String>,
    binary: bool,
    admin: Option<Vec<AdminCmd>>,
    text: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        spec_file: None,
        models: vec!["alexnet".into(), "squeezenet".into(), "tiny".into()],
        engine: EngineSpec::default(),
        workers: default_workers(),
        repeat: 1,
        compare: false,
        cache: CacheConfig::unbounded(),
        shard: ShardPolicy::default(),
        store: None,
        connect: None,
        binary: false,
        admin: None,
        text: false,
    };
    // Flags that only apply to the in-process pool; rejected with
    // --connect rather than silently ignored.
    let mut local_only: Vec<&'static str> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--models" => {
                args.models = value("--models")?
                    .split(',')
                    .map(|s| s.trim().to_owned())
                    .filter(|s| !s.is_empty())
                    .collect();
            }
            "--arch" => {
                let label = value("--arch")?;
                let engine_json = Json::obj([("arch", Json::str(label))]);
                args.engine.arch = EngineSpec::from_json(&engine_json)
                    .map_err(|e| e.to_string())?
                    .arch;
            }
            "--objective" => {
                let label = value("--objective")?;
                let engine_json = Json::obj([("objective", Json::str(label))]);
                args.engine.objective = EngineSpec::from_json(&engine_json)
                    .map_err(|e| e.to_string())?
                    .objective;
            }
            "--workers" => {
                args.workers = positive("--workers", &value("--workers")?)?;
                local_only.push("--workers");
            }
            "--repeat" => args.repeat = positive("--repeat", &value("--repeat")?)?,
            "--compare" => {
                args.compare = true;
                local_only.push("--compare");
            }
            "--cache-entries" => {
                args.cache.max_entries =
                    Some(positive("--cache-entries", &value("--cache-entries")?)?);
                local_only.push("--cache-entries");
            }
            "--cache-bytes" => {
                args.cache.max_bytes = Some(positive("--cache-bytes", &value("--cache-bytes")?)?);
                local_only.push("--cache-bytes");
            }
            "--cache-policy" => {
                args.cache.policy =
                    parse_cache_policy("--cache-policy", &value("--cache-policy")?)?;
                local_only.push("--cache-policy");
            }
            f @ ("--shard-min-tilings" | "--shard-chunk") => {
                apply_shard_flag(&mut args.shard, f, &value(f)?)?;
                local_only.push(if f == "--shard-chunk" {
                    "--shard-chunk"
                } else {
                    "--shard-min-tilings"
                });
            }
            "--store" => {
                args.store = Some(value("--store")?);
                local_only.push("--store");
            }
            "--connect" => args.connect = Some(value("--connect")?),
            "--binary" => args.binary = true,
            // A repeated --admin is a no-op, not a reset: commands
            // already collected must survive.
            "--admin" => {
                args.admin.get_or_insert_with(Vec::new);
            }
            "--text" => args.text = true,
            "--help" | "-h" => {
                println!(
                    "usage: drmap-batch [SPEC_FILE] [--models a,b,c] [--arch ARCH] \
                     [--objective OBJ] [--workers N] [--repeat R] [--compare] \
                     [--cache-entries N] [--cache-bytes BYTES] \
                     [--cache-policy lru|cost] \
                     [--shard-min-tilings N] [--shard-chunk N] [--store PATH] \
                     [--connect HOST:PORT] [--binary] \
                     [--admin CMD [CMD...] [--text]]"
                );
                std::process::exit(0);
            }
            other if !other.starts_with('-') && args.admin.is_some() => {
                args.admin
                    .as_mut()
                    .expect("checked is_some")
                    .push(parse_admin_command(other)?);
            }
            other if !other.starts_with('-') && args.spec_file.is_none() => {
                args.spec_file = Some(other.to_owned());
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    if args.binary && args.connect.is_none() {
        return Err("--binary only applies with --connect".to_owned());
    }
    if let Some(commands) = &args.admin {
        if args.connect.is_none() {
            return Err("--admin drives a live server; it needs --connect".to_owned());
        }
        if commands.is_empty() {
            return Err("--admin needs at least one command (try --help)".to_owned());
        }
        // Batch-only arguments are rejected, not silently ignored —
        // the same policy the --connect/local-flag check applies below.
        if let Some(path) = &args.spec_file {
            return Err(format!(
                "a spec file ({path:?}) does not apply in --admin mode"
            ));
        }
        if args.repeat != 1 {
            return Err("--repeat does not apply in --admin mode".to_owned());
        }
    }
    if args.text && args.admin.is_none() {
        return Err("--text only applies in --admin mode (with the metrics command)".to_owned());
    }
    if args.connect.is_some() && !local_only.is_empty() {
        return Err(format!(
            "{} appl{} only to the in-process pool; with --connect the server's \
             workers and cache settings are in charge",
            local_only.join(", "),
            if local_only.len() == 1 { "ies" } else { "y" },
        ));
    }
    Ok(args)
}

fn bound_label(b: Option<usize>) -> String {
    match b {
        Some(n) => n.to_string(),
        None => "unbounded".to_owned(),
    }
}

/// Drive a sequence of admin commands over the typed protocol, printing
/// each response; the first non-ok response aborts with its error.
/// `text` makes the `metrics` command print Prometheus-style
/// exposition instead of the human summary.
fn run_admin(addr: &str, binary: bool, text: bool, commands: &[AdminCmd]) -> Result<(), String> {
    let mut client = Client::connect(addr).map_err(|e| format!("cannot connect {addr}: {e}"))?;
    client.set_binary(binary);
    for command in commands {
        match command {
            AdminCmd::Hello => {
                let info = client.hello().map_err(|e| format!("hello: {e}"))?;
                println!(
                    "hello: {} speaks protocol v{} (capabilities: {})",
                    info.server,
                    info.version,
                    info.capabilities.join(", "),
                );
            }
            AdminCmd::Ping => {
                client.ping().map_err(|e| format!("ping: {e}"))?;
                println!("ping: pong");
            }
            AdminCmd::Stats => {
                let report = client.stats_report().map_err(|e| format!("stats: {e}"))?;
                let bound = |b: Option<usize>| match b {
                    Some(n) => n.to_string(),
                    None => "unbounded".to_owned(),
                };
                println!(
                    "stats: {} hits / {} misses / {} coalesced ({} bypassed, {} refreshed), \
                     {} entries, {} bytes, {} evictions ({} cost-chosen), {} workers",
                    report.cache.hits,
                    report.cache.misses,
                    report.cache.coalesced,
                    report.cache.bypasses,
                    report.cache.refreshes,
                    report.cache.entries,
                    report.cache.bytes,
                    report.cache.evictions,
                    report.cache.cost_evictions,
                    report.workers,
                );
                println!(
                    "config: policy {}, cache bounds {} entries / {} bytes, \
                     shard min {} tilings, chunk {}",
                    report.policy.label(),
                    bound(report.max_entries),
                    bound(report.max_bytes),
                    report.shard.min_tilings,
                    match report.shard.chunk_tilings {
                        Some(n) => n.to_string(),
                        None => format!("auto ({}x/worker)", report.shard.chunks_per_worker),
                    },
                );
                if let Some(store) = report.store {
                    println!(
                        "store: {} live entries in {} bytes ({} dead records)",
                        store.live_entries, store.file_bytes, store.dead_records,
                    );
                }
            }
            AdminCmd::SetPolicy(policy) => {
                let previous = client
                    .set_policy(*policy)
                    .map_err(|e| format!("set-policy: {e}"))?;
                println!("set-policy: {} (was {})", policy.label(), previous.label());
            }
            AdminCmd::SetShardPolicy(update) => {
                let policy = client
                    .set_shard_policy(*update)
                    .map_err(|e| format!("set-shard-policy: {e}"))?;
                println!(
                    "set-shard-policy: min_tilings {}, chunks_per_worker {}, chunk_tilings {}",
                    policy.min_tilings,
                    policy.chunks_per_worker,
                    match policy.chunk_tilings {
                        Some(n) => n.to_string(),
                        None => "auto".to_owned(),
                    },
                );
            }
            AdminCmd::SetBounds(update) => {
                let (entries, bytes, evicted) = client
                    .set_bounds(*update)
                    .map_err(|e| format!("set-bounds: {e}"))?;
                println!(
                    "set-bounds: {} entries / {} bytes ({evicted} evicted)",
                    bound_label(entries),
                    bound_label(bytes),
                );
            }
            AdminCmd::Metrics => {
                let report = client.metrics().map_err(|e| format!("metrics: {e}"))?;
                if text {
                    print!("{}", report.snapshot.to_prometheus());
                } else {
                    for (name, v) in &report.snapshot.counters {
                        println!("counter  {name} = {v}");
                    }
                    for (name, v) in &report.snapshot.gauges {
                        println!("gauge    {name} = {v}");
                    }
                    for (name, h) in &report.snapshot.histograms {
                        if h.count == 0 {
                            println!("hist     {name}: empty");
                            continue;
                        }
                        println!(
                            "hist     {name}: count {} p50 {} p95 {} p99 {} p999 {} max {} (ns)",
                            h.count,
                            h.p50(),
                            h.p95(),
                            h.p99(),
                            h.p999(),
                            h.max,
                        );
                    }
                    if report.slow.is_empty() {
                        println!("slow log: empty");
                    }
                    for entry in &report.slow {
                        let stages = entry
                            .stages
                            .iter()
                            .map(|(name, ns)| format!("{name} {:.2}ms", *ns as f64 / 1e6))
                            .collect::<Vec<_>>()
                            .join(", ");
                        println!(
                            "slow job {}: {:.2}ms total ({stages})",
                            entry.trace_id,
                            entry.total_ns as f64 / 1e6,
                        );
                    }
                }
            }
            AdminCmd::MetricsHistory => {
                let history = client
                    .metrics_history()
                    .map_err(|e| format!("metrics-history: {e}"))?;
                if history.samples.is_empty() {
                    println!(
                        "metrics-history: no windowed samples yet \
                         (is the server running with --sample-secs?)"
                    );
                } else {
                    println!(
                        "metrics-history: {} windowed sample(s), base at uptime 0",
                        history.samples.len(),
                    );
                    for sample in &history.samples {
                        let jobs = sample.delta.counter("jobs_total").unwrap_or(0);
                        let request = sample.delta.histogram("request_ns");
                        println!(
                            "  window ending {:.1}s ({:.1}s wide): {} job(s){}",
                            sample.uptime_ms as f64 / 1e3,
                            sample.window_ms as f64 / 1e3,
                            jobs,
                            match request.filter(|h| h.count > 0) {
                                Some(h) => format!(
                                    ", request p50 {:.2}ms p99 {:.2}ms",
                                    h.p50() as f64 / 1e6,
                                    h.p99() as f64 / 1e6,
                                ),
                                None => String::new(),
                            },
                        );
                    }
                    let jobs = history.cumulative.counter("jobs_total").unwrap_or(0);
                    println!("  cumulative: {jobs} job(s) since boot");
                }
            }
            AdminCmd::SlowTraces(limit) => {
                let traces = client
                    .slow_traces(*limit)
                    .map_err(|e| format!("slow-traces: {e}"))?;
                if traces.is_empty() {
                    println!("slow-traces: none persisted");
                }
                for trace in &traces {
                    let stages = trace
                        .entry
                        .stages
                        .iter()
                        .map(|(name, ns)| format!("{name} {:.2}ms", *ns as f64 / 1e6))
                        .collect::<Vec<_>>()
                        .join(", ");
                    println!(
                        "slow-trace #{} (job {}, unix_ms {}): {:.2}ms total ({stages})",
                        trace.seq,
                        trace.entry.trace_id,
                        trace.unix_ms,
                        trace.entry.total_ns as f64 / 1e6,
                    );
                }
            }
            AdminCmd::SetSlowLog { slow_ms, cap } => {
                let (slow_ms, cap) = client
                    .set_slow_log(*slow_ms, *cap)
                    .map_err(|e| format!("set-slow-log: {e}"))?;
                println!(
                    "set-slow-log: threshold {}, ring capacity {cap}",
                    match slow_ms {
                        Some(ms) => format!(">= {ms} ms"),
                        None => "off".to_owned(),
                    },
                );
            }
            AdminCmd::SetFaults(plan) => {
                let spec = plan.map(|p| p.render());
                let armed = client
                    .set_faults(spec.as_deref())
                    .map_err(|e| format!("set-faults: {e}"))?;
                match armed {
                    Some(spec) => println!("set-faults: armed {spec}"),
                    None => println!("set-faults: disarmed"),
                }
            }
            AdminCmd::SetOverload(update) => {
                let (config, previous) = client
                    .set_overload(*update)
                    .map_err(|e| format!("set-overload: {e}"))?;
                println!(
                    "set-overload: {} (was {}), high {} ms / low {} ms, \
                     recover after {} windows, retry-after {} ms, in-flight cap {}",
                    if config.enabled {
                        "enabled"
                    } else {
                        "disabled"
                    },
                    if previous.enabled {
                        "enabled"
                    } else {
                        "disabled"
                    },
                    config.high_ms,
                    config.low_ms,
                    config.recover_windows,
                    config.retry_after_ms,
                    match config.max_inflight {
                        Some(n) => n.to_string(),
                        None => "none".to_owned(),
                    },
                );
            }
            AdminCmd::CacheClear => {
                client
                    .cache_clear()
                    .map_err(|e| format!("cache-clear: {e}"))?;
                println!("cache-clear: done");
            }
            AdminCmd::CacheWarm(limit) => {
                let loaded = client
                    .cache_warm(*limit)
                    .map_err(|e| format!("cache-warm: {e}"))?;
                println!("cache-warm: {loaded} entries promoted");
            }
            AdminCmd::StoreCompact(auto_ratio) => {
                let report = client
                    .compact_store_with(*auto_ratio)
                    .map_err(|e| format!("store-compact: {e}"))?;
                println!(
                    "store-compact: {} -> {} bytes ({} records dropped, {} live)",
                    report.bytes_before,
                    report.bytes_after,
                    report.dropped_records,
                    report.live_records,
                );
            }
            AdminCmd::Shutdown => {
                client.shutdown().map_err(|e| format!("shutdown: {e}"))?;
                println!("shutdown: acknowledged");
            }
        }
    }
    Ok(())
}

fn load_specs(args: &Args) -> Result<Vec<JobSpec>, String> {
    if let Some(path) = &args.spec_file {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
        let mut specs = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let parsed = Json::parse(line).map_err(|e| format!("{path}:{}: {e}", i + 1))?;
            specs.push(JobSpec::from_json(&parsed).map_err(|e| format!("{path}:{}: {e}", i + 1))?);
        }
        if specs.is_empty() {
            return Err(format!("{path:?} contains no job specs"));
        }
        return Ok(specs);
    }
    args.models
        .iter()
        .enumerate()
        .map(|(i, name)| {
            Network::by_name(name)
                .map(|net| JobSpec::network(i as u64 + 1, args.engine, net))
                .ok_or_else(|| format!("unknown model {name:?}"))
        })
        .collect()
}

/// The full batch: every spec, `repeat` times over. Rounds are offset
/// by the batch's maximum id plus one (not its length — spec files may
/// use sparse ids, and an id of 0 must still move), so repeats of
/// distinct-id specs stay distinct: the pipelined path needs unique
/// ids as its correlation keys.
fn batch_of(specs: &[JobSpec], repeat: usize) -> Vec<JobSpec> {
    let stride = specs.iter().map(|s| s.id).max().unwrap_or(0) + 1;
    let mut batch = Vec::with_capacity(specs.len() * repeat);
    for round in 0..repeat {
        for spec in specs {
            let mut spec = spec.clone();
            spec.id += round as u64 * stride;
            batch.push(spec);
        }
    }
    batch
}

fn run_timed(
    workers: usize,
    cache: CacheConfig,
    shard: ShardPolicy,
    store: Option<Arc<drmap_store::store::Store>>,
    batch: &[JobSpec],
) -> Result<(Vec<JobResult>, Duration, Arc<ServiceState>), ServiceError> {
    let state = ServiceState::with_cache_and_store(cache, store)?;
    let pool = DsePool::with_shard_policy(Arc::clone(&state), workers, shard);
    let start = Instant::now();
    let results = pool
        .run_batch(batch)
        .into_iter()
        .collect::<Result<Vec<_>, _>>()?;
    Ok((results, start.elapsed(), state))
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("drmap-batch: {e}");
            ExitCode::FAILURE
        }
    }
}

fn print_results(results: &[JobResult]) {
    println!("job  workload            layers  cached  coalesced  stored  total-EDP (J*s)");
    for result in results {
        println!(
            "{:<4} {:<20} {:>5} {:>7} {:>9} {:>7}  {:.4e}",
            result.id,
            result.workload,
            result.layers.len(),
            result.cache_hits(),
            result.coalesced_hits(),
            result.store_hits(),
            result.total.edp(),
        );
    }
}

/// Pipeline the batch to a running server: every job on the wire up
/// front, responses collected as they complete.
fn run_connected(args: &Args, batch: &[JobSpec]) -> Result<(), String> {
    let addr = args.connect.as_deref().expect("caller checked --connect");
    let mut client = Client::connect(addr).map_err(|e| format!("cannot connect {addr}: {e}"))?;
    client.set_binary(args.binary);
    let start = Instant::now();
    let outcomes = client.submit_batch(batch).map_err(|e| e.to_string())?;
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);

    let mut results = Vec::with_capacity(outcomes.len());
    let mut failures = 0usize;
    for (spec, outcome) in batch.iter().zip(outcomes) {
        match outcome {
            Ok(result) => results.push(result),
            Err(e) => {
                failures += 1;
                eprintln!("drmap-batch: job {} failed: {e}", spec.id);
            }
        }
    }
    print_results(&results);
    let layers: usize = results.iter().map(|r| r.layers.len()).sum();
    println!();
    println!(
        "{} jobs ({} layers, {} failed) pipelined to {} ({}) in {:.3}s  ->  \
         {:.2} jobs/s, {:.1} layers/s",
        results.len(),
        layers,
        failures,
        addr,
        if args.binary { "binary frames" } else { "text" },
        elapsed,
        results.len() as f64 / elapsed,
        layers as f64 / elapsed,
    );
    if let Ok(stats) = client.stats() {
        println!(
            "server cache: {} hits / {} misses / {} coalesced ({:.1}% hit rate), \
             {} entries, {} bytes, {} evictions, {} workers",
            stats.hits,
            stats.misses,
            stats.coalesced,
            stats.hit_rate * 100.0,
            stats.entries,
            stats.bytes,
            stats.evictions,
            stats.workers,
        );
        if stats.store_hits + stats.store_misses > 0 {
            println!(
                "server store: {} hits / {} misses; {:.1} ms of exploration represented",
                stats.store_hits,
                stats.store_misses,
                stats.compute_ns_total as f64 / 1e6,
            );
        }
    }
    if failures > 0 {
        return Err(format!("{failures} job(s) failed"));
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    if let Some(commands) = &args.admin {
        let addr = args
            .connect
            .as_deref()
            .expect("parse_args checked --connect");
        return run_admin(addr, args.binary, args.text, commands);
    }
    let specs = load_specs(&args)?;
    let batch = batch_of(&specs, args.repeat);
    if args.connect.is_some() {
        return run_connected(&args, &batch);
    }

    let store = match &args.store {
        Some(path) => Some(Arc::new(
            drmap_store::store::Store::open(path)
                .map_err(|e| format!("cannot open store {path:?}: {e}"))?,
        )),
        None => None,
    };
    let (results, elapsed, state) =
        run_timed(args.workers, args.cache, args.shard, store.clone(), &batch)
            .map_err(|e| e.to_string())?;
    print_results(&results);

    let layers: usize = results.iter().map(|r| r.layers.len()).sum();
    let secs = elapsed.as_secs_f64().max(1e-9);
    let stats = state.cache().stats();
    println!();
    println!(
        "{} jobs ({} layers) on {} workers in {:.3}s  ->  {:.2} jobs/s, {:.1} layers/s",
        results.len(),
        layers,
        args.workers,
        secs,
        results.len() as f64 / secs,
        layers as f64 / secs,
    );
    println!(
        "cache: {} hits / {} misses / {} coalesced ({:.1}% hit rate), \
         {} entries, {} bytes, {} evictions ({} cost-chosen)",
        stats.hits,
        stats.misses,
        stats.coalesced,
        stats.hit_rate() * 100.0,
        stats.entries,
        stats.bytes,
        stats.evictions,
        stats.cost_evictions,
    );
    if let Some(store) = &store {
        let s = store.stats();
        println!(
            "store: {} hits / {} misses ({} errors); log holds {} live entries in {} bytes",
            stats.store_hits, stats.store_misses, stats.store_errors, s.live_entries, s.file_bytes,
        );
    }

    if args.compare {
        // The comparison run gets no store: it measures raw
        // single-worker exploration, not disk reads.
        let (_, sequential, _) =
            run_timed(1, args.cache, args.shard, None, &batch).map_err(|e| e.to_string())?;
        let seq_secs = sequential.as_secs_f64().max(1e-9);
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        println!(
            "compare: 1 worker {:.3}s vs {} workers {:.3}s  ->  {:.2}x speedup \
             ({} cores available{})",
            seq_secs,
            args.workers,
            secs,
            seq_secs / secs,
            cores,
            if cores == 1 {
                "; multi-worker speedup needs >1 core"
            } else {
                ""
            },
        );

        // Cache effect, independent of core count: resubmit the whole
        // batch on the already-warm pool state.
        let warm_pool = DsePool::with_shard_policy(Arc::clone(&state), args.workers, args.shard);
        let start = Instant::now();
        let warm: Result<Vec<_>, _> = warm_pool.run_batch(&batch).into_iter().collect();
        let warm = warm.map_err(|e| e.to_string())?;
        let warm_secs = start.elapsed().as_secs_f64().max(1e-9);
        let warm_hits: usize = warm.iter().map(JobResult::cache_hits).sum();
        println!(
            "warm resubmission: {:.3}s ({:.1} layers/s, {warm_hits}/{layers} layers cached) \
             ->  {:.2}x vs cold",
            warm_secs,
            layers as f64 / warm_secs,
            secs / warm_secs,
        );
    }
    Ok(())
}
