//! `drmap-serve` — the DSE job server.
//!
//! ```text
//! drmap-serve [--addr HOST:PORT] [--workers N]
//! ```
//!
//! Speaks newline-delimited JSON over TCP; see the `drmap_service`
//! crate docs for the protocol. Try it with netcat:
//!
//! ```text
//! $ drmap-serve --addr 127.0.0.1:7878 &
//! $ echo '{"id":1,"network":{"model":"alexnet"}}' | nc 127.0.0.1 7878
//! ```

use std::process::ExitCode;

use drmap_service::engine::default_workers;
use drmap_service::server::JobServer;

struct Args {
    addr: String,
    workers: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7878".to_owned(),
        workers: default_workers(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--addr" => {
                args.addr = it.next().ok_or("--addr needs a HOST:PORT value")?;
            }
            "--workers" => {
                let value = it.next().ok_or("--workers needs a count")?;
                args.workers = value
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n > 0)
                    .ok_or_else(|| format!("invalid worker count {value:?}"))?;
            }
            "--help" | "-h" => {
                println!("usage: drmap-serve [--addr HOST:PORT] [--workers N]");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("drmap-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    let server = match JobServer::bind(&args.addr, args.workers) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("drmap-serve: failed to start on {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        Ok(addr) => println!(
            "drmap-serve: listening on {addr} with {} workers",
            args.workers
        ),
        Err(e) => eprintln!("drmap-serve: {e}"),
    }
    if let Err(e) = server.run() {
        eprintln!("drmap-serve: {e}");
        return ExitCode::FAILURE;
    }
    println!("drmap-serve: shut down");
    ExitCode::SUCCESS
}
