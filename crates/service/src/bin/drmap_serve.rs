//! `drmap-serve` — the DSE job server.
//!
//! ```text
//! drmap-serve [--addr HOST:PORT] [--workers N]
//!             [--cache-entries N] [--cache-bytes BYTES]
//! ```
//!
//! Speaks pipelined JSON over TCP (newline-delimited text or binary
//! frames); see the `drmap_service` crate docs for the protocol. The
//! cache flags bound the layer memo cache (LRU eviction); without them
//! the cache is unbounded. Try it with netcat:
//!
//! ```text
//! $ drmap-serve --addr 127.0.0.1:7878 --cache-entries 4096 &
//! $ echo '{"id":1,"network":{"model":"alexnet"}}' | nc 127.0.0.1 7878
//! ```

use std::process::ExitCode;
use std::sync::Arc;

use drmap_service::cache::CacheConfig;
use drmap_service::cli::parse_positive as positive;
use drmap_service::engine::{default_workers, ServiceState};
use drmap_service::pool::DsePool;
use drmap_service::server::JobServer;

struct Args {
    addr: String,
    workers: usize,
    cache: CacheConfig,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7878".to_owned(),
        workers: default_workers(),
        cache: CacheConfig::unbounded(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--workers" => args.workers = positive("--workers", &value("--workers")?)?,
            "--cache-entries" => {
                args.cache.max_entries =
                    Some(positive("--cache-entries", &value("--cache-entries")?)?);
            }
            "--cache-bytes" => {
                args.cache.max_bytes = Some(positive("--cache-bytes", &value("--cache-bytes")?)?);
            }
            "--help" | "-h" => {
                println!(
                    "usage: drmap-serve [--addr HOST:PORT] [--workers N] \
                     [--cache-entries N] [--cache-bytes BYTES]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("drmap-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    let server = ServiceState::with_cache_config(args.cache)
        .map(|state| Arc::new(DsePool::new(state, args.workers)))
        .and_then(|pool| JobServer::with_pool(&args.addr, pool));
    let server = match server {
        Ok(server) => server,
        Err(e) => {
            eprintln!("drmap-serve: failed to start on {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        Ok(addr) => {
            let bound = |b: Option<usize>| match b {
                Some(n) => n.to_string(),
                None => "unbounded".to_owned(),
            };
            println!(
                "drmap-serve: listening on {addr} with {} workers \
                 (cache: {} entries, {} bytes)",
                args.workers,
                bound(args.cache.max_entries),
                bound(args.cache.max_bytes),
            );
        }
        Err(e) => eprintln!("drmap-serve: {e}"),
    }
    if let Err(e) = server.run() {
        eprintln!("drmap-serve: {e}");
        return ExitCode::FAILURE;
    }
    println!("drmap-serve: shut down");
    ExitCode::SUCCESS
}
