//! `drmap-serve` — the DSE job server.
//!
//! ```text
//! drmap-serve [--addr HOST:PORT] [--workers N]
//!             [--cache-entries N] [--cache-bytes BYTES] [--cache-policy lru|cost]
//!             [--shard-min-tilings N] [--shard-chunk N]
//!             [--store PATH] [--warm N] [--auto-compact-ratio R]
//!             [--max-inflight N] [--max-inflight-global N]
//!             [--slow-ms N] [--slow-log-cap N] [--sample-secs N]
//!             [--drain-secs N] [--fault-plan SPEC] [--overload SPEC]
//! ```
//!
//! Speaks the typed, versioned protocol (plus the legacy shim) over
//! pipelined TCP — newline-delimited text or binary frames; see
//! `docs/PROTOCOL.md`. The cache flags bound the layer memo cache;
//! without them the cache is unbounded. `--cache-policy cost` evicts
//! the cheapest-to-recompute entry first (using each entry's recorded
//! exploration duration) instead of the least recently used — and can
//! be swapped at runtime with the `set-policy` admin verb.
//! `--shard-min-tilings` sets the intra-layer sharding threshold and
//! `--shard-chunk` pins an explicit chunk size (both retunable live via
//! `set-shard-policy`). `--store PATH` opens (or creates) a
//! persistent result log beneath the cache — results survive restarts,
//! and on boot the most recent stored results warm the cache (`--warm`
//! caps how many; default: up to the cache's entry bound, or all of
//! them). `--auto-compact-ratio R` arms background store compaction:
//! each sampler tick compacts the log when its dead-bytes ratio
//! reaches R (retunable live via `store-compact=auto:R`; counted in
//! `drmap_wal_autocompact_total`). `--max-inflight` bounds in-flight
//! requests per connection;
//! `--max-inflight-global` additionally bounds them across all
//! connections. `--slow-ms N` turns on the slow-request log: any job
//! taking at least N ms is captured with its per-stage span breakdown,
//! dumped by the `metrics` admin verb, and — when a store is attached
//! — persisted through the WAL for the `slow-traces` verb, so
//! post-mortems survive restarts (`--slow-ms 0` logs every job).
//! `--slow-log-cap N` sizes the in-memory slow ring (default 32;
//! retunable live via `set-slow-log`). `--sample-secs N` sets the
//! cadence of the background metrics sampler feeding the
//! `metrics-history` verb (default 10; `--sample-secs 0` disables
//! sampling; see `docs/OBSERVABILITY.md`). `--drain-secs N` bounds the
//! graceful-shutdown drain of in-flight jobs (default 5).
//! `--fault-plan SPEC` arms a seeded deterministic fault plan at boot
//! (debug builds or the `faults` cargo feature only; same spec grammar
//! as the `set-faults` admin verb — see `docs/RELIABILITY.md`), and
//! `--overload SPEC` arms the adaptive admission controller (same
//! key:value fields as the `set-overload` verb; `enabled:on` is implied
//! when the spec omits it). Try it with netcat:
//!
//! ```text
//! $ drmap-serve --addr 127.0.0.1:7878 --cache-entries 4096 --store results.wal &
//! $ echo '{"id":1,"network":{"model":"alexnet"}}' | nc 127.0.0.1 7878
//! ```

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use drmap_service::cache::CacheConfig;
use drmap_service::cli::{
    apply_shard_flag, parse_cache_policy, parse_overload_spec, parse_positive as positive,
};
use drmap_service::engine::{default_workers, ServiceState};
use drmap_service::faults::FaultPlan;
use drmap_service::pool::{DsePool, ShardPolicy};
use drmap_service::server::{JobServer, ServerConfig};
use drmap_store::store::Store;

struct Args {
    addr: String,
    workers: usize,
    cache: CacheConfig,
    shard: ShardPolicy,
    store: Option<String>,
    warm: Option<usize>,
    auto_compact_ratio: Option<f64>,
    slow_log_cap: Option<usize>,
    fault_plan: Option<FaultPlan>,
    overload: Option<drmap_service::proto::OverloadUpdate>,
    server: ServerConfig,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7878".to_owned(),
        workers: default_workers(),
        cache: CacheConfig::unbounded(),
        shard: ShardPolicy::default(),
        store: None,
        warm: None,
        auto_compact_ratio: None,
        slow_log_cap: None,
        fault_plan: None,
        overload: None,
        server: ServerConfig {
            // The serve bin samples every 10 s by default so
            // `metrics-history` works out of the box; --sample-secs 0
            // opts out. Library users opt *in* via ServerConfig.
            sample_interval: Some(Duration::from_secs(10)),
            ..ServerConfig::default()
        },
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--workers" => args.workers = positive("--workers", &value("--workers")?)?,
            f @ ("--shard-min-tilings" | "--shard-chunk") => {
                apply_shard_flag(&mut args.shard, f, &value(f)?)?;
            }
            "--cache-entries" => {
                args.cache.max_entries =
                    Some(positive("--cache-entries", &value("--cache-entries")?)?);
            }
            "--cache-bytes" => {
                args.cache.max_bytes = Some(positive("--cache-bytes", &value("--cache-bytes")?)?);
            }
            "--cache-policy" => {
                args.cache.policy =
                    parse_cache_policy("--cache-policy", &value("--cache-policy")?)?;
            }
            "--store" => args.store = Some(value("--store")?),
            "--warm" => args.warm = Some(positive("--warm", &value("--warm")?)?),
            "--auto-compact-ratio" => {
                let v = value("--auto-compact-ratio")?;
                let ratio: f64 = v
                    .parse()
                    .ok()
                    .filter(|r| (0.0..=1.0).contains(r) && *r > 0.0)
                    .ok_or_else(|| {
                        format!("invalid --auto-compact-ratio value {v:?} (expected (0, 1])")
                    })?;
                args.auto_compact_ratio = Some(ratio);
            }
            "--max-inflight" => {
                args.server.max_inflight = positive("--max-inflight", &value("--max-inflight")?)?;
            }
            "--max-inflight-global" => {
                args.server.max_inflight_global = Some(positive(
                    "--max-inflight-global",
                    &value("--max-inflight-global")?,
                )?);
            }
            "--slow-ms" => {
                // 0 is meaningful: it logs every request.
                let v = value("--slow-ms")?;
                args.server.slow_ms = Some(
                    v.parse()
                        .map_err(|_| format!("invalid --slow-ms value {v:?}"))?,
                );
            }
            "--slow-log-cap" => {
                args.slow_log_cap = Some(positive("--slow-log-cap", &value("--slow-log-cap")?)?);
            }
            "--sample-secs" => {
                // 0 is meaningful: it disables the sampler thread.
                let v = value("--sample-secs")?;
                let secs: u64 = v
                    .parse()
                    .map_err(|_| format!("invalid --sample-secs value {v:?}"))?;
                args.server.sample_interval = (secs > 0).then(|| Duration::from_secs(secs));
            }
            "--drain-secs" => {
                // 0 is meaningful: shutdown does not wait for in-flight
                // jobs (the store is still synced).
                let v = value("--drain-secs")?;
                let secs: u64 = v
                    .parse()
                    .map_err(|_| format!("invalid --drain-secs value {v:?}"))?;
                args.server.drain_timeout = Duration::from_secs(secs);
            }
            "--fault-plan" => {
                let v = value("--fault-plan")?;
                args.fault_plan =
                    Some(FaultPlan::parse(&v).map_err(|e| format!("invalid --fault-plan: {e}"))?);
            }
            "--overload" => {
                let v = value("--overload")?;
                let mut update = parse_overload_spec(&v).map_err(|e| format!("--overload: {e}"))?;
                // Passing the flag means "turn it on" unless the spec
                // says otherwise.
                update.enabled.get_or_insert(true);
                args.overload = Some(update);
            }
            "--help" | "-h" => {
                println!(
                    "usage: drmap-serve [--addr HOST:PORT] [--workers N] \
                     [--cache-entries N] [--cache-bytes BYTES] [--cache-policy lru|cost] \
                     [--shard-min-tilings N] [--shard-chunk N] \
                     [--store PATH] [--warm N] [--auto-compact-ratio R] \
                     [--max-inflight N] [--max-inflight-global N] \
                     [--slow-ms N] [--slow-log-cap N] [--sample-secs N] \
                     [--drain-secs N] [--fault-plan SPEC] [--overload SPEC]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    if args.warm.is_some() && args.store.is_none() {
        return Err("--warm only applies with --store".to_owned());
    }
    if args.auto_compact_ratio.is_some() && args.store.is_none() {
        return Err("--auto-compact-ratio only applies with --store".to_owned());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("drmap-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    let store = match &args.store {
        Some(path) => match Store::open(path) {
            Ok(store) => Some(Arc::new(store)),
            Err(e) => {
                eprintln!("drmap-serve: cannot open store {path:?}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let server = ServiceState::with_cache_and_store(args.cache, store.clone()).and_then(|state| {
        if store.is_some() {
            let warmed = state.warm_start(args.warm);
            if warmed > 0 {
                println!("drmap-serve: warm-started {warmed} cached results from the store");
            }
        }
        if let Some(ratio) = args.auto_compact_ratio {
            state.set_auto_compact_ratio(Some(ratio));
        }
        if let Some(cap) = args.slow_log_cap {
            state.slow_log().set_capacity(cap);
        }
        if let Some(plan) = args.fault_plan {
            state.faults().set_plan(Some(plan))?;
        }
        if let Some(update) = args.overload {
            state
                .overload()
                .set_config(update.apply(state.overload().config()));
        }
        let pool = Arc::new(DsePool::with_shard_policy(state, args.workers, args.shard));
        JobServer::with_config(&args.addr, pool, args.server)
    });
    let server = match server {
        Ok(server) => server,
        Err(e) => {
            eprintln!("drmap-serve: failed to start on {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        Ok(addr) => {
            let bound = |b: Option<usize>| match b {
                Some(n) => n.to_string(),
                None => "unbounded".to_owned(),
            };
            println!(
                "drmap-serve: listening on {addr} with {} workers \
                 (cache: {} entries, {} bytes, {} eviction; \
                 shard: min {} tilings, chunk {}; store: {}; \
                 in-flight: {}/conn, {} global; slow log: {} (cap {}); sampler: {})",
                args.workers,
                bound(args.cache.max_entries),
                bound(args.cache.max_bytes),
                args.cache.policy.label(),
                args.shard.min_tilings,
                match args.shard.chunk_tilings {
                    Some(n) => n.to_string(),
                    None => format!("auto ({}x/worker)", args.shard.chunks_per_worker),
                },
                args.store.as_deref().unwrap_or("none"),
                args.server.max_inflight,
                bound(args.server.max_inflight_global),
                match args.server.slow_ms {
                    Some(ms) => format!(">= {ms} ms"),
                    None => "off".to_owned(),
                },
                args.slow_log_cap.unwrap_or(32),
                match args.server.sample_interval {
                    Some(interval) => format!("every {}s", interval.as_secs()),
                    None => "off".to_owned(),
                },
            );
            if let Some(plan) = &args.fault_plan {
                println!("drmap-serve: fault plan armed: {}", plan.render());
            }
            if args.overload.is_some() {
                println!(
                    "drmap-serve: overload control armed \
                     (retune live with the set-overload admin verb)"
                );
            }
        }
        Err(e) => eprintln!("drmap-serve: {e}"),
    }
    if let Err(e) = server.run() {
        eprintln!("drmap-serve: {e}");
        return ExitCode::FAILURE;
    }
    println!("drmap-serve: shut down");
    ExitCode::SUCCESS
}
