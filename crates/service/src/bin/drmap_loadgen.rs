//! `drmap-loadgen` — seeded zipfian load generator for `drmap-serve`.
//!
//! ```text
//! drmap-loadgen [--addr HOST:PORT] [--seed N] [--connections N]
//!               [--duration SECS] [--warmup SECS] [--rate RPS]
//!               [--window N] [--zipf S] [--out PATH] [--binary]
//! ```
//!
//! Replays a deterministic, zipfian-skewed mix of network- and
//! layer-exploration jobs (see `drmap_service::loadgen`) over N
//! pipelined TCP connections against a live server. Each connection
//! runs a sender and a receiver thread, so requests stream without
//! waiting for responses; latency is measured client-side from the
//! instant before a request is written to the instant its response is
//! decoded, recorded into a `drmap_telemetry::Histogram`.
//!
//! Two modes:
//!
//! * **closed-loop** (default): each connection keeps `--window`
//!   requests in flight and sends the next as soon as one completes —
//!   measures the server's saturated throughput;
//! * **open-loop** (`--rate R`): senders pace requests at a fixed
//!   aggregate target of R req/s regardless of completions (bounded by
//!   `--window` in-flight per connection as a backpressure cap) —
//!   measures latency at a fixed offered load.
//!
//! The first `--warmup` seconds are sent but excluded from the
//! recorded percentiles; the measurement window is `--duration`
//! seconds after that. Before and after the run, the server's
//! `metrics` and `stats` admin verbs are scraped so the report can
//! attribute cache and store hit rates to the run itself (deltas, not
//! lifetime totals).
//!
//! Results go to `--out` (default `BENCH_load.json`) — p50/p99/p999
//! latency, throughput, hit ratios, and a mandatory environment block
//! (core count, connections, workers, mode, target rate). A document
//! missing any of those fields is *refused*, not written. A markdown
//! results table is printed to stdout, with the single-core caveat
//! footnoted.

use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::{Shutdown, TcpStream};
use std::process::ExitCode;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use drmap_service::cli::parse_positive as positive;
use drmap_service::client::Client;
use drmap_service::json::Json;
use drmap_service::loadgen::{self, JobMix, DEFAULT_ZIPF_EXPONENT};
use drmap_service::proto::{Request, Response, StatsReport};
use drmap_service::wire::{self, Encoding};
use drmap_telemetry::{Histogram, MetricsSnapshot};

struct Args {
    addr: String,
    seed: u64,
    connections: usize,
    duration: Duration,
    warmup: Duration,
    rate: Option<f64>,
    window: usize,
    zipf: f64,
    out: String,
    encoding: Encoding,
}

fn parse_secs(flag: &str, v: &str) -> Result<Duration, String> {
    match v.parse::<f64>() {
        Ok(secs) if secs >= 0.0 && secs.is_finite() => Ok(Duration::from_secs_f64(secs)),
        _ => Err(format!("invalid {flag} value {v:?} (seconds, >= 0)")),
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7878".to_owned(),
        seed: 42,
        connections: 4,
        duration: Duration::from_secs(10),
        warmup: Duration::from_secs(1),
        rate: None,
        window: 16,
        zipf: DEFAULT_ZIPF_EXPONENT,
        out: "BENCH_load.json".to_owned(),
        encoding: Encoding::Text,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--seed" => {
                let v = value("--seed")?;
                args.seed = v
                    .parse()
                    .map_err(|_| format!("invalid --seed value {v:?}"))?;
            }
            "--connections" => {
                args.connections = positive("--connections", &value("--connections")?)?;
            }
            "--duration" => {
                args.duration = parse_secs("--duration", &value("--duration")?)?;
                if args.duration.is_zero() {
                    return Err("--duration must be positive".to_owned());
                }
            }
            "--warmup" => args.warmup = parse_secs("--warmup", &value("--warmup")?)?,
            "--rate" => {
                let v = value("--rate")?;
                match v.parse::<f64>() {
                    Ok(r) if r > 0.0 && r.is_finite() => args.rate = Some(r),
                    _ => return Err(format!("invalid --rate value {v:?} (req/s, > 0)")),
                }
            }
            "--window" => args.window = positive("--window", &value("--window")?)?,
            "--zipf" => {
                let v = value("--zipf")?;
                match v.parse::<f64>() {
                    Ok(s) if s >= 0.0 && s.is_finite() => args.zipf = s,
                    _ => return Err(format!("invalid --zipf value {v:?} (exponent, >= 0)")),
                }
            }
            "--out" => args.out = value("--out")?,
            "--binary" => args.encoding = Encoding::Binary,
            "--help" | "-h" => {
                println!(
                    "usage: drmap-loadgen [--addr HOST:PORT] [--seed N] [--connections N] \
                     [--duration SECS] [--warmup SECS] [--rate RPS] [--window N] \
                     [--zipf S] [--out PATH] [--binary]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    Ok(args)
}

/// In-flight requests on one connection, shared between its sender and
/// receiver threads.
#[derive(Default)]
struct ConnShared {
    inner: Mutex<ConnInner>,
    cv: Condvar,
}

#[derive(Default)]
struct ConnInner {
    /// Job id -> the instant just before its request hit the socket.
    pending: HashMap<u64, Instant>,
    /// The sender has stopped; once `pending` drains, the run is over.
    done: bool,
}

/// What one receiver thread observed.
#[derive(Default)]
struct Tally {
    completed: u64,
    failed: u64,
    warmup_completed: u64,
    transport_error: Option<String>,
}

#[allow(clippy::too_many_arguments)]
fn sender_loop(
    stream: TcpStream,
    mut mix: JobMix,
    shared: Arc<ConnShared>,
    encoding: Encoding,
    window: usize,
    pace: Option<Duration>,
    t0: Instant,
    deadline: Instant,
) -> u64 {
    let mut writer = BufWriter::new(
        stream
            .try_clone()
            .expect("cloning a connected TCP stream handle does not fail"),
    );
    let mut sent = 0u64;
    let mut next_send = t0;
    'run: while Instant::now() < deadline {
        {
            let mut inner = shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            while inner.pending.len() >= window {
                if Instant::now() >= deadline {
                    break 'run;
                }
                let (guard, _) = shared
                    .cv
                    .wait_timeout(inner, Duration::from_millis(20))
                    .unwrap_or_else(|e| e.into_inner());
                inner = guard;
            }
        }
        if let Some(pace) = pace {
            let now = Instant::now();
            if next_send > now {
                std::thread::sleep(next_send - now);
            }
            next_send += pace;
            if Instant::now() >= deadline {
                break;
            }
        }
        let spec = mix.next_spec();
        let id = spec.id;
        {
            let mut inner = shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.pending.insert(id, Instant::now());
        }
        if wire::write_request(&mut writer, &Request::Submit(spec), encoding).is_err() {
            let mut inner = shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.pending.remove(&id);
            break;
        }
        sent += 1;
    }
    {
        let mut inner = shared.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.done = true;
        shared.cv.notify_all();
    }
    // Half-close: the server drains every in-flight response after a
    // client EOF, then closes — which is exactly the drain the
    // receiver needs to exit cleanly.
    let _ = writer.flush();
    let _ = stream.shutdown(Shutdown::Write);
    sent
}

fn receiver_loop(
    stream: TcpStream,
    shared: Arc<ConnShared>,
    hist: Arc<Histogram>,
    measure_start: Instant,
) -> Tally {
    let mut reader = BufReader::new(stream);
    let mut tally = Tally::default();
    loop {
        let response = match wire::read_response(&mut reader) {
            Ok(Some((response, _))) => response,
            Ok(None) => break,
            Err(e) => {
                tally.transport_error = Some(e.to_string());
                break;
            }
        };
        let (id, ok) = match &response {
            Response::Job { result } => (Some(result.id), true),
            Response::Error { id, .. } => (*id, false),
            _ => continue,
        };
        let Some(id) = id else { continue };
        let sent_at = {
            let mut inner = shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            let sent_at = inner.pending.remove(&id);
            shared.cv.notify_all();
            sent_at
        };
        let Some(sent_at) = sent_at else { continue };
        if sent_at < measure_start {
            tally.warmup_completed += 1;
        } else if ok {
            let elapsed = sent_at.elapsed();
            hist.record(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
            tally.completed += 1;
        } else {
            tally.failed += 1;
        }
    }
    tally
}

fn counter_delta(before: &MetricsSnapshot, after: &MetricsSnapshot, name: &str) -> u64 {
    // Reads existing server counters by runtime name — not a
    // registration site, so there is no literal for the drift lint.
    let after = after.counter(name).unwrap_or(0); // check:allow(metrics-doc-drift)
    let before = before.counter(name).unwrap_or(0); // check:allow(metrics-doc-drift)
    after.saturating_sub(before)
}

fn ratio(hits: u64, misses: u64) -> Option<f64> {
    let total = hits + misses;
    (total > 0).then(|| hits as f64 / total as f64)
}

fn opt_f64(v: Option<f64>) -> Json {
    match v {
        Some(x) => Json::Num(x),
        None => Json::Null,
    }
}

struct RunReport {
    doc: Json,
    completed: u64,
    transport_errors: Vec<String>,
}

fn run(args: &Args) -> Result<RunReport, String> {
    let scrape =
        |what: &str, admin: &mut Client| -> Result<(StatsReport, MetricsSnapshot), String> {
            let stats = admin
                .stats_report()
                .map_err(|e| format!("stats scrape {what} the run failed: {e}"))?;
            let metrics = admin
                .metrics()
                .map_err(|e| format!("metrics scrape {what} the run failed: {e}"))?;
            Ok((stats, metrics.snapshot))
        };

    let mut admin =
        Client::connect(&args.addr).map_err(|e| format!("cannot connect to {}: {e}", args.addr))?;
    let hello = admin
        .hello()
        .map_err(|e| format!("handshake with {} failed: {e}", args.addr))?;
    let (stats_before, metrics_before) = scrape("before", &mut admin)?;
    eprintln!(
        "drmap-loadgen: {} at {} ({} workers); seed {}, {} connection(s), {} mode, \
         warmup {:.1}s, measuring {:.1}s",
        hello.server,
        args.addr,
        stats_before.workers,
        args.seed,
        args.connections,
        match args.rate {
            Some(r) => format!("open-loop @ {r} req/s"),
            None => format!("closed-loop (window {})", args.window),
        },
        args.warmup.as_secs_f64(),
        args.duration.as_secs_f64(),
    );

    let hist = Arc::new(Histogram::new());
    let t0 = Instant::now();
    let measure_start = t0 + args.warmup;
    let deadline = measure_start + args.duration;

    let mut senders: Vec<JoinHandle<u64>> = Vec::new();
    let mut receivers: Vec<JoinHandle<Tally>> = Vec::new();
    for conn in 0..args.connections {
        let stream = TcpStream::connect(&args.addr)
            .map_err(|e| format!("connection {conn} to {} failed: {e}", args.addr))?;
        stream.set_nodelay(true).ok();
        // Backstop only: the normal exit path is the server's
        // drain-and-close after our write-half shutdown.
        stream.set_read_timeout(Some(Duration::from_secs(120))).ok();
        let reader = stream
            .try_clone()
            .map_err(|e| format!("cannot clone connection {conn}: {e}"))?;
        // Per-connection plans are derived from the one seed, so the
        // full request sequence is reproducible per connection; the
        // id spaces are disjoint so replies correlate unambiguously.
        let mut mix = JobMix::new(
            args.seed
                .wrapping_add((conn as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            args.zipf,
        );
        mix.set_next_id((conn as u64 + 1) << 40);
        let pace = args
            .rate
            .map(|r| Duration::from_secs_f64(args.connections as f64 / r));
        let shared = Arc::new(ConnShared::default());
        let (encoding, window) = (args.encoding, args.window);
        senders.push(std::thread::spawn({
            let shared = Arc::clone(&shared);
            move || sender_loop(stream, mix, shared, encoding, window, pace, t0, deadline)
        }));
        receivers.push(std::thread::spawn({
            let (shared, hist) = (Arc::clone(&shared), Arc::clone(&hist));
            move || receiver_loop(reader, shared, hist, measure_start)
        }));
    }

    let mut sent = 0u64;
    for handle in senders {
        sent += handle.join().unwrap_or(0);
    }
    let mut completed = 0u64;
    let mut failed = 0u64;
    let mut warmup_completed = 0u64;
    let mut transport_errors = Vec::new();
    for handle in receivers {
        let tally = handle.join().unwrap_or_default();
        completed += tally.completed;
        failed += tally.failed;
        warmup_completed += tally.warmup_completed;
        transport_errors.extend(tally.transport_error);
    }
    let measured_secs = Instant::now()
        .saturating_duration_since(measure_start)
        .as_secs_f64()
        .max(f64::EPSILON);

    let (stats_after, metrics_after) = scrape("after", &mut admin)?;

    let snapshot = hist.snapshot();
    let throughput = completed as f64 / measured_secs;
    let cache_hits = counter_delta(&metrics_before, &metrics_after, "cache_hits_total");
    let cache_misses = counter_delta(&metrics_before, &metrics_after, "cache_misses_total");
    let cache_ratio = ratio(cache_hits, cache_misses);
    let store_hits = stats_after
        .cache
        .store_hits
        .saturating_sub(stats_before.cache.store_hits);
    let store_misses = stats_after
        .cache
        .store_misses
        .saturating_sub(stats_before.cache.store_misses);
    let store_ratio = stats_after
        .store
        .as_ref()
        .and_then(|_| ratio(store_hits, store_misses));
    let cores_available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let doc = Json::obj([
        ("bench", Json::str("drmap-loadgen")),
        ("server", Json::str(&hello.server)),
        ("seed", Json::num_u64(args.seed)),
        ("zipf_exponent", Json::Num(args.zipf)),
        ("warmup_secs", Json::Num(args.warmup.as_secs_f64())),
        ("duration_secs", Json::Num(args.duration.as_secs_f64())),
        ("measured_secs", Json::Num(measured_secs)),
        ("requests_sent", Json::num_u64(sent)),
        ("requests_completed", Json::num_u64(completed)),
        ("requests_failed", Json::num_u64(failed)),
        ("warmup_completed", Json::num_u64(warmup_completed)),
        ("throughput_rps", Json::Num(throughput)),
        (
            "latency_ns",
            Json::obj([
                ("count", Json::num_u64(snapshot.count)),
                ("p50_ns", Json::num_u64(snapshot.p50())),
                ("p99_ns", Json::num_u64(snapshot.p99())),
                ("p999_ns", Json::num_u64(snapshot.p999())),
                (
                    "mean_ns",
                    Json::num_u64(snapshot.sum.checked_div(snapshot.count).unwrap_or(0)),
                ),
                ("max_ns", Json::num_u64(snapshot.max)),
            ]),
        ),
        (
            "cache",
            Json::obj([
                ("hits_delta", Json::num_u64(cache_hits)),
                ("misses_delta", Json::num_u64(cache_misses)),
                ("hit_ratio", opt_f64(cache_ratio)),
            ]),
        ),
        (
            "store",
            Json::obj([
                ("attached", Json::Bool(stats_after.store.is_some())),
                ("hits_delta", Json::num_u64(store_hits)),
                ("misses_delta", Json::num_u64(store_misses)),
                ("hit_ratio", opt_f64(store_ratio)),
            ]),
        ),
        (
            "environment",
            Json::obj([
                ("cores_available", Json::num_usize(cores_available)),
                ("connections", Json::num_usize(args.connections)),
                ("workers", Json::num_usize(stats_before.workers)),
                (
                    "mode",
                    Json::str(if args.rate.is_some() {
                        "open-loop"
                    } else {
                        "closed-loop"
                    }),
                ),
                ("target_rate_rps", opt_f64(args.rate)),
                // Topology: how many serving nodes produced these
                // numbers, and whether a router tier sat in front.
                (
                    "backends",
                    Json::num_usize(stats_before.backends.unwrap_or(1)),
                ),
                ("router", Json::Bool(hello.has("router"))),
                ("window", Json::num_usize(args.window)),
                ("addr", Json::str(&args.addr)),
            ]),
        ),
    ]);
    // The environment block is not optional: a benchmark number that
    // cannot be tied to the cores/concurrency that produced it is
    // noise. Refuse to write rather than emit a partial document.
    loadgen::validate_bench(&doc).map_err(|e| format!("refusing to write {}: {e}", args.out))?;
    std::fs::write(&args.out, doc.render() + "\n")
        .map_err(|e| format!("cannot write {}: {e}", args.out))?;

    Ok(RunReport {
        doc,
        completed,
        transport_errors,
    })
}

fn print_markdown(args: &Args, report: &RunReport) {
    let doc = &report.doc;
    let num = |path: &[&str]| -> f64 {
        let mut v = doc;
        for key in path {
            match v.get(key) {
                Some(next) => v = next,
                None => return 0.0,
            }
        }
        v.as_f64().unwrap_or(0.0)
    };
    let ms = |ns: f64| ns / 1e6;
    let pct = |path: &[&str]| -> String {
        let mut v = doc;
        for key in path {
            match v.get(key) {
                Some(next) => v = next,
                None => return "n/a".to_owned(),
            }
        }
        match v.as_f64() {
            Some(r) => format!("{:.1}%", r * 100.0),
            None => "n/a".to_owned(),
        }
    };
    println!("## drmap-loadgen results\n");
    println!("| metric | value |");
    println!("|---|---|");
    println!(
        "| mode | {} (seed {}, zipf {}) |",
        match args.rate {
            Some(r) => format!("open-loop @ {r} req/s"),
            None => format!("closed-loop, window {}/conn", args.window),
        },
        args.seed,
        args.zipf,
    );
    println!(
        "| requests (completed / failed) | {} / {} |",
        num(&["requests_completed"]),
        num(&["requests_failed"]),
    );
    println!("| throughput | {:.1} req/s |", num(&["throughput_rps"]));
    println!(
        "| latency p50 / p99 / p999 ¹ | {:.2} / {:.2} / {:.2} ms |",
        ms(num(&["latency_ns", "p50_ns"])),
        ms(num(&["latency_ns", "p99_ns"])),
        ms(num(&["latency_ns", "p999_ns"])),
    );
    println!(
        "| cache hit ratio (resident) | {} ({}/{} lookups) |",
        pct(&["cache", "hit_ratio"]),
        num(&["cache", "hits_delta"]),
        num(&["cache", "hits_delta"]) + num(&["cache", "misses_delta"]),
    );
    println!("| store hit ratio | {} |", pct(&["store", "hit_ratio"]));
    println!();
    println!(
        "¹ {} connection(s) against {} worker(s) on {} available core(s); \
         on single-core runners the percentiles include queueing delay, \
         not just service time.",
        num(&["environment", "connections"]),
        num(&["environment", "workers"]),
        num(&["environment", "cores_available"]),
    );
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("drmap-loadgen: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = match run(&args) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("drmap-loadgen: {e}");
            return ExitCode::FAILURE;
        }
    };
    print_markdown(&args, &report);
    eprintln!("drmap-loadgen: wrote {}", args.out);
    for error in &report.transport_errors {
        eprintln!("drmap-loadgen: connection ended early: {error}");
    }
    if report.completed == 0 {
        eprintln!("drmap-loadgen: no requests completed inside the measurement window");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
