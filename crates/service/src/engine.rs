//! Engine construction and the cached single-layer execution path.
//!
//! Profiling an architecture's access-cost table is the expensive part
//! of engine construction (it runs the cycle-level simulator), so
//! [`EngineFactory`] profiles once per [`DramArch`] and memoizes the
//! table; building a [`DseEngine`] from a memoized table is cheap enough
//! to do per job. [`ServiceState`] bundles the factory with the shared
//! layer cache — one `Arc<ServiceState>` is the whole service's shared
//! state, handed to every worker, connection handler, and front-end.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{SystemTime, UNIX_EPOCH};

use drmap_cnn::accelerator::AcceleratorConfig;
use drmap_cnn::layer::Layer;
use drmap_core::dse::{layer_cache_key, DseConfig, DseEngine, LayerDseResult};
use drmap_core::edp::EdpModel;
use drmap_core::error::DseError;
use drmap_dram::geometry::Geometry;
use drmap_dram::profiler::{AccessCostTable, Profiler};
use drmap_dram::timing::DramArch;
use drmap_store::store::{FaultDirective, SLOW_TRACE_KEY_PREFIX};
use drmap_telemetry::{
    Counter, Gauge, Histogram, HistogramWindow, MetricsRegistry, SlowEntry, SlowLog, SnapshotRing,
    Span, Trace,
};

use crate::cache::{CacheConfig, CacheMetrics, CacheOutcome, DseCache};
use crate::error::ServiceError;
use crate::faults::{FaultAction, FaultState, FAULTS_COMPILED_IN};
use crate::overload::OverloadController;
use crate::spec::{CacheMode, EngineSpec, JobResult, JobSpec, LayerOutcome};

/// How many slow requests the [`SlowLog`] ring buffer retains by
/// default (retunable live: `--slow-log-cap` at boot, the
/// `set-slow-log` admin verb afterwards).
const SLOW_LOG_CAPACITY: usize = 32;

/// How many windowed metrics samples the [`SnapshotRing`] retains —
/// at the default 10 s cadence, ten minutes of history.
const SNAPSHOT_RING_CAPACITY: usize = 60;

/// How many persisted slow-trace slots the store tier keeps. Traces
/// write under `seq % SLOW_TRACE_SLOTS`, so the newest records
/// supersede the oldest in place and the WAL's last-record-per-key
/// replay garbage-collects the ring on compaction.
const SLOW_TRACE_SLOTS: u64 = 256;

/// The profiled substrate every served engine runs on: Table II
/// geometry and accelerator, DDR3-1600K timing, Micron 2Gb x8 energy
/// parameters. Part of every cache fingerprint — and therefore of
/// [`job_route_key`], which must agree with the backends' keys without
/// building an engine.
pub const SUBSTRATE: &str = "salp_2gb_x8/ddr3_1600k/micron_2gb_x8/table_ii";

/// Builds [`DseEngine`]s on demand, memoizing the profiled cost tables.
#[derive(Debug)]
pub struct EngineFactory {
    geometry: Geometry,
    acc: AcceleratorConfig,
    profiler: Profiler,
    substrate: &'static str,
    tables: Mutex<HashMap<DramArch, AccessCostTable>>,
}

impl EngineFactory {
    /// The paper's substrate: Table II geometry and accelerator, DDR3-1600K
    /// timing, Micron 2Gb x8 energy parameters.
    ///
    /// # Errors
    ///
    /// Propagates profiler configuration errors (none for the built-in
    /// configuration).
    pub fn table_ii() -> Result<Self, ServiceError> {
        Ok(EngineFactory {
            geometry: Geometry::salp_2gb_x8(),
            acc: AcceleratorConfig::table_ii(),
            profiler: Profiler::table_ii()?,
            substrate: SUBSTRATE,
            tables: Mutex::new(HashMap::new()),
        })
    }

    /// The accelerator configuration every engine uses.
    pub fn accelerator(&self) -> &AcceleratorConfig {
        &self.acc
    }

    /// Cache-key tag identifying the profiled substrate for `spec`:
    /// everything that determines an engine's model besides the sweep
    /// configuration (which [`layer_cache_key`] covers separately).
    pub fn engine_tag(&self, spec: &EngineSpec) -> String {
        format!("{}@{}", spec.arch.label(), self.substrate)
    }

    /// Build an engine for `spec`, profiling the architecture on first
    /// use and reusing the memoized cost table afterwards.
    pub fn engine(&self, spec: &EngineSpec) -> DseEngine {
        self.engine_with(spec, false)
    }

    /// [`EngineFactory::engine`] with the sweep's Pareto-point
    /// retention selected per job ([`JobOptions::keep_points`]
    /// (crate::spec::JobOptions)). The setting is part of the sweep
    /// fingerprint, so point-keeping and point-free results never share
    /// a cache entry.
    pub fn engine_with(&self, spec: &EngineSpec, keep_points: bool) -> DseEngine {
        // Profile *outside* the lock: the cycle-level profiler is the
        // expensive part, and holding the map mutex across it would
        // stall every concurrent engine construction — including ones
        // whose tables are already memoized. Two threads racing on a
        // cold architecture may both profile; the results are
        // identical, so last-write-wins is deterministic.
        let memoized = crate::sync::lock_recovered(&self.tables)
            .get(&spec.arch)
            .cloned();
        let table = match memoized {
            Some(table) => table,
            None => {
                let table = self.profiler.cost_table(spec.arch);
                crate::sync::lock_recovered(&self.tables).insert(spec.arch, table.clone());
                table
            }
        };
        let config = DseConfig {
            objective: spec.objective,
            keep_points,
            ..DseConfig::default()
        };
        DseEngine::new(EdpModel::new(self.geometry, table, self.acc), config)
    }
}

/// Pre-resolved handles for every request-path stage metric, looked up
/// once at [`ServiceState`] construction so hot paths never touch the
/// registry's name maps. The span taxonomy is documented in
/// `docs/OBSERVABILITY.md`.
#[derive(Debug)]
pub(crate) struct StageMetrics {
    /// End-to-end latency of one submitted job (dispatch → response
    /// queued).
    pub(crate) request_ns: Arc<Histogram>,
    /// Wire frame read + parse + request decode.
    pub(crate) frame_decode_ns: Arc<Histogram>,
    /// Response serialization + wire frame write.
    pub(crate) frame_encode_ns: Arc<Histogram>,
    /// Full cached layer lookup (contains `explore_ns` on a miss).
    pub(crate) cache_lookup_ns: Arc<Histogram>,
    /// The DSE sweep itself (cache misses only).
    pub(crate) explore_ns: Arc<Histogram>,
    /// One claimed chunk of a sharded layer sweep — the per-chunk
    /// durations `ShardPolicy` auto-tuning will feed on.
    pub(crate) shard_chunk_ns: Arc<Histogram>,
    /// Folding shard partials (or per-layer outcomes) into a result.
    pub(crate) merge_ns: Arc<Histogram>,
    /// Jobs submitted through the pool.
    pub(crate) jobs_total: Arc<Counter>,
    /// Per-layer tasks processed by workers.
    pub(crate) layers_total: Arc<Counter>,
    /// Layer lookups answered from the resident cache tier.
    pub(crate) cache_hits_total: Arc<Counter>,
    /// Layer lookups that fell through the resident tier (computed
    /// here, coalesced onto another caller, or served by the store).
    pub(crate) cache_misses_total: Arc<Counter>,
    /// Store operations failed or delayed by an armed fault plan.
    pub(crate) fault_store_total: Arc<Counter>,
    /// Response frames dropped or stalled by an armed fault plan.
    pub(crate) fault_wire_total: Arc<Counter>,
    /// Worker panics injected by an armed fault plan.
    pub(crate) fault_pool_total: Arc<Counter>,
    /// Jobs refused by the overload controller's admission check.
    pub(crate) shed_total: Arc<Counter>,
    /// Jobs admitted but not yet answered — the admission controller's
    /// second input besides windowed latency.
    pub(crate) jobs_inflight: Arc<Gauge>,
}

impl StageMetrics {
    fn resolve(registry: &MetricsRegistry) -> Self {
        StageMetrics {
            request_ns: registry.histogram("request_ns"),
            frame_decode_ns: registry.histogram("frame_decode_ns"),
            frame_encode_ns: registry.histogram("frame_encode_ns"),
            cache_lookup_ns: registry.histogram("cache_lookup_ns"),
            explore_ns: registry.histogram("explore_ns"),
            shard_chunk_ns: registry.histogram("shard_chunk_ns"),
            merge_ns: registry.histogram("merge_ns"),
            jobs_total: registry.counter("jobs_total"),
            layers_total: registry.counter("layers_total"),
            cache_hits_total: registry.counter("cache_hits_total"),
            cache_misses_total: registry.counter("cache_misses_total"),
            fault_store_total: registry.counter("fault_store_total"),
            fault_wire_total: registry.counter("fault_wire_total"),
            fault_pool_total: registry.counter("fault_pool_total"),
            shed_total: registry.counter("shed_total"),
            jobs_inflight: registry.gauge("jobs_inflight"),
        }
    }
}

/// The service's shared state: engine factory, layer memo cache, and
/// the telemetry plane (metrics registry, windowed snapshot history,
/// slow-request log, and the persisted slow-trace tier).
#[derive(Debug)]
pub struct ServiceState {
    factory: EngineFactory,
    cache: DseCache,
    metrics: Arc<MetricsRegistry>,
    stages: StageMetrics,
    slow_log: SlowLog,
    history: SnapshotRing,
    /// Next persisted slow-trace sequence number; resumed past the
    /// highest sequence found in the store at boot so restarts keep
    /// appending instead of overwriting the freshest post-mortems.
    slow_seq: AtomicU64,
    /// Armed fault plan (if any) shared by every injection site.
    faults: Arc<FaultState>,
    /// Admission controller fed by windowed request latency.
    overload: OverloadController,
    /// Successive-difference window over `request_ns`, closed once per
    /// sampler tick to feed the overload controller.
    request_window: HistogramWindow,
    /// Dead-bytes ratio above which the sampler tick compacts the
    /// attached store (`--auto-compact-ratio` at boot; live-tunable via
    /// the `store-compact` verb's `auto_ratio` extension). `None`
    /// disables the background check.
    auto_compact_ratio: Mutex<Option<f64>>,
    /// Store compactions triggered by the background ratio check (as
    /// opposed to explicit `store-compact` requests).
    wal_autocompact_total: Arc<Counter>,
}

impl ServiceState {
    /// Shared state over the paper's Table II substrate with an
    /// unbounded cache.
    ///
    /// # Errors
    ///
    /// Propagates [`EngineFactory::table_ii`] failures.
    pub fn new() -> Result<Arc<Self>, ServiceError> {
        Self::with_cache_config(CacheConfig::unbounded())
    }

    /// Shared state over the paper's Table II substrate with the given
    /// cache capacity bounds.
    ///
    /// # Errors
    ///
    /// Propagates [`EngineFactory::table_ii`] failures.
    pub fn with_cache_config(config: CacheConfig) -> Result<Arc<Self>, ServiceError> {
        Self::with_cache_and_store(config, None)
    }

    /// Shared state whose cache is optionally backed by a persistent
    /// result store: resident misses consult the store before
    /// computing, completed explorations write through, and
    /// [`ServiceState::warm_start`] can pre-populate the resident tier.
    ///
    /// # Errors
    ///
    /// Propagates [`EngineFactory::table_ii`] failures.
    pub fn with_cache_and_store(
        config: CacheConfig,
        store: Option<Arc<drmap_store::store::Store>>,
    ) -> Result<Arc<Self>, ServiceError> {
        let metrics = Arc::new(MetricsRegistry::new());
        let stages = StageMetrics::resolve(&metrics);
        let faults = Arc::new(FaultState::default());
        if let Some(store) = &store {
            store.attach_metrics(
                metrics.histogram("wal_read_ns"),
                metrics.histogram("wal_write_ns"),
                metrics.histogram("wal_compact_ns"),
            );
            // Builds that can never arm a plan skip the hook entirely,
            // so release store paths stay exactly as before.
            if FAULTS_COMPILED_IN {
                let hook_faults = Arc::clone(&faults);
                let injected = Arc::clone(&stages.fault_store_total);
                store.attach_fault_hook(Box::new(move |_op| {
                    let action = hook_faults.store_action()?;
                    injected.inc();
                    Some(match action {
                        FaultAction::Fail => FaultDirective::Fail,
                        FaultAction::Delay(jitter) => FaultDirective::Delay(jitter),
                    })
                }));
            }
        }
        let cache = match store {
            Some(store) => DseCache::with_store(config, store),
            None => DseCache::with_config(config),
        };
        cache.attach_metrics(CacheMetrics {
            store_read_ns: metrics.histogram("store_read_ns"),
            store_write_ns: metrics.histogram("store_write_ns"),
            singleflight_wait_ns: metrics.histogram("singleflight_wait_ns"),
        });
        let slow_seq = cache.store().map(|store| next_slow_seq(store)).unwrap_or(0);
        let request_window = HistogramWindow::new(Arc::clone(&stages.request_ns));
        let wal_autocompact_total = metrics.counter("wal_autocompact_total");
        Ok(Arc::new(ServiceState {
            factory: EngineFactory::table_ii()?,
            cache,
            metrics,
            stages,
            slow_log: SlowLog::new(SLOW_LOG_CAPACITY),
            history: SnapshotRing::new(SNAPSHOT_RING_CAPACITY),
            slow_seq: AtomicU64::new(slow_seq),
            faults,
            overload: OverloadController::default(),
            request_window,
            auto_compact_ratio: Mutex::new(None),
            wal_autocompact_total,
        }))
    }

    /// The current auto-compaction threshold: the dead-bytes ratio
    /// (`dead_bytes / file_bytes`) above which
    /// [`ServiceState::maybe_auto_compact`] compacts the store. `None`
    /// means the background check is disabled.
    pub fn auto_compact_ratio(&self) -> Option<f64> {
        *crate::sync::lock_recovered(&self.auto_compact_ratio)
    }

    /// Arm (`Some`) or disarm (`None`) the background auto-compaction
    /// check; returns the previous threshold.
    pub fn set_auto_compact_ratio(&self, ratio: Option<f64>) -> Option<f64> {
        std::mem::replace(
            &mut *crate::sync::lock_recovered(&self.auto_compact_ratio),
            ratio,
        )
    }

    /// One background auto-compaction check (the server runs this on
    /// the sampler cadence): when a threshold is armed, a store is
    /// attached, and the store's dead-bytes ratio has reached the
    /// threshold, compact and count it in `wal_autocompact_total`.
    /// Returns whether a compaction ran. A compaction failure is
    /// swallowed — the check is opportunistic hygiene and the explicit
    /// `store-compact` verb still reports errors to the caller.
    pub fn maybe_auto_compact(&self) -> bool {
        let Some(ratio) = self.auto_compact_ratio() else {
            return false;
        };
        let Some(store) = self.cache.store() else {
            return false;
        };
        let stats = store.stats();
        if stats.file_bytes == 0 || (stats.dead_bytes as f64) < ratio * stats.file_bytes as f64 {
            return false;
        }
        if store.compact().is_ok() {
            self.wal_autocompact_total.inc();
            return true;
        }
        false
    }

    /// The metrics registry every layer of the stack records into.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// The slow-request ring buffer (disabled until a threshold is
    /// set, e.g. by `drmap-serve --slow-ms`).
    pub fn slow_log(&self) -> &SlowLog {
        &self.slow_log
    }

    /// The windowed metrics history ring the server's sampler thread
    /// records into; dumped by the `metrics-history` admin verb.
    pub fn history(&self) -> &SnapshotRing {
        &self.history
    }

    /// Take one cumulative metrics snapshot and fold it into the
    /// history ring as a windowed delta (the sampler thread's tick).
    /// The same tick closes one `request_ns` latency window and feeds
    /// its p99 to the overload controller, so shedding decisions track
    /// the sampler cadence.
    pub fn sample_metrics(&self) {
        self.history
            .record(self.metrics.snapshot(), self.metrics.uptime_ms());
        let window = self.request_window.tick();
        self.overload.observe_window(window.p99() / 1_000_000);
    }

    /// The live fault-injection state (armed by `--fault-plan` or the
    /// `set-faults` admin verb; empty by default).
    pub fn faults(&self) -> &FaultState {
        &self.faults
    }

    /// The admission controller (armed by `--overload` or the
    /// `set-overload` admin verb; disabled by default).
    pub fn overload(&self) -> &OverloadController {
        &self.overload
    }

    /// Write one slow-request trace through the store tier (under
    /// [`SLOW_TRACE_KEY_PREFIX`], in a ring of [`SLOW_TRACE_SLOTS`]
    /// slots) so the post-mortem survives a restart. A no-op without
    /// an attached store; a write failure is swallowed — persistence
    /// is telemetry, and telemetry must never fail a request.
    pub fn persist_slow_trace(&self, entry: &SlowEntry) {
        let Some(store) = self.cache.store() else {
            return;
        };
        // ordering: Relaxed — the sequence only needs to hand out
        // unique, roughly-monotonic numbers; the store's own write
        // lock orders the actual record appends.
        let seq = self.slow_seq.fetch_add(1, Ordering::Relaxed);
        let unix_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
            .unwrap_or(0);
        let key = format!("{SLOW_TRACE_KEY_PREFIX}{:08}", seq % SLOW_TRACE_SLOTS);
        if store.put(&key, &entry.encode_record(seq, unix_ms)).is_ok() {
            self.metrics.counter("slow_traces_persisted_total").inc();
        }
    }

    /// Decode up to `limit` persisted slow traces, newest first, as
    /// `(seq, unix_ms, entry)` triples. Empty without an attached
    /// store; records that fail to decode (foreign writers, version
    /// skew) are skipped, never an error.
    pub fn persisted_slow_traces(&self, limit: Option<usize>) -> Vec<(u64, u64, SlowEntry)> {
        let Some(store) = self.cache.store() else {
            return Vec::new();
        };
        let mut traces: Vec<(u64, u64, SlowEntry)> = store
            .keys_with_prefix(SLOW_TRACE_KEY_PREFIX)
            .into_iter()
            .filter_map(|key| store.get(&key).ok().flatten())
            .filter_map(|bytes| SlowEntry::decode_record(&bytes))
            .collect();
        traces.sort_by_key(|&(seq, _, _)| std::cmp::Reverse(seq));
        traces.truncate(limit.unwrap_or(usize::MAX));
        traces
    }

    /// The pre-resolved request-path stage handles.
    pub(crate) fn stages(&self) -> &StageMetrics {
        &self.stages
    }

    /// Promote up to `limit` of the store tier's most recent results
    /// into the resident cache (see
    /// [`DseCache::warm_from_store`]). Returns how many entries were
    /// loaded; 0 without an attached store.
    pub fn warm_start(&self, limit: Option<usize>) -> usize {
        self.cache.warm_from_store(limit)
    }

    /// The engine factory.
    pub fn factory(&self) -> &EngineFactory {
        &self.factory
    }

    /// The shared layer cache.
    pub fn cache(&self) -> &DseCache {
        &self.cache
    }

    /// Explore one layer through the cache: returns the result plus how
    /// the lookup was satisfied (resident hit, coalesced onto another
    /// caller's in-flight computation, or computed here). Concurrent
    /// lookups of the same key perform exactly one computation. Cached
    /// and coalesced results are re-labelled with the requesting layer's
    /// name (keys ignore names).
    ///
    /// # Errors
    ///
    /// Propagates [`DseEngine::explore_layer`] failures (shared by every
    /// caller coalesced onto the failing computation). Failures are not
    /// cached.
    pub fn explore_layer_cached(
        &self,
        engine: &DseEngine,
        tag: &str,
        layer: &Layer,
    ) -> Result<(LayerDseResult, CacheOutcome), DseError> {
        self.explore_layer_cached_with(engine, tag, layer, CacheMode::Default, || {
            engine.explore_layer(layer)
        })
    }

    /// [`ServiceState::explore_layer_cached`] with a caller-supplied
    /// cache mode and exploration strategy: `explore` runs only when
    /// `mode` says the lookup should fall through to computation (for
    /// [`CacheMode::Default`], when both cache tiers miss and no
    /// equivalent computation is in flight; always for
    /// [`CacheMode::Bypass`]/[`CacheMode::Refresh`]). The worker pool
    /// uses this to shard an oversized layer's tiling range across
    /// workers and to honor per-job cache options; the strategy must
    /// return exactly what [`DseEngine::explore_layer`] would (sharded
    /// merges are exact, so this holds by construction), or cached and
    /// computed results would diverge.
    ///
    /// # Errors
    ///
    /// Propagates `explore` failures (shared by every caller coalesced
    /// onto the failing computation). Failures are not cached.
    pub fn explore_layer_cached_with<F>(
        &self,
        engine: &DseEngine,
        tag: &str,
        layer: &Layer,
        mode: CacheMode,
        explore: F,
    ) -> Result<(LayerDseResult, CacheOutcome), DseError>
    where
        F: FnOnce() -> Result<LayerDseResult, DseError>,
    {
        self.explore_layer_cached_traced(engine, tag, layer, mode, None, None, explore)
    }

    /// [`ServiceState::explore_layer_cached_with`] with an optional
    /// per-request [`Trace`]: the whole lookup is timed as a
    /// `cache_lookup` span and the computation (when the lookup falls
    /// through) as a nested `explore` span, both recorded in the stage
    /// histograms and — when a trace is attached — in that request's
    /// stage breakdown. Instrumentation never touches the result, so
    /// bit-identity across paths is preserved.
    ///
    /// A ranged sweep (`range`, from
    /// [`JobOptions::tiling_range`](crate::spec::JobOptions)) is keyed
    /// with a `|range=start..end` suffix so partial results — the unit
    /// the router's `--scatter` mode distributes — never alias the full
    /// layer's cache entry, in either the resident tier or the store.
    ///
    /// # Errors
    ///
    /// Propagates `explore` failures; failures are not cached.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn explore_layer_cached_traced<F>(
        &self,
        engine: &DseEngine,
        tag: &str,
        layer: &Layer,
        mode: CacheMode,
        trace: Option<&Arc<Trace>>,
        range: Option<(u64, u64)>,
        explore: F,
    ) -> Result<(LayerDseResult, CacheOutcome), DseError>
    where
        F: FnOnce() -> Result<LayerDseResult, DseError>,
    {
        let _lookup = Span::enter("cache_lookup", &self.stages.cache_lookup_ns).traced(trace);
        self.stages.layers_total.inc();
        let acc = engine.model().traffic_model().accelerator();
        let mut key = layer_cache_key(tag, layer, acc, engine.config());
        if let Some((start, end)) = range {
            key.push_str(&format!("|range={start}..{end}"));
        }
        let stages = &self.stages;
        let (mut result, outcome) = self.cache.get_or_compute_with(&key, mode, || {
            let _explore = Span::enter("explore", &stages.explore_ns).traced(trace);
            explore()
        })?;
        // Resident-tier semantics: only `Hit` was answered from memory
        // already resident; coalesced waits, store reads, and fresh
        // computations all count against the resident hit ratio.
        if outcome == CacheOutcome::Hit {
            self.stages.cache_hits_total.inc();
        } else {
            self.stages.cache_misses_total.inc();
        }
        if result.layer_name != layer.name {
            result.layer_name.clone_from(&layer.name);
        }
        Ok((result, outcome))
    }

    /// Run a whole job sequentially on the calling thread (the reference
    /// path; the worker pool produces bit-identical results in parallel).
    ///
    /// # Errors
    ///
    /// Propagates the first per-layer failure.
    pub fn run_job(&self, spec: &JobSpec) -> Result<JobResult, ServiceError> {
        let engine = self
            .factory
            .engine_with(&spec.engine, spec.options.keep_points);
        let tag = self.factory.engine_tag(&spec.engine);
        let range = spec.options.tiling_range;
        let mut outcomes = Vec::with_capacity(spec.workload.layers().len());
        let mut total = drmap_core::edp::EdpEstimate::zero(engine.model().table().t_ck_ns);
        for layer in spec.workload.layers() {
            let (result, outcome) = self.explore_layer_cached_traced(
                &engine,
                &tag,
                layer,
                spec.options.cache,
                None,
                range,
                || explore_layer_ranged(&engine, layer, range),
            )?;
            total.accumulate(&result.best.estimate);
            outcomes.push(outcome_from_result(result, outcome));
        }
        Ok(JobResult {
            id: spec.id,
            workload: spec.workload.name().to_owned(),
            total,
            layers: outcomes,
        })
    }
}

/// Explore a layer, restricted to `range` when one is set. The ranged
/// path mirrors [`DseEngine::explore_layer`] (which is itself the full
/// `0..usize::MAX` range), so a scattered sweep's merged partials are
/// bit-identical to one whole sweep by construction.
///
/// # Errors
///
/// Propagates sweep failures, and rejects a range that is empty after
/// clamping to the layer's tiling count — `LayerPartial::into_result`
/// on an empty partial would panic, and a silently-empty partial would
/// corrupt a scatter merge.
pub fn explore_layer_ranged(
    engine: &DseEngine,
    layer: &Layer,
    range: Option<(u64, u64)>,
) -> Result<LayerDseResult, DseError> {
    let Some((start, end)) = range else {
        return engine.explore_layer(layer);
    };
    let count = engine.tiling_count(layer)? as u64;
    if start >= count.min(end) {
        return Err(DseError::new(format!(
            "tiling range {start}..{end} is empty for layer {:?} ({count} tilings)",
            layer.name
        )));
    }
    let clamped = usize::try_from(start).unwrap_or(usize::MAX)
        ..usize::try_from(end.min(count)).unwrap_or(usize::MAX);
    Ok(engine
        .explore_layer_range(layer, clamped)?
        .into_result(layer.name.clone()))
}

/// The routing fingerprint for a job: the concatenated cache keys of
/// its layers over the served substrate, computed without profiling an
/// engine (the router never builds one). Two jobs share a fingerprint
/// exactly when they share every layer cache entry, so rendezvous
/// hashing on it keeps each backend's memo cache and WAL store hot for
/// a stable key slice.
pub fn job_route_key(spec: &JobSpec) -> String {
    let acc = AcceleratorConfig::table_ii();
    let config = DseConfig {
        objective: spec.engine.objective,
        keep_points: spec.options.keep_points,
        ..DseConfig::default()
    };
    let tag = format!("{}@{}", spec.engine.arch.label(), SUBSTRATE);
    let mut key = String::new();
    for layer in spec.workload.layers() {
        key.push_str(&layer_cache_key(&tag, layer, &acc, &config));
        key.push('\n');
    }
    key
}

/// The next slow-trace sequence number to hand out: one past the
/// highest sequence among the store's persisted traces (0 for a fresh
/// or trace-free log), so a restarted server appends after its
/// predecessor instead of overwriting the freshest slots.
fn next_slow_seq(store: &drmap_store::store::Store) -> u64 {
    store
        .keys_with_prefix(SLOW_TRACE_KEY_PREFIX)
        .into_iter()
        .filter_map(|key| store.get(&key).ok().flatten())
        .filter_map(|bytes| SlowEntry::decode_record(&bytes))
        .map(|(seq, _, _)| seq.saturating_add(1))
        .max()
        .unwrap_or(0)
}

/// Convert a core-layer result into the service's wire outcome.
pub(crate) fn outcome_from_result(result: LayerDseResult, outcome: CacheOutcome) -> LayerOutcome {
    LayerOutcome {
        name: result.layer_name,
        mapping: result.best.mapping.name(),
        scheme: result.best.scheme.label().to_owned(),
        tiling: result.best.tiling,
        estimate: result.best.estimate,
        evaluations: result.evaluations as u64,
        cached: outcome == CacheOutcome::Hit,
        coalesced: outcome == CacheOutcome::Coalesced,
        store_hit: outcome == CacheOutcome::StoreHit,
        pareto: result.pareto,
    }
}

/// Number of workers to use when the caller does not specify one.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use drmap_cnn::network::Network;

    #[test]
    fn factory_profiles_each_arch_once_and_engines_agree() {
        let state = ServiceState::new().unwrap();
        let spec = EngineSpec::default();
        let e1 = state.factory().engine(&spec);
        let e2 = state.factory().engine(&spec);
        let tiny = Network::tiny();
        let layer = &tiny.layers()[0];
        let r1 = e1.explore_layer(layer).unwrap();
        let r2 = e2.explore_layer(layer).unwrap();
        assert_eq!(r1.best, r2.best);
        assert_eq!(
            r1.best.estimate.energy.to_bits(),
            r2.best.estimate.energy.to_bits()
        );
    }

    #[test]
    fn engine_tags_distinguish_archs() {
        let state = ServiceState::new().unwrap();
        let tags: std::collections::HashSet<String> = DramArch::ALL
            .into_iter()
            .map(|arch| state.factory().engine_tag(&EngineSpec::for_arch(arch)))
            .collect();
        assert_eq!(tags.len(), DramArch::ALL.len());
    }

    #[test]
    fn cached_layer_results_are_bit_identical_and_renamed() {
        let state = ServiceState::new().unwrap();
        let spec = EngineSpec::default();
        let engine = state.factory().engine(&spec);
        let tag = state.factory().engine_tag(&spec);
        let layer = Layer::conv("FIRST", 8, 8, 16, 8, 3, 3, 1);
        let (fresh, outcome) = state.explore_layer_cached(&engine, &tag, &layer).unwrap();
        assert_eq!(outcome, CacheOutcome::Miss);
        let renamed = Layer::conv("SECOND", 8, 8, 16, 8, 3, 3, 1);
        let (hit, outcome) = state.explore_layer_cached(&engine, &tag, &renamed).unwrap();
        assert_eq!(outcome, CacheOutcome::Hit);
        assert_eq!(hit.layer_name, "SECOND");
        assert_eq!(hit.best, fresh.best);
        assert_eq!(
            hit.best.estimate.energy.to_bits(),
            fresh.best.estimate.energy.to_bits()
        );
        assert_eq!(state.cache().stats().entries, 1);
    }

    #[test]
    fn run_job_matches_direct_explore_network() {
        let state = ServiceState::new().unwrap();
        let spec = JobSpec::network(1, EngineSpec::default(), Network::tiny());
        let served = state.run_job(&spec).unwrap();
        let engine = state.factory().engine(&spec.engine);
        let direct = engine.explore_network(&Network::tiny()).unwrap();
        assert_eq!(served.layers.len(), direct.layers.len());
        for (s, d) in served.layers.iter().zip(&direct.layers) {
            assert_eq!(s.name, d.layer_name);
            assert_eq!(s.mapping, d.best.mapping.name());
            assert_eq!(s.tiling, d.best.tiling);
            assert_eq!(
                s.estimate.energy.to_bits(),
                d.best.estimate.energy.to_bits()
            );
            assert_eq!(
                s.estimate.cycles.to_bits(),
                d.best.estimate.cycles.to_bits()
            );
        }
        assert_eq!(served.total.energy.to_bits(), direct.total.energy.to_bits());
        assert_eq!(served.total.cycles.to_bits(), direct.total.cycles.to_bits());
    }
}
