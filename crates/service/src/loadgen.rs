//! Seeded zipfian load generation for the job server.
//!
//! The `drmap-loadgen` bin replays a *deterministic* request mix
//! against a live `drmap-serve`; this module holds everything about
//! that mix that can be unit-tested without a socket:
//!
//! * [`SplitMix64`] — a tiny, seedable PRNG (SplitMix64, the stream
//!   used to seed xoshiro generators) so runs are reproducible without
//!   pulling in a randomness dependency;
//! * [`Zipf`] — a zipfian sampler over catalog ranks, because real
//!   job traffic is skewed: a few popular workloads dominate while a
//!   long tail keeps the cache honest;
//! * [`JobMix`] — the seeded request plan: a catalog of network- and
//!   layer-level jobs ordered cheap-to-expensive, sampled by rank so
//!   the popular head stays cheap and the heavy tail is rare;
//! * [`validate_bench`] — the schema gate for `BENCH_load.json`: a
//!   result document without its environment block (or its latency
//!   percentiles) is *refused*, never written, because a benchmark
//!   number divorced from core count and concurrency is noise.
//!
//! Two [`JobMix`]es built with the same seed produce byte-identical
//! request sequences — the property the loadgen determinism test and
//! the CI smoke job pin.

use crate::json::Json;
use crate::spec::{EngineSpec, JobSpec};
use drmap_cnn::network::Network;

/// Default zipf exponent for the request mix: skewed enough that the
/// head dominates (ranks 0–2 draw most of the traffic) while the tail
/// still appears in any run longer than a few hundred requests.
pub const DEFAULT_ZIPF_EXPONENT: f64 = 1.1;

/// A seedable SplitMix64 PRNG.
///
/// Deliberately tiny: one `u64` of state, no dependencies, and a
/// well-studied output function. Not cryptographic — it only has to
/// make request plans reproducible.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed` (any value, including 0, is a
    /// valid seed for SplitMix64).
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform draw from `[0, 1)` using the top 53 bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A zipfian sampler over ranks `0..n`: rank `r` is drawn with
/// probability proportional to `1 / (r + 1)^exponent`.
///
/// Sampling walks a precomputed CDF with a binary search, so a draw is
/// `O(log n)` with no floating-point accumulation during the run.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// A sampler over `n` ranks with the given exponent. Exponent 0 is
    /// uniform; larger exponents concentrate mass on low ranks.
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0 — there is nothing to sample.
    pub fn new(n: usize, exponent: f64) -> Self {
        assert!(n > 0, "a zipf sampler needs at least one rank");
        let weights: Vec<f64> = (0..n)
            .map(|r| 1.0 / ((r + 1) as f64).powf(exponent))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let mut cdf: Vec<f64> = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        // Pin the last step to exactly 1.0 so a draw of 0.999…9 can
        // never fall off the end through rounding.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Zipf { cdf }
    }

    /// Ranks this sampler covers.
    pub fn ranks(&self) -> usize {
        self.cdf.len()
    }

    /// Draw one rank in `0..ranks()`.
    pub fn sample(&self, rng: &mut SplitMix64) -> usize {
        let u = rng.next_f64();
        // First rank whose CDF value exceeds the draw.
        self.cdf
            .partition_point(|&c| c <= u)
            .min(self.cdf.len() - 1)
    }
}

/// The default job catalog: every zoo network plus each individual
/// layer of the two smallest ones, ordered cheap-to-expensive so that
/// zipf rank 0 (the most popular) is also the cheapest request.
///
/// Layer jobs lead (single-layer explorations, ideal cache-hit
/// candidates), then whole networks by ascending layer count — the
/// heavy nets sit in the zipf tail where they are sampled rarely.
/// Every template has job id 0; [`JobMix`] stamps real ids.
pub fn default_catalog() -> Vec<JobSpec> {
    let engine = EngineSpec::default();
    let mut catalog = Vec::new();
    for network in [Network::tiny(), Network::alexnet()] {
        for layer in network.layers() {
            catalog.push(JobSpec::layer(0, engine, layer.clone()));
        }
    }
    let mut networks: Vec<Network> = Network::zoo().iter().map(|(_, build)| build()).collect();
    networks.sort_by_key(|n| n.layers().len());
    for network in networks {
        catalog.push(JobSpec::network(0, engine, network));
    }
    catalog
}

/// A deterministic, seeded request plan: draws catalog ranks from a
/// [`Zipf`] distribution and stamps monotonically increasing job ids.
///
/// Two mixes built with the same seed (and catalog) yield identical
/// request sequences; see the determinism test.
#[derive(Debug, Clone)]
pub struct JobMix {
    catalog: Vec<JobSpec>,
    zipf: Zipf,
    rng: SplitMix64,
    next_id: u64,
}

impl JobMix {
    /// A mix over [`default_catalog`] with the given seed and
    /// exponent. Ids start at 1.
    pub fn new(seed: u64, exponent: f64) -> Self {
        Self::with_catalog(default_catalog(), seed, exponent)
            .expect("the default catalog is never empty")
    }

    /// A mix over an explicit catalog.
    ///
    /// # Errors
    ///
    /// Fails on an empty catalog — there is nothing to replay.
    pub fn with_catalog(catalog: Vec<JobSpec>, seed: u64, exponent: f64) -> Result<Self, String> {
        if catalog.is_empty() {
            return Err("the job catalog is empty".to_owned());
        }
        let zipf = Zipf::new(catalog.len(), exponent);
        Ok(JobMix {
            catalog,
            zipf,
            rng: SplitMix64::new(seed),
            next_id: 1,
        })
    }

    /// Entries in the catalog.
    pub fn catalog_len(&self) -> usize {
        self.catalog.len()
    }

    /// Override the next job id to stamp (so concurrent connections
    /// can carve disjoint id ranges out of one shared plan).
    pub fn set_next_id(&mut self, id: u64) {
        self.next_id = id;
    }

    /// Draw the next request: a clone of the sampled catalog entry
    /// with a fresh, monotonically increasing id.
    pub fn next_spec(&mut self) -> JobSpec {
        let rank = self.zipf.sample(&mut self.rng);
        let mut spec = self.catalog[rank].clone();
        spec.id = self.next_id;
        self.next_id += 1;
        spec
    }
}

/// Fields every `BENCH_load.json` environment block must carry. A
/// throughput or percentile number is meaningless without them.
pub const REQUIRED_ENVIRONMENT_FIELDS: [&str; 7] = [
    "cores_available",
    "connections",
    "workers",
    "mode",
    "target_rate_rps",
    "backends",
    "router",
];

/// Latency percentile fields every `BENCH_load.json` must carry.
pub const REQUIRED_LATENCY_FIELDS: [&str; 4] = ["p50_ns", "p99_ns", "p999_ns", "count"];

/// Validate a `BENCH_load.json` document before it is written.
///
/// The loadgen *refuses* to emit a result without its environment
/// block (core count, connection count, worker count, mode, target
/// rate — `null` is fine for the rate, absent is not) or without its
/// latency percentiles: benchmark numbers that cannot be tied back to
/// the machine and concurrency that produced them are noise, and the
/// CI smoke job greps for exactly these fields.
///
/// # Errors
///
/// Returns a description of the first missing field.
pub fn validate_bench(doc: &Json) -> Result<(), String> {
    let env = doc
        .get("environment")
        .ok_or_else(|| "missing the \"environment\" block".to_owned())?;
    for field in REQUIRED_ENVIRONMENT_FIELDS {
        if env.get(field).is_none() {
            return Err(format!("environment block is missing {field:?}"));
        }
    }
    let latency = doc
        .get("latency_ns")
        .ok_or_else(|| "missing the \"latency_ns\" block".to_owned())?;
    for field in REQUIRED_LATENCY_FIELDS {
        if latency.get(field).is_none() {
            return Err(format!("latency block is missing {field:?}"));
        }
    }
    for field in ["throughput_rps", "requests_completed", "requests_failed"] {
        if doc.get(field).is_none() {
            return Err(format!("missing top-level field {field:?}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_spreads() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let draws: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        assert_eq!(draws, (0..16).map(|_| b.next_u64()).collect::<Vec<_>>());
        // All distinct, and uniform draws stay in [0, 1).
        let distinct: std::collections::HashSet<u64> = draws.iter().copied().collect();
        assert_eq!(distinct.len(), draws.len());
        let mut c = SplitMix64::new(7);
        for _ in 0..1000 {
            let u = c.next_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn zipf_prefers_low_ranks_and_stays_in_range() {
        let zipf = Zipf::new(10, DEFAULT_ZIPF_EXPONENT);
        let mut rng = SplitMix64::new(1);
        let mut counts = [0usize; 10];
        for _ in 0..5000 {
            let rank = zipf.sample(&mut rng);
            assert!(rank < 10);
            counts[rank] += 1;
        }
        assert!(
            counts[0] > counts[9] * 3,
            "rank 0 should dominate the tail: {counts:?}"
        );
        // Every rank is reachable in a long enough run.
        assert!(counts.iter().all(|&c| c > 0), "{counts:?}");
    }

    #[test]
    fn zipf_exponent_zero_is_roughly_uniform() {
        let zipf = Zipf::new(4, 0.0);
        let mut rng = SplitMix64::new(3);
        let mut counts = [0usize; 4];
        for _ in 0..8000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((1500..2500).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn default_catalog_orders_cheap_to_expensive() {
        let catalog = default_catalog();
        assert!(catalog.len() >= 10, "catalog has {} entries", catalog.len());
        // The head is a single-layer job; the tail a multi-layer net.
        assert_eq!(catalog[0].workload.layers().len(), 1);
        let last = catalog.last().unwrap();
        assert!(last.workload.layers().len() > 1);
        // Networks are sorted by ascending layer count.
        let net_sizes: Vec<usize> = catalog
            .iter()
            .filter(|spec| spec.workload.layers().len() > 1)
            .map(|spec| spec.workload.layers().len())
            .collect();
        let mut sorted = net_sizes.clone();
        sorted.sort_unstable();
        assert_eq!(net_sizes, sorted);
    }

    #[test]
    fn fixed_seed_mixes_replay_identical_request_sequences() {
        let mut a = JobMix::new(42, DEFAULT_ZIPF_EXPONENT);
        let mut b = JobMix::new(42, DEFAULT_ZIPF_EXPONENT);
        let plan_a: Vec<JobSpec> = (0..200).map(|_| a.next_spec()).collect();
        let plan_b: Vec<JobSpec> = (0..200).map(|_| b.next_spec()).collect();
        assert_eq!(plan_a, plan_b);
        // Ids are stamped monotonically from 1.
        assert_eq!(plan_a[0].id, 1);
        assert_eq!(plan_a[199].id, 200);
        // The zipf head dominates: the most popular workload name
        // accounts for a plurality of the plan.
        let mut by_name = std::collections::HashMap::new();
        for spec in &plan_a {
            *by_name
                .entry(spec.workload.name().to_owned())
                .or_insert(0usize) += 1;
        }
        assert!(by_name.len() > 1, "the plan should mix workloads");
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = JobMix::new(42, DEFAULT_ZIPF_EXPONENT);
        let mut b = JobMix::new(43, DEFAULT_ZIPF_EXPONENT);
        let names_a: Vec<String> = (0..100)
            .map(|_| a.next_spec().workload.name().to_owned())
            .collect();
        let names_b: Vec<String> = (0..100)
            .map(|_| b.next_spec().workload.name().to_owned())
            .collect();
        assert_ne!(names_a, names_b);
    }

    #[test]
    fn empty_catalog_is_rejected() {
        assert!(JobMix::with_catalog(Vec::new(), 1, 1.0).is_err());
    }

    fn complete_bench_doc() -> Json {
        Json::obj([
            (
                "environment",
                Json::obj([
                    ("cores_available", Json::num_usize(1)),
                    ("connections", Json::num_usize(4)),
                    ("workers", Json::num_usize(2)),
                    ("mode", Json::str("closed-loop")),
                    ("target_rate_rps", Json::Null),
                    ("backends", Json::num_usize(1)),
                    ("router", Json::Bool(false)),
                ]),
            ),
            (
                "latency_ns",
                Json::obj([
                    ("p50_ns", Json::num_u64(1)),
                    ("p99_ns", Json::num_u64(2)),
                    ("p999_ns", Json::num_u64(3)),
                    ("count", Json::num_u64(4)),
                ]),
            ),
            ("throughput_rps", Json::Num(12.5)),
            ("requests_completed", Json::num_u64(4)),
            ("requests_failed", Json::num_u64(0)),
        ])
    }

    #[test]
    fn bench_validation_accepts_a_complete_document() {
        assert_eq!(validate_bench(&complete_bench_doc()), Ok(()));
    }

    #[test]
    fn bench_validation_refuses_missing_environment_and_percentiles() {
        let strip = |doc: &Json, key: &str| match doc {
            Json::Obj(pairs) => {
                Json::Obj(pairs.iter().filter(|(k, _)| k != key).cloned().collect())
            }
            other => other.clone(),
        };
        let doc = complete_bench_doc();
        assert!(validate_bench(&strip(&doc, "environment"))
            .unwrap_err()
            .contains("environment"));
        // A null target rate is fine; a *missing* key is not.
        let env = doc.get("environment").unwrap();
        let mut gutted = strip(&doc, "environment");
        if let Json::Obj(pairs) = &mut gutted {
            pairs.push(("environment".to_owned(), strip(env, "target_rate_rps")));
        }
        assert!(validate_bench(&gutted)
            .unwrap_err()
            .contains("target_rate_rps"));
        let latency = doc.get("latency_ns").unwrap();
        let mut no_p999 = strip(&doc, "latency_ns");
        if let Json::Obj(pairs) = &mut no_p999 {
            pairs.push(("latency_ns".to_owned(), strip(latency, "p999_ns")));
        }
        assert!(validate_bench(&no_p999).unwrap_err().contains("p999_ns"));
        assert!(validate_bench(&strip(&doc, "throughput_rps"))
            .unwrap_err()
            .contains("throughput_rps"));
    }
}
